"""Tests for the extended-validation workloads (PathFinder, KMeans)."""

import numpy as np
import pytest

from repro.harness.context import ExperimentContext
from repro.workloads import KMeans, PathFinder, extended_workloads
from repro.workloads.base import Dataset


def rng():
    return np.random.default_rng(77)


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(seed=21)


class TestPathFinderFunctional:
    def _naive(self, wall, src):
        cost = src.astype(np.float64).copy()
        rows, cols = wall.shape
        for r in range(rows):
            new = np.empty(cols)
            for j in range(cols):
                best = cost[j]
                if j > 0:
                    best = min(best, cost[j - 1])
                if j < cols - 1:
                    best = min(best, cost[j + 1])
                new[j] = wall[r, j] + best
            cost = new
        return cost

    def test_matches_naive(self):
        w = PathFinder()
        ds = Dataset("tiny", 40)
        inputs = {
            "wall": rng().integers(0, 10, size=(w.rows, 40)).astype(
                np.float32
            ),
            "src": np.zeros(40, dtype=np.float32),
        }
        got = w.run_reference(inputs)["cost"]
        want = self._naive(inputs["wall"], inputs["src"])
        np.testing.assert_allclose(got, want, rtol=1e-6)

    def test_monotone_cost(self):
        """Non-negative walls: the DP cost grows with depth."""
        w = PathFinder()
        inputs = w.make_inputs(Dataset("tiny", 64), rng())
        cost = w.run_reference(inputs)["cost"]
        assert (cost >= 0).all()

    def test_not_iterative(self):
        with pytest.raises(ValueError):
            PathFinder().run_reference(
                PathFinder().make_inputs(Dataset("t", 32), rng()),
                iterations=2,
            )


class TestKMeansFunctional:
    def test_matches_naive(self):
        w = KMeans()
        inputs = w.make_inputs(Dataset("tiny", 200), rng())
        got = w.run_reference(inputs)["labels"]
        points = inputs["points"].T  # n x dims
        centroids = inputs["centroids"]
        want = np.array(
            [
                int(np.argmin(((centroids - p) ** 2).sum(axis=1)))
                for p in points
            ],
            dtype=np.int32,
        )
        np.testing.assert_array_equal(got, want)

    def test_labels_in_range(self):
        w = KMeans()
        inputs = w.make_inputs(Dataset("tiny", 500), rng())
        labels = w.run_reference(inputs)["labels"]
        assert labels.min() >= 0
        assert labels.max() < w.clusters


class TestExtendedValidation:
    """The paper's future work: the pipeline on unseen applications.

    No Table-I anchors exist, so "measured" is the honest, uncalibrated
    simulator; the bands below are the framework's earned accuracy.
    """

    @pytest.mark.parametrize("workload", extended_workloads(),
                             ids=lambda w: w.name)
    def test_transfer_prediction_tight(self, ctx, workload):
        for ds in workload.datasets():
            report = ctx.report(workload, ds)
            assert report.transfer_error < 0.05, ds.label

    @pytest.mark.parametrize("workload", extended_workloads(),
                             ids=lambda w: w.name)
    def test_kernel_prediction_in_band(self, ctx, workload):
        for ds in workload.datasets():
            report = ctx.report(workload, ds)
            assert report.kernel_error < 1.0, ds.label

    @pytest.mark.parametrize("workload", extended_workloads(),
                             ids=lambda w: w.name)
    def test_transfer_aware_beats_kernel_only(self, ctx, workload):
        for ds in workload.datasets():
            report = ctx.report(workload, ds)
            assert report.speedup_error("both") < report.speedup_error(
                "kernel"
            ), ds.label

    def test_pathfinder_decision_flip(self, ctx):
        """PathFinder is a second Stassuij: kernel-only says port,
        transfers say don't — and transfers are right."""
        w = PathFinder()
        report = ctx.report(w, w.datasets()[0])
        assert report.predicted_speedup("kernel") > 1.0
        assert report.measured.speedup() < 0.6
        assert report.predicted_speedup("both") < 0.6

    def test_kmeans_direction_correct(self, ctx):
        """KMeans genuinely wins on the GPU; the prediction agrees."""
        w = KMeans()
        report = ctx.report(w, w.datasets()[1])
        assert report.measured.speedup() > 1.0
        assert report.predicted_speedup("both") > 1.0

    def test_registry_includes_extended(self):
        from repro.workloads import all_workloads, get_workload

        names = {w.name for w in all_workloads()}
        assert {"PathFinder", "KMeans"} <= names
        assert get_workload("pathfinder").name == "PathFinder"
