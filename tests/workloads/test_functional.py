"""Functional correctness of the workload reference implementations.

Each vectorized NumPy reference is checked against an independent
straight-loop implementation on a tiny input — the reference is what both
the skeleton work counts and the "CPU baseline" semantics rest on.
"""

import numpy as np
import pytest

from repro.workloads import Cfd, HotSpot, Srad, Stassuij, VectorAdd
from repro.workloads.base import Dataset


def rng():
    return np.random.default_rng(1234)


class TestVectorAdd:
    def test_reference(self):
        w = VectorAdd()
        ds = Dataset("tiny", 128)
        inputs = w.make_inputs(ds, rng())
        out = w.run_reference(inputs)
        np.testing.assert_allclose(out["c"], inputs["a"] + inputs["b"])

    def test_not_iterative(self):
        with pytest.raises(ValueError):
            VectorAdd().run_reference(
                VectorAdd().make_inputs(Dataset("t", 8), rng()), iterations=2
            )


class TestHotSpot:
    def _naive_step(self, temp, power):
        from repro.workloads.hotspot import _CAP, _R_X, _R_Y, _R_Z, _STEP, _T_AMB

        n = temp.shape[0]
        out = temp.copy()
        for i in range(1, n - 1):
            for j in range(1, n - 1):
                c = temp[i, j]
                delta = (_STEP / _CAP) * (
                    power[i, j]
                    + (temp[i + 1, j] + temp[i - 1, j] - 2 * c) / _R_Y
                    + (temp[i, j + 1] + temp[i, j - 1] - 2 * c) / _R_X
                    + (_T_AMB - c) / _R_Z
                )
                out[i, j] = c + delta
        return out

    def test_single_step_matches_naive(self):
        w = HotSpot()
        ds = Dataset("tiny", 16)
        inputs = w.make_inputs(ds, rng())
        got = w.run_reference(inputs)["temp_out"]
        want = self._naive_step(
            inputs["temp"].astype(np.float64), inputs["power"]
        )
        np.testing.assert_allclose(got, want, rtol=1e-5)

    def test_boundary_held_fixed(self):
        w = HotSpot()
        inputs = w.make_inputs(Dataset("tiny", 16), rng())
        out = w.run_reference(inputs, iterations=3)["temp_out"]
        np.testing.assert_array_equal(out[0, :], inputs["temp"][0, :])
        np.testing.assert_array_equal(out[:, -1], inputs["temp"][:, -1])

    def test_iterations_progress(self):
        w = HotSpot()
        inputs = w.make_inputs(Dataset("tiny", 16), rng())
        one = w.run_reference(inputs, 1)["temp_out"]
        five = w.run_reference(inputs, 5)["temp_out"]
        assert not np.allclose(one, five)

    def test_inputs_not_mutated(self):
        w = HotSpot()
        inputs = w.make_inputs(Dataset("tiny", 16), rng())
        snapshot = inputs["temp"].copy()
        w.run_reference(inputs, 3)
        np.testing.assert_array_equal(inputs["temp"], snapshot)

    def test_converges_toward_steady_state(self):
        """The explicit Euler step is a contraction for these constants."""
        w = HotSpot()
        inputs = w.make_inputs(Dataset("tiny", 16), rng())
        t1 = w.run_reference(inputs, 50)["temp_out"]
        t2 = w.run_reference(inputs, 51)["temp_out"]
        d1 = np.abs(w.step(t1, inputs["power"]) - t1).max()
        assert np.isfinite(t1).all()
        assert d1 < 1.0  # changes settle to a small per-step delta


class TestSrad:
    def _naive_iteration(self, img):
        n = img.shape[0]
        mean, std = img.mean(), img.std()
        q0 = (std * std) / (mean * mean)
        pad = lambda i: min(max(i, 0), n - 1)  # noqa: E731
        c = np.zeros_like(img)
        dN = np.zeros_like(img)
        dS = np.zeros_like(img)
        dE = np.zeros_like(img)
        dW = np.zeros_like(img)
        for i in range(n):
            for j in range(n):
                J = img[i, j]
                dN[i, j] = img[pad(i - 1), j] - J
                dS[i, j] = img[pad(i + 1), j] - J
                dW[i, j] = img[i, pad(j - 1)] - J
                dE[i, j] = img[i, pad(j + 1)] - J
                g2 = (
                    dN[i, j] ** 2 + dS[i, j] ** 2 + dE[i, j] ** 2 + dW[i, j] ** 2
                ) / (J * J)
                lap = (dN[i, j] + dS[i, j] + dE[i, j] + dW[i, j]) / J
                num = 0.5 * g2 - (1 / 16) * lap * lap
                den = 1 + 0.25 * lap
                qsqr = num / (den * den)
                den2 = (qsqr - q0) / (q0 * (1 + q0))
                c[i, j] = np.clip(1.0 / (1.0 + den2), 0, 1)
        out = img.copy()
        for i in range(n):
            for j in range(n):
                div = (
                    c[pad(i + 1), j] * dS[i, j]
                    + c[i, j] * dN[i, j]
                    + c[i, pad(j + 1)] * dE[i, j]
                    + c[i, j] * dW[i, j]
                )
                out[i, j] = img[i, j] + 0.25 * 0.5 * div
        return out

    def test_single_iteration_matches_naive(self):
        w = Srad()
        inputs = w.make_inputs(Dataset("tiny", 12), rng())
        got = w.run_reference(inputs, 1)["J"]
        want = self._naive_iteration(inputs["J"].astype(np.float64))
        np.testing.assert_allclose(got, want, rtol=1e-4)

    def test_smooths_speckle(self):
        """Diffusion reduces local variance without killing the mean."""
        w = Srad()
        inputs = w.make_inputs(Dataset("tiny", 32), rng())
        before = inputs["J"]
        after = w.run_reference(inputs, 30)["J"]
        assert after.std() < before.std()
        assert after.mean() == pytest.approx(before.mean(), rel=0.05)
        assert np.isfinite(after).all()

    def test_inputs_not_mutated(self):
        w = Srad()
        inputs = w.make_inputs(Dataset("tiny", 12), rng())
        snapshot = inputs["J"].copy()
        w.run_reference(inputs, 2)
        np.testing.assert_array_equal(inputs["J"], snapshot)


class TestCfd:
    def _naive_iteration(self, variables, areas, neighbors, normals):
        from repro.workloads.cfd import _CFL, _NNB, _NVAR

        n = variables.shape[1]
        sf = np.zeros(n)
        for i in range(n):
            density = variables[0, i]
            speed = (
                np.sqrt(sum(variables[v, i] ** 2 for v in (1, 2, 3)))
                / density
            )
            sf[i] = _CFL / (np.sqrt(areas[i]) * (speed + 1.0))
        old = variables.copy()
        fluxes = np.zeros_like(variables)
        for i in range(n):
            for v in range(_NVAR):
                acc = 0.0
                for j in range(_NNB):
                    nb = neighbors[i, j]
                    acc += normals[i, j] * (variables[v, nb] - variables[v, i])
                acc += normals[i, 4] * variables[v, i] + normals[i, 5]
                fluxes[v, i] = acc
        out = np.zeros_like(variables)
        for i in range(n):
            for v in range(_NVAR):
                out[v, i] = old[v, i] + sf[i] * fluxes[v, i]
        return out

    def test_single_iteration_matches_naive(self):
        w = Cfd()
        inputs = w.make_inputs(Dataset("tiny", 64), rng())
        got = w.run_reference(inputs, 1)["variables"]
        want = self._naive_iteration(
            inputs["variables"].astype(np.float64),
            inputs["areas"].astype(np.float64),
            inputs["neighbors"],
            inputs["normals"].astype(np.float64),
        )
        np.testing.assert_allclose(got, want, rtol=1e-4)

    def test_multiple_iterations_stable(self):
        w = Cfd()
        inputs = w.make_inputs(Dataset("tiny", 64), rng())
        out = w.run_reference(inputs, 5)["variables"]
        assert np.isfinite(out).all()

    def test_inputs_not_mutated(self):
        w = Cfd()
        inputs = w.make_inputs(Dataset("tiny", 64), rng())
        snapshot = inputs["variables"].copy()
        w.run_reference(inputs, 2)
        np.testing.assert_array_equal(inputs["variables"], snapshot)


class TestStassuij:
    def test_matches_dense_computation(self):
        w = Stassuij()
        inputs = w.make_inputs(w.datasets()[0], rng())
        got = w.run_reference(inputs)["y"]
        # Rebuild the dense matrix by hand.
        dense = np.zeros((132, 132))
        rowptr = inputs["csr_rowptr"]
        for r in range(132):
            for k in range(rowptr[r], rowptr[r + 1]):
                dense[r, inputs["csr_cols"][k]] += inputs["csr_vals"][k]
        want = inputs["y"] + dense @ inputs["x"]
        np.testing.assert_allclose(got, want, rtol=1e-10)

    def test_output_is_complex(self):
        w = Stassuij()
        inputs = w.make_inputs(w.datasets()[0], rng())
        assert w.run_reference(inputs)["y"].dtype == np.complex128

    def test_nnz_structure(self):
        w = Stassuij()
        inputs = w.make_inputs(w.datasets()[0], rng())
        assert inputs["csr_vals"].shape == (w.nnz,)
        assert inputs["csr_rowptr"][-1] == w.nnz

    def test_not_iterative(self):
        w = Stassuij()
        with pytest.raises(ValueError):
            w.run_reference(
                w.make_inputs(w.datasets()[0], rng()), iterations=2
            )
