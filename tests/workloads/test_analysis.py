"""Workload skeletons, transfer plans (Table I sizes), and registry."""

import pytest

from repro.datausage import DataUsageAnalyzer, Direction, analyze_transfers
from repro.datausage.liveness import DependenceKind, kernel_dependences
from repro.harness import paperref
from repro.skeleton.validate import validate_program
from repro.util.units import MiB
from repro.workloads import (
    Cfd,
    HotSpot,
    Srad,
    Stassuij,
    all_workloads,
    get_workload,
    paper_workloads,
)


class TestRegistry:
    def test_paper_workloads_in_table_order(self):
        assert [w.name for w in paper_workloads()] == [
            "CFD",
            "HotSpot",
            "SRAD",
            "Stassuij",
        ]

    def test_lookup_case_insensitive(self):
        assert get_workload("srad").name == "SRAD"

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="known"):
            get_workload("nope")

    def test_all_have_valid_skeletons(self):
        for w in all_workloads():
            for ds in w.datasets():
                validate_program(w.skeleton(ds))  # raises on problems

    def test_dataset_lookup(self):
        w = HotSpot()
        assert w.dataset("512 x 512").size == 512
        with pytest.raises(KeyError):
            w.dataset("7 x 7")


class TestTransferSizesMatchTable1:
    """Input/output MB of the analyzed plans vs the paper's Table I."""

    @pytest.mark.parametrize(
        "workload",
        paper_workloads(),
        ids=lambda w: w.name,
    )
    def test_within_ten_percent(self, workload):
        for ds in workload.datasets():
            ref = paperref.TABLE1[(workload.name, ds.label)]
            plan = analyze_transfers(workload.skeleton(ds), workload.hints(ds))
            got_in = plan.input_bytes / MiB
            got_out = plan.output_bytes / MiB
            assert got_in == pytest.approx(ref.input_mb, rel=0.10), ds.label
            assert got_out == pytest.approx(ref.output_mb, rel=0.10), ds.label


class TestCfdAnalysis:
    def test_three_kernels(self):
        prog = Cfd().skeleton(Cfd().datasets()[0])
        assert [k.name for k in prog.kernels] == [
            "compute_step_factor",
            "compute_flux",
            "time_step",
        ]

    def test_temporaries_stay_on_device(self):
        w = Cfd()
        plan = analyze_transfers(w.skeleton(w.datasets()[0]), w.hints(w.datasets()[0]))
        out_arrays = {t.array for t in plan.outputs}
        assert out_arrays == {"variables"}

    def test_flux_kernel_depends_on_step_factor_kernel(self):
        """The paper: kernels are split to enforce global synchronization
        so an array is consumed before it is updated."""
        prog = Cfd().skeleton(Cfd().datasets()[0])
        deps = kernel_dependences(prog)
        flow = {
            (d.producer, d.consumer)
            for d in deps
            if d.kind is DependenceKind.FLOW
        }
        assert ("compute_step_factor", "time_step") in flow
        assert ("compute_flux", "time_step") in flow
        # time_step writes variables which compute_flux read: anti-dep
        # forces the split.
        anti = {
            (d.producer, d.consumer, d.array)
            for d in deps
            if d.kind is DependenceKind.ANTI
        }
        assert ("compute_flux", "time_step", "variables") in anti

    def test_gather_makes_variables_conservative_input(self):
        w = Cfd()
        ds = w.datasets()[0]
        analyzer = DataUsageAnalyzer(w.skeleton(ds), w.hints(ds))
        plan = analyzer.plan()
        variables_in = [t for t in plan.inputs if t.array == "variables"]
        assert len(variables_in) == 1
        # Whole array: 5 * n elements.
        assert variables_in[0].elements == 5 * ds.size


class TestSradAnalysis:
    def test_two_kernels_with_flow_dependence(self):
        prog = Srad().skeleton(Srad().datasets()[0])
        deps = kernel_dependences(prog)
        flows = {
            d.array
            for d in deps
            if d.kind is DependenceKind.FLOW
            and d.producer == "srad_prepare"
        }
        # "Data dependency among the two kernels involves several arrays."
        assert {"c", "dN", "dS", "dE", "dW"} <= flows

    def test_only_image_crosses_the_bus(self):
        w = Srad()
        ds = w.datasets()[0]
        plan = analyze_transfers(w.skeleton(ds), w.hints(ds))
        assert {t.array for t in plan.outputs} == {"J"}
        in_arrays = {t.array for t in plan.inputs}
        assert "J" in in_arrays
        # Temporaries never come back; the tiny un-produced halo of c may
        # legitimately go *in*.
        assert not {"dN", "dS", "dE", "dW"} & in_arrays


class TestStassuijAnalysis:
    def test_sparse_hints_bound_the_csr_vectors(self):
        w = Stassuij()
        ds = w.datasets()[0]
        plan = analyze_transfers(w.skeleton(ds), w.hints(ds))
        vals = [t for t in plan.inputs if t.array == "csr_vals"][0]
        assert vals.elements == w.nnz
        assert not vals.conservative

    def test_without_hints_conservative(self):
        w = Stassuij()
        ds = w.datasets()[0]
        plan = analyze_transfers(w.skeleton(ds))  # no hints
        vals = [t for t in plan.inputs if t.array == "csr_vals"][0]
        assert vals.conservative

    def test_accumulation_reads_y_in(self):
        w = Stassuij()
        ds = w.datasets()[0]
        plan = analyze_transfers(w.skeleton(ds), w.hints(ds))
        assert "y" in {t.array for t in plan.inputs}
        assert "y" in {t.array for t in plan.outputs}


class TestIterationInvariance:
    """Section IV-B: transfers are independent of the iteration count."""

    @pytest.mark.parametrize("workload", [Cfd(), HotSpot(), Srad()],
                             ids=lambda w: w.name)
    def test_iterative_flag(self, workload):
        assert workload.is_iterative
        assert len(workload.iteration_sweep()) >= 5

    def test_stassuij_not_iterative(self):
        assert not Stassuij().is_iterative


class TestProfilesAndTargets:
    @pytest.mark.parametrize("workload", all_workloads(), ids=lambda w: w.name)
    def test_profiles_positive(self, workload):
        for ds in workload.datasets():
            profile = workload.cpu_profile(ds)
            assert profile.bytes_moved > 0
            targets = workload.testbed_targets(ds)
            assert targets.kernel_seconds > 0
            assert targets.cpu_seconds > 0

    def test_hotspot_cpu_anchor(self):
        """Footnote 6 fixes the HotSpot 512^2 CPU time near 2.25 ms."""
        w = HotSpot()
        t = w.testbed_targets(w.dataset("512 x 512"))
        assert t.cpu_seconds == pytest.approx(2.25e-3, rel=1e-6)

    def test_cfd_quirk_present(self):
        w = Cfd()
        t = w.testbed_targets(w.datasets()[0])
        quirk = t.quirk_for("areas", Direction.H2D)
        assert quirk is not None
        assert quirk.probability == 0.5
        assert quirk.slow_factor > 2

    def test_small_dataset_is_small(self):
        for w in all_workloads():
            assert w.small_dataset().size <= min(
                d.size for d in w.datasets()
            )
