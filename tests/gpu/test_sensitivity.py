"""Tests for model sensitivity analysis."""

import pytest

from repro.gpu.arch import quadro_fx_5600
from repro.gpu.characteristics import KernelCharacteristics
from repro.gpu.sensitivity import (
    TUNABLE_PARAMETERS,
    classify_kernel,
    dominant_parameter,
    kernel_sensitivities,
)


def chars(**kwargs) -> KernelCharacteristics:
    defaults = dict(
        name="k",
        threads=2_000_000,
        block_size=256,
        comp_insts_per_thread=10.0,
        mem_insts_per_thread=8.0,
        coalesced_fraction=1.0,
        registers_per_thread=10,
    )
    defaults.update(kwargs)
    return KernelCharacteristics(**defaults)


class TestSensitivities:
    def test_all_parameters_reported(self):
        sens = kernel_sensitivities(chars(), quadro_fx_5600())
        assert {s.parameter for s in sens} == set(TUNABLE_PARAMETERS)

    def test_streaming_kernel_tracks_bandwidth(self):
        """A big coalesced streaming kernel: T ~ 1/bandwidth."""
        sens = {
            s.parameter: s.elasticity
            for s in kernel_sensitivities(chars(), quadro_fx_5600())
        }
        assert sens["mem_bandwidth"] == pytest.approx(-1.0, abs=0.15)
        # and is insensitive to raw latency.
        assert abs(sens["mem_latency_cycles"]) < 0.3

    def test_compute_kernel_tracks_clock(self):
        c = chars(comp_insts_per_thread=5000.0, mem_insts_per_thread=0.5)
        sens = {
            s.parameter: s.elasticity
            for s in kernel_sensitivities(c, quadro_fx_5600())
        }
        assert sens["clock_ghz"] == pytest.approx(-1.0, abs=0.15)
        assert sens["issue_cycles"] == pytest.approx(1.0, abs=0.15)
        assert abs(sens["mem_bandwidth"]) < 0.2

    def test_latency_bound_small_kernel(self):
        """Too few resident warps to hide the DRAM round trip: raw
        latency dominates.  (An *uncoalesced* kernel instead hits the
        bandwidth bound through transaction waste — also correct.)"""
        c = chars(
            threads=4096,
            coalesced_fraction=1.0,
            mem_insts_per_thread=20.0,
            comp_insts_per_thread=2.0,
            registers_per_thread=30,  # 1 block/SM -> N = 8 warps
        )
        assert classify_kernel(c, quadro_fx_5600()) == "latency-limited"

    def test_uncoalesced_kernel_is_bandwidth_limited_via_waste(self):
        c = chars(
            threads=4096,
            coalesced_fraction=0.0,
            mem_insts_per_thread=20.0,
            comp_insts_per_thread=2.0,
        )
        assert classify_kernel(c, quadro_fx_5600()) == "bandwidth-limited"

    def test_classification_labels(self):
        assert classify_kernel(chars(), quadro_fx_5600()) == (
            "bandwidth-limited"
        )
        compute = chars(
            comp_insts_per_thread=5000.0, mem_insts_per_thread=0.5
        )
        assert classify_kernel(compute, quadro_fx_5600()) == "issue-limited"

    def test_dominant_parameter(self):
        dom = dominant_parameter(chars(), quadro_fx_5600())
        assert dom.parameter == "mem_bandwidth"

    def test_step_validation(self):
        with pytest.raises(ValueError):
            kernel_sensitivities(chars(), quadro_fx_5600(), relative_step=0)

    def test_elasticities_are_signed_sensibly(self):
        """More bandwidth/clock -> faster; more latency -> slower."""
        sens = {
            s.parameter: s.elasticity
            for s in kernel_sensitivities(
                chars(coalesced_fraction=0.3), quadro_fx_5600()
            )
        }
        assert sens["mem_bandwidth"] <= 0.01
        assert sens["clock_ghz"] <= 0.01
        assert sens["mem_latency_cycles"] >= -0.01
