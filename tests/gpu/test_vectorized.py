"""Tests for the vectorized MWP/CWP batch scorer and its lower bound."""

import math

import numpy as np
import pytest

from repro.gpu.arch import gtx_280, quadro_fx_5600, tesla_c1060
from repro.gpu.characteristics import KernelCharacteristics
from repro.gpu.model import GpuPerformanceModel
from repro.gpu.vectorized import lower_bound_seconds, score_batch

ARCHES = [quadro_fx_5600, tesla_c1060, gtx_280]


def chars_grid():
    """A batch spanning regimes, sync/no-sync, and illegal rows."""
    out = []
    for block in (32, 64, 256, 512, 1024):
        for mem, comp in ((40.0, 10.0), (2.0, 400.0), (6.0, 6.0)):
            for coal in (1.0, 0.5, 0.0):
                out.append(
                    KernelCharacteristics(
                        name=f"k_b{block}_m{mem}_c{coal}",
                        threads=1 << 18,
                        block_size=block,
                        comp_insts_per_thread=comp,
                        mem_insts_per_thread=mem,
                        coalesced_fraction=coal,
                        registers_per_thread=32,
                        shared_mem_per_block=2048 if block == 256 else 0,
                        syncs_per_thread=4.0 if block == 64 else 0.0,
                    )
                )
    # Compute-only kernel (mem_insts at the synthesizer's epsilon floor).
    out.append(
        KernelCharacteristics(
            name="compute_only", threads=4096, block_size=128,
            comp_insts_per_thread=100.0, mem_insts_per_thread=1e-9,
        )
    )
    # Register-overflow and smem-overflow rows (illegal everywhere).
    out.append(
        KernelCharacteristics(
            name="reg_hog", threads=4096, block_size=512,
            comp_insts_per_thread=10.0, mem_insts_per_thread=10.0,
            registers_per_thread=124,
        )
    )
    out.append(
        KernelCharacteristics(
            name="smem_hog", threads=4096, block_size=128,
            comp_insts_per_thread=10.0, mem_insts_per_thread=10.0,
            shared_mem_per_block=1 << 20,
        )
    )
    return out


@pytest.mark.parametrize("arch_fn", ARCHES)
class TestScoreBatchEquivalence:
    def test_rowwise_bitwise_equal_to_scalar(self, arch_fn):
        model = GpuPerformanceModel(arch_fn())
        batch = chars_grid()
        scored = score_batch(model, batch)
        assert len(scored) == len(batch)
        for chars, (kind, payload) in zip(batch, scored):
            try:
                ref = model.breakdown(chars)
            except ValueError as exc:
                assert kind == "illegal"
                assert payload == str(exc)
                continue
            assert kind == "candidate"
            # Dataclass equality covers every field, occupancy included;
            # seconds must match bit for bit, not approximately.
            assert payload == ref
            assert payload.seconds == ref.seconds

    def test_lower_bound_below_true_time(self, arch_fn):
        model = GpuPerformanceModel(arch_fn())
        batch = chars_grid()
        bounds = lower_bound_seconds(model, batch)
        for chars, bound in zip(batch, bounds):
            try:
                ref = model.breakdown(chars)
            except ValueError:
                assert math.isnan(bound)
                continue
            assert bound <= ref.seconds


class TestPruning:
    def test_pruned_rows_cannot_contain_argmin(self):
        model = GpuPerformanceModel(quadro_fx_5600())
        batch = chars_grid()
        plain = score_batch(model, batch)
        pruned = score_batch(model, batch, prune=True)
        best_ref = min(
            (p.seconds, i)
            for i, (kind, p) in enumerate(plain)
            if kind == "candidate"
        )
        survivors = {
            i: p for i, (kind, p) in enumerate(pruned) if kind == "candidate"
        }
        # First-minimum argmin survives with a bitwise-equal time.
        assert best_ref[1] in survivors
        assert survivors[best_ref[1]].seconds == best_ref[0]
        # Survivors are bitwise-equal to the plain scoring.
        for i, payload in survivors.items():
            assert payload == plain[i][1]
        # Illegal rows keep their reasons; pruned rows explain the bound.
        for (k_plain, p_plain), (k_pruned, p_pruned) in zip(plain, pruned):
            if k_plain == "illegal":
                assert (k_pruned, p_pruned) == (k_plain, p_plain)
            elif k_pruned == "pruned":
                assert "lower bound" in p_pruned

    def test_single_legal_row_never_pruned(self):
        model = GpuPerformanceModel(quadro_fx_5600())
        batch = [chars_grid()[0]]
        scored = score_batch(model, batch, prune=True)
        assert scored[0][0] == "candidate"


class TestEdgeCases:
    def test_empty_batch(self):
        model = GpuPerformanceModel(quadro_fx_5600())
        assert score_batch(model, []) == []
        assert lower_bound_seconds(model, []).shape == (0,)

    def test_all_illegal_batch(self):
        model = GpuPerformanceModel(quadro_fx_5600())
        batch = [
            KernelCharacteristics(
                name="huge", threads=4096, block_size=1024,
                comp_insts_per_thread=1.0, mem_insts_per_thread=1.0,
            )
        ]
        scored = score_batch(model, batch, prune=True)
        assert scored[0][0] == "illegal"
        assert "block size 1024" in scored[0][1]
        assert np.isnan(lower_bound_seconds(model, batch)).all()
