"""Tests for the vectorized MWP/CWP batch scorer and its lower bound."""

import dataclasses
import math

import numpy as np
import pytest

from repro.gpu.arch import gtx_280, quadro_fx_5600, tesla_c1060
from repro.gpu.characteristics import KernelCharacteristics
from repro.gpu.model import GpuPerformanceModel
from repro.gpu.vectorized import (
    ScoreArena,
    _Batch,
    bound_min_grid,
    columns_from_chars,
    fused_argmin,
    fused_seconds,
    lower_bound_seconds,
    score_batch,
)

ARCHES = [quadro_fx_5600, tesla_c1060, gtx_280]


def chars_grid():
    """A batch spanning regimes, sync/no-sync, and illegal rows."""
    out = []
    for block in (32, 64, 256, 512, 1024):
        for mem, comp in ((40.0, 10.0), (2.0, 400.0), (6.0, 6.0)):
            for coal in (1.0, 0.5, 0.0):
                out.append(
                    KernelCharacteristics(
                        name=f"k_b{block}_m{mem}_c{coal}",
                        threads=1 << 18,
                        block_size=block,
                        comp_insts_per_thread=comp,
                        mem_insts_per_thread=mem,
                        coalesced_fraction=coal,
                        registers_per_thread=32,
                        shared_mem_per_block=2048 if block == 256 else 0,
                        syncs_per_thread=4.0 if block == 64 else 0.0,
                    )
                )
    # Compute-only kernel (mem_insts at the synthesizer's epsilon floor).
    out.append(
        KernelCharacteristics(
            name="compute_only", threads=4096, block_size=128,
            comp_insts_per_thread=100.0, mem_insts_per_thread=1e-9,
        )
    )
    # Register-overflow and smem-overflow rows (illegal everywhere).
    out.append(
        KernelCharacteristics(
            name="reg_hog", threads=4096, block_size=512,
            comp_insts_per_thread=10.0, mem_insts_per_thread=10.0,
            registers_per_thread=124,
        )
    )
    out.append(
        KernelCharacteristics(
            name="smem_hog", threads=4096, block_size=128,
            comp_insts_per_thread=10.0, mem_insts_per_thread=10.0,
            shared_mem_per_block=1 << 20,
        )
    )
    return out


@pytest.mark.parametrize("arch_fn", ARCHES)
class TestScoreBatchEquivalence:
    def test_rowwise_bitwise_equal_to_scalar(self, arch_fn):
        model = GpuPerformanceModel(arch_fn())
        batch = chars_grid()
        scored = score_batch(model, batch)
        assert len(scored) == len(batch)
        for chars, (kind, payload) in zip(batch, scored):
            try:
                ref = model.breakdown(chars)
            except ValueError as exc:
                assert kind == "illegal"
                assert payload == str(exc)
                continue
            assert kind == "candidate"
            # Dataclass equality covers every field, occupancy included;
            # seconds must match bit for bit, not approximately.
            assert payload == ref
            assert payload.seconds == ref.seconds

    def test_lower_bound_below_true_time(self, arch_fn):
        model = GpuPerformanceModel(arch_fn())
        batch = chars_grid()
        bounds = lower_bound_seconds(model, batch)
        for chars, bound in zip(batch, bounds):
            try:
                ref = model.breakdown(chars)
            except ValueError:
                assert math.isnan(bound)
                continue
            assert bound <= ref.seconds


class TestPruning:
    def test_pruned_rows_cannot_contain_argmin(self):
        model = GpuPerformanceModel(quadro_fx_5600())
        batch = chars_grid()
        plain = score_batch(model, batch)
        pruned = score_batch(model, batch, prune=True)
        best_ref = min(
            (p.seconds, i)
            for i, (kind, p) in enumerate(plain)
            if kind == "candidate"
        )
        survivors = {
            i: p for i, (kind, p) in enumerate(pruned) if kind == "candidate"
        }
        # First-minimum argmin survives with a bitwise-equal time.
        assert best_ref[1] in survivors
        assert survivors[best_ref[1]].seconds == best_ref[0]
        # Survivors are bitwise-equal to the plain scoring.
        for i, payload in survivors.items():
            assert payload == plain[i][1]
        # Illegal rows keep their reasons; pruned rows explain the bound.
        for (k_plain, p_plain), (k_pruned, p_pruned) in zip(plain, pruned):
            if k_plain == "illegal":
                assert (k_pruned, p_pruned) == (k_plain, p_plain)
            elif k_pruned == "pruned":
                assert "lower bound" in p_pruned

    def test_single_legal_row_never_pruned(self):
        model = GpuPerformanceModel(quadro_fx_5600())
        batch = [chars_grid()[0]]
        scored = score_batch(model, batch, prune=True)
        assert scored[0][0] == "candidate"


class TestEdgeCases:
    def test_empty_batch(self):
        model = GpuPerformanceModel(quadro_fx_5600())
        assert score_batch(model, []) == []
        assert lower_bound_seconds(model, []).shape == (0,)

    def test_all_illegal_batch(self):
        model = GpuPerformanceModel(quadro_fx_5600())
        batch = [
            KernelCharacteristics(
                name="huge", threads=4096, block_size=1024,
                comp_insts_per_thread=1.0, mem_insts_per_thread=1.0,
            )
        ]
        scored = score_batch(model, batch, prune=True)
        assert scored[0][0] == "illegal"
        assert "block size 1024" in scored[0][1]
        assert np.isnan(lower_bound_seconds(model, batch)).all()


class TestErrorMessages:
    """`_Batch.error_message` must reproduce the scalar raise texts."""

    @pytest.mark.parametrize("arch_fn", ARCHES)
    def test_matches_scalar_text_for_every_illegal_row(self, arch_fn):
        model = GpuPerformanceModel(arch_fn())
        chars_list = chars_grid()
        batch = _Batch(model, chars_list)
        illegal_seen = 0
        for i, chars in enumerate(chars_list):
            try:
                model.breakdown(chars)
            except ValueError as exc:
                illegal_seen += 1
                assert batch.error_message(i) == str(exc)
        assert illegal_seen > 0  # the grid must actually exercise this

    def test_block_error_wins_over_registers(self):
        # Violates the block limit AND the register file; the scalar
        # occupancy raises on the block size first.
        model = GpuPerformanceModel(quadro_fx_5600())
        chars = KernelCharacteristics(
            name="both", threads=4096, block_size=1024,
            comp_insts_per_thread=1.0, mem_insts_per_thread=1.0,
            registers_per_thread=124,
        )
        batch = _Batch(model, [chars])
        message = batch.error_message(0)
        assert message.startswith("block size 1024")
        with pytest.raises(ValueError, match="block size 1024"):
            model.breakdown(chars)

    def test_register_error_wins_over_shared_memory(self):
        model = GpuPerformanceModel(quadro_fx_5600())
        chars = KernelCharacteristics(
            name="both", threads=4096, block_size=512,
            comp_insts_per_thread=1.0, mem_insts_per_thread=1.0,
            registers_per_thread=124, shared_mem_per_block=1 << 20,
        )
        batch = _Batch(model, [chars])
        assert "registers per block" in batch.error_message(0)
        with pytest.raises(ValueError, match="registers per block"):
            model.breakdown(chars)

    def test_cannot_fit_reports_the_limiter(self):
        # No stock arch can reach the fit error (each limit hitting zero
        # implies a dedicated earlier error), so shrink the warp budget.
        arch = dataclasses.replace(quadro_fx_5600(), max_warps_per_sm=2)
        model = GpuPerformanceModel(arch)
        chars = KernelCharacteristics(
            name="wide", threads=4096, block_size=128,
            comp_insts_per_thread=1.0, mem_insts_per_thread=1.0,
        )
        batch = _Batch(model, [chars])
        message = batch.error_message(0)
        assert message == (
            "kernel 'wide' cannot fit one block per SM (limited by warps)"
        )
        with pytest.raises(ValueError) as exc:
            model.breakdown(chars)
        assert message == str(exc.value)


class TestFusedScoring:
    """The single-pass arena scorer vs the staged batch scorer."""

    @pytest.mark.parametrize("arch_fn", ARCHES)
    def test_rowwise_equal_to_score_batch(self, arch_fn):
        model = GpuPerformanceModel(arch_fn())
        batch = chars_grid()
        arena = ScoreArena()
        seconds, legal = fused_seconds(
            model, columns_from_chars(batch), arena
        )
        scored = score_batch(model, batch)
        assert legal == sum(1 for kind, _ in scored if kind == "candidate")
        for row, (kind, payload) in zip(seconds, scored):
            if kind == "candidate":
                assert row == payload.seconds  # bitwise
            else:
                assert row == float("inf")

    def test_argmin_first_minimum(self):
        model = GpuPerformanceModel(quadro_fx_5600())
        batch = chars_grid()
        index, seconds, legal = fused_argmin(
            model, columns_from_chars(batch), ScoreArena()
        )
        scored = score_batch(model, batch)
        expected = min(
            (p.seconds, i)
            for i, (kind, p) in enumerate(scored)
            if kind == "candidate"
        )
        assert (seconds, index) == expected
        assert legal > 0

    def test_empty_columns(self):
        model = GpuPerformanceModel(quadro_fx_5600())
        assert fused_argmin(
            model, columns_from_chars([]), ScoreArena()
        ) == (-1, float("inf"), 0)

    def test_single_candidate(self):
        model = GpuPerformanceModel(quadro_fx_5600())
        batch = [chars_grid()[0]]
        index, seconds, legal = fused_argmin(
            model, columns_from_chars(batch), ScoreArena()
        )
        assert (index, legal) == (0, 1)
        assert seconds == model.breakdown(batch[0]).seconds

    def test_all_illegal_columns(self):
        model = GpuPerformanceModel(quadro_fx_5600())
        batch = [
            KernelCharacteristics(
                name="huge", threads=4096, block_size=1024,
                comp_insts_per_thread=1.0, mem_insts_per_thread=1.0,
            )
        ]
        assert fused_argmin(
            model, columns_from_chars(batch), ScoreArena()
        ) == (-1, float("inf"), 0)

    def test_arena_reuse_is_stable(self):
        # Same arena, different batch sizes: buffers grow once and the
        # results of a repeated pass stay bitwise identical.
        model = GpuPerformanceModel(quadro_fx_5600())
        arena = ScoreArena()
        big = columns_from_chars(chars_grid())
        small = columns_from_chars(chars_grid()[:5])
        first = fused_seconds(model, big, arena)[0].copy()
        fused_seconds(model, small, arena)
        grown = arena.nbytes()
        second = fused_seconds(model, big, arena)[0]
        assert np.array_equal(first, second)
        assert arena.nbytes() == grown  # steady state: no new buffers

    def test_bound_min_grid_under_true_minimum(self):
        model = GpuPerformanceModel(quadro_fx_5600())
        batch = chars_grid()
        columns = columns_from_chars(batch)
        half = len(batch) // 2
        segments = [(0, half), (half, len(batch)), (0, len(batch))]
        floors = bound_min_grid(model, columns, segments)
        scored = score_batch(model, batch)
        for (lo, hi), floor in zip(segments, floors):
            truths = [
                p.seconds
                for kind, p in scored[lo:hi]
                if kind == "candidate"
            ]
            assert floor <= min(truths)

    def test_bound_min_grid_illegal_segment_is_inf(self):
        model = GpuPerformanceModel(quadro_fx_5600())
        batch = [
            KernelCharacteristics(
                name="huge", threads=4096, block_size=1024,
                comp_insts_per_thread=1.0, mem_insts_per_thread=1.0,
            ),
            chars_grid()[0],
        ]
        floors = bound_min_grid(
            model, columns_from_chars(batch), [(0, 1), (1, 2), (2, 2)]
        )
        assert floors[0] == float("inf")
        assert math.isfinite(floors[1])
        assert floors[2] == float("inf")  # empty segment
