"""Monotonicity properties of the MWP/CWP model (property-based).

The published Hong & Kim model is *piecewise*: it selects one of three
closed forms by comparing MWP and CWP, and the forms do not meet
continuously at the boundaries, so a better machine parameter can push a
kernel across a regime boundary and move the estimate the "wrong" way —
a known artifact of the published model that we reproduce faithfully
rather than smooth away.  Two further non-monotonicities are *inside*
the formulas, not at their seams:

- the "balanced" regime (MWP == CWP == N, a knife-edge case) carries a
  ``comp_cycles / mem_insts`` correction term that *decreases* as memory
  work grows;
- peak bandwidth is shared across active SMs, so adding SMs can slow a
  bandwidth-saturated kernel (contention outweighs the extra hardware);
- the memory-bound formula trades ``mem_cycles * N / MWP`` (shrinks as
  MWP grows) against the overlap term ``mem_per_inst_comp * (MWP - 1)``
  (grows), so a bandwidth-driven MWP increase can nudge a compute-heavy
  memory-bound kernel slightly *up* without leaving the regime.

The properties below therefore assert strict monotonicity exactly where
the model is actually monotone — same non-balanced regime, and for SMs
only when the grid is too small for contention to apply — and pin each
genuine non-monotonicity with a concrete example so a future "fix" is a
conscious decision.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.arch import quadro_fx_5600
from repro.gpu.characteristics import KernelCharacteristics
from repro.gpu.model import GpuPerformanceModel


def build_chars(threads, comp, mem, coal, block):
    return KernelCharacteristics(
        name="k",
        threads=threads,
        block_size=block,
        comp_insts_per_thread=comp,
        mem_insts_per_thread=mem,
        coalesced_fraction=coal,
        registers_per_thread=10,
    )


characteristics = st.builds(
    build_chars,
    st.integers(256, 4_000_000),
    st.floats(0.5, 500.0),
    st.floats(0.5, 64.0),
    st.floats(0.0, 1.0),
    st.sampled_from([64, 128, 256, 512]),
)

#: Every grid here fits on the FX 5600's 16 SMs in one wave (<= 16
#: blocks), where adding SMs cannot create bandwidth contention.
small_grid_characteristics = st.builds(
    build_chars,
    st.integers(64, 1024),
    st.floats(0.5, 500.0),
    st.floats(0.5, 64.0),
    st.floats(0.0, 1.0),
    st.just(64),
)


def breakdown_with(chars, **arch_overrides):
    arch = dataclasses.replace(quadro_fx_5600(), **arch_overrides)
    return GpuPerformanceModel(arch, launch_overhead=0.0).breakdown(chars)


def time_with(chars, **arch_overrides) -> float:
    return breakdown_with(chars, **arch_overrides).seconds


#: Strict tolerance for same-regime comparisons (float noise only).
EPS = 1 + 1e-9


def same_plain_regime(a, b) -> bool:
    """Both in the same regime, and not the balanced knife-edge."""
    return a.regime == b.regime and a.regime != "balanced"


def assert_not_slower(chars, **arch_overrides):
    """A beneficial machine change must not hurt within a regime.

    The memory-bound formula is only guaranteed monotone while MWP
    holds still: its two terms pull opposite ways as MWP moves (see the
    module docstring and the pinned overlap-term example), so those
    comparisons are skipped rather than asserted.
    """
    base = breakdown_with(chars)
    better = breakdown_with(chars, **arch_overrides)
    if not same_plain_regime(base, better):
        return
    if base.regime == "memory-bound" and better.mwp != base.mwp:
        return
    assert better.seconds <= base.seconds * EPS


class TestSameRegimeMonotonicity:
    @given(characteristics)
    @settings(max_examples=80, deadline=None)
    def test_more_bandwidth_not_slower(self, chars):
        assert_not_slower(
            chars, mem_bandwidth=quadro_fx_5600().mem_bandwidth * 2
        )

    @given(characteristics)
    @settings(max_examples=80, deadline=None)
    def test_higher_clock_not_slower(self, chars):
        assert_not_slower(chars, clock_ghz=quadro_fx_5600().clock_ghz * 2)

    @given(characteristics)
    @settings(max_examples=80, deadline=None)
    def test_lower_latency_not_slower(self, chars):
        assert_not_slower(
            chars,
            mem_latency_cycles=quadro_fx_5600().mem_latency_cycles / 2,
        )

    @given(characteristics, st.floats(1.1, 4.0))
    @settings(max_examples=80, deadline=None)
    def test_more_memory_work_not_faster(self, chars, factor):
        heavier = dataclasses.replace(
            chars, mem_insts_per_thread=chars.mem_insts_per_thread * factor
        )
        base = breakdown_with(chars)
        heavy = breakdown_with(heavier)
        if same_plain_regime(base, heavy):
            assert heavy.seconds * EPS >= base.seconds

    @given(characteristics, st.floats(1.1, 4.0))
    @settings(max_examples=80, deadline=None)
    def test_more_compute_work_never_faster(self, chars, factor):
        """Compute grows every regime's formula: strictly monotone even
        across boundaries, so no regime guard is needed."""
        heavier = dataclasses.replace(
            chars,
            comp_insts_per_thread=chars.comp_insts_per_thread * factor,
        )
        assert time_with(heavier) >= time_with(chars) / EPS

    @given(small_grid_characteristics)
    @settings(max_examples=80, deadline=None)
    def test_more_sms_irrelevant_for_small_grids(self, chars):
        """A grid that already fits in one wave gains nothing — and
        loses nothing — from extra SMs: only active SMs share bandwidth
        and only resident blocks repeat."""
        assert time_with(chars, num_sms=32) == time_with(chars)


class TestDocumentedNonMonotonicities:
    def test_regime_boundary_jump_exists(self):
        """The published model's case discontinuity, pinned.

        This compute-leaning kernel sits near the CWP == MWP boundary;
        doubling bandwidth raises MWP, flips it from the memory-bound to
        the compute-bound formula, and the estimate *increases* — the
        exact behavior hypothesis first surfaced.  If a future change
        smooths the cases, this test should be updated deliberately.
        """
        chars = build_chars(1025, 167.0, 3.0, 0.5, 64)
        base = breakdown_with(chars)
        doubled = breakdown_with(
            chars, mem_bandwidth=quadro_fx_5600().mem_bandwidth * 2
        )
        assert base.regime != doubled.regime  # the boundary was crossed
        assert doubled.seconds > base.seconds  # the non-monotone jump
        assert doubled.seconds < base.seconds * 2  # ...but not wild

    def test_sm_bandwidth_contention_exists(self):
        """More SMs can hurt a bandwidth-saturated kernel.

        MWP's bandwidth cap divides peak bandwidth by the *active* SM
        count; this uncoalesced kernel saturates it, so 32 SMs halve the
        per-SM budget while the repetition count (already small) cannot
        shrink proportionally.  Hypothesis found this one too.
        """
        chars = build_chars(16385, 1.0, 1.0, 0.0, 64)
        base = breakdown_with(chars)
        more_sms = breakdown_with(chars, num_sms=32)
        assert base.regime == more_sms.regime == "memory-bound"
        assert more_sms.seconds > base.seconds

    def test_memory_bound_overlap_term_bump_exists(self):
        """More bandwidth can (slightly) hurt inside memory-bound.

        Doubling bandwidth lifts the bandwidth cap on MWP; the
        ``mem_cycles * N / MWP`` term shrinks, but for this
        compute-heavy kernel the overlap term
        ``mem_per_inst_comp * (MWP - 1)`` grows faster.  The bump is a
        fraction of a percent and never leaves the regime.  Hypothesis
        found this one too.
        """
        chars = build_chars(1025, 39.0, 0.5, 0.0, 64)
        base = breakdown_with(chars)
        doubled = breakdown_with(
            chars, mem_bandwidth=quadro_fx_5600().mem_bandwidth * 2
        )
        assert base.regime == doubled.regime == "memory-bound"
        assert doubled.mwp > base.mwp
        assert doubled.seconds > base.seconds  # the wrong-way bump
        assert doubled.seconds < base.seconds * 1.01  # ...barely

    def test_balanced_regime_memory_work_dip_exists(self):
        """In the balanced case, more memory work can (slightly) help.

        The balanced formula's correction term ``comp_cycles / mem_insts
        * (MWP - 1)`` shrinks as memory instructions grow; right on the
        knife-edge the shrinkage can outweigh the added memory cycles.
        The dip is tiny — a fraction of a percent — but real.
        """
        chars = build_chars(256, 69.0, 0.5, 0.0, 64)
        heavier = dataclasses.replace(chars, mem_insts_per_thread=0.75)
        base = breakdown_with(chars)
        heavy = breakdown_with(heavier)
        assert base.regime == heavy.regime == "balanced"
        assert heavy.seconds < base.seconds  # the dip
        assert heavy.seconds > base.seconds * 0.99  # ...barely
