"""Monotonicity properties of the MWP/CWP model (property-based).

The published Hong & Kim model is *piecewise*: it selects one of three
closed forms by comparing MWP and CWP, and the forms do not meet
continuously at the boundaries.  Consequently a better machine parameter
can push a kernel across a regime boundary and the estimate can move the
"wrong" way by a bounded amount — a known artifact of the published
model that we reproduce faithfully rather than smooth away.

These properties therefore assert monotonicity *up to the documented
boundary-jump bound* (a factor ~1.5), plus one test that pins the
discontinuity's existence so a future "fix" is a conscious decision.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.arch import quadro_fx_5600
from repro.gpu.characteristics import KernelCharacteristics
from repro.gpu.model import GpuPerformanceModel

characteristics = st.builds(
    lambda threads, comp, mem, coal, block: KernelCharacteristics(
        name="k",
        threads=threads,
        block_size=block,
        comp_insts_per_thread=comp,
        mem_insts_per_thread=mem,
        coalesced_fraction=coal,
        registers_per_thread=10,
    ),
    st.integers(256, 4_000_000),
    st.floats(0.5, 500.0),
    st.floats(0.5, 64.0),
    st.floats(0.0, 1.0),
    st.sampled_from([64, 128, 256, 512]),
)


def time_with(chars, **arch_overrides) -> float:
    arch = dataclasses.replace(quadro_fx_5600(), **arch_overrides)
    return GpuPerformanceModel(arch, launch_overhead=0.0).kernel_time(chars)


#: Strict tolerance used where no regime boundary can intervene.
EPS = 1 + 1e-9
#: The documented bound on case-boundary jumps of the piecewise model.
BOUNDARY_JUMP = 1.5


class TestMonotonicityUpToBoundaryJumps:
    @given(characteristics)
    @settings(max_examples=80, deadline=None)
    def test_more_bandwidth_bounded(self, chars):
        base = time_with(chars)
        faster = time_with(
            chars, mem_bandwidth=quadro_fx_5600().mem_bandwidth * 2
        )
        assert faster <= base * BOUNDARY_JUMP

    @given(characteristics)
    @settings(max_examples=80, deadline=None)
    def test_higher_clock_never_slower(self, chars):
        """Clock scales every cycle-domain term except the bandwidth
        bound; scaling it up can also cross regimes."""
        base = time_with(chars)
        faster = time_with(chars, clock_ghz=quadro_fx_5600().clock_ghz * 2)
        assert faster <= base * BOUNDARY_JUMP

    @given(characteristics)
    @settings(max_examples=80, deadline=None)
    def test_lower_latency_bounded(self, chars):
        base = time_with(chars)
        faster = time_with(
            chars,
            mem_latency_cycles=quadro_fx_5600().mem_latency_cycles / 2,
        )
        assert faster <= base * BOUNDARY_JUMP

    @given(characteristics, st.floats(1.1, 4.0))
    @settings(max_examples=80, deadline=None)
    def test_more_memory_work_bounded(self, chars, factor):
        heavier = dataclasses.replace(
            chars, mem_insts_per_thread=chars.mem_insts_per_thread * factor
        )
        assert time_with(heavier) >= time_with(chars) / BOUNDARY_JUMP

    @given(characteristics, st.floats(1.1, 4.0))
    @settings(max_examples=80, deadline=None)
    def test_more_compute_work_never_faster(self, chars, factor):
        """Compute grows every regime's formula: strictly monotone."""
        heavier = dataclasses.replace(
            chars,
            comp_insts_per_thread=chars.comp_insts_per_thread * factor,
        )
        assert time_with(heavier) >= time_with(chars) / EPS

    @given(characteristics)
    @settings(max_examples=80, deadline=None)
    def test_more_sms_bounded(self, chars):
        base = time_with(chars)
        bigger = time_with(chars, num_sms=32)
        assert bigger <= base * BOUNDARY_JUMP


class TestDocumentedDiscontinuity:
    def test_regime_boundary_jump_exists(self):
        """The published model's case discontinuity, pinned.

        This compute-leaning kernel sits near the CWP == MWP boundary;
        doubling bandwidth raises MWP, flips it from the memory-bound to
        the compute-bound formula, and the estimate *increases* — the
        exact behavior hypothesis first surfaced.  If a future change
        smooths the cases, this test should be updated deliberately.
        """
        chars = KernelCharacteristics(
            name="boundary",
            threads=1025,
            block_size=64,
            comp_insts_per_thread=167.0,
            mem_insts_per_thread=3.0,
            coalesced_fraction=0.5,
            registers_per_thread=10,
        )
        base = time_with(chars)
        doubled = time_with(
            chars, mem_bandwidth=quadro_fx_5600().mem_bandwidth * 2
        )
        regime_before = GpuPerformanceModel(
            quadro_fx_5600(), launch_overhead=0.0
        ).breakdown(chars).regime
        regime_after = GpuPerformanceModel(
            dataclasses.replace(
                quadro_fx_5600(),
                mem_bandwidth=quadro_fx_5600().mem_bandwidth * 2,
            ),
            launch_overhead=0.0,
        ).breakdown(chars).regime
        assert regime_before != regime_after  # the boundary was crossed
        assert doubled > base  # the non-monotone jump
        assert doubled < base * BOUNDARY_JUMP  # ...but bounded
