"""Tests for GPU architecture presets and the occupancy calculator."""

import dataclasses

import pytest

from repro.gpu.arch import gtx_280, quadro_fx_5600
from repro.gpu.characteristics import KernelCharacteristics
from repro.gpu.occupancy import occupancy


def chars(**kwargs) -> KernelCharacteristics:
    defaults = dict(
        name="k",
        threads=1_000_000,
        block_size=256,
        comp_insts_per_thread=20.0,
        mem_insts_per_thread=5.0,
    )
    defaults.update(kwargs)
    return KernelCharacteristics(**defaults)


class TestArchPresets:
    def test_fx5600_is_the_paper_gpu(self):
        arch = quadro_fx_5600()
        assert arch.num_sms == 16
        assert arch.max_threads_per_sm == 768
        assert arch.warp_size == 32
        assert arch.strict_coalescing  # compute 1.0
        assert arch.total_threads == 16 * 768

    def test_gtx280_relaxed_coalescing(self):
        assert not gtx_280().strict_coalescing

    def test_rejects_nonpositive_fields(self):
        with pytest.raises(ValueError):
            dataclasses.replace(quadro_fx_5600(), num_sms=0)


class TestCharacteristics:
    def test_derived_quantities(self):
        c = chars(threads=1000, block_size=128, mem_insts_per_thread=4,
                  bytes_per_access=8)
        assert c.num_blocks == 8  # ceil(1000/128)
        assert c.total_mem_insts == 4000
        assert c.total_bytes == 32000

    def test_rejects_no_work(self):
        with pytest.raises(ValueError):
            chars(comp_insts_per_thread=0, mem_insts_per_thread=0)

    def test_rejects_bad_coalescing(self):
        with pytest.raises(ValueError):
            chars(coalesced_fraction=1.5)

    def test_with_block_size(self):
        assert chars().with_block_size(64).block_size == 64


class TestOccupancy:
    def test_thread_limited(self):
        # 768 threads/SM, block 256, plenty of everything else -> 3 blocks.
        occ = occupancy(chars(block_size=256, registers_per_thread=8),
                        quadro_fx_5600())
        assert occ.blocks_per_sm == 3
        assert occ.warps_per_block == 8
        assert occ.active_warps == 24
        assert occ.limiter in ("threads", "warps")

    def test_register_limited(self):
        occ = occupancy(
            chars(block_size=256, registers_per_thread=30),
            quadro_fx_5600(),
        )
        # 256*30 = 7680 regs/block; 8192 regs/SM -> 1 block.
        assert occ.blocks_per_sm == 1
        assert occ.limiter == "registers"

    def test_shared_memory_limited(self):
        occ = occupancy(
            chars(block_size=64, registers_per_thread=8,
                  shared_mem_per_block=8 * 1024),
            quadro_fx_5600(),
        )
        assert occ.blocks_per_sm == 2
        assert occ.limiter == "shared_mem"

    def test_unlaunchable_block(self):
        with pytest.raises(ValueError):
            occupancy(chars(block_size=1024), quadro_fx_5600())

    def test_register_overflow(self):
        with pytest.raises(ValueError, match="registers"):
            occupancy(chars(block_size=512, registers_per_thread=40),
                      quadro_fx_5600())

    def test_smem_overflow(self):
        with pytest.raises(ValueError, match="shared memory"):
            occupancy(chars(shared_mem_per_block=32 * 1024),
                      quadro_fx_5600())

    def test_small_grid_caps_blocks(self):
        # 4 blocks over 16 SMs: at most 1 block per SM can be busy.
        occ = occupancy(chars(threads=1024, block_size=256,
                              registers_per_thread=8), quadro_fx_5600())
        assert occ.blocks_per_sm == 1

    def test_occupancy_fraction(self):
        occ = occupancy(chars(block_size=256, registers_per_thread=8),
                        quadro_fx_5600())
        assert occ.occupancy_fraction == pytest.approx(1.0)
