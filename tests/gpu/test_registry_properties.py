"""Property tests over the architecture registry (hypothesis).

The registry's invariants must hold for *every* entry — including ones
added later — so they are stated as properties over sampled ids and
kernel shapes rather than example tables:

* id round-trip and lookup identity,
* fingerprint stability (pure function of content),
* occupancy stays inside each architecture's published envelope,
* capability monotonicity in registration (chronological) order,
* the model produces finite, positive predictions for the whole
  workload suite on the whole fleet.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import registry as R
from repro.gpu.characteristics import KernelCharacteristics
from repro.gpu.model import GpuPerformanceModel
from repro.gpu.occupancy import occupancy
from repro.pcie.presets import pcie_gen1_bus
from repro.sweep import SweepEngine
from repro.workloads.registry import all_workloads

ARCH_IDS = st.sampled_from(R.arch_ids())


class TestRoundTrip:
    @given(arch_id=ARCH_IDS)
    def test_spec_round_trips_by_id(self, arch_id):
        spec = R.get_spec(arch_id)
        assert spec.id == arch_id
        assert R.get_spec(spec.id) is spec
        assert R.all_specs()[R.arch_ids().index(arch_id)] is spec

    @given(arch_id=ARCH_IDS)
    def test_arch_resolution_is_idempotent(self, arch_id):
        arch = R.get_arch(arch_id)
        assert R.resolve_arch(arch_id) is arch
        assert R.resolve_arch(arch) is arch
        spec = R.spec_for_arch(arch)
        assert spec is not None and spec.id == arch_id

    @given(arch_id=ARCH_IDS)
    def test_fingerprint_is_stable(self, arch_id):
        spec = R.get_spec(arch_id)
        assert spec.fingerprint() == spec.fingerprint()
        # Reassembling the architecture never moves its fingerprint.
        assert (
            spec.architecture().fingerprint()
            == R.get_arch(arch_id).fingerprint()
        )


class TestOccupancyEnvelope:
    """Occupancy on any registry architecture stays inside the envelope
    the vendor tables promise — for any launchable kernel shape."""

    @given(
        arch_id=ARCH_IDS,
        block_size=st.integers(min_value=1, max_value=512),
        threads_exp=st.integers(min_value=0, max_value=22),
        registers=st.integers(min_value=1, max_value=32),
        shared_mem=st.sampled_from([0, 1024, 4096, 16384]),
    )
    def test_bounds(self, arch_id, block_size, threads_exp, registers,
                    shared_mem):
        arch = R.get_arch(arch_id)
        chars = KernelCharacteristics(
            name="probe",
            threads=2**threads_exp,
            block_size=block_size,
            comp_insts_per_thread=8.0,
            mem_insts_per_thread=2.0,
            registers_per_thread=registers,
            shared_mem_per_block=shared_mem,
        )
        try:
            result = occupancy(chars, arch)
        except ValueError:
            return  # unlaunchable shape: rejection is the contract
        assert 1 <= result.blocks_per_sm <= arch.max_blocks_per_sm
        assert result.warps_per_block == math.ceil(
            block_size / arch.warp_size
        )
        assert 1 <= result.active_warps <= arch.max_warps_per_sm
        assert (
            result.blocks_per_sm * block_size <= arch.max_threads_per_sm
        )
        assert (
            result.blocks_per_sm * chars.registers_per_thread * block_size
            <= arch.registers_per_sm
        )
        if shared_mem:
            assert (
                result.blocks_per_sm * shared_mem
                <= arch.shared_mem_per_sm
            )
        assert 0.0 < result.occupancy_fraction <= 1.0


class TestMonotonicity:
    @pytest.mark.parametrize("name", R.MONOTONE_CAPABILITIES)
    def test_capability_never_regresses(self, name):
        values = [R.capability(spec, name) for spec in R.all_specs()]
        assert values == sorted(values), (
            f"{name} regresses across generations: {values}"
        )

    def test_shared_mem_is_deliberately_not_monotone(self):
        # Maxwell's 96 KiB exceeds Pascal GP100's 64 KiB — the guard
        # list must not claim otherwise.
        assert "shared_mem_per_sm" not in R.MONOTONE_CAPABILITIES


class TestFleetPredictions:
    """Every workload on every generation: finite, positive, decomposed."""

    @pytest.mark.parametrize(
        "workload", all_workloads(), ids=lambda w: w.name
    )
    def test_finite_positive_on_the_whole_fleet(self, workload):
        engine = SweepEngine(R.get_arch("quadro_fx_5600"), pcie_gen1_bus())
        dataset = min(workload.datasets(), key=lambda d: d.size)
        points = engine.sweep_arches(
            workload.skeleton(dataset),
            R.arch_ids(),
            hints=workload.hints(dataset),
            buses="paired",
        )
        assert len(points) == len(R.arch_ids())
        for point in points:
            projection = point.projection
            for value in (
                projection.kernel_seconds,
                projection.transfer_seconds,
                point.seconds,
            ):
                assert math.isfinite(value) and value > 0.0
            assert point.seconds == pytest.approx(
                projection.kernel_seconds + projection.transfer_seconds
            )

    @settings(deadline=None, max_examples=20)
    @given(arch_id=ARCH_IDS)
    def test_model_construction_is_total(self, arch_id):
        model = GpuPerformanceModel(R.get_arch(arch_id))
        assert model.arch is R.get_arch(arch_id)
