"""The architecture registry: ids, tables, pairing, and error surface.

The registry is the single source of truth for named GPU generations;
everything downstream (sweep axis, daemon payloads, CLI) resolves
through it.  These tests pin its contract: stable chronological ids,
calibrated entries identical to the original hand-built constructors,
paired PCIe defaults, and one structured error type for unknown ids.
"""

import dataclasses

import pytest

from repro.gpu import registry as R
from repro.gpu.arch import GPUArchitecture, gtx_280, quadro_fx_5600, tesla_c1060
from repro.pcie.presets import bus_for_generation

CALIBRATED = {
    "quadro_fx_5600": quadro_fx_5600,
    "tesla_c1060": tesla_c1060,
    "gtx_280": gtx_280,
}


class TestRegistryContents:
    def test_at_least_six_generations(self):
        assert len(R.arch_ids()) >= 6

    def test_ids_are_chronological(self):
        years = [spec.year for spec in R.all_specs()]
        assert years == sorted(years)

    def test_expected_fleet(self):
        assert R.arch_ids() == (
            "quadro_fx_5600",
            "tesla_c1060",
            "gtx_280",
            "fermi_gtx_480",
            "kepler_k20",
            "maxwell_gtx_980",
            "pascal_p100",
        )

    def test_specs_and_ids_agree(self):
        assert tuple(spec.id for spec in R.all_specs()) == R.arch_ids()

    def test_only_the_paper_era_boards_are_calibrated(self):
        calibrated = {s.id for s in R.all_specs() if s.calibrated}
        assert calibrated == set(CALIBRATED)


class TestCalibratedIdentity:
    """Registry assembly must be value- and fingerprint-identical to the
    original constructors, or every golden cache key would drift."""

    @pytest.mark.parametrize("arch_id", sorted(CALIBRATED))
    def test_value_identity(self, arch_id):
        assert R.get_arch(arch_id) == CALIBRATED[arch_id]()

    @pytest.mark.parametrize("arch_id", sorted(CALIBRATED))
    def test_fingerprint_identity(self, arch_id):
        assert (
            R.get_arch(arch_id).fingerprint()
            == CALIBRATED[arch_id]().fingerprint()
        )


class TestLookup:
    def test_get_arch_is_cached_identity(self):
        assert R.get_arch("kepler_k20") is R.get_arch("kepler_k20")

    def test_architecture_assembly_matches_tables(self):
        for spec in R.all_specs():
            arch = R.get_arch(spec.id)
            assert arch.name == spec.display_name
            assert arch.num_sms == spec.geometry.num_sms
            assert arch.mem_bandwidth == spec.memory.sustained_bandwidth
            assert arch.strict_coalescing == spec.memory.strict_coalescing
            assert arch.issue_cycles == spec.latencies.issue_cycles

    def test_paired_bus_generations(self):
        for spec in R.all_specs():
            assert spec.bus() == bus_for_generation(spec.pcie_gen)
            assert R.get_bus(spec.id) == spec.bus()

    def test_sustained_below_theoretical(self):
        for spec in R.all_specs():
            assert (
                spec.memory.sustained_bandwidth
                <= spec.memory.theoretical_bandwidth
            )

    def test_resolve_arch_coercions(self):
        spec = R.get_spec("pascal_p100")
        arch = R.get_arch("pascal_p100")
        assert R.resolve_arch("pascal_p100") is arch
        assert R.resolve_arch(spec) is arch
        assert R.resolve_arch(arch) is arch

    def test_spec_for_arch_round_trip(self):
        for spec in R.all_specs():
            found = R.spec_for_arch(R.get_arch(spec.id))
            assert found is not None and found.id == spec.id

    def test_spec_for_arch_unknown_machine(self):
        odd = dataclasses.replace(quadro_fx_5600(), num_sms=99)
        assert R.spec_for_arch(odd) is None


class TestUnknownArchitectureError:
    def test_get_spec_raises_with_the_fleet(self):
        with pytest.raises(R.UnknownArchitectureError) as excinfo:
            R.get_spec("volta_v100")
        exc = excinfo.value
        assert exc.arch_id == "volta_v100"
        assert exc.known == R.arch_ids()
        assert "unknown architecture" in str(exc)
        for arch_id in R.arch_ids():
            assert arch_id in exc.hint

    def test_is_a_value_error(self):
        with pytest.raises(ValueError):
            R.get_arch("nope")

    def test_hint_lists_valid_ids(self):
        exc = R.UnknownArchitectureError("x", ("a", "b"))
        assert exc.hint == "one of: a, b"


class TestRegisterGuards:
    def test_duplicate_id_rejected(self):
        spec = R.get_spec("kepler_k20")
        with pytest.raises(ValueError, match="duplicate"):
            R.register(spec)

    def test_capability_lookup_spans_tables(self):
        spec = R.get_spec("fermi_gtx_480")
        assert R.capability(spec, "year") == 2010
        assert R.capability(spec, "max_warps_per_sm") == 48
        assert R.capability(spec, "sustained_bandwidth") == 142.0e9
        assert R.capability(spec, "issue_cycles") == 2.0
        with pytest.raises(AttributeError, match="no capability"):
            R.capability(spec, "nonexistent_thing")


class TestFingerprints:
    def test_fingerprints_are_unique(self):
        prints = [spec.fingerprint() for spec in R.all_specs()]
        assert len(set(prints)) == len(prints)

    def test_fingerprint_sees_pairing_metadata(self):
        spec = R.get_spec("maxwell_gtx_980")
        moved = dataclasses.replace(spec, pcie_gen=2)
        assert moved.architecture() == spec.architecture()
        assert moved.fingerprint() != spec.fingerprint()

    def test_fingerprint_sees_table_values(self):
        spec = R.get_spec("maxwell_gtx_980")
        bumped = dataclasses.replace(
            spec,
            memory=dataclasses.replace(
                spec.memory, sustained_bandwidth=1e12
            ),
        )
        assert bumped.fingerprint() != spec.fingerprint()
