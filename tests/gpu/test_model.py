"""Tests for the MWP/CWP analytical GPU model."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.arch import quadro_fx_5600
from repro.gpu.characteristics import KernelCharacteristics
from repro.gpu.model import GpuPerformanceModel


def chars(**kwargs) -> KernelCharacteristics:
    defaults = dict(
        name="k",
        threads=1_000_000,
        block_size=256,
        comp_insts_per_thread=10.0,
        mem_insts_per_thread=5.0,
        coalesced_fraction=1.0,
        bytes_per_access=4,
        registers_per_thread=10,
    )
    defaults.update(kwargs)
    return KernelCharacteristics(**defaults)


def model(launch: float = 0.0) -> GpuPerformanceModel:
    return GpuPerformanceModel(quadro_fx_5600(), launch_overhead=launch)


class TestBandwidthBoundRegime:
    def test_streaming_kernel_hits_bandwidth(self):
        """A big coalesced streaming kernel's time ~ consumed bytes / BW."""
        m = model()
        c = chars(threads=4_000_000, mem_insts_per_thread=8,
                  comp_insts_per_thread=4)
        bd = m.breakdown(c)
        consumed = c.threads / 32 * 8 * 128  # warps x insts x 128B
        ideal = consumed / m.arch.mem_bandwidth
        assert bd.seconds == pytest.approx(ideal, rel=0.25)
        assert bd.regime == "memory-bound"

    def test_uncoalesced_much_slower(self):
        m = model()
        fast = m.kernel_time(chars(coalesced_fraction=1.0))
        slow = m.kernel_time(chars(coalesced_fraction=0.0))
        assert slow > 4 * fast

    def test_time_scales_with_threads(self):
        m = model()
        t1 = m.kernel_time(chars(threads=1_000_000))
        t4 = m.kernel_time(chars(threads=4_000_000))
        assert t4 == pytest.approx(4 * t1, rel=0.15)


class TestComputeBoundRegime:
    def test_flop_heavy_kernel(self):
        m = model()
        bd = m.breakdown(
            chars(comp_insts_per_thread=5000.0, mem_insts_per_thread=1.0)
        )
        assert bd.regime == "compute-bound"
        # More compute -> more time.
        bd2 = m.breakdown(
            chars(comp_insts_per_thread=10000.0, mem_insts_per_thread=1.0)
        )
        assert bd2.seconds > 1.5 * bd.seconds

    def test_pure_compute_kernel(self):
        bd = model().breakdown(
            chars(comp_insts_per_thread=100.0, mem_insts_per_thread=0.0)
        )
        assert bd.regime == "compute-bound"
        assert bd.seconds > 0


class TestModelStructure:
    def test_mwp_cwp_bounded_by_warps(self):
        bd = model().breakdown(chars())
        assert 1 <= bd.mwp <= bd.active_warps
        assert 1 <= bd.cwp <= bd.active_warps

    def test_repetitions_cover_all_blocks(self):
        c = chars(threads=1_000_000, block_size=256)
        bd = model().breakdown(c)
        occ = bd.occupancy
        capacity = occ.blocks_per_sm * min(16, c.num_blocks)
        assert bd.repetitions == -(-c.num_blocks // capacity)

    def test_launch_overhead_added(self):
        with_launch = model(launch=10e-6).kernel_time(chars())
        without = model(launch=0.0).kernel_time(chars())
        assert with_launch == pytest.approx(without + 10e-6)

    def test_negative_launch_rejected(self):
        with pytest.raises(ValueError):
            GpuPerformanceModel(quadro_fx_5600(), launch_overhead=-1e-6)

    def test_sync_cost_increases_time(self):
        base = model().kernel_time(chars())
        synced = model().kernel_time(chars(syncs_per_thread=10.0))
        assert synced > base

    def test_sequence_time_sums(self):
        m = model()
        a, b = chars(name="a"), chars(name="b", mem_insts_per_thread=2.0)
        assert m.sequence_time([a, b]) == pytest.approx(
            m.kernel_time(a) + m.kernel_time(b)
        )

    @given(
        st.integers(1_000, 5_000_000),
        st.floats(1.0, 100.0),
        st.floats(0.5, 50.0),
        st.floats(0.0, 1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_always_positive_and_finite(self, threads, comp, mem, coal):
        t = model().kernel_time(
            chars(
                threads=threads,
                comp_insts_per_thread=comp,
                mem_insts_per_thread=mem,
                coalesced_fraction=coal,
            )
        )
        assert t > 0
        assert t < 100  # sanity: under 100 seconds

    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_coalescing(self, f1, f2):
        lo, hi = sorted([f1, f2])
        m = model()
        # Better coalescing never makes a kernel slower.
        assert m.kernel_time(chars(coalesced_fraction=hi)) <= m.kernel_time(
            chars(coalesced_fraction=lo)
        ) * (1 + 1e-9)


class TestAgainstPaperScale:
    def test_fx5600_streaming_kernel_milliseconds(self):
        """A 1M-thread, 7-access float kernel lands in the ~0.5-2ms range
        the paper's Table I reports for comparable stencils."""
        t = model(launch=7e-6).kernel_time(
            chars(threads=1024 * 1024, mem_insts_per_thread=7,
                  comp_insts_per_thread=30, coalesced_fraction=0.7)
        )
        assert 0.3e-3 < t < 3e-3
