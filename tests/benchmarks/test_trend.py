"""The CI benchmark-trend gate: >20% throughput drops must fail."""

import importlib.util
import json
from pathlib import Path

import pytest

_TREND_PATH = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "bench_trend.py"
)
_spec = importlib.util.spec_from_file_location("bench_trend", _TREND_PATH)
trend = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(trend)


class TestThroughputLeaves:
    def test_flattens_tracked_suffixes_only(self):
        data = {
            "stream": {
                "stream_warm_configs_per_s": 1e6,
                "configs_per_sweep": 1440,  # counter: not tracked
                "stream_warm_over_fast": 8.6,  # ratio: not tracked
            },
            "surrogate": {"p50_per_query_us": 7.0},
        }
        leaves = trend.throughput_leaves(data)
        assert leaves == {
            "stream.stream_warm_configs_per_s": 1e6,
            "surrogate.p50_per_query_us": 7.0,
        }

    def test_ignores_booleans_and_strings(self):
        data = {"x_per_s": True, "y_per_s": "fast", "z_per_s": 3}
        assert trend.throughput_leaves(data) == {"z_per_s": 3.0}


class TestCompareLeaves:
    def test_within_tolerance_passes(self):
        before = {"a_per_s": 100.0}
        after = {"a_per_s": 85.0}  # -15% < 20% threshold
        assert trend.compare_leaves(before, after) == []

    def test_large_drop_fails(self):
        before = {"a_per_s": 100.0}
        after = {"a_per_s": 70.0}  # -30%
        problems = trend.compare_leaves(before, after)
        assert len(problems) == 1
        assert "a_per_s" in problems[0]

    def test_latency_direction_is_inverted(self):
        # _per_query_us is a latency: growing is the regression.
        before = {"p50_per_query_us": 10.0}
        faster = {"p50_per_query_us": 2.0}
        slower = {"p50_per_query_us": 13.0}  # +30%
        assert trend.compare_leaves(before, faster) == []
        assert len(trend.compare_leaves(before, slower)) == 1

    def test_new_and_removed_leaves_are_skipped(self):
        before = {"old_per_s": 100.0}
        after = {"new_per_s": 1.0}
        assert trend.compare_leaves(before, after) == []

    def test_zero_baseline_is_skipped(self):
        assert (
            trend.compare_leaves({"a_per_s": 0.0}, {"a_per_s": 0.0}) == []
        )


class TestMain:
    def _write(self, directory: Path, name: str, data: dict) -> None:
        directory.mkdir(parents=True, exist_ok=True)
        (directory / name).write_text(json.dumps(data), encoding="utf-8")

    def test_missing_previous_dir_passes(self, tmp_path, capsys):
        current = tmp_path / "out"
        self._write(current, "BENCH_explorer.json", {"a_per_s": 1.0})
        code = trend.main([str(tmp_path / "absent"), str(current)])
        assert code == 0
        assert "no previous baseline" in capsys.readouterr().out

    def test_missing_previous_file_passes(self, tmp_path):
        previous, current = tmp_path / "prev", tmp_path / "out"
        previous.mkdir()
        self._write(current, "BENCH_surrogate.json", {"a_per_s": 1.0})
        assert trend.main([str(previous), str(current)]) == 0

    def test_regression_fails_with_exit_1(self, tmp_path, capsys):
        previous, current = tmp_path / "prev", tmp_path / "out"
        self._write(previous, "BENCH_explorer.json", {"a_per_s": 100.0})
        self._write(current, "BENCH_explorer.json", {"a_per_s": 50.0})
        assert trend.main([str(previous), str(current)]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_within_threshold_passes_across_files(self, tmp_path):
        previous, current = tmp_path / "prev", tmp_path / "out"
        for name in ("BENCH_explorer.json", "BENCH_surrogate.json"):
            self._write(previous, name, {"a_per_s": 100.0})
            self._write(current, name, {"a_per_s": 90.0})
        assert trend.main([str(previous), str(current)]) == 0

    def test_custom_threshold(self, tmp_path):
        previous, current = tmp_path / "prev", tmp_path / "out"
        self._write(previous, "BENCH_explorer.json", {"a_per_s": 100.0})
        self._write(current, "BENCH_explorer.json", {"a_per_s": 85.0})
        assert (
            trend.main(
                [str(previous), str(current), "--threshold", "0.1"]
            )
            == 1
        )

    def test_unreadable_baseline_is_skipped(self, tmp_path):
        previous, current = tmp_path / "prev", tmp_path / "out"
        previous.mkdir()
        (previous / "BENCH_explorer.json").write_text(
            "not json", encoding="utf-8"
        )
        self._write(current, "BENCH_explorer.json", {"a_per_s": 1.0})
        assert trend.main([str(previous), str(current)]) == 0


@pytest.mark.parametrize(
    "before,after,expect",
    [
        (100.0, 80.01, 0),  # just inside
        (100.0, 79.9, 1),  # just outside
    ],
)
def test_threshold_boundary(tmp_path, before, after, expect):
    previous, current = tmp_path / "prev", tmp_path / "out"
    previous.mkdir()
    current.mkdir()
    (previous / "BENCH_explorer.json").write_text(
        json.dumps({"a_per_s": before}), encoding="utf-8"
    )
    (current / "BENCH_explorer.json").write_text(
        json.dumps({"a_per_s": after}), encoding="utf-8"
    )
    assert trend.main([str(previous), str(current)]) == expect
