"""Property-based tests of the analyzer over randomly generated programs.

Hypothesis builds small random (but valid) program skeletons; the
invariants below must hold for every one of them — this is the closest
thing to a soundness proof the transfer analysis gets.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datausage.analyzer import DataUsageAnalyzer, analyze_transfers
from repro.datausage.transfers import Direction
from repro.skeleton import (
    AccessKind,
    AffineIndex,
    ArrayAccess,
    ArrayDecl,
    KernelSkeleton,
    Loop,
    ProgramSkeleton,
    Statement,
)

# --- Program generator -------------------------------------------------------

ARRAY_NAMES = ("a", "b", "c", "d")
N = 24  # every array is 1-D with this extent; loops stay in bounds


@st.composite
def programs(draw) -> ProgramSkeleton:
    arrays = tuple(ArrayDecl(name, (N,)) for name in ARRAY_NAMES)
    n_kernels = draw(st.integers(1, 3))
    kernels = []
    for ki in range(n_kernels):
        lower = draw(st.integers(0, 4))
        upper = draw(st.integers(lower + 4, N))
        loop = Loop("i", lower, upper, parallel=True)
        n_statements = draw(st.integers(1, 3))
        statements = []
        for si in range(n_statements):
            n_accesses = draw(st.integers(1, 3))
            accesses = []
            for _ in range(n_accesses):
                name = draw(st.sampled_from(ARRAY_NAMES))
                offset = draw(st.integers(-lower, N - upper))
                kind = draw(
                    st.sampled_from([AccessKind.LOAD, AccessKind.STORE])
                )
                accesses.append(
                    ArrayAccess(
                        name,
                        (AffineIndex.var("i", 1, offset),),
                        kind,
                    )
                )
            statements.append(Statement(tuple(accesses), flops=1.0))
        kernels.append(
            KernelSkeleton(f"k{ki}", (loop,), tuple(statements))
        )
    return ProgramSkeleton("random", arrays, tuple(kernels))


# --- Reference semantics: simulate which elements must move -------------------


def brute_force_live_in(program: ProgramSkeleton) -> dict[str, set[int]]:
    """Elements read before ever being written, per array, by simulation."""
    written: dict[str, set[int]] = {n: set() for n in ARRAY_NAMES}
    needed: dict[str, set[int]] = {n: set() for n in ARRAY_NAMES}
    for kernel in program.kernels:
        loop = kernel.loops[0]
        for stmt in kernel.statements:
            loads = [a for a in stmt.accesses if a.kind is AccessKind.LOAD]
            stores = [a for a in stmt.accesses if a.kind is AccessKind.STORE]
            for access in loads:
                for i in range(loop.lower, loop.upper):
                    el = access.indices[0].evaluate({"i": i})
                    if el not in written[access.array]:
                        needed[access.array].add(el)
            for access in stores:
                for i in range(loop.lower, loop.upper):
                    written[access.array].add(
                        access.indices[0].evaluate({"i": i})
                    )
    return needed


def brute_force_written(program: ProgramSkeleton) -> dict[str, set[int]]:
    written: dict[str, set[int]] = {n: set() for n in ARRAY_NAMES}
    for kernel in program.kernels:
        loop = kernel.loops[0]
        for stmt in kernel.statements:
            for access in stmt.accesses:
                if access.kind is AccessKind.STORE:
                    for i in range(loop.lower, loop.upper):
                        written[access.array].add(
                            access.indices[0].evaluate({"i": i})
                        )
    return written


# --- The invariants -------------------------------------------------------------


class TestAnalyzerSoundness:
    @given(programs())
    @settings(max_examples=120, deadline=None)
    def test_every_live_in_element_is_transferred(self, program):
        """SOUNDNESS: the H2D plan covers every element the GPU reads
        before producing it.  (The analyzer may conservatively transfer
        more, never less.)"""
        analyzer = DataUsageAnalyzer(program)
        analyzer.plan()
        needed = brute_force_live_in(program)
        for name, elements in needed.items():
            sections = analyzer.device_input_sections(name)
            for el in elements:
                assert sections.contains_point((el,)), (name, el)

    @given(programs())
    @settings(max_examples=120, deadline=None)
    def test_every_written_element_is_returned(self, program):
        """All device-produced data returns to the host (no temporaries
        hinted here)."""
        analyzer = DataUsageAnalyzer(program)
        analyzer.plan()
        written = brute_force_written(program)
        for name, elements in written.items():
            sections = analyzer.written_sections(name)
            for el in elements:
                assert sections.contains_point((el,)), (name, el)

    @given(programs())
    @settings(max_examples=100, deadline=None)
    def test_transfers_bounded_by_allocations(self, program):
        """No transfer exceeds its array's allocation size."""
        plan = analyze_transfers(program)
        sizes = {a.name: a.size_bytes for a in program.arrays}
        for transfer in plan.transfers:
            assert transfer.bytes <= sizes[transfer.array]

    @given(programs())
    @settings(max_examples=100, deadline=None)
    def test_directions_partition_by_role(self, program):
        """Inputs only for read arrays, outputs only for written ones."""
        plan = analyze_transfers(program)
        reads = set().union(*(k.reads() for k in program.kernels))
        writes = set().union(*(k.writes() for k in program.kernels))
        for t in plan.inputs:
            assert t.array in reads
        for t in plan.outputs:
            assert t.array in writes

    @given(programs())
    @settings(max_examples=60, deadline=None)
    def test_repetition_invariance(self, program):
        """Repeating the kernel sequence never changes the plan
        (Section IV-B: iteration-independent transfers)."""
        doubled = ProgramSkeleton(
            program.name,
            program.arrays,
            program.kernels
            + tuple(
                KernelSkeleton(f"{k.name}__again", k.loops, k.statements)
                for k in program.kernels
            ),
            program.temporaries,
        )
        single = analyze_transfers(program)
        twice = analyze_transfers(doubled)
        assert single.input_bytes == twice.input_bytes
        assert single.output_bytes == twice.output_bytes

    @given(programs())
    @settings(max_examples=60, deadline=None)
    def test_batched_preserves_bytes(self, program):
        plan = analyze_transfers(program)
        batched = plan.batched()
        assert batched.total_bytes == plan.total_bytes
        assert batched.transfer_count <= min(plan.transfer_count, 2)

    @given(programs())
    @settings(max_examples=60, deadline=None)
    def test_temporaries_only_remove_outputs(self, program):
        """Hinting every array as temporary removes all outputs and
        leaves inputs untouched."""
        from repro.datausage.hints import AnalysisHints

        plan = analyze_transfers(program)
        hinted = analyze_transfers(
            program,
            AnalysisHints(extra_temporaries=frozenset(ARRAY_NAMES)),
        )
        assert hinted.outputs == ()
        assert hinted.input_bytes == plan.input_bytes

    @given(programs())
    @settings(max_examples=60, deadline=None)
    def test_plan_is_deterministic(self, program):
        a = analyze_transfers(program)
        b = analyze_transfers(program)
        assert a == b
