"""Tests for inter-kernel dependence analysis."""

import networkx as nx

from repro.datausage.liveness import (
    DependenceKind,
    dependence_graph,
    kernel_dependences,
)
from repro.skeleton import KernelBuilder, ProgramBuilder


def chain_program():
    pb = ProgramBuilder("chain")
    n = 64
    pb.array("a", (n,)).array("b", (n,)).array("c", (n,))
    k1 = KernelBuilder("k1").parallel_loop("i", n)
    k1.load("a", "i").store("b", "i").statement(flops=1)
    k2 = KernelBuilder("k2").parallel_loop("i", n)
    k2.load("b", "i").store("c", "i").statement(flops=1)
    return pb.kernel(k1).kernel(k2).build()


def independent_program():
    pb = ProgramBuilder("indep")
    n = 64
    pb.array("a", (n,)).array("b", (n,)).array("c", (n,)).array("d", (n,))
    k1 = KernelBuilder("k1").parallel_loop("i", n)
    k1.load("a", "i").store("b", "i").statement(flops=1)
    k2 = KernelBuilder("k2").parallel_loop("i", n)
    k2.load("c", "i").store("d", "i").statement(flops=1)
    return pb.kernel(k1).kernel(k2).build()


class TestKernelDependences:
    def test_flow_dependence_detected(self):
        deps = kernel_dependences(chain_program())
        flows = [d for d in deps if d.kind is DependenceKind.FLOW]
        assert len(flows) == 1
        assert flows[0].producer == "k1"
        assert flows[0].consumer == "k2"
        assert flows[0].array == "b"

    def test_independent_kernels_have_no_deps(self):
        assert kernel_dependences(independent_program()) == []

    def test_anti_dependence(self):
        pb = ProgramBuilder("anti")
        n = 32
        pb.array("a", (n,)).array("b", (n,))
        k1 = KernelBuilder("reader").parallel_loop("i", n)
        k1.load("a", "i").store("b", "i").statement(flops=1)
        k2 = KernelBuilder("writer").parallel_loop("i", n)
        k2.load("b", "i").store("a", "i").statement(flops=1)
        prog = pb.kernel(k1).kernel(k2).build()
        kinds = {(d.kind, d.array) for d in kernel_dependences(prog)}
        assert (DependenceKind.ANTI, "a") in kinds
        assert (DependenceKind.FLOW, "b") in kinds

    def test_output_dependence(self):
        pb = ProgramBuilder("out")
        n = 32
        pb.array("a", (n,)).array("x", (n,))
        k1 = KernelBuilder("w1").parallel_loop("i", n)
        k1.load("x", "i").store("a", "i").statement(flops=1)
        k2 = KernelBuilder("w2").parallel_loop("i", n)
        k2.load("x", "i").store("a", "i").statement(flops=1)
        prog = pb.kernel(k1).kernel(k2).build()
        kinds = {d.kind for d in kernel_dependences(prog)}
        assert DependenceKind.OUTPUT in kinds

    def test_disjoint_sections_no_dependence(self):
        # k1 writes the first half, k2 reads the second half: no overlap.
        pb = ProgramBuilder("halves")
        pb.array("a", (100,)).array("o", (100,))
        k1 = KernelBuilder("k1").parallel_loop("i", 50)
        k1.load("o", "i").store("a", "i").statement(flops=1)
        k2 = KernelBuilder("k2").parallel_loop("i", 50)
        k2.load("a", ("i", 1, 50)).store("o", ("i", 1, 50)).statement(flops=1)
        prog = pb.kernel(k1).kernel(k2).build()
        flows = [
            d
            for d in kernel_dependences(prog)
            if d.kind is DependenceKind.FLOW and d.array == "a"
        ]
        assert flows == []


class TestDependenceGraph:
    def test_graph_structure(self):
        g = dependence_graph(chain_program())
        assert set(g.nodes) == {"k1", "k2"}
        assert g.nodes["k1"]["order"] == 0
        assert g.has_edge("k1", "k2")

    def test_graph_is_dag(self):
        g = dependence_graph(chain_program())
        assert nx.is_directed_acyclic_graph(g)

    def test_edge_attributes(self):
        g = dependence_graph(chain_program())
        attrs = [d for *_, d in g.edges(data=True)]
        assert any(
            a["array"] == "b" and a["kind"] is DependenceKind.FLOW
            for a in attrs
        )
