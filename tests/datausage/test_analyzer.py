"""Tests for the data usage analyzer (paper Section III-B)."""

import pytest

from repro.datausage import (
    AnalysisHints,
    DataUsageAnalyzer,
    Direction,
    SparseExtentHint,
    analyze_transfers,
)
from repro.skeleton import ArrayKind, DType, KernelBuilder, ProgramBuilder


def vector_add(n=1000):
    pb = ProgramBuilder("vadd")
    pb.array("a", (n,)).array("b", (n,)).array("c", (n,))
    kb = KernelBuilder("add").parallel_loop("i", n)
    kb.load("a", "i").load("b", "i").store("c", "i").statement(flops=1)
    return pb.kernel(kb).build()


def producer_consumer(n=256):
    """k1 writes tmp from a; k2 reads tmp and writes out."""
    pb = ProgramBuilder("chain")
    pb.array("a", (n,)).array("tmp", (n,)).array("out", (n,))
    k1 = KernelBuilder("produce").parallel_loop("i", n)
    k1.load("a", "i").store("tmp", "i").statement(flops=1)
    k2 = KernelBuilder("consume").parallel_loop("i", n)
    k2.load("tmp", "i").store("out", "i").statement(flops=1)
    return pb.kernel(k1).kernel(k2).build()


class TestVectorAdd:
    def test_plan_contents(self):
        plan = analyze_transfers(vector_add(1000))
        assert {t.array for t in plan.inputs} == {"a", "b"}
        assert {t.array for t in plan.outputs} == {"c"}
        assert plan.input_bytes == 2 * 1000 * 4
        assert plan.output_bytes == 1000 * 4
        assert plan.transfer_count == 3

    def test_each_array_separate(self):
        plan = analyze_transfers(vector_add())
        names = [t.array for t in plan.transfers]
        assert len(names) == len(set(names))


class TestInterKernelDataflow:
    def test_intermediate_not_transferred_in(self):
        plan = analyze_transfers(producer_consumer())
        # tmp is produced on the device by k1 before k2 reads it: no H2D.
        assert {t.array for t in plan.inputs} == {"a"}

    def test_intermediate_transferred_out_unless_hinted(self):
        prog = producer_consumer()
        plan = analyze_transfers(prog)
        assert {t.array for t in plan.outputs} == {"tmp", "out"}

    def test_temporary_hint_suppresses_output(self):
        pb = ProgramBuilder("chain")
        n = 256
        pb.array("a", (n,)).array("tmp", (n,)).array("out", (n,))
        k1 = KernelBuilder("produce").parallel_loop("i", n)
        k1.load("a", "i").store("tmp", "i").statement(flops=1)
        k2 = KernelBuilder("consume").parallel_loop("i", n)
        k2.load("tmp", "i").store("out", "i").statement(flops=1)
        prog = pb.kernel(k1).kernel(k2).temporary("tmp").build()
        plan = analyze_transfers(prog)
        assert {t.array for t in plan.outputs} == {"out"}

    def test_extra_temporaries_hint(self):
        plan = analyze_transfers(
            producer_consumer(),
            AnalysisHints(extra_temporaries=frozenset({"tmp"})),
        )
        assert {t.array for t in plan.outputs} == {"out"}

    def test_partial_production_still_transfers_rest(self):
        # k1 writes only the first half of tmp; k2 reads all of it, so the
        # second half must still come from the host.
        pb = ProgramBuilder("partial")
        pb.array("tmp", (100,)).array("out", (100,))
        k1 = KernelBuilder("half").parallel_loop("i", 50)
        k1.store("tmp", "i").statement(flops=1)
        k2 = KernelBuilder("all").parallel_loop("i", 100)
        k2.load("tmp", "i").store("out", "i").statement(flops=1)
        prog = pb.kernel(k1).kernel(k2).build()
        analyzer = DataUsageAnalyzer(prog)
        plan = analyzer.plan()
        tmp_in = [t for t in plan.inputs if t.array == "tmp"]
        assert len(tmp_in) == 1
        assert tmp_in[0].elements == 50  # only the unproduced half

    def test_read_modify_write_needs_input(self):
        # a[i] = a[i] * 2: read-before-write within the statement.
        pb = ProgramBuilder("scale")
        pb.array("a", (64,))
        kb = KernelBuilder("scale").parallel_loop("i", 64)
        kb.load("a", "i").store("a", "i").statement(flops=1)
        plan = analyze_transfers(pb.kernel(kb).build())
        assert {t.array for t in plan.inputs} == {"a"}
        assert {t.array for t in plan.outputs} == {"a"}

    def test_write_then_read_in_later_statement_no_input(self):
        # Statement 1 stores all of a; statement 2 loads a: no H2D needed.
        pb = ProgramBuilder("wr")
        pb.array("a", (64,)).array("b", (64,))
        kb = KernelBuilder("k").parallel_loop("i", 64)
        kb.store("a", "i").statement(flops=1)
        kb.load("a", "i").store("b", "i").statement(flops=1)
        plan = analyze_transfers(pb.kernel(kb).build())
        assert plan.inputs == ()


class TestIterationIndependence:
    def test_same_plan_regardless_of_kernel_repetition(self):
        """Repeating the kernel sequence doesn't change the transfer set.

        This is the paper's Section IV-B property: for iterative
        applications, input moves once before the first iteration and
        output once after the last.
        """
        n = 128
        def build(reps):
            pb = ProgramBuilder("iter")
            pb.array("grid", (n,)).array("power", (n,))
            for r in range(reps):
                kb = KernelBuilder(f"step{r}").parallel_loop("i", n)
                kb.load("grid", "i").load("power", "i").store(
                    "grid", "i"
                ).statement(flops=4)
                pb.kernel(kb)
            return pb.build()

        p1 = analyze_transfers(build(1))
        p5 = analyze_transfers(build(5))
        assert p1.input_bytes == p5.input_bytes
        assert p1.output_bytes == p5.output_bytes
        assert p1.transfer_count == p5.transfer_count


class TestSparseHandling:
    def _sparse_prog(self, n=1000, hinted=False):
        pb = ProgramBuilder("spmv")
        pb.array("vals", (n,), DType.float32, ArrayKind.SPARSE)
        pb.array("x", (100,)).array("y", (100,))
        kb = KernelBuilder("spmv").parallel_loop("r", 100)
        kb.load("vals", "r").load("x", "r").store("y", "r").statement(flops=2)
        return pb.kernel(kb).build()

    def test_conservative_whole_array(self):
        plan = analyze_transfers(self._sparse_prog())
        vals = [t for t in plan.inputs if t.array == "vals"][0]
        assert vals.conservative
        assert vals.elements == 1000  # whole array despite tiny loop

    def test_sparse_extent_hint(self):
        plan = analyze_transfers(
            self._sparse_prog(),
            AnalysisHints(sparse_extents=(SparseExtentHint("vals", 300),)),
        )
        vals = [t for t in plan.inputs if t.array == "vals"][0]
        assert not vals.conservative
        assert vals.elements == 300

    def test_hint_clamped_to_allocation(self):
        plan = analyze_transfers(
            self._sparse_prog(),
            AnalysisHints(sparse_extents=(SparseExtentHint("vals", 10**9),)),
        )
        vals = [t for t in plan.inputs if t.array == "vals"][0]
        assert vals.elements == 1000

    def test_duplicate_hints_rejected(self):
        with pytest.raises(ValueError):
            AnalysisHints(
                sparse_extents=(
                    SparseExtentHint("v", 1),
                    SparseExtentHint("v", 2),
                )
            )


class TestTransferPlanHelpers:
    def test_batched_merges_per_direction(self):
        plan = analyze_transfers(vector_add(1000))
        batched = plan.batched()
        assert batched.transfer_count == 2
        assert batched.input_bytes == plan.input_bytes
        assert batched.output_bytes == plan.output_bytes

    def test_by_direction(self):
        plan = analyze_transfers(vector_add())
        assert all(t.direction is Direction.H2D for t in plan.inputs)
        assert all(t.direction is Direction.D2H for t in plan.outputs)

    def test_introspection_sections(self):
        analyzer = DataUsageAnalyzer(vector_add(100))
        analyzer.plan()
        assert analyzer.device_input_sections("a").volume == 100
        assert analyzer.written_sections("c").volume == 100
        assert analyzer.device_input_sections("c").is_empty
