"""Tests for repro.util.rng."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import RngStream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "bus", "h2d") == derive_seed(42, "bus", "h2d")

    def test_path_sensitive(self):
        assert derive_seed(42, "bus") != derive_seed(42, "gpu")

    def test_root_sensitive(self):
        assert derive_seed(1, "bus") != derive_seed(2, "bus")

    def test_nesting_not_flattened(self):
        # ("ab",) and ("a", "b") must differ: the separator matters.
        assert derive_seed(7, "ab") != derive_seed(7, "a", "b")

    @given(st.integers(0, 2**32), st.text(max_size=20))
    def test_in_63bit_range(self, root, name):
        seed = derive_seed(root, name)
        assert 0 <= seed < 2**63


class TestRngStream:
    def test_same_path_same_sequence(self):
        a = RngStream(1, "x").generator.random(5)
        b = RngStream(1, "x").generator.random(5)
        assert (a == b).all()

    def test_forks_are_independent_and_reproducible(self):
        parent = RngStream(1)
        c1 = parent.fork("bus").generator.random(5)
        c2 = parent.fork("gpu").generator.random(5)
        c1_again = RngStream(1).fork("bus").generator.random(5)
        assert (c1 == c1_again).all()
        assert not (c1 == c2).all()

    def test_fork_unaffected_by_parent_draws(self):
        p1 = RngStream(3)
        p1.uniform()  # consume parent state
        p2 = RngStream(3)
        assert (
            p1.fork("child").generator.random(4)
            == p2.fork("child").generator.random(4)
        ).all()

    def test_lognormal_factor_zero_sigma(self):
        assert RngStream(1).lognormal_factor(0.0) == 1.0

    def test_lognormal_factor_positive(self):
        s = RngStream(1)
        for _ in range(100):
            assert s.lognormal_factor(0.5) > 0

    def test_lognormal_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            RngStream(1).lognormal_factor(-0.1)

    def test_bernoulli_bounds(self):
        s = RngStream(1)
        with pytest.raises(ValueError):
            s.bernoulli(1.5)
        assert s.bernoulli(1.0) is True
        assert s.bernoulli(0.0) is False

    def test_bernoulli_rate(self):
        s = RngStream(123, "rate")
        hits = sum(s.bernoulli(0.5) for _ in range(2000))
        assert 850 < hits < 1150
