"""Tests for repro.util.units."""

import pytest

from repro.util.units import (
    GiB,
    KiB,
    MiB,
    bytes_to_human,
    gb_per_s,
    ms,
    seconds_to_human,
    us,
)


class TestByteConstants:
    def test_binary_prefixes(self):
        assert KiB == 2**10
        assert MiB == 2**20
        assert GiB == 2**30

    def test_sweep_endpoint_is_512mb(self):
        # The paper's calibration uses a 512MB large transfer.
        assert 512 * MiB == 2**29


class TestTimeConversions:
    def test_us(self):
        assert us(10) == pytest.approx(1e-5)

    def test_ms(self):
        assert ms(3.2) == pytest.approx(3.2e-3)

    def test_gb_per_s_is_decimal(self):
        # 2.5 GB/s in the paper's prose means 2.5e9 bytes/s.
        assert gb_per_s(2.5) == pytest.approx(2.5e9)


class TestBytesToHuman:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (1, "1B"),
            (512, "512B"),
            (KiB, "1KB"),
            (2 * KiB, "2KB"),
            (MiB, "1MB"),
            (512 * MiB, "512MB"),
            (GiB, "1GB"),
        ],
    )
    def test_axis_labels(self, n, expected):
        assert bytes_to_human(n) == expected

    def test_fractional(self):
        assert bytes_to_human(1536) == "1.50KB"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bytes_to_human(-1)


class TestSecondsToHuman:
    @pytest.mark.parametrize(
        "t,expected",
        [
            (0.0, "0s"),
            (5e-9, "5.0ns"),
            (1e-5, "10.0us"),
            (3.2e-3, "3.20ms"),
            (2.5, "2.500s"),
        ],
    )
    def test_rendering(self, t, expected):
        assert seconds_to_human(t) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            seconds_to_human(-0.1)
