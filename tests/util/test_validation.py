"""Tests for repro.util.validation."""

import pytest

from repro.util.validation import (
    check_in,
    check_non_negative,
    check_positive,
    check_type,
)


class TestCheckPositive:
    def test_passes_and_returns(self):
        assert check_positive("x", 3) == 3

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_rejects(self, bad):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", bad)


class TestCheckNonNegative:
    def test_zero_ok(self):
        assert check_non_negative("x", 0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -1)


class TestCheckIn:
    def test_member(self):
        assert check_in("mode", "a", {"a", "b"}) == "a"

    def test_nonmember(self):
        with pytest.raises(ValueError, match="mode"):
            check_in("mode", "c", {"a", "b"})


class TestCheckType:
    def test_ok(self):
        assert check_type("n", 5, int) == 5

    def test_wrong(self):
        with pytest.raises(TypeError, match="n must be int"):
            check_type("n", "5", int)
