"""Tests for repro.util.stats."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    arithmetic_mean,
    error_magnitude,
    geometric_mean,
    mean_error_magnitude,
    signed_relative_error,
    summarize,
)


class TestErrorMagnitude:
    def test_paper_example_direction_insensitive(self):
        # Over- and under-prediction of equal relative size give the same
        # magnitude; the paper reports magnitudes only (Fig. 6 caption).
        assert error_magnitude(1.1, 1.0) == pytest.approx(0.10)
        assert error_magnitude(0.9, 1.0) == pytest.approx(0.10)

    def test_large_overprediction(self):
        # Kernel-only CFD 97K: predicted speedup ~4.77x the measured one.
        assert error_magnitude(4.77, 1.0) == pytest.approx(3.77)

    def test_zero_measured_rejected(self):
        with pytest.raises(ZeroDivisionError):
            error_magnitude(1.0, 0.0)

    @given(
        st.floats(0.01, 1e6),
        st.floats(0.01, 1e6),
    )
    def test_matches_signed_error_abs(self, predicted, measured):
        assert error_magnitude(predicted, measured) == pytest.approx(
            abs(signed_relative_error(predicted, measured))
        )

    @given(st.floats(0.01, 1e3), st.floats(0.01, 1e3), st.floats(0.1, 10))
    def test_scale_invariant(self, predicted, measured, scale):
        assert error_magnitude(predicted, measured) == pytest.approx(
            error_magnitude(predicted * scale, measured * scale)
        )


class TestSignedRelativeError:
    def test_sign_of_overprediction(self):
        assert signed_relative_error(2.0, 1.0) == pytest.approx(1.0)
        assert signed_relative_error(0.5, 1.0) == pytest.approx(-0.5)


class TestMeanErrorMagnitude:
    def test_simple(self):
        got = mean_error_magnitude([1.1, 0.8], [1.0, 1.0])
        assert got == pytest.approx((0.1 + 0.2) / 2)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            mean_error_magnitude([1.0], [1.0, 2.0])

    def test_empty(self):
        with pytest.raises(ValueError):
            mean_error_magnitude([], [])


class TestMeans:
    def test_arithmetic(self):
        assert arithmetic_mean([1, 2, 3]) == pytest.approx(2.0)

    def test_arithmetic_empty(self):
        with pytest.raises(ValueError):
            arithmetic_mean([])

    def test_geometric(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_geometric_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(0.01, 100), min_size=1, max_size=20))
    def test_geometric_le_arithmetic(self, values):
        assert geometric_mean(values) <= arithmetic_mean(values) * (1 + 1e-9)


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.std == pytest.approx(math.sqrt(2 / 3))

    def test_empty(self):
        with pytest.raises(ValueError):
            summarize([])

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    def test_bounds_hold(self, values):
        s = summarize(values)
        eps = 1e-9 * (1 + abs(s.minimum) + abs(s.maximum))
        assert s.minimum - eps <= s.mean <= s.maximum + eps
        assert s.std >= 0
