"""Tests for the ASCII chart renderer."""

import pytest

from repro.util.asciiplot import line_chart, scatter_chart


class TestLineChart:
    def test_basic_structure(self):
        out = line_chart(
            "demo", [1, 2, 3], {"a": [1.0, 2.0, 3.0]}, width=20, height=5
        )
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert lines[1].startswith("y_max")
        body = [l for l in lines if l.startswith("|")]
        assert len(body) == 5
        assert all(len(l) == 22 for l in body)  # |...20 cells...|
        assert "a" in lines[-1]  # legend

    def test_monotone_series_descends_visually(self):
        out = line_chart(
            "m", list(range(10)), {"y": list(range(10))}, width=10, height=10
        )
        body = [l[1:-1] for l in out.splitlines() if l.startswith("|")]
        # First row (max y) has the glyph at the right end.
        assert body[0].rstrip().endswith("o")
        assert body[-1].lstrip().startswith("o")

    def test_multiple_series_glyphs(self):
        out = line_chart(
            "two", [1, 2], {"a": [1, 2], "b": [2, 1]}, width=12, height=4
        )
        assert "o = a" in out and "x = b" in out

    def test_log_axes(self):
        out = line_chart(
            "log",
            [1, 1024, 1024**2],
            {"y": [1e-6, 1e-3, 1.0]},
            log_x=True,
            log_y=True,
        )
        assert "(log x)" in out and "(log y)" in out

    def test_first_series_wins_collisions(self):
        out = line_chart(
            "same", [1, 2], {"meas": [5, 5], "pred": [5, 5]},
            width=8, height=3,
        )
        body = "".join(l for l in out.splitlines() if l.startswith("|"))
        assert "o" in body  # the first series' glyph survives
        assert "x" not in body

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart("t", [1], {})
        with pytest.raises(ValueError):
            line_chart("t", [1, 2], {"a": [1.0]})
        with pytest.raises(ValueError):
            line_chart("t", [0], {"a": [0.0]}, log_y=True)

    def test_too_many_series(self):
        series = {f"s{i}": [1.0] for i in range(9)}
        with pytest.raises(ValueError, match="at most"):
            line_chart("t", [1], series)


class TestScatterChart:
    def test_diagonal_present(self):
        out = scatter_chart("s", [(1.0, 1.0)], width=10, height=10)
        assert "." in out
        assert "'.' = y=x" in out

    def test_points_on_diagonal_when_equal(self):
        pts = [(float(v), float(v)) for v in (1, 10, 100)]
        out = scatter_chart("s", pts, width=20, height=20, log=True)
        body = [l[1:-1] for l in out.splitlines() if l.startswith("|")]
        # Every 'o' sits where the diagonal would be: the char below/above
        # neighbors on its row are '.' or it replaced the '.' itself.
        for r, row in enumerate(body):
            for c, ch in enumerate(row):
                if ch == "o":
                    # On a square grid the y=x line is col == (h-1-r).
                    assert abs(c * (len(body) - 1) - (len(body) - 1 - r) * (len(row) - 1)) <= (len(row) - 1)

    def test_no_diagonal(self):
        out = scatter_chart("s", [(1.0, 2.0)], diagonal=False)
        assert "." not in "".join(
            l for l in out.splitlines() if l.startswith("|")
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            scatter_chart("s", [])
