"""Tests for repro.util.tables."""

import pytest

from repro.util.tables import Table, render_series


class TestTable:
    def test_render_alignment(self):
        t = Table(["name", "value"], title="demo")
        t.add_row(["a", 1])
        t.add_row(["long-name", 123])
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        # All data lines equal width.
        widths = {len(l) for l in lines[1:]}
        assert len(widths) == 1

    def test_row_width_mismatch(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_no_title(self):
        t = Table(["x"])
        t.add_row([5])
        assert t.render().splitlines()[0].strip() == "x"

    def test_cells_coerced_to_str(self):
        t = Table(["x"])
        t.add_row([3.5])
        assert "3.5" in t.render()


class TestRenderSeries:
    def test_basic(self):
        out = render_series(
            "fig", ["1B", "2B"], {"pred": [1.0, 2.0], "meas": [1.1, 2.2]}
        )
        assert "fig" in out
        assert "pred" in out and "meas" in out
        assert "1.1" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            render_series("f", [1, 2], {"y": [1.0]})

    def test_value_format(self):
        out = render_series("f", [1], {"y": [0.123456]}, value_format="{:.2f}")
        assert "0.12" in out
