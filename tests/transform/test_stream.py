"""Tests for the fused streaming explorer.

The streaming path promises the *identical* answer the reference
explorer gives — same best mapping, bitwise-equal seconds, same
tie-breaking, same ``no legal mapping`` failure text — while building
no per-candidate objects.  The property test below pins that against
random skeletons across architectures and spaces; the rest covers the
chunking merge, cache warm-up, and the degenerate spaces (empty,
single-candidate, all-illegal, synthesis failure).
"""

import pytest

from repro.gpu.arch import gtx_280, quadro_fx_5600, tesla_c1060
from repro.gpu.model import GpuPerformanceModel
from repro.skeleton import DType, KernelBuilder, ProgramBuilder
from repro.transform.explorer import explore_kernel
from repro.transform.space import TransformationSpace
from repro.transform.stream import (
    DEFAULT_CHUNK_ROWS,
    StreamingExplorer,
    explore_kernel_stream,
)

N = 257


def stencil_program(name="p"):
    kb = KernelBuilder("stencil")
    kb.parallel_loop("i", N - 1, 1)
    kb.parallel_loop("j", N - 1, 1)
    kb.load("a", "i", "j")
    kb.load("a", ("i", 1, 1), "j")
    kb.load("a", ("i", 1, -1), "j")
    kb.store("out", "i", "j")
    kb.statement(flops=5.0)
    pb = ProgramBuilder(name)
    pb.array("a", (N, N), DType.float32)
    pb.array("out", (N, N), DType.float32)
    pb.kernel(kb.build())
    return pb.build()


def serial_only_program():
    """No parallel loop: every mapping is illegal on every arch."""
    kb = KernelBuilder("serial")
    kb.loop("k", 2, 1)
    kb.load("a", "k", "k")
    kb.statement(flops=1.0)
    pb = ProgramBuilder("serial_only")
    pb.array("a", (N, N), DType.float32)
    pb.kernel(kb.build())
    return pb.build()


class TestEquivalence:
    @pytest.mark.parametrize("arch_fn", [quadro_fx_5600, tesla_c1060, gtx_280])
    @pytest.mark.parametrize(
        "space_fn",
        [TransformationSpace.default, TransformationSpace.wide],
    )
    def test_stream_equals_reference(self, arch_fn, space_fn):
        program = stencil_program()
        kernel = program.kernels[0]
        model = GpuPerformanceModel(arch_fn())
        space = space_fn()
        reference = explore_kernel(
            kernel, program, model, space, explorer="reference"
        )
        result = explore_kernel_stream(kernel, program, model, space)
        assert result.best.config == reference.best.config
        assert result.best.characteristics == reference.best.characteristics
        assert result.best.breakdown == reference.best.breakdown
        assert result.seconds == reference.seconds  # bitwise
        assert result.explored == len(reference.candidates)
        assert result.skipped == len(reference.skipped)
        assert result.search_width == reference.search_width

    def test_explorer_routing(self):
        program = stencil_program()
        kernel = program.kernels[0]
        model = GpuPerformanceModel(quadro_fx_5600())
        fast = explore_kernel(kernel, program, model, explorer="fast")
        stream = explore_kernel(kernel, program, model, explorer="stream")
        assert stream.best == fast.best
        assert stream.candidates == (stream.best,)  # argmin-only table
        assert stream.skipped == ()

    def test_unknown_explorer_rejected(self):
        program = stencil_program()
        with pytest.raises(ValueError, match="expected 'fast'"):
            explore_kernel(
                program.kernels[0],
                program,
                GpuPerformanceModel(quadro_fx_5600()),
                explorer="warp-drive",
            )

    def test_chunked_equals_unchunked(self):
        program = stencil_program()
        kernel = program.kernels[0]
        model = GpuPerformanceModel(quadro_fx_5600())
        space = TransformationSpace.wide()
        whole = StreamingExplorer(model, chunk_rows=DEFAULT_CHUNK_ROWS)
        tiny = StreamingExplorer(model, chunk_rows=3)
        a = whole.explore_kernel(kernel, program, space)
        b = tiny.explore_kernel(kernel, program, space)
        assert a.best == b.best
        assert a.index == b.index
        assert a.seconds == b.seconds
        assert b.chunks > a.chunks

    def test_warm_reuse_is_identical(self):
        program = stencil_program()
        kernel = program.kernels[0]
        explorer = StreamingExplorer(GpuPerformanceModel(quadro_fx_5600()))
        cold = explorer.explore_kernel(kernel, program)
        warm = explorer.explore_kernel(kernel, program)
        assert warm == cold

    def test_project_program_sums_kernels(self):
        program = stencil_program()
        explorer = StreamingExplorer(GpuPerformanceModel(quadro_fx_5600()))
        result = explorer.project_program(program)
        assert result.program == program.name
        assert result.seconds == sum(k.seconds for k in result.kernels)
        assert [k.kernel for k in result.kernels] == [
            k.name for k in program.kernels
        ]


class TestDegenerateSpaces:
    def test_empty_space_raises_tried_zero(self):
        # TransformationSpace refuses to be empty, so fake the minimal
        # space surface the explorer reads (configs + fingerprint).
        class EmptySpace:
            def configs(self):
                return ()

            def fingerprint(self):
                return "empty"

        program = stencil_program()
        model = GpuPerformanceModel(quadro_fx_5600())
        with pytest.raises(ValueError, match=r"tried 0"):
            explore_kernel_stream(
                program.kernels[0], program, model, EmptySpace()
            )

    def test_single_candidate_space(self):
        program = stencil_program()
        kernel = program.kernels[0]
        model = GpuPerformanceModel(quadro_fx_5600())
        space = TransformationSpace.naive()
        reference = explore_kernel(
            kernel, program, model, space, explorer="reference"
        )
        result = explore_kernel_stream(kernel, program, model, space)
        assert result.best == reference.best
        assert result.index == 0
        assert result.explored == 1
        assert result.chunks == 1

    def test_all_illegal_matches_reference_error(self):
        program = serial_only_program()
        kernel = program.kernels[0]
        model = GpuPerformanceModel(quadro_fx_5600())
        with pytest.raises(ValueError) as reference:
            explore_kernel(kernel, program, model, explorer="reference")
        with pytest.raises(ValueError) as streamed:
            explore_kernel_stream(kernel, program, model)
        assert str(streamed.value) == str(reference.value)

    def test_bad_chunk_rows_rejected(self):
        model = GpuPerformanceModel(quadro_fx_5600())
        with pytest.raises(ValueError, match="chunk_rows"):
            StreamingExplorer(model, chunk_rows=0)


class TestStreamResult:
    def test_projection_carries_only_the_winner(self):
        program = stencil_program()
        model = GpuPerformanceModel(quadro_fx_5600())
        result = explore_kernel_stream(program.kernels[0], program, model)
        projection = result.projection()
        assert projection.best == result.best
        assert projection.candidates == (result.best,)
        assert projection.skipped == ()
        assert projection.seconds == result.seconds
