"""Tests for cross-thread reuse tiling (tiled-matmul shared memory)."""

import pytest

from repro.gpu.arch import quadro_fx_5600
from repro.gpu.model import GpuPerformanceModel
from repro.skeleton import ArrayDecl, KernelBuilder
from repro.transform.space import MappingConfig
from repro.transform.synthesize import synthesize_characteristics


def matmul_kernel(n=512):
    kb = KernelBuilder("matmul")
    kb.parallel_loop("i", n).parallel_loop("j", n).loop("k", n)
    kb.load("A", "i", "k").load("B", "k", "j")
    kb.statement(flops=2)
    kb.store("C", "i", "j")
    kb.statement(flops=0, amortize=("i", "j"))
    return kb.build(), {
        "A": ArrayDecl("A", (n, n)),
        "B": ArrayDecl("B", (n, n)),
        "C": ArrayDecl("C", (n, n)),
    }


class TestReuseTiling:
    def test_smem_slashes_global_traffic(self):
        kernel, arrays = matmul_kernel()
        base = synthesize_characteristics(
            kernel, arrays, MappingConfig(block_size=256)
        )
        tiled = synthesize_characteristics(
            kernel, arrays, MappingConfig(block_size=256,
                                          use_shared_memory=True)
        )
        # 16x16 tiles: both operands drop to 1/16th of their loads.
        assert tiled.mem_insts_per_thread < 0.2 * base.mem_insts_per_thread
        assert tiled.shared_mem_per_block == 2 * 16 * 16 * 4
        assert tiled.syncs_per_thread == pytest.approx(512 / 16)

    def test_tiled_loads_fully_coalesced(self):
        kernel, arrays = matmul_kernel()
        tiled = synthesize_characteristics(
            kernel, arrays, MappingConfig(block_size=256,
                                          use_shared_memory=True)
        )
        # Cooperative tile loads + the coalesced store: ~1.0.
        assert tiled.coalesced_fraction > 0.95

    def test_untiled_matmul_traffic(self):
        kernel, arrays = matmul_kernel()
        base = synthesize_characteristics(
            kernel, arrays, MappingConfig(block_size=256)
        )
        # Two global accesses per reduction step + the amortized store:
        # a memory firehose (this is why tiling matters).
        assert base.mem_insts_per_thread == pytest.approx(1025.0)
        # A[i,k] is a warp-wide broadcast, B[k,j] coalesced: both count
        # as coalesced under the model's (post-1.2-generous) rules.
        assert base.coalesced_fraction == pytest.approx(1.0)

    def test_model_prefers_tiling_heavily(self):
        kernel, arrays = matmul_kernel()
        model = GpuPerformanceModel(quadro_fx_5600())
        base = model.kernel_time(
            synthesize_characteristics(kernel, arrays, MappingConfig(256))
        )
        tiled = model.kernel_time(
            synthesize_characteristics(
                kernel, arrays, MappingConfig(256, use_shared_memory=True)
            )
        )
        assert tiled < base / 3

    def test_stencils_unaffected_by_reuse_path(self):
        """Stencil taps involve every parallel var: no reuse staging."""
        kb = KernelBuilder("stencil")
        kb.parallel_loop("i", 127, 1).parallel_loop("j", 127, 1)
        kb.load("a", "i", "j").load("a", ("i", 1, -1), "j")
        kb.load("a", ("i", 1, 1), "j").store("b", "i", "j")
        kb.statement(flops=3)
        arrays = {
            "a": ArrayDecl("a", (128, 128)),
            "b": ArrayDecl("b", (128, 128)),
        }
        chars, detail = synthesize_characteristics(
            kb.build(), arrays, MappingConfig(use_shared_memory=True),
            with_detail=True,
        )
        # Tap staging yes, reuse staging no double-dip.
        assert detail.smem_staged_arrays == ("a",)

    def test_amortized_statements_not_restaged(self):
        """Explicitly amortized loads (Stassuij CSR metadata) are left
        alone — they are already shared in the skeleton's accounting."""
        kb = KernelBuilder("spmm-ish")
        kb.parallel_loop("r", 64).parallel_loop("j", 256).loop("k", 16)
        kb.load("meta", "k").statement(flops=0, amortize=("r", "k"))
        kb.load("x", "r", "j").statement(flops=1)
        arrays = {
            "meta": ArrayDecl("meta", (16,)),
            "x": ArrayDecl("x", (64, 256)),
        }
        with_smem = synthesize_characteristics(
            kb.build(), arrays, MappingConfig(use_shared_memory=True)
        )
        without = synthesize_characteristics(
            kb.build(), arrays, MappingConfig(use_shared_memory=False)
        )
        # x involves both parallel vars and meta is amortized; nothing to
        # reuse-stage, so traffic is identical.
        assert with_smem.mem_insts_per_thread == pytest.approx(
            without.mem_insts_per_thread
        )

    def test_reduction_required_for_staging(self):
        """A broadcast load without any serial-var involvement isn't the
        matmul pattern (no tile loop to synchronize over)."""
        kb = KernelBuilder("broadcast")
        kb.parallel_loop("i", 64).parallel_loop("j", 64)
        kb.load("row", "i").load("x", "i", "j").store("y", "i", "j")
        kb.statement(flops=1)
        arrays = {
            "row": ArrayDecl("row", (64,)),
            "x": ArrayDecl("x", (64, 64)),
            "y": ArrayDecl("y", (64, 64)),
        }
        smem = synthesize_characteristics(
            kb.build(), arrays, MappingConfig(use_shared_memory=True)
        )
        plain = synthesize_characteristics(
            kb.build(), arrays, MappingConfig(use_shared_memory=False)
        )
        assert smem.mem_insts_per_thread == pytest.approx(
            plain.mem_insts_per_thread
        )
        assert smem.syncs_per_thread == 0
