"""Tests for characteristic synthesis (the GROPHECY analysis core)."""

import pytest

from repro.skeleton import (
    ArrayDecl,
    ArrayKind,
    DType,
    KernelBuilder,
)
from repro.skeleton.access import AccessKind, AffineIndex, ArrayAccess
from repro.transform.space import MappingConfig
from repro.transform.synthesize import (
    access_is_coalesced,
    synthesize_characteristics,
)


def stencil_kernel(n=256):
    kb = KernelBuilder("stencil")
    kb.parallel_loop("i", n - 1, 1).parallel_loop("j", n - 1, 1)
    kb.load("src", "i", "j")
    kb.load("src", ("i", 1, -1), "j")
    kb.load("src", ("i", 1, 1), "j")
    kb.load("src", "i", ("j", 1, -1))
    kb.load("src", "i", ("j", 1, 1))
    kb.store("dst", "i", "j")
    kb.statement(flops=5)
    return kb.build()


def arrays(n=256):
    return {
        "src": ArrayDecl("src", (n, n)),
        "dst": ArrayDecl("dst", (n, n)),
        "sp": ArrayDecl("sp", (n,), DType.float32, ArrayKind.SPARSE),
    }


class TestAccessIsCoalesced:
    def _acc(self, *indices, indirect=False, dims=()):
        return ArrayAccess(
            "src", tuple(indices), AccessKind.LOAD,
            indirect=indirect, indirect_dims=dims,
        )

    def test_unit_stride_aligned(self):
        acc = self._acc(AffineIndex.var("i"), AffineIndex.var("j"))
        assert access_is_coalesced(acc, "j", arrays()["src"])

    def test_row_shift_still_coalesced(self):
        # src[i-1][j]: rows shift, columns aligned.
        acc = self._acc(AffineIndex.var("i", 1, -1), AffineIndex.var("j"))
        assert access_is_coalesced(acc, "j", arrays()["src"])

    def test_column_shift_misaligned_strict(self):
        acc = self._acc(AffineIndex.var("i"), AffineIndex.var("j", 1, -1))
        assert not access_is_coalesced(acc, "j", arrays()["src"], strict=True)
        assert access_is_coalesced(acc, "j", arrays()["src"], strict=False)

    def test_thread_in_slow_dim_uncoalesced(self):
        # src[j][i]: consecutive threads jump whole rows.
        acc = self._acc(AffineIndex.var("j"), AffineIndex.var("i"))
        assert not access_is_coalesced(acc, "j", arrays()["src"])

    def test_broadcast_coalesced(self):
        acc = self._acc(AffineIndex.const(0), AffineIndex.var("k"))
        assert access_is_coalesced(acc, "j", arrays()["src"])

    def test_strided_threads_uncoalesced(self):
        acc = self._acc(AffineIndex.var("i"), AffineIndex.var("j", 2))
        assert not access_is_coalesced(acc, "j", arrays()["src"])

    def test_sparse_never_coalesced(self):
        acc = ArrayAccess("sp", (AffineIndex.var("j"),))
        assert not access_is_coalesced(acc, "j", arrays()["sp"])

    def test_indirect_fast_dim_uncoalesced(self):
        acc = self._acc(
            AffineIndex.const(0), AffineIndex.var("j"),
            indirect=True, dims=(1,),
        )
        assert not access_is_coalesced(acc, "j", arrays()["src"])

    def test_indirect_slow_dim_coalesced(self):
        # x[cols[k]][j]: the Stassuij pattern.
        acc = self._acc(
            AffineIndex.var("k"), AffineIndex.var("j"),
            indirect=True, dims=(0,),
        )
        assert access_is_coalesced(acc, "j", arrays()["src"])

    def test_fully_indirect_uncoalesced(self):
        acc = self._acc(
            AffineIndex.var("i"), AffineIndex.var("j"), indirect=True
        )
        assert not access_is_coalesced(acc, "j", arrays()["src"])


class TestSynthesis:
    def test_basic_accounting(self):
        chars = synthesize_characteristics(
            stencil_kernel(), arrays(), MappingConfig(block_size=256)
        )
        assert chars.threads == 254 * 254  # interior loops [1, 255)
        assert chars.mem_insts_per_thread == pytest.approx(6.0)
        # 2 of 6 accesses (the j+-1 taps) misalign under strict rules.
        assert chars.coalesced_fraction == pytest.approx(4 / 6)

    def test_relaxed_coalescing(self):
        chars = synthesize_characteristics(
            stencil_kernel(), arrays(), MappingConfig(),
            strict_coalescing=False,
        )
        assert chars.coalesced_fraction == pytest.approx(1.0)

    def test_smem_staging_reduces_loads(self):
        base = synthesize_characteristics(
            stencil_kernel(), arrays(), MappingConfig(use_shared_memory=False)
        )
        smem = synthesize_characteristics(
            stencil_kernel(), arrays(), MappingConfig(use_shared_memory=True)
        )
        assert smem.mem_insts_per_thread < base.mem_insts_per_thread
        assert smem.shared_mem_per_block > 0
        assert smem.syncs_per_thread > 0
        # The staged taps still execute as shared-memory instructions.
        assert smem.comp_insts_per_thread >= 5 + 5  # flops + smem reads

    def test_smem_needs_a_neighborhood(self):
        # A single load per array: nothing to stage.
        kb = KernelBuilder("copy").parallel_loop("i", 64)
        kb.load("a", "i").store("b", "i").statement(flops=0)
        env = {"a": ArrayDecl("a", (64,)), "b": ArrayDecl("b", (64,))}
        chars = synthesize_characteristics(
            kb.build(), env, MappingConfig(use_shared_memory=True)
        )
        assert chars.shared_mem_per_block == 0
        assert chars.syncs_per_thread == 0

    def test_unroll_reduces_loop_overhead(self):
        kb = KernelBuilder("serial").parallel_loop("i", 1024).loop("t", 100)
        kb.load("a", "i").statement(flops=2)
        env = {"a": ArrayDecl("a", (1024,))}
        u1 = synthesize_characteristics(kb.build(), env, MappingConfig(unroll=1))
        u4 = synthesize_characteristics(kb.build(), env, MappingConfig(unroll=4))
        assert u4.comp_insts_per_thread < u1.comp_insts_per_thread
        assert u4.registers_per_thread > u1.registers_per_thread

    def test_amortized_statement_weighting(self):
        kb = KernelBuilder("amortized").parallel_loop("i", 8).loop("k", 100)
        kb.load("meta", "i").statement(flops=0, amortize=("i",))
        kb.load("a", "i").statement(flops=1)
        env = {
            "meta": ArrayDecl("meta", (8,)),
            "a": ArrayDecl("a", (8,)),
        }
        chars = synthesize_characteristics(kb.build(), env, MappingConfig())
        # meta contributes 1/100th of a load per innermost iteration.
        assert chars.mem_insts_per_thread == pytest.approx(
            (1.0 + 0.01) * 100
        )

    def test_complex_dtype_expands_flops(self):
        kb = KernelBuilder("cplx").parallel_loop("i", 64)
        kb.load("z", "i").store("z", "i").statement(flops=2)
        env = {"z": ArrayDecl("z", (64,), DType.complex128)}
        chars = synthesize_characteristics(kb.build(), env, MappingConfig())
        # 2 complex flops -> 8 real ops, plus addressing overhead.
        assert chars.comp_insts_per_thread >= 8

    def test_detail_output(self):
        chars, detail = synthesize_characteristics(
            stencil_kernel(), arrays(), MappingConfig(use_shared_memory=True),
            with_detail=True,
        )
        assert detail.map_var == "j"
        assert detail.smem_staged_arrays == ("src",)
        assert detail.coalesced_fraction == chars.coalesced_fraction

    def test_requires_parallel_loop(self):
        kb = KernelBuilder("serial-only").loop("i", 64)
        kb.load("a", "i").statement(flops=1)
        env = {"a": ArrayDecl("a", (64,))}
        with pytest.raises(ValueError, match="no parallel loop"):
            synthesize_characteristics(kb.build(), env, MappingConfig())

    def test_traffic_weighted_bytes_per_access(self):
        # Dominant 16B accesses must not be diluted by amortized 4B ones.
        kb = KernelBuilder("mixed").parallel_loop("j", 2048).loop("k", 30)
        kb.load("idx", "k").statement(flops=0, amortize=("k",))
        kb.load("z", "j").statement(flops=1)
        env = {
            "idx": ArrayDecl("idx", (30,), DType.int32),
            "z": ArrayDecl("z", (2048,), DType.complex128),
        }
        chars = synthesize_characteristics(kb.build(), env, MappingConfig())
        assert chars.bytes_per_access == 16
