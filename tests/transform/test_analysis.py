"""Tests for the per-kernel analysis precompute (the fast path's core).

``KernelAnalysis`` walks the skeleton once; ``characteristics(config)``
must then reproduce ``synthesize_characteristics`` exactly — same
values, same rejections — for every mapping in the space.
"""

import pytest

from repro.skeleton import ArrayDecl, ArrayKind, DType, KernelBuilder
from repro.transform.analysis import KernelAnalysis, analyze_kernel
from repro.transform.space import MappingConfig, TransformationSpace
from repro.transform.synthesize import synthesize_characteristics
from repro.workloads.registry import all_workloads


def stencil_kernel(n=256):
    kb = KernelBuilder("stencil")
    kb.parallel_loop("i", n - 1, 1).parallel_loop("j", n - 1, 1)
    kb.load("src", "i", "j")
    kb.load("src", ("i", 1, -1), "j")
    kb.load("src", ("i", 1, 1), "j")
    kb.load("src", "i", ("j", 1, -1))
    kb.load("src", "i", ("j", 1, 1))
    kb.store("dst", "i", "j")
    kb.statement(flops=5)
    return kb.build()


def arrays(n=256):
    return {
        "src": ArrayDecl("src", (n, n)),
        "dst": ArrayDecl("dst", (n, n)),
        "sp": ArrayDecl("sp", (n,), DType.float32, ArrayKind.SPARSE),
    }


class TestAnalysisMatchesSynthesis:
    @pytest.mark.parametrize("strict", [True, False])
    def test_stencil_whole_wide_space(self, strict):
        analysis = KernelAnalysis(stencil_kernel(), arrays(), strict)
        for config in TransformationSpace.wide():
            ref = synthesize_characteristics(
                stencil_kernel(), arrays(), config, strict_coalescing=strict
            )
            fast = analysis.characteristics(config)
            assert fast == ref, config.label()

    @pytest.mark.parametrize("strict", [True, False])
    def test_all_registered_workloads(self, strict):
        """Field-exact agreement on every real kernel in the registry."""
        for workload in all_workloads():
            dataset = workload.datasets()[0]
            program = workload.skeleton(dataset)
            for kernel in program.kernels:
                analysis = analyze_kernel(kernel, program.array_map, strict)
                for config in TransformationSpace.default():
                    ref = synthesize_characteristics(
                        kernel, program.array_map, config,
                        strict_coalescing=strict,
                    )
                    fast = analysis.characteristics(config)
                    assert fast == ref, (workload.name, kernel.name)


class TestAnalysisRejections:
    def test_no_parallel_loop_raises_at_analysis_time(self):
        kb = KernelBuilder("serial_only")
        kb.loop("k", 64)
        kb.load("src", "k", 0).statement(flops=1)
        with pytest.raises(ValueError, match="no parallel loop"):
            analyze_kernel(kb.build(), arrays())

    def test_same_message_as_synthesis(self):
        kb = KernelBuilder("serial_only")
        kb.loop("k", 64)
        kb.load("src", "k", 0).statement(flops=1)
        kernel = kb.build()
        with pytest.raises(ValueError) as ref_err:
            synthesize_characteristics(kernel, arrays(), MappingConfig())
        with pytest.raises(ValueError) as fast_err:
            analyze_kernel(kernel, arrays())
        assert str(fast_err.value) == str(ref_err.value)


class TestProfileCaching:
    def test_profiles_shared_across_configs(self):
        """Configs with equal (smem, tile) reuse one cached profile."""
        analysis = analyze_kernel(stencil_kernel(), arrays())
        for config in TransformationSpace.wide():
            analysis.characteristics(config)
        # At most 8 tile dims x 2 smem options; far fewer profiles than
        # the 144 configs scored.
        assert len(analysis._profiles) <= 2 * 8
        assert len(analysis._profiles) < len(list(TransformationSpace.wide()))

    def test_characteristics_is_deterministic(self):
        analysis = analyze_kernel(stencil_kernel(), arrays())
        config = MappingConfig(128, use_shared_memory=True, unroll=2)
        assert analysis.characteristics(config) == analysis.characteristics(
            config
        )


class TestCharacteristicsGrid:
    """The batched configs x points grid must equal cell-by-cell calls."""

    ITERATIONS = (1_000, 65_025, 65_536, 250_000)

    def test_grid_matches_characteristics_at(self):
        analysis = analyze_kernel(stencil_kernel(), arrays())
        configs = list(TransformationSpace.default())
        grids, errors = analysis.characteristics_grid(
            configs, list(self.ITERATIONS)
        )
        assert not errors
        assert len(grids) == len(self.ITERATIONS)
        for row, iterations in zip(grids, self.ITERATIONS):
            for cell, config in zip(row, configs):
                assert cell == analysis.characteristics_at(
                    config, iterations
                ), (config.label(), iterations)

    def test_grid_matches_on_registered_kernels(self):
        configs = list(TransformationSpace.default())
        for workload in all_workloads():
            dataset = workload.datasets()[0]
            program = workload.skeleton(dataset)
            for kernel in program.kernels:
                analysis = analyze_kernel(kernel, program.array_map, True)
                counts = [kernel.parallel_iterations, 123_457]
                grids, errors = analysis.characteristics_grid(
                    configs, counts
                )
                for row, iterations in zip(grids, counts):
                    for index, config in enumerate(configs):
                        if index in errors:
                            assert row[index] is None
                            with pytest.raises(ValueError):
                                analysis.characteristics_at(
                                    config, iterations
                                )
                        else:
                            assert row[index] == analysis.characteristics_at(
                                config, iterations
                            ), (workload.name, kernel.name)

    def test_synthesis_errors_reported_once_per_config(self):
        """Failing configs surface by position with the same message the
        per-cell path raises."""
        analysis = analyze_kernel(stencil_kernel(), arrays())
        # The wide space includes shared-memory tilings that can exceed
        # the block's smem budget; fall back to a hand-built rejection
        # if the default space has none.
        configs = list(TransformationSpace.default())
        _, errors = analysis.characteristics_grid(configs, [1_000])
        for index, message in errors.items():
            with pytest.raises(ValueError) as err:
                analysis.characteristics_at(configs[index], 1_000)
            assert str(err.value) == message
