"""Property test: the fast explorer is indistinguishable from the oracle.

Hypothesis builds random-but-valid kernel skeletons (loop nests, access
patterns, branch weights, amortized statements, indirect accesses) and
checks that the fast path reproduces the reference path exactly — same
candidates with bitwise-equal times, same skipped configs with the same
reasons — across architectures and spaces, and that bound-based pruning
never loses the argmin.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.gpu.arch import gtx_280, quadro_fx_5600, tesla_c1060  # noqa: E402
from repro.gpu.model import GpuPerformanceModel  # noqa: E402
from repro.skeleton import (  # noqa: E402
    ArrayKind,
    DType,
    KernelBuilder,
    ProgramBuilder,
)
from repro.transform.explorer import explore_configs  # noqa: E402
from repro.transform.fastpath import explore_configs_fast  # noqa: E402
from repro.transform.space import TransformationSpace  # noqa: E402
from repro.transform.stream import explore_kernel_stream  # noqa: E402

N = 257  # odd grid edge: exercises ceil-division paths

ARCHES = [quadro_fx_5600, tesla_c1060, gtx_280]
SHIFTS = [None, ("", 1, -1), ("", 1, 1)]  # None = plain var


@st.composite
def subscripts(draw, vars_2d):
    """A rank-2 subscript over the available loop variables."""
    row = draw(st.sampled_from(vars_2d))
    col = draw(st.sampled_from(vars_2d))
    out = []
    for var in (row, col):
        shift = draw(st.sampled_from(SHIFTS))
        out.append(var if shift is None else (var, shift[1], shift[2]))
    return tuple(out)


@st.composite
def kernels(draw):
    kb = KernelBuilder("rand")
    shape = draw(
        st.sampled_from(
            ["ij", "i", "ikj", "kij", "ijk", "k"]  # "k" = no parallel loop
        )
    )
    serial_extent = draw(st.sampled_from([2, 5, 16]))
    loop_vars = []
    for var in shape:
        if var == "k":
            kb.loop("k", serial_extent, 1)
        else:
            kb.parallel_loop(var, N - 1, 1)
        loop_vars.append(var)
    # Serial-loop subscripts stay in range: extents are < N.
    n_statements = draw(st.integers(1, 3))
    for _ in range(n_statements):
        n_loads = draw(st.integers(1, 3))
        for _ in range(n_loads):
            array = draw(st.sampled_from(["a", "b", "c"]))
            if draw(st.booleans()) and draw(st.booleans()):
                kb.gather(array, *draw(subscripts(loop_vars)), dims=(0,))
            else:
                kb.load(array, *draw(subscripts(loop_vars)))
        if draw(st.booleans()):
            kb.store("out", *draw(subscripts(loop_vars)))
        if draw(st.booleans()):
            kb.load("sp", draw(st.sampled_from(loop_vars)))
        amortize = None
        if "k" in loop_vars and draw(st.booleans()):
            amortize = ("k",)
        kb.statement(
            flops=draw(st.sampled_from([0.0, 1.0, 5.0, 12.0])),
            branch_prob=draw(st.sampled_from([1.0, 0.5, 0.25])),
            amortize=amortize,
        )
    return kb.build()


@st.composite
def programs(draw):
    pb = ProgramBuilder("rand")
    dtype = draw(st.sampled_from([DType.float32, DType.float64]))
    for name in ("a", "b", "c", "out"):
        pb.array(name, (N, N), dtype)
    pb.array("sp", (N,), DType.float32, ArrayKind.SPARSE)
    pb.kernel(draw(kernels()))
    return pb.build()


def spaces():
    return st.sampled_from(
        [TransformationSpace.default(), TransformationSpace.wide()]
    )


@settings(max_examples=60, deadline=None)
@given(
    program=programs(),
    arch_fn=st.sampled_from(ARCHES),
    space=spaces(),
)
def test_fast_path_equals_reference(program, arch_fn, space):
    model = GpuPerformanceModel(arch_fn())
    kernel = program.kernels[0]
    ref_cands, ref_skipped = explore_configs(
        kernel, program, model, space.configs()
    )
    fast_cands, fast_skipped, fast_pruned = explore_configs_fast(
        kernel, program, model, space.configs()
    )
    assert fast_pruned == []
    assert fast_skipped == ref_skipped  # same configs, same reasons
    assert len(fast_cands) == len(ref_cands)
    for fast, ref in zip(fast_cands, ref_cands):
        assert fast.config == ref.config
        assert fast.characteristics == ref.characteristics
        assert fast.breakdown == ref.breakdown  # bitwise: dataclass eq
    if ref_cands:
        ref_best = min(ref_cands, key=lambda c: c.seconds)
        fast_best = min(fast_cands, key=lambda c: c.seconds)
        assert fast_best.config == ref_best.config
        assert fast_best.seconds == ref_best.seconds


@settings(max_examples=40, deadline=None)
@given(
    program=programs(),
    arch_fn=st.sampled_from(ARCHES),
    space=spaces(),
)
def test_pruning_never_loses_the_argmin(program, arch_fn, space):
    model = GpuPerformanceModel(arch_fn())
    kernel = program.kernels[0]
    ref_cands, ref_skipped = explore_configs(
        kernel, program, model, space.configs()
    )
    cands, skipped, pruned = explore_configs_fast(
        kernel, program, model, space.configs(), prune=True
    )
    assert skipped == ref_skipped
    # Pruning only moves losing candidates; the partition is exact.
    assert len(cands) + len(pruned) == len(ref_cands)
    if ref_cands:
        ref_best = min(ref_cands, key=lambda c: c.seconds)
        best = min(cands, key=lambda c: c.seconds)
        assert best.config == ref_best.config
        assert best.seconds == ref_best.seconds
    ref_by_config = {c.config: c for c in ref_cands}
    for candidate in cands:
        ref = ref_by_config[candidate.config]
        assert candidate.breakdown == ref.breakdown


@settings(max_examples=40, deadline=None)
@given(
    program=programs(),
    arch_fn=st.sampled_from(ARCHES),
    space=spaces(),
)
def test_stream_path_equals_reference(program, arch_fn, space):
    """The fused streaming argmin picks the reference winner, bitwise.

    Same first-minimum tie-break as the scalar ``min()``, same explored/
    skipped accounting, identical best candidate (config +
    characteristics + breakdown, dataclass-equal so every float matches
    bit for bit).  A kernel with no legal mapping must fail with the
    exact reference error text.
    """
    model = GpuPerformanceModel(arch_fn())
    kernel = program.kernels[0]
    configs = space.configs()
    ref_cands, ref_skipped = explore_configs(kernel, program, model, configs)
    # Exercise the chunk merge too: a chunk size that never divides the
    # grid evenly forces multi-chunk streaming with a partial tail.
    for chunk_rows in (len(configs) + 1, 7):
        if not ref_cands:
            with pytest.raises(ValueError, match="no legal mapping"):
                explore_kernel_stream(
                    kernel, program, model, space, chunk_rows=chunk_rows
                )
            continue
        result = explore_kernel_stream(
            kernel, program, model, space, chunk_rows=chunk_rows
        )
        ref_best = min(ref_cands, key=lambda c: c.seconds)
        assert result.best.config == ref_best.config
        assert result.best.characteristics == ref_best.characteristics
        assert result.best.breakdown == ref_best.breakdown
        assert result.seconds == ref_best.seconds
        assert result.index == configs.index(ref_best.config)
        assert result.explored == len(ref_cands)
        assert result.skipped == len(ref_skipped)
