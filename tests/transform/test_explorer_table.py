"""Tests for the explorer's diagnostic table and the new arch preset."""

import pytest

from repro.gpu import (
    GpuPerformanceModel,
    quadro_fx_5600,
    tesla_c1060,
)
from repro.transform.explorer import explore_kernel
from repro.transform.space import TransformationSpace
from repro.workloads import HotSpot


@pytest.fixture(scope="module")
def projection():
    w = HotSpot()
    program = w.skeleton(w.dataset("512 x 512"))
    model = GpuPerformanceModel(quadro_fx_5600())
    return explore_kernel(program.kernels[0], program, model)


class TestSearchTable:
    def test_full_table(self, projection):
        table = projection.as_table()
        assert len(table.rows) == projection.search_width
        text = table.render()
        assert "<- best" in text
        assert "transformation search" in text

    def test_fastest_first(self, projection):
        table = projection.as_table(top=5)
        assert len(table.rows) == 5
        times = [float(r[1]) for r in table.rows]
        assert times == sorted(times)
        assert "<- best" in table.rows[0][0]

    def test_skipped_rows_included(self):
        w = HotSpot()
        program = w.skeleton(w.dataset("512 x 512"))
        model = GpuPerformanceModel(quadro_fx_5600())
        space = TransformationSpace(
            block_sizes=(256, 1024),  # 1024 unlaunchable on FX 5600
            shared_memory_options=(False,),
            unroll_factors=(1,),
        )
        proj = explore_kernel(program.kernels[0], program, model, space)
        text = proj.as_table().render()
        assert "skipped:" in text


class TestTeslaPreset:
    def test_parameters(self):
        arch = tesla_c1060()
        assert arch.num_sms == 30
        assert not arch.strict_coalescing

    def test_stencil_faster_than_g80(self):
        """Relaxed coalescing + more bandwidth: the stencil speeds up."""
        w = HotSpot()
        program = w.skeleton(w.dataset("1024 x 1024"))
        old = explore_kernel(
            program.kernels[0], program,
            GpuPerformanceModel(quadro_fx_5600()),
        )
        new = explore_kernel(
            program.kernels[0], program,
            GpuPerformanceModel(tesla_c1060()),
        )
        assert new.seconds < old.seconds


class TestBestMarkerSurvivesReconstruction:
    """Regression: the '<- best' marker used to hinge on ``candidate is
    self.best`` identity, which breaks once a cache round-trip or a
    merged parallel chunk rebuilds equal-but-distinct candidates."""

    def test_marker_with_rebuilt_best(self, projection):
        import dataclasses

        best = projection.best
        clone = dataclasses.replace(best)
        assert clone is not best and clone.config == best.config
        rebuilt = dataclasses.replace(projection, best=clone)
        text = rebuilt.as_table(top=3).render()
        assert "<- best" in text

    def test_marker_unique(self, projection):
        text = projection.as_table().render()
        assert text.count("<- best") == 1
