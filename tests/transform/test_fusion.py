"""Tests for iteration fusion (temporal blocking) and thread coarsening."""

import pytest

from repro.gpu.arch import quadro_fx_5600
from repro.gpu.model import GpuPerformanceModel
from repro.transform.fusion import (
    best_fusion,
    fused_characteristics,
    stencil_shape,
)
from repro.transform.space import MappingConfig, TransformationSpace
from repro.transform.synthesize import synthesize_characteristics
from repro.workloads import Cfd, HotSpot, Srad


@pytest.fixture(scope="module")
def hotspot_kernel():
    w = HotSpot()
    prog = w.skeleton(w.dataset("1024 x 1024"))
    return prog.kernels[0], prog.array_map


@pytest.fixture(scope="module")
def model():
    return GpuPerformanceModel(quadro_fx_5600())


class TestStencilShape:
    def test_hotspot_recognized(self, hotspot_kernel):
        kernel, arrays = hotspot_kernel
        shape = stencil_shape(kernel, arrays)
        assert shape is not None
        assert shape.array == "temp"
        assert shape.taps == 5
        assert shape.radius == 1
        assert shape.secondary_loads == pytest.approx(1.0)  # power

    def test_srad_prepare_recognized(self):
        w = Srad()
        prog = w.skeleton(w.dataset("1024 x 1024"))
        shape = stencil_shape(prog.kernel("srad_prepare"), prog.array_map)
        assert shape is not None and shape.array == "J"

    def test_cfd_gather_rejected(self):
        w = Cfd()
        prog = w.skeleton(w.datasets()[0])
        assert stencil_shape(prog.kernel("compute_flux"), prog.array_map) is None

    def test_one_dimensional_rejected(self):
        w = Cfd()
        prog = w.skeleton(w.datasets()[0])
        assert (
            stencil_shape(prog.kernel("time_step"), prog.array_map) is None
        )


class TestFusedCharacteristics:
    def test_traffic_decreases_with_fusion(self, hotspot_kernel):
        kernel, arrays = hotspot_kernel
        c1 = fused_characteristics(kernel, arrays, 1)
        c4 = fused_characteristics(kernel, arrays, 4)
        # Per launch covering 4 steps, global traffic is far below 4x.
        assert c4.mem_insts_per_thread < 2 * c1.mem_insts_per_thread

    def test_compute_and_syncs_grow(self, hotspot_kernel):
        kernel, arrays = hotspot_kernel
        c1 = fused_characteristics(kernel, arrays, 1)
        c4 = fused_characteristics(kernel, arrays, 4)
        assert c4.comp_insts_per_thread > 3 * c1.comp_insts_per_thread
        assert c4.syncs_per_thread == pytest.approx(8.0)
        assert c4.shared_mem_per_block > c1.shared_mem_per_block

    def test_rejects_non_stencil(self):
        w = Cfd()
        prog = w.skeleton(w.datasets()[0])
        with pytest.raises(ValueError, match="not a fusable"):
            fused_characteristics(
                prog.kernel("compute_flux"), prog.array_map, 2
            )

    def test_rejects_bad_factor(self, hotspot_kernel):
        kernel, arrays = hotspot_kernel
        with pytest.raises(ValueError):
            fused_characteristics(kernel, arrays, 0)


class TestBestFusion:
    def test_fusion_helps_hotspot(self, hotspot_kernel, model):
        kernel, arrays = hotspot_kernel
        choice = best_fusion(kernel, arrays, model)
        unfused = model.kernel_time(
            fused_characteristics(kernel, arrays, 1)
        )
        assert choice.fusion > 1
        assert choice.seconds_per_iteration < unfused

    def test_diminishing_returns(self, hotspot_kernel, model):
        """Per-iteration gains shrink as redundancy catches up."""
        kernel, arrays = hotspot_kernel
        times = []
        for t in (1, 2, 4, 8):
            chars = fused_characteristics(kernel, arrays, t)
            times.append(model.kernel_time(chars) / t)
        gain_early = times[0] / times[1]
        gain_late = times[2] / times[3]
        assert gain_early > gain_late

    def test_always_returns_legal_choice(self, hotspot_kernel, model):
        kernel, arrays = hotspot_kernel
        choice = best_fusion(kernel, arrays, model, max_fusion=1)
        assert choice.fusion == 1


class TestThreadCoarsening:
    def _stencil(self):
        w = HotSpot()
        prog = w.skeleton(w.dataset("512 x 512"))
        return prog.kernels[0], prog.array_map

    def test_coarsening_reduces_threads(self):
        kernel, arrays = self._stencil()
        base = synthesize_characteristics(kernel, arrays, MappingConfig())
        coarse = synthesize_characteristics(
            kernel, arrays, MappingConfig(coarsening=4)
        )
        assert coarse.threads == pytest.approx(base.threads / 4, abs=1)
        assert coarse.mem_insts_per_thread == pytest.approx(
            4 * base.mem_insts_per_thread
        )
        assert coarse.registers_per_thread > base.registers_per_thread

    def test_total_work_preserved(self):
        kernel, arrays = self._stencil()
        base = synthesize_characteristics(kernel, arrays, MappingConfig())
        coarse = synthesize_characteristics(
            kernel, arrays, MappingConfig(coarsening=2)
        )
        assert coarse.total_mem_insts == pytest.approx(
            base.total_mem_insts, rel=0.01
        )

    def test_wide_space_contains_coarsening(self):
        space = TransformationSpace.wide()
        assert len(space) == 8 * 2 * 3 * 3
        assert any(c.coarsening == 4 for c in space)

    def test_label(self):
        assert MappingConfig(64, coarsening=2).label() == "b64+c2"
