"""Tests for the fast exploration path and its explorer wiring."""

import pytest

from repro.gpu.arch import quadro_fx_5600, tesla_c1060
from repro.gpu.model import GpuPerformanceModel
from repro.skeleton import KernelBuilder, ProgramBuilder
from repro.transform.analysis import analyze_kernel
from repro.transform.explorer import explore_configs, explore_kernel
from repro.transform.fastpath import (
    explore_configs_fast,
    explore_kernel_fast,
)
from repro.transform.space import TransformationSpace
from repro.workloads import HotSpot


def stencil_program(n=512):
    pb = ProgramBuilder("p")
    pb.array("src", (n, n)).array("dst", (n, n))
    kb = KernelBuilder("stencil")
    kb.parallel_loop("i", n - 1, 1).parallel_loop("j", n - 1, 1)
    kb.load("src", "i", "j")
    kb.load("src", ("i", 1, -1), "j")
    kb.load("src", ("i", 1, 1), "j")
    kb.load("src", "i", ("j", 1, -1))
    kb.load("src", "i", ("j", 1, 1))
    kb.store("dst", "i", "j")
    kb.statement(flops=5)
    return pb.kernel(kb).build()


def assert_projections_equal(fast, ref):
    assert fast.kernel == ref.kernel
    assert fast.best.config == ref.best.config
    assert fast.best.seconds == ref.best.seconds
    assert len(fast.candidates) == len(ref.candidates)
    for fc, rc in zip(fast.candidates, ref.candidates):
        assert fc.config == rc.config
        assert fc.characteristics == rc.characteristics
        assert fc.breakdown == rc.breakdown
    assert fast.skipped == ref.skipped


class TestFastPathEquivalence:
    @pytest.mark.parametrize("arch_fn", [quadro_fx_5600, tesla_c1060])
    @pytest.mark.parametrize(
        "space", [TransformationSpace.default(), TransformationSpace.wide()]
    )
    def test_matches_reference(self, arch_fn, space):
        program = stencil_program()
        model = GpuPerformanceModel(arch_fn())
        kernel = program.kernels[0]
        fast = explore_kernel(
            kernel, program, model, space, explorer="fast"
        )
        ref = explore_kernel(
            kernel, program, model, space, explorer="reference"
        )
        assert_projections_equal(fast, ref)
        assert fast.pruned == ()
        assert ref.pruned == ()

    def test_shared_analysis_matches_per_chunk(self):
        """The service path precomputes once and scores chunks."""
        program = stencil_program()
        model = GpuPerformanceModel(quadro_fx_5600())
        kernel = program.kernels[0]
        configs = list(TransformationSpace.wide())
        analysis = analyze_kernel(
            kernel, program.array_map, model.arch.strict_coalescing
        )
        whole = explore_configs_fast(kernel, program, model, configs)
        half = len(configs) // 2
        first = explore_configs_fast(
            kernel, program, model, configs[:half], analysis=analysis
        )
        second = explore_configs_fast(
            kernel, program, model, configs[half:], analysis=analysis
        )
        assert whole[0] == first[0] + second[0]
        assert whole[1] == first[1] + second[1]


class TestPruning:
    def test_prune_preserves_best_and_partitions_grid(self):
        w = HotSpot()
        program = w.skeleton(w.dataset("512 x 512"))
        model = GpuPerformanceModel(quadro_fx_5600())
        kernel = program.kernels[0]
        space = TransformationSpace.wide()
        plain = explore_kernel_fast(kernel, program, model, space)
        pruned = explore_kernel_fast(
            kernel, program, model, space, prune=True
        )
        assert pruned.best.config == plain.best.config
        assert pruned.best.seconds == plain.best.seconds
        assert pruned.skipped == plain.skipped
        # Pruned rows are bookkept: the search width stays honest.
        assert len(pruned.candidates) + len(pruned.pruned) == len(
            plain.candidates
        )
        assert pruned.search_width == plain.search_width == len(
            list(space)
        )
        surviving = {c.config for c in pruned.candidates}
        for config, reason in pruned.pruned:
            assert config not in surviving
            assert "lower bound" in reason


class TestExplorerSelection:
    def test_unknown_explorer_rejected(self):
        program = stencil_program()
        model = GpuPerformanceModel(quadro_fx_5600())
        with pytest.raises(ValueError, match="unknown explorer"):
            explore_kernel(
                program.kernels[0], program, model, explorer="turbo"
            )

    def test_no_legal_mapping_raises_same_error(self):
        program = stencil_program()
        model = GpuPerformanceModel(quadro_fx_5600())
        space = TransformationSpace(
            block_sizes=(1024,),  # unlaunchable on the FX 5600
            shared_memory_options=(False,),
            unroll_factors=(1,),
        )
        with pytest.raises(ValueError) as fast_err:
            explore_kernel(
                program.kernels[0], program, model, space, explorer="fast"
            )
        with pytest.raises(ValueError) as ref_err:
            explore_kernel(
                program.kernels[0], program, model, space,
                explorer="reference",
            )
        assert str(fast_err.value) == str(ref_err.value)
