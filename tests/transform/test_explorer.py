"""Tests for the transformation space and explorer."""

import pytest

from repro.gpu.arch import quadro_fx_5600
from repro.gpu.model import GpuPerformanceModel
from repro.skeleton import KernelBuilder, ProgramBuilder
from repro.transform.explorer import explore_kernel, project_program
from repro.transform.space import MappingConfig, TransformationSpace


def stencil_program(n=512):
    pb = ProgramBuilder("p")
    pb.array("src", (n, n)).array("dst", (n, n))
    kb = KernelBuilder("stencil")
    kb.parallel_loop("i", n - 1, 1).parallel_loop("j", n - 1, 1)
    kb.load("src", "i", "j")
    kb.load("src", ("i", 1, -1), "j")
    kb.load("src", ("i", 1, 1), "j")
    kb.load("src", "i", ("j", 1, -1))
    kb.load("src", "i", ("j", 1, 1))
    kb.store("dst", "i", "j")
    kb.statement(flops=5)
    return pb.kernel(kb).build()


class TestMappingConfig:
    def test_label(self):
        assert MappingConfig(128).label() == "b128"
        assert (
            MappingConfig(64, use_shared_memory=True, unroll=4).label()
            == "b64+smem+u4"
        )

    def test_warp_multiple_required(self):
        with pytest.raises(ValueError):
            MappingConfig(100)

    def test_positive_unroll(self):
        with pytest.raises(ValueError):
            MappingConfig(64, unroll=0)


class TestTransformationSpace:
    def test_default_size(self):
        space = TransformationSpace.default()
        assert len(space) == 8 * 2 * 3
        assert len(list(space)) == len(space)

    def test_naive_single_config(self):
        naive = TransformationSpace.naive()
        assert len(naive) == 1
        (config,) = list(naive)
        assert config == MappingConfig(256, False, 1)

    def test_rejects_empty_dimensions(self):
        with pytest.raises(ValueError):
            TransformationSpace(block_sizes=())


class TestExploreKernel:
    def setup_method(self):
        self.model = GpuPerformanceModel(quadro_fx_5600())
        self.program = stencil_program()

    def test_best_is_minimum(self):
        proj = explore_kernel(
            self.program.kernels[0], self.program, self.model
        )
        assert proj.best.seconds == min(c.seconds for c in proj.candidates)
        assert proj.seconds == proj.best.seconds

    def test_space_fully_enumerated(self):
        space = TransformationSpace.default()
        proj = explore_kernel(
            self.program.kernels[0], self.program, self.model, space
        )
        assert proj.search_width == len(space)

    def test_search_beats_naive(self):
        kernel = self.program.kernels[0]
        full = explore_kernel(kernel, self.program, self.model)
        naive = explore_kernel(
            kernel, self.program, self.model, TransformationSpace.naive()
        )
        assert full.seconds <= naive.seconds

    def test_illegal_configs_skipped(self):
        # A space with an unlaunchable block size still succeeds.
        space = TransformationSpace(
            block_sizes=(256, 1024),  # 1024 > 768 threads/SM on FX 5600
            shared_memory_options=(False,),
            unroll_factors=(1,),
        )
        proj = explore_kernel(
            self.program.kernels[0], self.program, self.model, space
        )
        assert len(proj.skipped) == 1
        assert "768" in proj.skipped[0][1]

    def test_all_illegal_raises(self):
        space = TransformationSpace(
            block_sizes=(1024,),
            shared_memory_options=(False,),
            unroll_factors=(1,),
        )
        with pytest.raises(ValueError, match="no legal mapping"):
            explore_kernel(
                self.program.kernels[0], self.program, self.model, space
            )


class TestProjectProgram:
    def test_sums_kernels(self):
        pb = ProgramBuilder("two")
        pb.array("a", (4096,)).array("b", (4096,)).array("c", (4096,))
        k1 = KernelBuilder("k1").parallel_loop("i", 4096)
        k1.load("a", "i").store("b", "i").statement(flops=1)
        k2 = KernelBuilder("k2").parallel_loop("i", 4096)
        k2.load("b", "i").store("c", "i").statement(flops=1)
        program = pb.kernel(k1).kernel(k2).build()
        model = GpuPerformanceModel(quadro_fx_5600())
        proj = project_program(program, model)
        assert len(proj.kernels) == 2
        assert proj.seconds == pytest.approx(
            sum(k.seconds for k in proj.kernels)
        )
        assert proj.kernel("k1").kernel == "k1"
        with pytest.raises(KeyError):
            proj.kernel("zzz")


class TestSynthesisErrorsAreSkips:
    """Regression: a ValueError raised inside synthesize_characteristics
    (not just inside model.breakdown) must mark the config as skipped
    instead of aborting the exploration."""

    def serial_only_program(self):
        pb = ProgramBuilder("serial")
        pb.array("a", (64, 1)).array("b", (64, 1))
        kb = KernelBuilder("no_parallel")
        kb.loop("k", 64)
        kb.load("a", "k", 0).store("b", "k", 0).statement(flops=1)
        return pb.kernel(kb).build()

    def test_explore_configs_records_synthesis_rejections(self):
        from repro.transform.explorer import explore_configs

        program = self.serial_only_program()
        model = GpuPerformanceModel(quadro_fx_5600())
        space = TransformationSpace.default()
        candidates, skipped = explore_configs(
            program.kernels[0], program, model, space.configs()
        )
        assert candidates == []
        assert len(skipped) == len(space)
        for _, reason in skipped:
            assert "no parallel loop" in reason

    def test_explore_kernel_raises_no_legal_mapping(self):
        program = self.serial_only_program()
        model = GpuPerformanceModel(quadro_fx_5600())
        for explorer in ("fast", "reference"):
            with pytest.raises(ValueError, match="no legal mapping"):
                explore_kernel(
                    program.kernels[0], program, model, explorer=explorer
                )
