"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def run_cli(*argv: str) -> tuple[int, str]:
    lines: list[str] = []
    code = main(list(argv), out=lambda s: lines.append(str(s)))
    return code, "\n".join(lines)


class TestListCommand:
    def test_lists_all_workloads(self):
        code, out = run_cli("list")
        assert code == 0
        for name in ("CFD", "HotSpot", "SRAD", "Stassuij", "VectorAdd"):
            assert name in out
        assert "97K" in out


class TestCalibrateCommand:
    def test_prints_both_directions(self):
        code, out = run_cli("calibrate")
        assert code == 0
        assert "host->device" in out and "device->host" in out
        assert "GB/s" in out

    def test_seed_changes_numbers(self):
        _, a = run_cli("--seed", "1", "calibrate")
        _, b = run_cli("--seed", "2", "calibrate")
        assert a != b


class TestProjectCommand:
    def test_stassuij_verdict(self):
        code, out = run_cli("project", "Stassuij")
        assert code == 0
        assert "NOT worth porting" in out
        assert "kernel-only would claim" in out

    def test_iterative_verdict_flips(self):
        _, one = run_cli("project", "SRAD", "--iterations", "1")
        _, many = run_cli("project", "SRAD", "--iterations", "100")
        assert "speedup" in one and "speedup" in many

    def test_dataset_selection(self):
        code, out = run_cli("project", "HotSpot", "--dataset", "64 x 64")
        assert code == 0
        assert "64 x 64" in out

    def test_allocation_flag(self):
        code, out = run_cli("project", "SRAD", "--allocation")
        assert code == 0
        assert "allocation time" in out

    def test_unknown_workload(self):
        code, out = run_cli("project", "nope")
        assert code == 2
        assert "error" in out.lower()


class TestProjectFileCommand:
    def test_bundled_skeleton(self):
        code, out = run_cli(
            "project-file", "examples/skeletons/jacobi2d.skel",
            "--cpu-ms", "11",
        )
        assert code == 0
        assert "jacobi2d" in out
        assert "transfer:" in out
        assert "speedup" in out

    def test_without_cpu_time_no_verdict(self):
        code, out = run_cli(
            "project-file", "examples/skeletons/spmv.skel"
        )
        assert code == 0
        assert "worth porting" not in out

    def test_iterations_flag(self):
        code, out = run_cli(
            "project-file", "examples/skeletons/jacobi2d.skel",
            "--iterations", "50",
        )
        assert code == 0
        assert "50 iteration(s)" in out


class TestAdviseCommand:
    def test_small_hotspot_prefers_pageable(self):
        code, out = run_cli("advise", "HotSpot", "--dataset", "64 x 64")
        assert code == 0
        assert "pageable" in out

    def test_reuses_flip_recommendation(self):
        code, out = run_cli(
            "advise", "HotSpot", "--dataset", "64 x 64", "--reuses", "100"
        )
        assert code == 0
        assert "use pinned" in out


class TestArtifactsCommand:
    def test_writes_directory(self, tmp_path):
        code, out = run_cli("artifacts", str(tmp_path), "--no-charts")
        assert code == 0
        assert "wrote" in out
        assert (tmp_path / "summary.md").exists()
        assert (tmp_path / "table2.md").exists()


class TestExperimentCommand:
    @pytest.mark.parametrize("exp", ["table1", "table2"])
    def test_tables(self, exp):
        code, out = run_cli("experiment", exp)
        assert code == 0
        assert "CFD" in out and "Stassuij" in out

    def test_markdown_format(self):
        code, out = run_cli("experiment", "table2", "--format", "markdown")
        assert code == 0
        assert "| Application |" in out

    def test_csv_format(self):
        code, out = run_cli("experiment", "table1", "--format", "csv")
        assert code == 0
        assert out.splitlines()[0].startswith("Application,")

    def test_figure_chart(self):
        code, out = run_cli("experiment", "fig12", "--chart")
        assert code == 0
        assert "log x" in out and "measured" in out

    def test_figure_table(self):
        code, out = run_cli("experiment", "fig8")
        assert code == 0
        assert "iterations" in out

    def test_compare_experiment(self):
        code, out = run_cli("experiment", "compare")
        assert code == 0
        assert "metrics within tolerance" in out
        assert "Stassuij measured speedup" in out

    def test_chart_fallback_for_tables(self):
        code, out = run_cli("experiment", "table1", "--chart")
        assert code == 0
        assert "no chart form" in out

    def test_bad_experiment_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("experiment", "fig99")
