"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


def run_cli(*argv: str) -> tuple[int, str]:
    lines: list[str] = []
    code = main(
        list(argv),
        out=lambda s: lines.append(str(s)),
        err=lambda s: lines.append(str(s)),
    )
    return code, "\n".join(lines)


def run_cli_split(*argv: str) -> tuple[int, str, str]:
    """Like run_cli but with stdout and stderr captured separately."""
    out_lines: list[str] = []
    err_lines: list[str] = []
    code = main(
        list(argv),
        out=lambda s: out_lines.append(str(s)),
        err=lambda s: err_lines.append(str(s)),
    )
    return code, "\n".join(out_lines), "\n".join(err_lines)


class TestListCommand:
    def test_lists_all_workloads(self):
        code, out = run_cli("list")
        assert code == 0
        for name in ("CFD", "HotSpot", "SRAD", "Stassuij", "VectorAdd"):
            assert name in out
        assert "97K" in out


class TestCalibrateCommand:
    def test_prints_both_directions(self):
        code, out = run_cli("calibrate")
        assert code == 0
        assert "host->device" in out and "device->host" in out
        assert "GB/s" in out

    def test_seed_changes_numbers(self):
        _, a = run_cli("--seed", "1", "calibrate")
        _, b = run_cli("--seed", "2", "calibrate")
        assert a != b


class TestProjectCommand:
    def test_stassuij_verdict(self):
        code, out = run_cli("project", "Stassuij")
        assert code == 0
        assert "NOT worth porting" in out
        assert "kernel-only would claim" in out

    def test_iterative_verdict_flips(self):
        _, one = run_cli("project", "SRAD", "--iterations", "1")
        _, many = run_cli("project", "SRAD", "--iterations", "100")
        assert "speedup" in one and "speedup" in many

    def test_dataset_selection(self):
        code, out = run_cli("project", "HotSpot", "--dataset", "64 x 64")
        assert code == 0
        assert "64 x 64" in out

    def test_allocation_flag(self):
        code, out = run_cli("project", "SRAD", "--allocation")
        assert code == 0
        assert "allocation time" in out

    def test_unknown_workload(self):
        code, out = run_cli("project", "nope")
        assert code == 2
        assert "error" in out.lower()


class TestErrorHandling:
    """User-caused failures: one line on stderr, exit 2, no traceback."""

    def test_unknown_workload_goes_to_stderr(self):
        code, out, err = run_cli_split("project", "nope")
        assert code == 2
        assert out == ""
        assert err.startswith("error: ")
        assert len(err.splitlines()) == 1
        assert "unknown workload" in err

    def test_unknown_dataset(self):
        code, _, err = run_cli_split(
            "project", "HotSpot", "--dataset", "9999 x 9999"
        )
        assert code == 2
        assert err.startswith("error: ")
        assert "no dataset" in err

    def test_missing_skeleton_file(self):
        code, _, err = run_cli_split("project-file", "/no/such/file.skel")
        assert code == 2
        assert err.startswith("error: ")
        assert "/no/such/file.skel" in err

    def test_unparsable_skeleton_file(self, tmp_path):
        bad = tmp_path / "bad.skel"
        bad.write_text("program broken\nwat is this\n")
        code, _, err = run_cli_split("project-file", str(bad))
        assert code == 2
        assert err.startswith("error: ")
        assert len(err.splitlines()) == 1
        assert "line 2" in err

    def test_default_err_writes_to_stderr(self, capsys):
        code = main(["project", "nope"], out=lambda s: None)
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: ")

    def test_advise_unknown_workload(self):
        code, _, err = run_cli_split("advise", "nope")
        assert code == 2
        assert "unknown workload" in err


class TestProjectFileCommand:
    def test_bundled_skeleton(self):
        code, out = run_cli(
            "project-file", "examples/skeletons/jacobi2d.skel",
            "--cpu-ms", "11",
        )
        assert code == 0
        assert "jacobi2d" in out
        assert "transfer:" in out
        assert "speedup" in out

    def test_without_cpu_time_no_verdict(self):
        code, out = run_cli(
            "project-file", "examples/skeletons/spmv.skel"
        )
        assert code == 0
        assert "worth porting" not in out

    def test_iterations_flag(self):
        code, out = run_cli(
            "project-file", "examples/skeletons/jacobi2d.skel",
            "--iterations", "50",
        )
        assert code == 0
        assert "50 iteration(s)" in out


class TestAdviseCommand:
    def test_small_hotspot_prefers_pageable(self):
        code, out = run_cli("advise", "HotSpot", "--dataset", "64 x 64")
        assert code == 0
        assert "pageable" in out

    def test_reuses_flip_recommendation(self):
        code, out = run_cli(
            "advise", "HotSpot", "--dataset", "64 x 64", "--reuses", "100"
        )
        assert code == 0
        assert "use pinned" in out


class TestSweepCommand:
    def test_size_axis_default(self):
        code, out = run_cli("sweep", "CFD")
        assert code == 0
        assert "size sweep" in out
        for label in ("97K", "193K", "233K"):
            assert label in out
        assert "served:" in out

    def test_check_flag_runs_oracle(self):
        code, out = run_cli("sweep", "CFD", "--check")
        assert code == 0
        assert "checked against the per-point pipeline" in out

    def test_iterations_axis(self):
        code, out = run_cli("sweep", "HotSpot", "--axis", "iterations")
        assert code == 0
        assert "vs iterations" in out
        assert "crossover" in out

    def test_iterations_axis_rejects_non_iterative(self):
        code, out = run_cli("sweep", "Stassuij", "--axis", "iterations")
        assert code == 2
        assert "error:" in out

    def test_bus_axis(self):
        code, out = run_cli("sweep", "Stassuij", "--axis", "bus")
        assert code == 0
        for generation in (1, 2, 3):
            assert f"PCIe gen {generation}" in out

    def test_bus_axis_dataset_selection(self):
        code, out = run_cli(
            "sweep", "HotSpot", "--axis", "bus", "--dataset", "512 x 512"
        )
        assert code == 0
        assert "512 x 512" in out

    def test_unknown_workload(self):
        code, out = run_cli("sweep", "Nope")
        assert code == 2
        assert "error:" in out and "unknown workload" in out

    def test_arch_axis_all(self):
        code, out = run_cli("sweep", "VectorAdd", "--arch", "all")
        assert code == 0
        assert "what-if across 7 architecture(s)" in out
        for arch_id in ("quadro_fx_5600", "gtx_280", "pascal_p100"):
            assert arch_id in out
        assert "[best]" in out or ", best]" in out or "best]" in out
        assert "coalescing group(s)" in out

    def test_arch_axis_check_flag(self):
        code, out = run_cli(
            "sweep", "HotSpot", "--arch", "gtx_280",
            "--arch", "kepler_k20", "--check",
        )
        assert code == 0
        assert "checked against the per-arch pipeline" in out
        assert "PCIe gen 2" in out

    def test_arch_axis_argmin(self):
        code, out = run_cli(
            "sweep", "VectorAdd", "--arch", "all", "--argmin"
        )
        assert code == 0
        assert "best of 7 architecture(s)" in out
        assert "pascal_p100" in out

    def test_arch_axis_unknown_id_is_structured(self):
        code, out, err = run_cli_split(
            "sweep", "VectorAdd", "--arch", "volta_v100"
        )
        assert code == 2
        assert out == ""
        assert err.startswith("error: ")
        assert "unknown architecture" in err
        assert "field: arch" in err
        assert "hint:" in err and "quadro_fx_5600" in err

    def test_arch_axis_rejects_other_axes(self):
        code, _, err = run_cli_split(
            "sweep", "HotSpot", "--arch", "all", "--axis", "bus"
        )
        assert code == 2
        assert "drop --axis" in err


class TestArchCommand:
    def test_list_shows_the_fleet(self):
        code, out = run_cli("arch", "list")
        assert code == 0
        from repro.gpu.registry import arch_ids

        for arch_id in arch_ids():
            assert arch_id in out
        assert "[calibrated]" in out and "[nominal]" in out
        assert "docs/ARCHITECTURES.md" in out

    def test_list_is_chronological(self):
        _, out = run_cli("arch", "list")
        assert out.index("quadro_fx_5600") < out.index("fermi_gtx_480")
        assert out.index("fermi_gtx_480") < out.index("pascal_p100")

    def test_show_calibrated_board(self):
        code, out = run_cli("arch", "show", "quadro_fx_5600")
        assert code == 0
        assert "Quadro FX 5600" in out
        assert "published measurements" in out
        assert "paired bus: PCIe gen 1" in out
        assert "coalescing strict" in out
        assert "none (texture-only caching)" in out
        assert "fingerprint: " in out

    def test_show_nominal_board(self):
        code, out = run_cli("arch", "show", "pascal_p100")
        assert code == 0
        assert "HBM2" in out
        assert "what-if trends only" in out
        assert "paired bus: PCIe gen 3" in out

    def test_show_is_case_insensitive(self):
        code, out = run_cli("arch", "show", "PASCAL_P100")
        assert code == 0
        assert "Tesla P100" in out

    def test_show_fingerprint_matches_registry(self):
        from repro.gpu.registry import get_spec

        _, out = run_cli("arch", "show", "kepler_k20")
        assert get_spec("kepler_k20").fingerprint() in out

    def test_show_unknown_id_is_structured(self):
        code, out, err = run_cli_split("arch", "show", "volta_v100")
        assert code == 2
        assert out == ""
        assert err.startswith("error: ")
        assert "unknown architecture" in err
        assert "field: arch" in err
        assert "pascal_p100" in err


class TestBatchCommand:
    @pytest.fixture()
    def requests_file(self, tmp_path):
        lines = [
            {"id": "hs", "workload": "HotSpot", "dataset": "64 x 64"},
            {"id": "va", "workload": "VectorAdd"},
            {"id": "bad", "workload": "NoSuchWorkload"},
        ]
        path = tmp_path / "requests.jsonl"
        path.write_text(
            "".join(json.dumps(line) + "\n" for line in lines)
        )
        return path

    def test_end_to_end(self, requests_file, tmp_path):
        out_path = tmp_path / "results.jsonl"
        code, out = run_cli(
            "batch", str(requests_file), "-o", str(out_path)
        )
        assert code == 0
        assert "ok 2, errors 1" in out
        records = [
            json.loads(line)
            for line in out_path.read_text().splitlines()
        ]
        assert [r["id"] for r in records] == ["hs", "va", "bad"]
        assert records[0]["ok"] and records[1]["ok"]
        assert not records[2]["ok"]
        assert "NoSuchWorkload" in records[2]["error"]

    def test_second_run_hits_cache(self, requests_file, tmp_path):
        args = (
            "batch", str(requests_file),
            "-o", str(tmp_path / "r.jsonl"),
            "--cache-dir", str(tmp_path / "cache"),
        )
        run_cli(*args)
        code, out = run_cli(*args)
        assert code == 0
        assert "cache hits 2/3" in out

    def test_no_cache_flag(self, requests_file, tmp_path):
        code, out = run_cli(
            "batch", str(requests_file),
            "-o", str(tmp_path / "r.jsonl"), "--no-cache",
        )
        assert code == 0
        assert "cache:" not in out

    def test_missing_requests_file(self):
        code, _, err = run_cli_split("batch", "/no/such/requests.jsonl")
        assert code == 2
        assert err.startswith("error: ")
        assert "requests" in err


class TestCacheStatsCommand:
    def test_empty_directory(self, tmp_path):
        code, out = run_cli("cache-stats", str(tmp_path / "nope"))
        assert code == 0
        assert "0 entr(ies)" in out

    def test_populated_directory(self, tmp_path):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            json.dumps({"id": "va", "workload": "VectorAdd"}) + "\n"
        )
        cache_dir = tmp_path / "cache"
        run_cli(
            "batch", str(requests),
            "-o", str(tmp_path / "r.jsonl"),
            "--cache-dir", str(cache_dir),
        )
        code, out = run_cli("cache-stats", str(cache_dir))
        assert code == 0
        assert "1 entr(ies)" in out


class TestArtifactsCommand:
    def test_writes_directory(self, tmp_path):
        code, out = run_cli("artifacts", str(tmp_path), "--no-charts")
        assert code == 0
        assert "wrote" in out
        assert (tmp_path / "summary.md").exists()
        assert (tmp_path / "table2.md").exists()


class TestExperimentCommand:
    @pytest.mark.parametrize("exp", ["table1", "table2"])
    def test_tables(self, exp):
        code, out = run_cli("experiment", exp)
        assert code == 0
        assert "CFD" in out and "Stassuij" in out

    def test_markdown_format(self):
        code, out = run_cli("experiment", "table2", "--format", "markdown")
        assert code == 0
        assert "| Application |" in out

    def test_csv_format(self):
        code, out = run_cli("experiment", "table1", "--format", "csv")
        assert code == 0
        assert out.splitlines()[0].startswith("Application,")

    def test_figure_chart(self):
        code, out = run_cli("experiment", "fig12", "--chart")
        assert code == 0
        assert "log x" in out and "measured" in out

    def test_figure_table(self):
        code, out = run_cli("experiment", "fig8")
        assert code == 0
        assert "iterations" in out

    def test_compare_experiment(self):
        code, out = run_cli("experiment", "compare")
        assert code == 0
        assert "metrics within tolerance" in out
        assert "Stassuij measured speedup" in out

    def test_chart_fallback_for_tables(self):
        code, out = run_cli("experiment", "table1", "--chart")
        assert code == 0
        assert "no chart form" in out

    def test_bad_experiment_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("experiment", "fig99")


class TestTraceCommand:
    @pytest.fixture()
    def skeleton(self, tmp_path):
        import shutil

        src = "examples/skeletons/jacobi2d.skel"
        dst = tmp_path / "jacobi2d.skel"
        shutil.copy(src, dst)
        return dst

    def test_writes_perfetto_loadable_chrome_trace(self, skeleton):
        code, out = run_cli("trace", str(skeleton))
        assert code == 0
        trace_path = skeleton.with_suffix(".trace.json")
        assert trace_path.is_file()
        doc = json.loads(trace_path.read_text())
        events = doc["traceEvents"]
        assert events
        for event in events:
            for key in ("name", "cat", "ph", "ts", "dur", "pid", "tid"):
                assert key in event, key
        names = {event["name"] for event in events}
        assert {"project", "search", "transfer-planning",
                "integrate"} <= names
        assert "span(s)" in out
        assert "provenance for jacobi2d" in out

    def test_jsonl_export(self, skeleton, tmp_path):
        target = tmp_path / "spans.jsonl"
        code, out = run_cli(
            "trace", str(skeleton), "--jsonl", "-o", str(target),
            "--no-provenance",
        )
        assert code == 0
        rows = [json.loads(line) for line in target.read_text().splitlines()]
        assert {row["name"] for row in rows} >= {"project", "search"}
        assert "provenance" not in out

    def test_missing_skeleton_is_a_user_error(self):
        code, _, err = run_cli_split("trace", "/no/such.skel")
        assert code == 2
        assert err.startswith("error: ")


class TestMetricsCommand:
    def test_json_snapshot(self):
        code, out = run_cli("metrics")
        assert code == 0
        snap = json.loads(out)
        assert snap["counters"]["requests"] >= 2
        assert snap["counters"]["cache_hits"] >= 1
        explore = snap["timers"]["explore"]
        assert explore["calls"] >= 1
        assert "p95" in explore

    def test_prometheus_exposition_parses(self):
        from repro.obs.prometheus import parse_exposition

        code, out = run_cli("metrics", "--prometheus")
        assert code == 0
        samples = list(parse_exposition(out))
        names = {name for name, _, _ in samples}
        assert "repro_requests_total" in names
        assert "repro_stage_duration_seconds_sum" in names

    def test_unknown_workload_rejected(self):
        code, _, err = run_cli_split("metrics", "--workload", "Nope")
        assert code == 2
        assert "unknown workload" in err

    def test_json_flag_is_the_explicit_default(self):
        code, out = run_cli("metrics", "--json")
        assert code == 0
        snap = json.loads(out)
        assert snap["counters"]["requests"] >= 2

    def test_json_and_prometheus_are_mutually_exclusive(self):
        code, _, err = run_cli_split(
            "metrics", "--json", "--prometheus"
        )
        assert code == 2
        assert "mutually exclusive" in err


class TestCacheHitRates:
    def test_batch_and_cache_stats_report_hit_rates(self, tmp_path):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            json.dumps({"id": "va", "workload": "VectorAdd"}) + "\n"
        )
        cache_dir = tmp_path / "cache"
        args = (
            "batch", str(requests),
            "-o", str(tmp_path / "r.jsonl"),
            "--cache-dir", str(cache_dir),
        )
        _, first = run_cli(*args)
        assert "(0.0% hit rate)" in first
        _, second = run_cli(*args)
        assert "(100.0% hit rate)" in second
        code, out = run_cli("cache-stats", str(cache_dir))
        assert code == 0
        assert "projection hit rate: 50.0%" in out
        assert "kernel hit rate:" in out
        assert "over 2 run(s)" in out

    def test_cache_stats_without_meta_has_no_rates(self, tmp_path):
        code, out = run_cli("cache-stats", str(tmp_path))
        assert code == 0
        assert "hit rate" not in out

    def test_rates_guard_zero_lookups(self, tmp_path):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            json.dumps({"id": "x", "workload": "NoSuchWorkload"}) + "\n"
        )
        cache_dir = tmp_path / "cache"
        code, out = run_cli(
            "batch", str(requests),
            "-o", str(tmp_path / "r.jsonl"),
            "--cache-dir", str(cache_dir),
        )
        assert code == 0
        assert "%" not in out.split("cache:")[1]
        code, out = run_cli("cache-stats", str(cache_dir))
        assert code == 0
        assert "n/a (no lookups)" in out
