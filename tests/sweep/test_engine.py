"""Sweep-engine equivalence: every point equals the per-point pipeline.

The contract under test (``docs/SWEEP.md``): projections served through
the shared-structure fast path are *dataclass-equal* to projecting each
point individually — full candidate tables included — and every
certificate failure falls back to the exact pipeline rather than
approximating.
"""

import pytest

from repro.core.projector import GrophecyPlusPlus
from repro.gpu.arch import quadro_fx_5600
from repro.pcie.presets import bus_for_generation, pcie_gen1_bus
from repro.sweep import SweepEngine
from repro.transform.space import TransformationSpace
from repro.workloads.base import Dataset
from repro.workloads.cfd import Cfd
from repro.workloads.registry import get_workload, paper_workloads


@pytest.fixture(scope="module")
def space():
    return TransformationSpace.default()


def _pair(space, **kwargs):
    """A sweep engine and its per-point oracle, identically configured."""
    batched = kwargs.pop("batched_transfers", False)
    prune = kwargs.pop("prune", False)
    assert not kwargs
    sweep = SweepEngine(
        quadro_fx_5600(),
        pcie_gen1_bus(),
        space,
        batched_transfers=batched,
        prune=prune,
    )
    point = GrophecyPlusPlus(
        quadro_fx_5600(),
        pcie_gen1_bus(),
        space,
        batched_transfers=batched,
        prune=prune,
    )
    return sweep, point


class TestWorkloadEquivalence:
    @pytest.mark.parametrize(
        "name", [w.name for w in paper_workloads()]
    )
    def test_figure_sweeps_equal_per_point(self, space, name):
        workload = get_workload(name)
        sweep, point = _pair(space)
        swept = sweep.sweep_workload(workload)
        for dataset, projection in zip(workload.datasets(), swept):
            exact = point.project(
                workload.skeleton(dataset), workload.hints(dataset)
            )
            assert projection == exact, (name, dataset.label)

    @pytest.mark.parametrize(
        "variant",
        [{"prune": True}, {"batched_transfers": True}],
        ids=["prune", "batched"],
    )
    def test_variants_equal_per_point(self, space, variant):
        workload = Cfd()
        sweep, point = _pair(space, **variant)
        swept = sweep.sweep_workload(workload)
        for dataset, projection in zip(workload.datasets(), swept):
            exact = point.project(
                workload.skeleton(dataset), workload.hints(dataset)
            )
            assert projection == exact, dataset.label

    def test_check_mode_passes_on_paper_workloads(self, space):
        sweep, _ = _pair(space)
        for workload in paper_workloads():
            sweep.sweep_workload(workload, check=True)


class TestManyPointSweep:
    POINTS = 8

    def _inputs(self, workload):
        datasets = [
            Dataset(str(i), 90_000 + 4_096 * i) for i in range(self.POINTS)
        ]
        programs = [workload.skeleton(d) for d in datasets]
        hints = [workload.hints(d) for d in datasets]
        sizes = [d.size for d in datasets]
        return programs, hints, sizes

    def test_template_serves_non_anchor_points(self, space):
        sweep, point = _pair(space)
        programs, hints, sizes = self._inputs(Cfd())
        swept = sweep.sweep(programs, hints=hints, sizes=sizes)
        assert sweep.stats == {
            "points": self.POINTS,
            "kernels_shared": 1,
            "plans_from_template": self.POINTS - 3,
            "plans_exact": 3,
        }
        for program, hint, projection in zip(programs, hints, swept):
            assert projection == point.project(program, hint)

    def test_without_size_axis_every_plan_is_exact(self, space):
        sweep, point = _pair(space)
        programs, hints, _ = self._inputs(Cfd())
        swept = sweep.sweep(programs, hints=hints)
        assert sweep.stats["plans_from_template"] == 0
        assert sweep.stats["plans_exact"] == self.POINTS
        assert sweep.stats["kernels_shared"] == 1
        for program, hint, projection in zip(programs, hints, swept):
            assert projection == point.project(program, hint)

    def test_misleading_size_axis_falls_back_exactly(self, space):
        """A size axis that does not describe the programs (all points
        claim the same size) breaks the anchor certificate; every
        non-anchor plan must then come from the exact analyzer — and the
        results must not change."""
        sweep, point = _pair(space)
        programs, hints, _ = self._inputs(Cfd())
        swept = sweep.sweep(
            programs, hints=hints, sizes=[7] * self.POINTS
        )
        assert sweep.stats["plans_from_template"] == 0
        for program, hint, projection in zip(programs, hints, swept):
            assert projection == point.project(program, hint)

    def test_structurally_mixed_sweep_falls_back_exactly(self, space):
        """Points with different kernel structure share nothing; the
        engine must run the whole per-point pipeline for each."""
        sweep, point = _pair(space)
        mixed = []
        for workload in (Cfd(), get_workload("HotSpot")):
            dataset = workload.datasets()[0]
            mixed.append(
                (workload.skeleton(dataset), workload.hints(dataset))
            )
        swept = sweep.sweep(
            [p for p, _ in mixed], hints=[h for _, h in mixed]
        )
        assert sweep.stats["kernels_shared"] == 0
        for (program, hint), projection in zip(mixed, swept):
            assert projection == point.project(program, hint)


class TestSweepValidation:
    def test_empty_sweep(self, space):
        sweep, _ = _pair(space)
        assert sweep.sweep([]) == []

    def test_mismatched_hints_raise(self, space):
        sweep, _ = _pair(space)
        workload = Cfd()
        programs = [workload.skeleton(d) for d in workload.datasets()]
        with pytest.raises(ValueError, match="hints"):
            sweep.sweep(programs, hints=[None])

    def test_mismatched_sizes_raise(self, space):
        sweep, _ = _pair(space)
        workload = Cfd()
        programs = [workload.skeleton(d) for d in workload.datasets()]
        with pytest.raises(ValueError, match="sizes"):
            sweep.sweep(programs, sizes=[1, 2])


class TestBusSweep:
    def test_bus_sweep_matches_direct_pricing(self, space):
        sweep, point = _pair(space)
        workload = Cfd()
        dataset = workload.datasets()[-1]
        plan = point.project(
            workload.skeleton(dataset), workload.hints(dataset)
        ).plan
        buses = [bus_for_generation(g) for g in (1, 2, 3)]
        points = sweep.sweep_buses(plan, buses)
        for bus, swept in zip(buses, points):
            per = tuple(bus.predict_plan_by_transfer(plan))
            assert swept.per_transfer_seconds == per
            assert swept.transfer_seconds == sum(per)
            assert swept.bus is bus
        # Newer generations move the same plan strictly faster.
        assert (
            points[0].transfer_seconds
            > points[1].transfer_seconds
            > points[2].transfer_seconds
        )
