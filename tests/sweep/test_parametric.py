"""Exact-affine-fit properties (the sweep engine's numeric foundation)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sweep.parametric import AffineInt, fit_affine


class TestAffineInt:
    def test_exact_integer_eval(self):
        line = AffineInt(Fraction(3), Fraction(-2))
        assert line.try_eval(5) == 13

    def test_fractional_eval_is_none(self):
        """Slope 1/2 lands between integers at odd x — no silent rounding."""
        line = AffineInt(Fraction(1, 2), Fraction(0))
        assert line.try_eval(4) == 2
        assert line.try_eval(5) is None

    def test_is_constant(self):
        assert AffineInt(Fraction(0), Fraction(7)).is_constant
        assert not AffineInt(Fraction(1), Fraction(7)).is_constant


class TestFitAffine:
    def test_single_sample_fits_constant(self):
        fit = fit_affine([10], [42])
        assert fit == AffineInt(Fraction(0), Fraction(42))

    def test_constant_over_distinct_xs(self):
        fit = fit_affine([1, 5, 9], [7, 7, 7])
        assert fit is not None and fit.is_constant

    def test_conflicting_duplicate_xs_reject(self):
        assert fit_affine([3, 3], [1, 2]) is None

    def test_consistent_duplicate_xs_accepted(self):
        fit = fit_affine([3, 3, 5], [1, 1, 9])
        assert fit is not None
        assert fit.try_eval(3) == 1 and fit.try_eval(5) == 9

    def test_quadratic_three_anchors_reject(self):
        """Three anchors on y = x^2 are not collinear; the fit must say
        so rather than extrapolate the first pair's secant."""
        xs = [2, 5, 9]
        assert fit_affine(xs, [x * x for x in xs]) is None

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            fit_affine([1, 2], [1])

    def test_no_samples_raise(self):
        with pytest.raises(ValueError):
            fit_affine([], [])

    @given(
        slope_num=st.integers(-50, 50),
        slope_den=st.integers(1, 8),
        intercept=st.integers(-1000, 1000),
        xs=st.lists(
            st.integers(0, 10_000), min_size=2, max_size=6, unique=True
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_fit_interpolates_every_sample(
        self, slope_num, slope_den, intercept, xs
    ):
        """Samples drawn from an integer-valued line are recovered
        bit-for-bit (the template-exactness guarantee)."""
        slope = Fraction(slope_num, slope_den)
        # Keep every sample integer-valued by snapping xs to the
        # denominator's lattice.
        xs = [x * slope_den for x in xs]
        ys = [int(slope * x + intercept) for x in xs]
        fit = fit_affine(xs, ys)
        assert fit is not None
        for x, y in zip(xs, ys):
            assert fit.try_eval(x) == y

    @given(
        xs=st.lists(
            st.integers(0, 1000), min_size=3, max_size=6, unique=True
        ),
        bump=st.integers(1, 100),
    )
    @settings(max_examples=100, deadline=None)
    def test_off_line_sample_rejects(self, xs, bump):
        """Perturbing one sample off an otherwise-perfect line kills the
        fit — anchors certify, they never average."""
        ys = [3 * x + 7 for x in xs]
        ys[-1] += bump
        assert fit_affine(xs, ys) is None
