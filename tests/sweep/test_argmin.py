"""Tile-pruned sweep argmin vs the full-sweep oracle.

The contract: :meth:`SweepEngine.argmin` returns exactly the point a
full sweep's ``min((total_seconds(1), index))`` would pick — identical
index, dataclass-equal projection, bitwise-equal seconds — for every
tile size, pruned tiles included.  Pruning is an optimization, never an
approximation.
"""

import pytest

from repro.gpu.arch import quadro_fx_5600
from repro.pcie.presets import pcie_gen1_bus, pcie_gen2_bus
from repro.sweep import SweepEngine
from repro.workloads.registry import all_workloads, get_workload


def _engine(bus=None):
    return SweepEngine(quadro_fx_5600(), bus or pcie_gen1_bus())


def _oracle(engine, workload):
    """(index, projections, totals) of the full sweep."""
    projections = engine.sweep_workload(workload)
    totals = [p.total_seconds(1) for p in projections]
    index = min(range(len(totals)), key=lambda i: (totals[i], i))
    return index, projections, totals


class TestArgminOracle:
    @pytest.mark.parametrize(
        "name", [w.name for w in all_workloads()]
    )
    @pytest.mark.parametrize("tile", [1, 2, 4, 100])
    def test_matches_full_sweep(self, name, tile):
        workload = get_workload(name)
        engine = _engine(pcie_gen2_bus())
        expected, projections, totals = _oracle(engine, workload)
        result = engine.argmin_workload(workload, tile=tile)
        assert result.index == expected
        assert result.projection == projections[expected]
        assert result.seconds == totals[expected]  # bitwise
        assert expected in result.evaluated

    def test_pruning_actually_happens(self):
        workload = get_workload("CFD")
        engine = _engine()
        result = engine.argmin_workload(workload, tile=1)
        stats = result.stats
        assert stats["bounded"] == 1
        assert stats["points_pruned"] > 0
        assert stats["tiles_pruned"] > 0
        assert (
            stats["points_evaluated"] + stats["points_pruned"]
            == stats["points"]
        )
        assert stats["points"] == len(list(workload.datasets()))
        # The engine-level stats mirror the result's.
        assert engine.stats == stats

    def test_bounds_are_true_lower_bounds(self):
        workload = get_workload("HotSpot")
        engine = _engine()
        _expected, projections, totals = _oracle(engine, workload)
        result = engine.argmin_workload(workload, tile=2)
        assert result.bounds is not None
        assert len(result.bounds) == len(totals)
        for bound, total in zip(result.bounds, totals):
            assert bound <= total

    def test_explicit_datasets_subset(self):
        workload = get_workload("SRAD")
        datasets = list(workload.datasets())[:2]
        engine = _engine()
        full = engine.sweep_workload(workload, datasets=datasets)
        totals = [p.total_seconds(1) for p in full]
        expected = min(range(len(totals)), key=lambda i: (totals[i], i))
        result = engine.argmin_workload(workload, datasets=datasets, tile=1)
        assert result.index == expected
        assert result.projection == full[expected]

    def test_validation(self):
        engine = _engine()
        with pytest.raises(ValueError, match="at least one"):
            engine.argmin([])
        workload = get_workload("CFD")
        with pytest.raises(ValueError, match="tile"):
            engine.argmin_workload(workload, tile=0)
        programs = [
            workload.skeleton(d) for d in list(workload.datasets())[:2]
        ]
        with pytest.raises(ValueError, match="hints do not match"):
            engine.argmin(programs, hints=[None])
        with pytest.raises(ValueError, match="sizes do not match"):
            engine.argmin(programs, sizes=[1])
