"""Plan-template certificates: fit from anchors, instantiate anywhere."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datausage.transfers import Direction, Transfer, TransferPlan
from repro.sweep.structure import fit_plan_template


def _plan(size: int, name: str = "app") -> TransferPlan:
    """A synthetic plan whose element counts are affine in ``size``."""
    return TransferPlan(
        name,
        (
            Transfer("a", Direction.H2D, 4 * (2 * size + 5), 2 * size + 5),
            Transfer("b", Direction.H2D, 8 * size, size, conservative=True),
            Transfer("out", Direction.D2H, 4 * size, size),
        ),
    )


class TestFitPlanTemplate:
    def test_reproduces_anchors_field_for_field(self):
        sizes = [100, 550, 1000]
        template = fit_plan_template(sizes, [_plan(s) for s in sizes])
        assert template is not None
        for size in sizes:
            assert template.instantiate("app", size) == _plan(size)

    def test_interpolates_between_anchors(self):
        sizes = [100, 550, 1000]
        template = fit_plan_template(sizes, [_plan(s) for s in sizes])
        assert template.instantiate("app", 300) == _plan(300)

    def test_program_name_comes_from_caller(self):
        sizes = [100, 550, 1000]
        template = fit_plan_template(sizes, [_plan(s) for s in sizes])
        assert template.instantiate("other", 300) == _plan(300, "other")

    def test_quadratic_counts_reject(self):
        """n x n element counts (HotSpot-style, swept by side length) are
        quadratic in the axis; three anchors expose that and the
        template refuses rather than extrapolating a secant."""
        sizes = [10, 20, 40]

        def quadratic(n: int) -> TransferPlan:
            return TransferPlan(
                "grid", (Transfer("cells", Direction.H2D, 4 * n * n, n * n),)
            )

        assert fit_plan_template(sizes, [quadratic(s) for s in sizes]) is None

    def test_differing_transfer_sequences_reject(self):
        base = _plan(100)
        reordered = TransferPlan(
            "app", (base.transfers[1], base.transfers[0], base.transfers[2])
        )
        assert fit_plan_template([100, 200], [base, reordered]) is None

    def test_differing_conservatism_rejects(self):
        strict = TransferPlan(
            "app", (Transfer("a", Direction.H2D, 400, 100),)
        )
        loose = TransferPlan(
            "app",
            (Transfer("a", Direction.H2D, 800, 200, conservative=True),),
        )
        assert fit_plan_template([100, 200], [strict, loose]) is None

    def test_differing_element_width_rejects(self):
        four = TransferPlan("app", (Transfer("a", Direction.H2D, 400, 100),))
        eight = TransferPlan(
            "app", (Transfer("a", Direction.H2D, 1600, 200),)
        )
        assert fit_plan_template([100, 200], [four, eight]) is None

    def test_non_positive_instantiation_is_none(self):
        """A fit whose line dips to zero elements at small sizes must
        report inapplicability, not emit an invalid Transfer."""
        def shrinking(size: int) -> TransferPlan:
            return TransferPlan(
                "app",
                (Transfer("a", Direction.H2D, 4 * (size - 50), size - 50),),
            )

        template = fit_plan_template([100, 200], [shrinking(100),
                                                  shrinking(200)])
        assert template is not None
        assert template.instantiate("app", 50) is None

    def test_fractional_instantiation_is_none(self):
        def halves(size: int) -> TransferPlan:
            return TransferPlan(
                "app",
                (Transfer("a", Direction.H2D, 4 * (size // 2), size // 2),),
            )

        template = fit_plan_template([100, 200], [halves(100), halves(200)])
        assert template is not None
        assert template.instantiate("app", 150) == halves(150)
        assert template.instantiate("app", 151) is None

    @given(
        slope=st.integers(1, 20),
        intercept=st.integers(0, 500),
        sizes=st.lists(
            st.integers(1, 10_000), min_size=2, max_size=4, unique=True
        ),
        probe=st.integers(1, 10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_affine_plans_always_template(
        self, slope, intercept, sizes, probe
    ):
        def plan(size: int) -> TransferPlan:
            count = slope * size + intercept + 1
            return TransferPlan(
                "app", (Transfer("a", Direction.D2H, 8 * count, count),)
            )

        template = fit_plan_template(sizes, [plan(s) for s in sizes])
        assert template is not None
        assert template.instantiate("app", probe) == plan(probe)
