"""The architecture sweep axis vs the fresh per-arch pipeline oracle.

The contract mirrors ``test_argmin.py``'s: sharing is an optimization,
never an approximation.  ``sweep_arches`` answers for every fleet
member exactly what a *fresh* engine built for that architecture (and
its paired bus) would answer — dataclass-equal projections, bitwise
seconds — and ``argmin_arches`` picks exactly the point a full sweep's
``min()`` would.
"""

import pytest

from repro.gpu import registry as R
from repro.gpu.arch import quadro_fx_5600
from repro.pcie.presets import pcie_gen1_bus, pcie_gen3_bus
from repro.sweep import ArchSweepPoint, SweepEngine
from repro.workloads.registry import all_workloads, get_workload


def _engine(bus=None):
    return SweepEngine(quadro_fx_5600(), bus or pcie_gen1_bus())


class TestOracleEquality:
    @pytest.mark.parametrize(
        "name", [w.name for w in all_workloads()]
    )
    def test_matches_fresh_per_arch_engines(self, name):
        """Each fleet row equals a from-scratch engine for that arch."""
        workload = get_workload(name)
        dataset = max(workload.datasets(), key=lambda d: d.size)
        points = _engine().sweep_arches_workload(
            workload, R.arch_ids(), dataset=dataset, buses="paired"
        )
        assert [p.arch_id for p in points] == list(R.arch_ids())
        for point in points:
            fresh = SweepEngine(
                R.get_arch(point.arch_id), R.get_bus(point.arch_id)
            )
            (expected,) = fresh.sweep_workload(workload, [dataset])
            assert point.projection == expected
            assert point.seconds == expected.total_seconds(1)  # bitwise

    def test_check_mode_runs_the_per_point_pipeline(self):
        workload = get_workload("SRAD")
        points = _engine().sweep_arches_workload(
            workload, R.arch_ids(), buses="paired", check=True
        )
        assert len(points) == len(R.arch_ids())

    def test_grid_matches_fresh_per_arch_sweep(self):
        workload = get_workload("HotSpot")
        datasets = list(workload.datasets())
        programs = [workload.skeleton(d) for d in datasets]
        hints = [workload.hints(d) for d in datasets]
        sizes = [d.size for d in datasets]
        rows = _engine().sweep_arch_grid(
            programs, R.arch_ids(), hints=hints, sizes=sizes,
            buses="paired", check=True,
        )
        assert len(rows) == len(R.arch_ids())
        for row in rows:
            fresh = SweepEngine(
                R.get_arch(row.arch_id), R.get_bus(row.arch_id)
            )
            expected = fresh.sweep(programs, hints=hints, sizes=sizes)
            assert list(row.projections) == expected


class TestArgmin:
    @pytest.mark.parametrize("name", ["HotSpot", "Stassuij", "VectorAdd"])
    def test_matches_full_sweep_min(self, name):
        workload = get_workload(name)
        dataset = max(workload.datasets(), key=lambda d: d.size)
        program = workload.skeleton(dataset)
        hints = workload.hints(dataset)
        engine = _engine()
        points = engine.sweep_arches(
            program, R.arch_ids(), hints=hints, buses="paired"
        )
        totals = [p.seconds for p in points]
        expected = min(range(len(totals)), key=lambda i: (totals[i], i))
        result = engine.argmin_arches(
            program, R.arch_ids(), hints=hints, buses="paired"
        )
        assert result.index == expected
        assert result.point.projection == points[expected].projection
        assert result.seconds == totals[expected]  # bitwise
        assert result.stats["points_evaluated"] == len(R.arch_ids())

    def test_newest_generation_wins_a_bandwidth_bound_kernel(self):
        workload = get_workload("VectorAdd")
        dataset = max(workload.datasets(), key=lambda d: d.size)
        result = _engine().argmin_arches(
            workload.skeleton(dataset),
            R.arch_ids(),
            hints=workload.hints(dataset),
            buses="paired",
        )
        assert result.point.arch_id == "pascal_p100"


class TestAxisResolution:
    def test_mixed_entry_kinds_resolve_alike(self):
        workload = get_workload("VectorAdd")
        dataset = min(workload.datasets(), key=lambda d: d.size)
        program, hints = workload.skeleton(dataset), workload.hints(dataset)
        engine = _engine()
        by_id, by_spec, by_arch = (
            engine.sweep_arches(
                program, [entry], hints=hints, buses="paired"
            )[0]
            for entry in (
                "kepler_k20",
                R.get_spec("kepler_k20"),
                R.get_arch("kepler_k20"),
            )
        )
        assert by_id.arch_id == by_spec.arch_id == by_arch.arch_id == (
            "kepler_k20"
        )
        assert by_id.projection == by_spec.projection == by_arch.projection
        assert by_id.bus == R.get_bus("kepler_k20")

    def test_hand_built_arch_has_no_id_and_keeps_engine_bus(self):
        import dataclasses

        workload = get_workload("VectorAdd")
        dataset = min(workload.datasets(), key=lambda d: d.size)
        odd = dataclasses.replace(quadro_fx_5600(), num_sms=99)
        (point,) = _engine().sweep_arches(
            workload.skeleton(dataset),
            [odd],
            hints=workload.hints(dataset),
            buses="paired",
        )
        assert point.arch_id is None
        assert point.bus == pcie_gen1_bus()  # engine bus, nothing to pair

    def test_default_buses_use_the_engine_bus(self):
        workload = get_workload("VectorAdd")
        dataset = min(workload.datasets(), key=lambda d: d.size)
        engine = _engine(pcie_gen3_bus())
        points = engine.sweep_arches(
            workload.skeleton(dataset),
            R.arch_ids(),
            hints=workload.hints(dataset),
        )
        assert all(p.bus == pcie_gen3_bus() for p in points)
        # Same kernel time as paired-bus runs, same plan — only pricing
        # differs, so transfer seconds agree for gen-3-paired entries.
        paired = engine.sweep_arches(
            workload.skeleton(dataset),
            R.arch_ids(),
            hints=workload.hints(dataset),
            buses="paired",
        )
        for default_point, paired_point in zip(points, paired):
            assert (
                default_point.projection.kernel_seconds
                == paired_point.projection.kernel_seconds
            )
            if R.get_spec(paired_point.arch_id).pcie_gen == 3:
                assert default_point.projection == paired_point.projection

    def test_explicit_bus_list_must_match_length(self):
        workload = get_workload("VectorAdd")
        dataset = min(workload.datasets(), key=lambda d: d.size)
        with pytest.raises(ValueError, match="buses do not match"):
            _engine().sweep_arches(
                workload.skeleton(dataset),
                ["gtx_280", "kepler_k20"],
                buses=[pcie_gen1_bus()],
            )

    def test_unknown_pairing_keyword(self):
        workload = get_workload("VectorAdd")
        dataset = min(workload.datasets(), key=lambda d: d.size)
        with pytest.raises(ValueError, match="bus pairing"):
            _engine().sweep_arches(
                workload.skeleton(dataset), ["gtx_280"], buses="magic"
            )

    def test_empty_axis_rejected(self):
        workload = get_workload("VectorAdd")
        dataset = min(workload.datasets(), key=lambda d: d.size)
        with pytest.raises(ValueError, match="at least one architecture"):
            _engine().sweep_arches(workload.skeleton(dataset), [])

    def test_unknown_id_raises_the_structured_error(self):
        workload = get_workload("VectorAdd")
        dataset = min(workload.datasets(), key=lambda d: d.size)
        with pytest.raises(R.UnknownArchitectureError) as excinfo:
            _engine().sweep_arches(
                workload.skeleton(dataset), ["volta_v100"]
            )
        assert "quadro_fx_5600" in excinfo.value.hint


class TestSharingStats:
    def test_one_plan_shared_across_the_fleet(self):
        workload = get_workload("HotSpot")
        engine = _engine()
        engine.sweep_arches_workload(workload, R.arch_ids(), buses="paired")
        stats = engine.stats
        assert stats["arches"] == len(R.arch_ids())
        assert stats["points"] == 1
        assert stats["plans_computed"] == 1
        assert stats["plans_reused_across_arches"] == len(R.arch_ids()) - 1
        # Strict (CC 1.0) vs relaxed coalescing split the fleet in two.
        assert stats["coalescing_groups"] == 2
        assert stats["groups_shared"] == 2

    def test_points_are_arch_sweep_points(self):
        workload = get_workload("VectorAdd")
        points = _engine().sweep_arches_workload(
            workload, ["gtx_280"], buses="paired"
        )
        assert all(isinstance(p, ArchSweepPoint) for p in points)
