"""Round-trip property: summary -> dict/JSON -> summary is the identity.

The service cache stores summaries as JSON on disk, so exact (not
approximate) round-tripping is what makes a cache hit provably
equivalent to recomputation.  Hypothesis drives arbitrary summaries
through the dict and JSON forms; a concrete test does the same for a
summary produced by the real pipeline.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.serialize import (
    KernelSummary,
    ProjectionSummary,
    TransferSummary,
    summarize_projection,
)
from repro.gpu.arch import quadro_fx_5600
from repro.pcie.presets import pcie_gen1_bus
from repro.core.projector import GrophecyPlusPlus
from repro.workloads.registry import get_workload

# Finite floats only: NaN breaks equality and the canonical JSON form
# rejects it by design (allow_nan=False).
finite = st.floats(
    min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False
)
name = st.text(min_size=1, max_size=24)

kernels = st.builds(
    KernelSummary,
    name=name,
    seconds=finite,
    best_mapping=st.text(max_size=16),
    regime=st.sampled_from(["MWP", "CWP", "FEW_WARPS"]),
    search_width=st.integers(1, 10_000),
)

transfers = st.builds(
    TransferSummary,
    array=name,
    direction=st.sampled_from(["H2D", "D2H"]),
    bytes=st.integers(1, 1 << 40),
    elements=st.integers(1, 1 << 32),
    seconds=finite,
    conservative=st.booleans(),
)

summaries = st.builds(
    ProjectionSummary,
    program=name,
    kernel_seconds=finite,
    transfer_seconds=finite,
    setup_seconds=finite,
    kernels=st.tuples() | st.tuples(kernels) | st.tuples(kernels, kernels),
    transfers=st.tuples()
    | st.tuples(transfers)
    | st.tuples(transfers, transfers),
)


class TestRoundTripProperty:
    @given(summaries)
    @settings(max_examples=200, deadline=None)
    def test_dict_round_trip_is_identity(self, summary):
        assert ProjectionSummary.from_dict(summary.to_dict()) == summary

    @given(summaries)
    @settings(max_examples=100, deadline=None)
    def test_json_round_trip_is_identity(self, summary):
        assert ProjectionSummary.from_json(summary.to_json()) == summary

    @given(summaries)
    @settings(max_examples=50, deadline=None)
    def test_dict_form_is_json_safe_and_stable(self, summary):
        a = json.dumps(summary.to_dict(), sort_keys=True)
        b = json.dumps(
            ProjectionSummary.from_dict(summary.to_dict()).to_dict(),
            sort_keys=True,
        )
        assert a == b

    @given(summaries, st.integers(1, 1000))
    @settings(max_examples=50, deadline=None)
    def test_derived_quantities_survive(self, summary, iterations):
        rebuilt = ProjectionSummary.from_dict(summary.to_dict())
        assert rebuilt.total_seconds(iterations) == summary.total_seconds(
            iterations
        )
        assert rebuilt.total_bytes == summary.total_bytes
        assert rebuilt.transfer_count == summary.transfer_count


class TestRealProjectionRoundTrip:
    def test_pipeline_summary_round_trips_exactly(self):
        workload = get_workload("HotSpot")
        dataset = workload.datasets()[0]
        projection = GrophecyPlusPlus(
            quadro_fx_5600(), pcie_gen1_bus()
        ).project(workload.skeleton(dataset), workload.hints(dataset))
        summary = summarize_projection(projection)
        assert ProjectionSummary.from_json(summary.to_json()) == summary
        assert summary.kernel_seconds == projection.kernel_seconds
        assert summary.transfer_seconds == projection.transfer_seconds
