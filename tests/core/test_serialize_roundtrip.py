"""Round-trip property: summary -> dict/JSON -> summary is the identity.

The service cache stores summaries as JSON on disk, so exact (not
approximate) round-tripping is what makes a cache hit provably
equivalent to recomputation.  Hypothesis drives arbitrary summaries
through the dict and JSON forms; a concrete test does the same for a
summary produced by the real pipeline.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.serialize import (
    KernelSummary,
    ProjectionSummary,
    TransferSummary,
    summarize_projection,
)
from repro.gpu.arch import quadro_fx_5600
from repro.obs.provenance import (
    KernelProvenance,
    ProjectionProvenance,
    TransferProvenance,
    build_provenance,
)
from repro.pcie.presets import pcie_gen1_bus
from repro.core.projector import GrophecyPlusPlus
from repro.workloads.registry import get_workload

# Finite floats only: NaN breaks equality and the canonical JSON form
# rejects it by design (allow_nan=False).
finite = st.floats(
    min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False
)
name = st.text(min_size=1, max_size=24)

kernels = st.builds(
    KernelSummary,
    name=name,
    seconds=finite,
    best_mapping=st.text(max_size=16),
    regime=st.sampled_from(["MWP", "CWP", "FEW_WARPS"]),
    search_width=st.integers(1, 10_000),
)

transfers = st.builds(
    TransferSummary,
    array=name,
    direction=st.sampled_from(["H2D", "D2H"]),
    bytes=st.integers(1, 1 << 40),
    elements=st.integers(1, 1 << 32),
    seconds=finite,
    conservative=st.booleans(),
)

kernel_provenances = st.builds(
    KernelProvenance,
    name=name,
    best_mapping=st.text(max_size=16),
    regime=st.sampled_from(["MWP", "CWP", "FEW_WARPS"]),
    mwp=finite,
    cwp=finite,
    seconds=finite,
    runner_up_mapping=st.none() | st.text(max_size=16),
    runner_up_gap_seconds=st.none() | finite,
    configs_explored=st.integers(0, 10_000),
    configs_skipped=st.integers(0, 10_000),
    configs_pruned=st.integers(0, 10_000),
)

transfer_provenances = st.builds(
    TransferProvenance,
    array=name,
    direction=st.sampled_from(["H2D", "D2H"]),
    bytes=st.integers(0, 1 << 40),
    seconds=finite,
    alpha_seconds=finite,
    beta_seconds=finite,
    conservative=st.booleans(),
)

provenances = st.builds(
    ProjectionProvenance,
    program=name,
    kernel_seconds=finite,
    transfer_seconds=finite,
    setup_seconds=finite,
    total_seconds=finite,
    kernels=st.tuples() | st.tuples(kernel_provenances),
    transfers=st.tuples() | st.tuples(transfer_provenances),
)

summaries = st.builds(
    ProjectionSummary,
    program=name,
    kernel_seconds=finite,
    transfer_seconds=finite,
    setup_seconds=finite,
    kernels=st.tuples() | st.tuples(kernels) | st.tuples(kernels, kernels),
    transfers=st.tuples()
    | st.tuples(transfers)
    | st.tuples(transfers, transfers),
    provenance=st.none() | provenances,
)


class TestRoundTripProperty:
    @given(summaries)
    @settings(max_examples=200, deadline=None)
    def test_dict_round_trip_is_identity(self, summary):
        assert ProjectionSummary.from_dict(summary.to_dict()) == summary

    @given(summaries)
    @settings(max_examples=100, deadline=None)
    def test_json_round_trip_is_identity(self, summary):
        assert ProjectionSummary.from_json(summary.to_json()) == summary

    @given(summaries)
    @settings(max_examples=50, deadline=None)
    def test_dict_form_is_json_safe_and_stable(self, summary):
        a = json.dumps(summary.to_dict(), sort_keys=True)
        b = json.dumps(
            ProjectionSummary.from_dict(summary.to_dict()).to_dict(),
            sort_keys=True,
        )
        assert a == b

    @given(summaries, st.integers(1, 1000))
    @settings(max_examples=50, deadline=None)
    def test_derived_quantities_survive(self, summary, iterations):
        rebuilt = ProjectionSummary.from_dict(summary.to_dict())
        assert rebuilt.total_seconds(iterations) == summary.total_seconds(
            iterations
        )
        assert rebuilt.total_bytes == summary.total_bytes
        assert rebuilt.transfer_count == summary.transfer_count


class TestProvenanceAttachment:
    @given(summaries)
    @settings(max_examples=50, deadline=None)
    def test_without_provenance_strips_only_provenance(self, summary):
        stripped = summary.without_provenance()
        assert stripped.provenance is None
        assert stripped == summary.without_provenance()
        assert "provenance" not in stripped.to_dict()
        rebuilt = dict(stripped.to_dict())
        if summary.provenance is not None:
            rebuilt["provenance"] = summary.provenance.to_dict()
        assert ProjectionSummary.from_dict(rebuilt) == summary

    def test_cache_key_is_unchanged_by_provenance(self):
        """The engine fingerprint must ignore the provenance flag."""
        from repro.service.engine import (
            ProjectionEngine,
            ProjectionRequest,
        )

        workload = get_workload("HotSpot")
        dataset = workload.datasets()[0]
        request = ProjectionRequest(
            program=workload.skeleton(dataset),
            hints=workload.hints(dataset),
        )
        plain = ProjectionEngine(provenance=False)
        attributed = ProjectionEngine(provenance=True)
        assert plain.fingerprint(request) == attributed.fingerprint(
            request
        )
        bare = plain.project(request).summary
        rich = attributed.project(request).summary
        assert rich.provenance is not None
        assert rich.without_provenance() == bare


class TestRealProjectionRoundTrip:
    def test_pipeline_summary_round_trips_exactly(self):
        workload = get_workload("HotSpot")
        dataset = workload.datasets()[0]
        projection = GrophecyPlusPlus(
            quadro_fx_5600(), pcie_gen1_bus()
        ).project(workload.skeleton(dataset), workload.hints(dataset))
        summary = summarize_projection(projection)
        assert ProjectionSummary.from_json(summary.to_json()) == summary
        assert summary.kernel_seconds == projection.kernel_seconds
        assert summary.transfer_seconds == projection.transfer_seconds

    def test_pipeline_summary_with_provenance_round_trips(self):
        workload = get_workload("HotSpot")
        dataset = workload.datasets()[0]
        bus = pcie_gen1_bus()
        projection = GrophecyPlusPlus(quadro_fx_5600(), bus).project(
            workload.skeleton(dataset), workload.hints(dataset)
        )
        summary = summarize_projection(
            projection, build_provenance(projection, bus)
        )
        rebuilt = ProjectionSummary.from_json(summary.to_json())
        assert rebuilt == summary
        assert rebuilt.provenance == summary.provenance
        assert (
            rebuilt.provenance.kernel_seconds
            + rebuilt.provenance.transfer_seconds
            + rebuilt.provenance.setup_seconds
            == rebuilt.provenance.total_seconds
        )
