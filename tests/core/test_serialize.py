"""Tests for projection/report serialization."""

import json

import pytest

from repro.core.serialize import (
    measured_from_dict,
    projection_to_dict,
    projection_to_json,
    report_to_dict,
    report_to_json,
)
from repro.harness.context import ExperimentContext
from repro.workloads import Srad


@pytest.fixture(scope="module")
def report():
    ctx = ExperimentContext(seed=41)
    w = Srad()
    return ctx.report(w, w.datasets()[0])


class TestProjectionSerialization:
    def test_dict_shape(self, report):
        d = projection_to_dict(report.projection)
        assert d["program"].startswith("srad")
        assert len(d["kernels"]) == 2
        assert {k["name"] for k in d["kernels"]} == {
            "srad_prepare", "srad_update"
        }
        assert all("best_mapping" in k for k in d["kernels"])
        assert sum(t["seconds"] for t in d["transfers"]) == pytest.approx(
            d["transfer_seconds"]
        )

    def test_json_round_trips_through_parser(self, report):
        parsed = json.loads(projection_to_json(report.projection))
        assert parsed["kernel_seconds"] == pytest.approx(
            report.projection.kernel_seconds
        )

    def test_json_is_sorted_and_stable(self, report):
        a = projection_to_json(report.projection)
        b = projection_to_json(report.projection)
        assert a == b


class TestReportSerialization:
    def test_errors_block(self, report):
        d = report_to_dict(report)
        assert d["errors"]["kernel"] == pytest.approx(report.kernel_error)
        assert d["errors"]["speedup_both"] == pytest.approx(
            report.speedup_error("both")
        )
        assert d["measured"]["speedup"] == pytest.approx(
            report.measured.speedup()
        )

    def test_json_parses(self, report):
        parsed = json.loads(report_to_json(report))
        assert "projection" in parsed and "measured" in parsed

    def test_measured_round_trip(self, report):
        d = report_to_dict(report)
        rebuilt = measured_from_dict(d["measured"], label="rt")
        assert rebuilt.kernel_seconds == report.measured.kernel_seconds
        assert rebuilt.per_transfer_seconds == (
            report.measured.per_transfer_seconds
        )
        assert rebuilt.speedup() == pytest.approx(report.measured.speedup())
