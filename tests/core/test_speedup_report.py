"""Tests for speedup math, crossover search, and prediction reports."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.report import MeasuredApplication, PredictionReport
from repro.core.speedup import (
    accuracy_crossover_iterations,
    gpu_total_time,
    limit_speedup_error,
    speedup,
)


class TestSpeedupBasics:
    def test_gpu_total_time(self):
        assert gpu_total_time(2e-3, 5e-3, 10) == pytest.approx(25e-3)

    def test_speedup(self):
        assert speedup(10e-3, 5e-3) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            speedup(0, 1)

    def test_limit_error(self):
        # pred 2ms vs measured 3ms: limit error = 3/2 - 1 = 50%.
        assert limit_speedup_error(2e-3, 3e-3) == pytest.approx(0.5)
        assert limit_speedup_error(3e-3, 3e-3) == 0.0


class TestAccuracyCrossover:
    def test_cfd_like_case(self):
        """CFD 233K: transfer-aware stays 2x more accurate below ~20 iters."""
        crossover = accuracy_crossover_iterations(
            predicted_kernel=2.52e-3,
            predicted_transfer=7.19e-3,
            measured_kernel=3.1e-3,
            measured_transfer=7.4e-3,
        )
        assert crossover is not None
        assert 10 <= crossover <= 40

    def test_perfect_kernel_prediction_never_crosses(self):
        """With pred_k == meas_k, the with-transfer error is ~0 at every
        iteration count; the advantage never expires."""
        crossover = accuracy_crossover_iterations(
            predicted_kernel=3.0e-3,
            predicted_transfer=7.0e-3,
            measured_kernel=3.0e-3,
            measured_transfer=7.0e-3,
            max_iterations=1000,
        )
        assert crossover == 1000

    def test_larger_transfer_fraction_longer_advantage(self):
        common = dict(
            predicted_kernel=1.0e-3,
            measured_kernel=1.2e-3,
        )
        small = accuracy_crossover_iterations(
            predicted_transfer=1.0e-3, measured_transfer=1.0e-3, **common
        )
        large = accuracy_crossover_iterations(
            predicted_transfer=10.0e-3, measured_transfer=10.0e-3, **common
        )
        assert large > small

    @given(
        st.floats(0.5e-3, 5e-3),
        st.floats(0.5e-3, 20e-3),
        st.floats(1.01, 2.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_crossover_prefix_property(self, kernel, transfer, bias):
        """At every iteration <= crossover, transfer-aware is 2x better."""
        crossover = accuracy_crossover_iterations(
            predicted_kernel=kernel,
            predicted_transfer=transfer,
            measured_kernel=kernel * bias,
            measured_transfer=transfer,
            max_iterations=500,
        )
        if crossover is None:
            return
        n = min(crossover, 500)
        meas = gpu_total_time(kernel * bias, transfer, n)
        err_with = abs(meas / gpu_total_time(kernel, transfer, n) - 1)
        err_without = abs(meas / (kernel * n) - 1)
        assert err_with == 0 or err_without >= 2 * err_with - 1e-12


class TestCrossoverClosedForm:
    """Edge cases of the O(1) closed form, pinned against the scan oracle."""

    def test_never_holds_is_none(self):
        """With no transfer on either side, the two predictions coincide;
        a 2x accuracy advantage can never hold, not even at iteration 1."""
        crossover = accuracy_crossover_iterations(
            predicted_kernel=2.0e-3,
            predicted_transfer=0.0,
            measured_kernel=3.0e-3,
            measured_transfer=0.0,
        )
        assert crossover is None

    def test_none_matches_scan(self):
        for method in ("closed", "scan"):
            assert (
                accuracy_crossover_iterations(
                    predicted_kernel=2.0e-3,
                    predicted_transfer=0.0,
                    measured_kernel=3.0e-3,
                    measured_transfer=0.0,
                    max_iterations=200,
                    method=method,
                )
                is None
            )

    def test_still_holds_at_max_returns_max(self):
        """When the criterion survives the horizon, both methods must
        report the horizon itself, not search past it."""
        for method in ("closed", "scan"):
            assert (
                accuracy_crossover_iterations(
                    predicted_kernel=3.0e-3,
                    predicted_transfer=7.0e-3,
                    measured_kernel=3.0e-3,
                    measured_transfer=7.0e-3,
                    max_iterations=77,
                    method=method,
                )
                == 77
            )

    def test_boundary_crossover_equal_to_max(self):
        """A finite crossover clipped exactly at max_iterations."""
        args = dict(
            predicted_kernel=2.52e-3,
            predicted_transfer=7.19e-3,
            measured_kernel=3.1e-3,
            measured_transfer=7.4e-3,
        )
        free = accuracy_crossover_iterations(**args)
        assert free is not None and free > 1
        clipped = accuracy_crossover_iterations(
            **args, max_iterations=free
        )
        assert clipped == free
        below = accuracy_crossover_iterations(
            **args, max_iterations=free - 1
        )
        assert below == free - 1

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            accuracy_crossover_iterations(
                predicted_kernel=1e-3,
                predicted_transfer=1e-3,
                measured_kernel=1e-3,
                measured_transfer=1e-3,
                method="bisect",
            )

    @given(
        predicted_kernel=st.floats(0.2e-3, 5e-3),
        predicted_transfer=st.floats(0.0, 20e-3),
        kernel_bias=st.floats(0.5, 3.0),
        transfer_bias=st.floats(0.5, 3.0),
        advantage=st.floats(1.1, 4.0),
        max_iterations=st.integers(1, 400),
    )
    @settings(max_examples=150, deadline=None)
    def test_closed_form_equals_scan(
        self,
        predicted_kernel,
        predicted_transfer,
        kernel_bias,
        transfer_bias,
        advantage,
        max_iterations,
    ):
        """The closed form and the linear scan agree everywhere the scan
        can reach — including None and the max_iterations clip."""
        kwargs = dict(
            predicted_kernel=predicted_kernel,
            predicted_transfer=predicted_transfer,
            measured_kernel=predicted_kernel * kernel_bias,
            measured_transfer=predicted_transfer * transfer_bias,
            advantage=advantage,
            max_iterations=max_iterations,
        )
        closed = accuracy_crossover_iterations(**kwargs, method="closed")
        scan = accuracy_crossover_iterations(**kwargs, method="scan")
        assert closed == scan


def sample_report() -> PredictionReport:
    """A hand-built report mirroring CFD/233K's numbers."""
    from repro.core.prediction import Projection
    from repro.datausage import Direction, Transfer, TransferPlan
    from repro.transform.explorer import ProgramProjection

    plan = TransferPlan(
        "cfd",
        (
            Transfer("variables", Direction.H2D, 4_650_720, 1_162_680),
            Transfer("variables", Direction.D2H, 4_650_720, 1_162_680),
        ),
    )
    projection = Projection(
        program="cfd",
        kernel_seconds=2.52e-3,
        transfer_seconds=7.19e-3,
        plan=plan,
        per_transfer_seconds=(3.6e-3, 3.59e-3),
        kernels=ProgramProjection("cfd", ()),
    )
    measured = MeasuredApplication(
        label="CFD/233K",
        kernel_seconds=3.1e-3,
        transfer_seconds=7.4e-3,
        cpu_seconds=25e-3,
        per_transfer_seconds=(3.7e-3, 3.7e-3),
    )
    return PredictionReport(projection, measured)


class TestPredictionReport:
    def test_component_errors(self):
        r = sample_report()
        assert r.kernel_error == pytest.approx(abs(2.52 / 3.1 - 1), rel=1e-6)
        assert r.transfer_error == pytest.approx(
            abs(7.19 / 7.4 - 1), rel=1e-6
        )

    def test_per_transfer_errors(self):
        errors = sample_report().per_transfer_errors()
        assert len(errors) == 2
        assert errors[0] == pytest.approx(abs(3.6 / 3.7 - 1), rel=1e-6)

    def test_speedup_error_modes_match_table2_algebra(self):
        """The CPU time cancels: err = |T_meas / T_pred - 1|."""
        r = sample_report()
        t_meas = 3.1e-3 + 7.4e-3
        assert r.speedup_error("kernel") == pytest.approx(
            t_meas / 2.52e-3 - 1, rel=1e-6
        )
        assert r.speedup_error("transfer") == pytest.approx(
            t_meas / 7.19e-3 - 1, rel=1e-6
        )
        assert r.speedup_error("both") == pytest.approx(
            abs(t_meas / (2.52e-3 + 7.19e-3) - 1), rel=1e-6
        )

    def test_cpu_time_invariance(self):
        """Table II's errors do not depend on the CPU anchor."""
        r1 = sample_report()
        m2 = MeasuredApplication(
            label=r1.measured.label,
            kernel_seconds=r1.measured.kernel_seconds,
            transfer_seconds=r1.measured.transfer_seconds,
            cpu_seconds=r1.measured.cpu_seconds * 7.5,
            per_transfer_seconds=r1.measured.per_transfer_seconds,
        )
        r2 = PredictionReport(r1.projection, m2)
        for mode in ("kernel", "transfer", "both"):
            assert r1.speedup_error(mode) == pytest.approx(
                r2.speedup_error(mode)
            )

    def test_iterations_shift_speedups(self):
        r = sample_report()
        assert r.predicted_speedup("both", 100) > r.predicted_speedup(
            "both", 1
        )
        assert r.measured.speedup(100) > r.measured.speedup(1)

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            sample_report().predicted_speedup("bogus")

    def test_transfer_fraction(self):
        m = sample_report().measured
        assert m.transfer_fraction == pytest.approx(7.4 / 10.5, rel=1e-3)
