"""Tests for the pinned/pageable memory advisor."""

import pytest

from repro.core.advisor import MemoryKindAdvisor
from repro.datausage import Direction, Transfer, TransferPlan, analyze_transfers
from repro.pcie.channel import MemoryKind
from repro.sim.machine import argonne_testbed
from repro.util.units import KiB, MiB
from repro.workloads import HotSpot, Srad


@pytest.fixture(scope="module")
def advisor() -> MemoryKindAdvisor:
    return MemoryKindAdvisor(argonne_testbed(seed=77).bus)


def tiny_plan() -> TransferPlan:
    return TransferPlan(
        "tiny",
        (
            Transfer("a", Direction.H2D, 1 * KiB, 256),
            Transfer("a", Direction.D2H, 1 * KiB, 256),
        ),
    )


def big_plan() -> TransferPlan:
    return TransferPlan(
        "big",
        (
            Transfer("a", Direction.H2D, 64 * MiB, 16 * MiB),
            Transfer("a", Direction.D2H, 64 * MiB, 16 * MiB),
        ),
    )


class TestAdvisor:
    def test_big_plan_prefers_pinned_immediately(self, advisor):
        advice = advisor.advise(big_plan(), reuses=1)
        assert advice.recommended is MemoryKind.PINNED
        assert advice.breakeven_reuses == 1
        assert advice.saving_seconds > 0

    def test_tiny_plan_prefers_pageable_for_one_shot(self, advisor):
        advice = advisor.advise(tiny_plan(), reuses=1)
        # KB-scale transfers can't pay back the pinning premium once.
        assert advice.recommended is MemoryKind.PAGEABLE

    def test_recommendation_flips_with_reuse(self, advisor):
        one_shot = advisor.advise(tiny_plan(), reuses=1)
        assert one_shot.breakeven_reuses is not None
        amortized = advisor.advise(
            tiny_plan(), reuses=one_shot.breakeven_reuses
        )
        assert amortized.recommended is MemoryKind.PINNED

    def test_totals_consistent(self, advisor):
        advice = advisor.advise(big_plan(), reuses=3)
        assert advice.total(MemoryKind.PINNED) == pytest.approx(
            advice.pinned_setup_seconds
            + 3 * advice.pinned_transfer_seconds
        )
        # Recommended really is the argmin.
        assert advice.total(advice.recommended) <= advice.total(
            MemoryKind.PAGEABLE
        )
        assert advice.total(advice.recommended) <= advice.total(
            MemoryKind.PINNED
        )

    def test_rejects_zero_reuses(self, advisor):
        with pytest.raises(ValueError):
            advisor.advise(big_plan(), reuses=0)

    def test_workload_plans(self, advisor):
        """The paper's assumption checks out for its own workloads."""
        for workload in (Srad(), HotSpot()):
            ds = max(workload.datasets(), key=lambda d: d.size)
            plan = analyze_transfers(
                workload.skeleton(ds), workload.hints(ds)
            )
            advice = advisor.advise(plan, reuses=1)
            assert advice.recommended is MemoryKind.PINNED, workload.name


class TestProjectorWithAllocation:
    def test_setup_seconds_in_projection(self):
        from repro.core import GrophecyPlusPlus
        from repro.gpu import quadro_fx_5600
        from repro.pcie import calibrate_bus, cuda23_era_allocation_model

        tb = argonne_testbed(seed=5)
        bus = calibrate_bus(tb.bus)
        w = Srad()
        ds = w.datasets()[0]
        plain = GrophecyPlusPlus(quadro_fx_5600(), bus).project(
            w.skeleton(ds), w.hints(ds)
        )
        with_alloc = GrophecyPlusPlus(
            quadro_fx_5600(),
            bus,
            allocation=cuda23_era_allocation_model(),
        ).project(w.skeleton(ds), w.hints(ds))
        assert plain.setup_seconds == 0.0
        assert with_alloc.setup_seconds > 0.0
        assert with_alloc.total_seconds(1) == pytest.approx(
            plain.total_seconds(1) + with_alloc.setup_seconds
        )
