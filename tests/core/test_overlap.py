"""Tests for the stream-overlap estimator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.overlap import estimate_overlap, pipeline_time
from repro.harness.context import ExperimentContext
from repro.workloads import Srad, Stassuij, VectorAdd


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(seed=11)


class TestPipelineTime:
    def test_single_chunk_is_serial(self):
        t = pipeline_time(10e-3, 5e-3, 8e-3, 1, 10e-6, 9e-6)
        serial = 10e-3 + 5e-3 + 8e-3 + 10e-6 + 9e-6
        assert t == pytest.approx(serial, rel=1e-6)

    def test_copy_bound_pipeline(self):
        """When copies dominate, the makespan tends to total copy time."""
        t = pipeline_time(
            transfer_in=100e-3, kernel=1e-3, transfer_out=100e-3,
            chunks=16, alpha_in=0.0, alpha_out=0.0,
        )
        assert t == pytest.approx(200e-3, rel=0.02)

    def test_compute_bound_pipeline(self):
        """When compute dominates, copies hide almost entirely."""
        t = pipeline_time(
            transfer_in=2e-3, kernel=100e-3, transfer_out=2e-3,
            chunks=16, alpha_in=0.0, alpha_out=0.0,
        )
        assert t < 101e-3

    def test_alpha_penalizes_many_chunks(self):
        few = pipeline_time(1e-3, 1e-3, 1e-3, 2, 50e-6, 50e-6)
        many = pipeline_time(1e-3, 1e-3, 1e-3, 64, 50e-6, 50e-6)
        assert many > few  # 64 alphas outweigh the pipelining

    def test_validation(self):
        with pytest.raises(ValueError):
            pipeline_time(1.0, 1.0, 1.0, 0, 0.0, 0.0)
        with pytest.raises(ValueError):
            pipeline_time(-1.0, 1.0, 1.0, 2, 0.0, 0.0)

    @given(
        st.floats(1e-4, 1e-1),
        st.floats(1e-4, 1e-1),
        st.floats(1e-4, 1e-1),
        st.integers(1, 64),
    )
    @settings(max_examples=80, deadline=None)
    def test_bounded_by_serial_and_compute(self, t_in, k, t_out, chunks):
        t = pipeline_time(t_in, k, t_out, chunks, 1e-5, 1e-5)
        # Never better than the compute-only lower bound plus one chunk
        # of fill+drain; never meaningfully worse than fully serial.
        assert t >= k
        serial = t_in + k + t_out + chunks * 2e-5
        assert t <= serial + 1e-12


class TestEstimateOverlap:
    def test_transfer_dominated_workload_gains(self, ctx):
        w = Stassuij()
        projection = ctx.projection(w, w.datasets()[0])
        est = estimate_overlap(projection, ctx.bus_model)
        assert est.chunks > 1
        assert 0.2 < est.saving_fraction < 0.8
        assert est.overlapped_seconds >= projection.kernel_seconds

    def test_savings_bounded_by_transfer_share(self, ctx):
        for workload in (Srad(), VectorAdd()):
            ds = workload.datasets()[0]
            projection = ctx.projection(workload, ds)
            est = estimate_overlap(projection, ctx.bus_model)
            assert est.saving_seconds <= projection.transfer_seconds + 1e-9

    def test_iterative_saving_is_absolute_not_relative(self, ctx):
        w = Srad()
        projection = ctx.projection(w, w.datasets()[0])
        one = estimate_overlap(projection, ctx.bus_model, iterations=1)
        many = estimate_overlap(projection, ctx.bus_model, iterations=100)
        # More compute to hide behind: saving can only grow or saturate...
        assert many.saving_seconds >= one.saving_seconds - 1e-9
        # ...but the *fraction* saved shrinks as kernels dominate.
        assert many.saving_fraction < one.saving_fraction

    def test_never_worse_than_serial(self, ctx):
        for workload in (Srad(), Stassuij(), VectorAdd()):
            ds = workload.datasets()[0]
            projection = ctx.projection(workload, ds)
            est = estimate_overlap(projection, ctx.bus_model)
            assert est.overlapped_seconds <= est.serial_seconds + 1e-12

    def test_rejects_bad_args(self, ctx):
        w = VectorAdd()
        projection = ctx.projection(w, w.datasets()[0])
        with pytest.raises(ValueError):
            estimate_overlap(projection, ctx.bus_model, iterations=0)
