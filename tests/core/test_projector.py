"""Tests for Grophecy / GrophecyPlusPlus projectors."""

import pytest

from repro.core.projector import Grophecy, GrophecyPlusPlus
from repro.datausage import AnalysisHints
from repro.gpu.arch import quadro_fx_5600
from repro.gpu.model import GpuPerformanceModel
from repro.pcie.model import BusModel, LinearTransferModel
from repro.skeleton import KernelBuilder, ProgramBuilder
from repro.transform.space import TransformationSpace
from repro.util.units import us


def bus() -> BusModel:
    return BusModel(
        h2d=LinearTransferModel(us(10), 1 / 2.45e9),
        d2h=LinearTransferModel(us(9), 1 / 2.6e9),
    )


def vadd_program(n=1 << 20):
    pb = ProgramBuilder("vadd")
    pb.array("a", (n,)).array("b", (n,)).array("c", (n,))
    kb = KernelBuilder("add").parallel_loop("i", n)
    kb.load("a", "i").load("b", "i").store("c", "i").statement(flops=1)
    return pb.kernel(kb).build()


class TestGrophecy:
    def test_accepts_arch_or_model(self):
        arch = quadro_fx_5600()
        g1 = Grophecy(arch)
        g2 = Grophecy(GpuPerformanceModel(arch))
        prog = vadd_program()
        assert g1.project_kernels(prog).seconds == pytest.approx(
            g2.project_kernels(prog).seconds
        )

    def test_projects_best_of_space(self):
        prog = vadd_program()
        full = Grophecy(quadro_fx_5600()).project_kernels(prog)
        naive = Grophecy(
            quadro_fx_5600(), TransformationSpace.naive()
        ).project_kernels(prog)
        assert full.seconds <= naive.seconds


class TestGrophecyPlusPlus:
    def setup_method(self):
        self.gpp = GrophecyPlusPlus(quadro_fx_5600(), bus())
        self.prog = vadd_program()

    def test_projection_structure(self):
        proj = self.gpp.project(self.prog)
        assert proj.program == "vadd"
        assert proj.kernel_seconds > 0
        assert proj.transfer_seconds > 0
        assert len(proj.per_transfer_seconds) == 3  # a, b in; c out
        assert proj.transfer_seconds == pytest.approx(
            sum(proj.per_transfer_seconds)
        )

    def test_transfer_time_matches_bus_model(self):
        proj = self.gpp.project(self.prog)
        n = 1 << 20
        expected = (
            2 * bus().predict_transfer(4 * n, __import__(
                "repro.datausage", fromlist=["Direction"]
            ).Direction.H2D)
            + bus().predict_transfer(4 * n, __import__(
                "repro.datausage", fromlist=["Direction"]
            ).Direction.D2H)
        )
        assert proj.transfer_seconds == pytest.approx(expected)

    def test_vector_add_story(self):
        """Section II-B: the GPU wins the kernel but loses end-to-end."""
        proj = self.gpp.project(self.prog)
        # Transfer dwarfs the kernel for a single pass over the data.
        assert proj.transfer_seconds > 3 * proj.kernel_seconds
        assert proj.transfer_fraction > 0.7

    def test_batched_mode_fewer_alphas(self):
        batched = GrophecyPlusPlus(
            quadro_fx_5600(), bus(), batched_transfers=True
        ).project(self.prog)
        separate = self.gpp.project(self.prog)
        assert batched.plan.transfer_count == 2
        assert batched.transfer_seconds < separate.transfer_seconds
        # The saving is exactly one H2D alpha.
        assert separate.transfer_seconds - batched.transfer_seconds == (
            pytest.approx(us(10), rel=1e-6)
        )

    def test_hints_forwarded(self):
        pb = ProgramBuilder("hinted")
        pb.array("a", (1024,)).array("t", (1024,))
        kb = KernelBuilder("k").parallel_loop("i", 1024)
        kb.load("a", "i").store("t", "i").statement(flops=1)
        prog = pb.kernel(kb).build()
        with_hint = self.gpp.project(
            prog, AnalysisHints(extra_temporaries=frozenset({"t"}))
        )
        without = self.gpp.project(prog)
        assert with_hint.plan.output_bytes == 0
        assert without.plan.output_bytes == 4096


class TestProjectionMath:
    def _proj(self):
        return GrophecyPlusPlus(quadro_fx_5600(), bus()).project(
            vadd_program()
        )

    def test_total_seconds_iterations(self):
        p = self._proj()
        assert p.total_seconds(10) == pytest.approx(
            10 * p.kernel_seconds + p.transfer_seconds
        )
        with pytest.raises(ValueError):
            p.total_seconds(0)

    def test_speedup_modes(self):
        p = self._proj()
        cpu = 5e-3
        assert p.speedup(cpu) == pytest.approx(cpu / p.total_seconds(1))
        assert p.speedup(cpu, include_transfer=False) == pytest.approx(
            cpu / p.kernel_seconds
        )

    def test_speedup_limit(self):
        p = self._proj()
        assert p.speedup_limit(5e-3) == pytest.approx(5e-3 / p.kernel_seconds)
        # Large iteration counts converge to the limit.
        assert p.speedup(5e-3, iterations=10**6) == pytest.approx(
            p.speedup_limit(5e-3), rel=1e-3
        )
