"""Cache-key stability: semantically equal inputs must hash equally,
and every model-relevant change must change the key."""

import dataclasses
import math

import pytest

from repro.datausage.hints import AnalysisHints, SparseExtentHint
from repro.gpu.arch import gtx_280, quadro_fx_5600
from repro.pcie.model import BusModel, LinearTransferModel
from repro.pcie.presets import pcie_gen1_bus
from repro.service.engine import ProjectionEngine, ProjectionRequest
from repro.skeleton import KernelBuilder, ProgramBuilder
from repro.transform.space import TransformationSpace
from repro.util.fingerprint import canonical_json, stable_digest


def small_program(
    n=256,
    *,
    flops=3,
    array_order=("a", "b", "c"),
    loads_first=True,
    statement_order=("mul", "add"),
):
    """One program, many construction orders — all semantically equal
    unless a keyword changes the actual content."""
    pb = ProgramBuilder("p")
    for name in array_order:
        pb.array(name, (n,))
    kb = KernelBuilder("k").parallel_loop("i", n)
    for tag in statement_order:
        if tag == "mul":
            if loads_first:
                kb.load("a", "i").load("b", "i")
            else:
                kb.load("b", "i").load("a", "i")
            kb.store("c", "i").statement(flops=flops)
        else:
            kb.load("c", "i").store("c", "i").statement(flops=1)
    return pb.kernel(kb).build()


class TestCanonicalJson:
    def test_key_order_is_irrelevant(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )

    def test_compact_and_sorted(self):
        assert canonical_json({"b": [1, 2], "a": "x"}) == '{"a":"x","b":[1,2]}'

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": math.nan})

    def test_digest_is_hex_sha256(self):
        digest = stable_digest({"x": 1})
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")
        assert digest == stable_digest({"x": 1})


class TestProgramFingerprint:
    def test_deterministic(self):
        assert small_program().fingerprint() == small_program().fingerprint()

    def test_array_declaration_order_is_irrelevant(self):
        reordered = small_program(array_order=("c", "a", "b"))
        assert small_program().fingerprint() == reordered.fingerprint()

    def test_access_order_within_statement_is_irrelevant(self):
        reordered = small_program(loads_first=False)
        assert small_program().fingerprint() == reordered.fingerprint()

    def test_statement_order_is_irrelevant(self):
        reordered = small_program(statement_order=("add", "mul"))
        assert small_program().fingerprint() == reordered.fingerprint()

    def test_array_shape_changes_key(self):
        assert small_program(256).fingerprint() != small_program(
            512
        ).fingerprint()

    def test_flops_change_key(self):
        assert small_program(flops=3).fingerprint() != small_program(
            flops=4
        ).fingerprint()

    def test_statement_label_is_excluded(self):
        def build(label):
            pb = ProgramBuilder("p").array("a", (64,))
            kb = KernelBuilder("k").parallel_loop("i", 64)
            kb.load("a", "i").statement(flops=1, label=label)
            return pb.kernel(kb).build()

        assert build("foo").fingerprint() == build("bar").fingerprint()


class TestModelFingerprints:
    def test_arch_parameters_change_key(self):
        base = quadro_fx_5600()
        assert base.fingerprint() == quadro_fx_5600().fingerprint()
        assert base.fingerprint() != gtx_280().fingerprint()
        faster = dataclasses.replace(base, clock_ghz=base.clock_ghz * 2)
        assert base.fingerprint() != faster.fingerprint()

    def test_bus_alpha_beta_change_key(self):
        bus = BusModel(
            h2d=LinearTransferModel(alpha=1e-5, beta=1e-9),
            d2h=LinearTransferModel(alpha=1e-5, beta=1e-9),
        )
        other_alpha = BusModel(
            h2d=LinearTransferModel(alpha=2e-5, beta=1e-9), d2h=bus.d2h
        )
        other_beta = BusModel(
            h2d=bus.h2d, d2h=LinearTransferModel(alpha=1e-5, beta=2e-9)
        )
        assert bus.fingerprint() != other_alpha.fingerprint()
        assert bus.fingerprint() != other_beta.fingerprint()
        assert bus.fingerprint() == BusModel(bus.h2d, bus.d2h).fingerprint()

    def test_space_fingerprint(self):
        default = TransformationSpace.default()
        assert default.fingerprint() == TransformationSpace.default().fingerprint()
        assert default.fingerprint() != TransformationSpace.naive().fingerprint()

    def test_hints_fingerprint_order_independent(self):
        a = AnalysisHints(
            extra_temporaries=frozenset({"t1", "t2"}),
            sparse_extents=(
                SparseExtentHint("x", 10),
                SparseExtentHint("y", 20),
            ),
        )
        b = AnalysisHints(
            extra_temporaries=frozenset({"t2", "t1"}),
            sparse_extents=(
                SparseExtentHint("y", 20),
                SparseExtentHint("x", 10),
            ),
        )
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != AnalysisHints.none().fingerprint()


class TestEngineKey:
    def test_iterations_and_cpu_time_do_not_change_key(self):
        engine = ProjectionEngine()
        program = small_program()
        one = ProjectionRequest(program, iterations=1)
        many = ProjectionRequest(
            program, iterations=500, cpu_seconds=1.0, request_id="other"
        )
        assert engine.fingerprint(one) == engine.fingerprint(many)

    def test_every_model_input_changes_key(self):
        engine = ProjectionEngine()
        program = small_program()
        base = engine.fingerprint(ProjectionRequest(program))
        variants = [
            ProjectionRequest(small_program(512)),
            ProjectionRequest(program, arch=gtx_280()),
            ProjectionRequest(
                program,
                bus=BusModel(
                    h2d=LinearTransferModel(alpha=1e-4, beta=1e-8),
                    d2h=LinearTransferModel(alpha=1e-4, beta=1e-8),
                ),
            ),
            ProjectionRequest(program, space=TransformationSpace.naive()),
            ProjectionRequest(program, batched_transfers=True),
            ProjectionRequest(
                program,
                hints=AnalysisHints(
                    extra_temporaries=frozenset({"c"}), sparse_extents=()
                ),
            ),
        ]
        keys = [engine.fingerprint(v) for v in variants]
        assert base not in keys
        assert len(set(keys)) == len(keys)

    def test_explicit_defaults_match_engine_defaults(self):
        engine = ProjectionEngine()
        program = small_program()
        implicit = engine.fingerprint(ProjectionRequest(program))
        explicit = engine.fingerprint(
            ProjectionRequest(
                program,
                arch=quadro_fx_5600(),
                bus=pcie_gen1_bus(),
                space=TransformationSpace.default(),
            )
        )
        assert implicit == explicit
