"""Tests for the projection engine: caching, batching, metrics."""

import pytest

from repro.core.projector import GrophecyPlusPlus
from repro.gpu.arch import quadro_fx_5600
from repro.pcie.presets import pcie_gen1_bus
from repro.service.cache import ProjectionCache
from repro.service.engine import ProjectionEngine, ProjectionRequest
from repro.skeleton import KernelBuilder, ProgramBuilder


def vector_program(n=4096, name="vadd"):
    pb = ProgramBuilder(name)
    pb.array("a", (n,)).array("b", (n,)).array("c", (n,))
    kb = KernelBuilder("add").parallel_loop("i", n)
    kb.load("a", "i").load("b", "i").store("c", "i").statement(flops=1)
    return pb.kernel(kb).build()


def stencil_heavy_program(n=512):
    # A reuse-heavy stencil: shared-memory staging wins, so its best
    # mapping differs from a plain vector kernel's.
    pb = ProgramBuilder("stencil")
    pb.array("src", (n, n)).array("dst", (n, n))
    kb = KernelBuilder("blur")
    kb.parallel_loop("i", n - 1, 1).parallel_loop("j", n - 1, 1)
    kb.load("src", "i", "j").load("src", ("i", 1, -1), "j")
    kb.load("src", ("i", 1, 1), "j").store("dst", "i", "j")
    kb.statement(flops=4)
    return pb.kernel(kb).build()


class TestSingleRequests:
    def test_matches_direct_projector(self):
        program = vector_program()
        engine = ProjectionEngine()
        response = engine.project(ProjectionRequest(program))
        direct = GrophecyPlusPlus(quadro_fx_5600(), pcie_gen1_bus()).project(
            program
        )
        assert response.summary.kernel_seconds == pytest.approx(
            direct.kernel_seconds
        )
        assert response.summary.transfer_seconds == pytest.approx(
            direct.transfer_seconds
        )
        assert not response.cached
        assert response.projection is not None

    def test_iterations_scale_total_but_not_key(self):
        program = vector_program()
        engine = ProjectionEngine(cache=ProjectionCache())
        one = engine.project(ProjectionRequest(program, iterations=1))
        many = engine.project(ProjectionRequest(program, iterations=100))
        assert many.cached  # same key: iterations are response-side only
        assert many.total_seconds > one.total_seconds

    def test_speedup_requires_cpu_time(self):
        program = vector_program()
        engine = ProjectionEngine()
        without = engine.project(ProjectionRequest(program))
        with_cpu = engine.project(
            ProjectionRequest(program, cpu_seconds=1.0)
        )
        assert without.speedup is None
        assert with_cpu.speedup == pytest.approx(
            1.0 / with_cpu.total_seconds
        )

    def test_to_dict_is_jsonl_ready(self):
        import json

        program = vector_program()
        engine = ProjectionEngine()
        record = engine.project(
            ProjectionRequest(program, request_id="r1", cpu_seconds=0.5)
        ).to_dict()
        assert record["id"] == "r1"
        assert record["ok"] is True
        assert "speedup" in record
        json.dumps(record)  # must not raise

    def test_rejects_bad_iterations(self):
        with pytest.raises(ValueError):
            ProjectionRequest(vector_program(), iterations=0)


class TestCaching:
    def test_hit_returns_identical_summary(self):
        engine = ProjectionEngine(cache=ProjectionCache())
        request = ProjectionRequest(vector_program())
        cold = engine.project(request)
        warm = engine.project(request)
        assert not cold.cached and warm.cached
        assert warm.summary == cold.summary
        assert warm.fingerprint == cold.fingerprint
        assert warm.projection is None  # hits carry only the summary

    def test_metrics_track_hits_and_misses(self):
        engine = ProjectionEngine(cache=ProjectionCache())
        request = ProjectionRequest(vector_program())
        engine.project(request)
        engine.project(request)
        engine.project(ProjectionRequest(vector_program(name="other")))
        assert engine.metrics.counter("requests") == 3
        assert engine.metrics.counter("cache_hits") == 1
        assert engine.metrics.counter("cache_misses") == 2
        assert engine.metrics.counter("candidates_explored") > 0

    def test_no_cache_means_no_hits(self):
        engine = ProjectionEngine(cache=None)
        request = ProjectionRequest(vector_program())
        assert not engine.project(request).cached
        assert not engine.project(request).cached
        assert engine.metrics.counter("cache_hits") == 0

    def test_disk_cache_spans_engines(self, tmp_path):
        request = ProjectionRequest(vector_program())
        first = ProjectionEngine(
            cache=ProjectionCache(disk_dir=tmp_path / "cache")
        )
        cold = first.project(request)
        second = ProjectionEngine(
            cache=ProjectionCache(disk_dir=tmp_path / "cache")
        )
        warm = second.project(request)
        assert warm.cached
        assert warm.summary == cold.summary

    def test_stage_timers_populated_on_miss(self):
        engine = ProjectionEngine(cache=ProjectionCache())
        engine.project(ProjectionRequest(vector_program()))
        snap = engine.metrics.snapshot()
        for stage in ("explore", "analyze", "predict", "cache_lookup"):
            assert stage in snap["timers"], stage


class TestBatching:
    def test_responses_in_request_order(self):
        engine = ProjectionEngine(max_workers=4)
        requests = [
            ProjectionRequest(
                vector_program(name=f"p{i}"), request_id=f"r{i}"
            )
            for i in range(6)
        ]
        responses = engine.project_batch(requests)
        assert [r.request_id for r in responses] == [
            f"r{i}" for i in range(6)
        ]

    def test_parallel_batch_matches_serial(self):
        requests = [
            ProjectionRequest(vector_program(n=1024 * (i + 1)))
            for i in range(4)
        ]
        serial = ProjectionEngine(max_workers=1).project_batch(requests)
        parallel = ProjectionEngine(max_workers=4).project_batch(requests)
        assert [r.summary for r in serial] == [r.summary for r in parallel]

    def test_second_batch_is_all_hits(self):
        engine = ProjectionEngine(cache=ProjectionCache(), max_workers=4)
        requests = [
            ProjectionRequest(vector_program(name=f"p{i}"))
            for i in range(5)
        ]
        engine.project_batch(requests)
        again = engine.project_batch(requests)
        assert all(r.cached for r in again)
        assert engine.metrics.counter("cache_hits") == 5


class TestStreamExplorer:
    def test_stream_engine_matches_fast_totals(self):
        program = vector_program()
        fast = ProjectionEngine(explorer="fast").project(
            ProjectionRequest(program)
        )
        stream = ProjectionEngine(explorer="stream").project(
            ProjectionRequest(program)
        )
        # Same winner, bitwise-equal times; only the candidate-table
        # accounting (search_width) differs by design.
        assert stream.summary.kernel_seconds == fast.summary.kernel_seconds
        assert stream.summary.transfer_seconds == (
            fast.summary.transfer_seconds
        )
        assert stream.total_seconds == fast.total_seconds

    def test_stream_fingerprint_is_keyed_separately(self):
        program = vector_program()
        request = ProjectionRequest(program)
        fast = ProjectionEngine(explorer="fast")
        reference = ProjectionEngine(explorer="reference")
        stream = ProjectionEngine(explorer="stream")
        # fast/reference share keys (interchangeable summaries); stream
        # summaries have argmin-only tables and must not collide.
        assert fast.fingerprint(request) == reference.fingerprint(request)
        assert stream.fingerprint(request) != fast.fingerprint(request)

    def test_stream_engine_caches_and_rehits(self):
        engine = ProjectionEngine(cache=ProjectionCache(), explorer="stream")
        first = engine.project(ProjectionRequest(vector_program()))
        again = engine.project(ProjectionRequest(vector_program()))
        assert not first.cached
        assert again.cached
        assert again.summary == first.summary

    def test_unknown_explorer_rejected(self):
        with pytest.raises(ValueError, match="expected 'fast'"):
            ProjectionEngine(explorer="bogus")

    def test_close_is_idempotent(self):
        engine = ProjectionEngine(explorer="stream")
        engine.project(ProjectionRequest(vector_program()))
        engine.close()
        engine.close()
        # Pools recreate lazily: the engine still serves after close().
        response = engine.project(ProjectionRequest(vector_program()))
        assert response.summary.kernel_seconds > 0

    def test_stream_engine_is_thread_safe(self):
        # The batch runner shares one engine across its worker threads;
        # a shared (non-thread-local) arena corrupts concurrent fused
        # passes, surfacing as a wrong tie-break (regression: VectorAdd
        # flipped b64 -> b64+smem under a racing SRAD projection).
        from concurrent.futures import ThreadPoolExecutor

        programs = [
            vector_program(1 << 16, "vadd"),
            stencil_heavy_program(),
        ]
        serial = ProjectionEngine(explorer="stream")
        truth = {}
        for program in programs:
            response = serial.project(ProjectionRequest(program))
            truth[program.name] = [
                (kp.kernel, kp.best.config, kp.best.breakdown.seconds)
                for kp in response.projection.kernels.kernels
            ]
        for _trial in range(10):
            engine = ProjectionEngine(explorer="stream")
            with ThreadPoolExecutor(4) as pool:
                futures = [
                    pool.submit(
                        engine.project, ProjectionRequest(program)
                    )
                    for program in programs
                    for _ in range(2)
                ]
                for future in futures:
                    response = future.result()
                    projection = response.projection.kernels
                    got = [
                        (kp.kernel, kp.best.config, kp.best.breakdown.seconds)
                        for kp in projection.kernels
                    ]
                    assert got == truth[projection.program]
