"""Tests for the projection engine: caching, batching, metrics."""

import pytest

from repro.core.projector import GrophecyPlusPlus
from repro.gpu.arch import quadro_fx_5600
from repro.pcie.presets import pcie_gen1_bus
from repro.service.cache import ProjectionCache
from repro.service.engine import ProjectionEngine, ProjectionRequest
from repro.skeleton import KernelBuilder, ProgramBuilder


def vector_program(n=4096, name="vadd"):
    pb = ProgramBuilder(name)
    pb.array("a", (n,)).array("b", (n,)).array("c", (n,))
    kb = KernelBuilder("add").parallel_loop("i", n)
    kb.load("a", "i").load("b", "i").store("c", "i").statement(flops=1)
    return pb.kernel(kb).build()


class TestSingleRequests:
    def test_matches_direct_projector(self):
        program = vector_program()
        engine = ProjectionEngine()
        response = engine.project(ProjectionRequest(program))
        direct = GrophecyPlusPlus(quadro_fx_5600(), pcie_gen1_bus()).project(
            program
        )
        assert response.summary.kernel_seconds == pytest.approx(
            direct.kernel_seconds
        )
        assert response.summary.transfer_seconds == pytest.approx(
            direct.transfer_seconds
        )
        assert not response.cached
        assert response.projection is not None

    def test_iterations_scale_total_but_not_key(self):
        program = vector_program()
        engine = ProjectionEngine(cache=ProjectionCache())
        one = engine.project(ProjectionRequest(program, iterations=1))
        many = engine.project(ProjectionRequest(program, iterations=100))
        assert many.cached  # same key: iterations are response-side only
        assert many.total_seconds > one.total_seconds

    def test_speedup_requires_cpu_time(self):
        program = vector_program()
        engine = ProjectionEngine()
        without = engine.project(ProjectionRequest(program))
        with_cpu = engine.project(
            ProjectionRequest(program, cpu_seconds=1.0)
        )
        assert without.speedup is None
        assert with_cpu.speedup == pytest.approx(
            1.0 / with_cpu.total_seconds
        )

    def test_to_dict_is_jsonl_ready(self):
        import json

        program = vector_program()
        engine = ProjectionEngine()
        record = engine.project(
            ProjectionRequest(program, request_id="r1", cpu_seconds=0.5)
        ).to_dict()
        assert record["id"] == "r1"
        assert record["ok"] is True
        assert "speedup" in record
        json.dumps(record)  # must not raise

    def test_rejects_bad_iterations(self):
        with pytest.raises(ValueError):
            ProjectionRequest(vector_program(), iterations=0)


class TestCaching:
    def test_hit_returns_identical_summary(self):
        engine = ProjectionEngine(cache=ProjectionCache())
        request = ProjectionRequest(vector_program())
        cold = engine.project(request)
        warm = engine.project(request)
        assert not cold.cached and warm.cached
        assert warm.summary == cold.summary
        assert warm.fingerprint == cold.fingerprint
        assert warm.projection is None  # hits carry only the summary

    def test_metrics_track_hits_and_misses(self):
        engine = ProjectionEngine(cache=ProjectionCache())
        request = ProjectionRequest(vector_program())
        engine.project(request)
        engine.project(request)
        engine.project(ProjectionRequest(vector_program(name="other")))
        assert engine.metrics.counter("requests") == 3
        assert engine.metrics.counter("cache_hits") == 1
        assert engine.metrics.counter("cache_misses") == 2
        assert engine.metrics.counter("candidates_explored") > 0

    def test_no_cache_means_no_hits(self):
        engine = ProjectionEngine(cache=None)
        request = ProjectionRequest(vector_program())
        assert not engine.project(request).cached
        assert not engine.project(request).cached
        assert engine.metrics.counter("cache_hits") == 0

    def test_disk_cache_spans_engines(self, tmp_path):
        request = ProjectionRequest(vector_program())
        first = ProjectionEngine(
            cache=ProjectionCache(disk_dir=tmp_path / "cache")
        )
        cold = first.project(request)
        second = ProjectionEngine(
            cache=ProjectionCache(disk_dir=tmp_path / "cache")
        )
        warm = second.project(request)
        assert warm.cached
        assert warm.summary == cold.summary

    def test_stage_timers_populated_on_miss(self):
        engine = ProjectionEngine(cache=ProjectionCache())
        engine.project(ProjectionRequest(vector_program()))
        snap = engine.metrics.snapshot()
        for stage in ("explore", "analyze", "predict", "cache_lookup"):
            assert stage in snap["timers"], stage


class TestBatching:
    def test_responses_in_request_order(self):
        engine = ProjectionEngine(max_workers=4)
        requests = [
            ProjectionRequest(
                vector_program(name=f"p{i}"), request_id=f"r{i}"
            )
            for i in range(6)
        ]
        responses = engine.project_batch(requests)
        assert [r.request_id for r in responses] == [
            f"r{i}" for i in range(6)
        ]

    def test_parallel_batch_matches_serial(self):
        requests = [
            ProjectionRequest(vector_program(n=1024 * (i + 1)))
            for i in range(4)
        ]
        serial = ProjectionEngine(max_workers=1).project_batch(requests)
        parallel = ProjectionEngine(max_workers=4).project_batch(requests)
        assert [r.summary for r in serial] == [r.summary for r in parallel]

    def test_second_batch_is_all_hits(self):
        engine = ProjectionEngine(cache=ProjectionCache(), max_workers=4)
        requests = [
            ProjectionRequest(vector_program(name=f"p{i}"))
            for i in range(5)
        ]
        engine.project_batch(requests)
        again = engine.project_batch(requests)
        assert all(r.cached for r in again)
        assert engine.metrics.counter("cache_hits") == 5
