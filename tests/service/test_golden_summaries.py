"""Golden projection summaries per calibrated architecture.

Where ``test_golden_keys.py`` pins the cache *addresses*, these pin the
*answers*: the SHA-256 of the serialized ``ProjectionSummary`` for one
fixed request on each calibrated board.  All digests were captured
against the pre-registry code (hand-built constructors, fast explorer,
PCIe gen-1 bus, default space) — the registry-backed engine must keep
reproducing them byte-for-byte.

Two fixed requests are pinned deliberately: HotSpot-smallest, where
the GT200 boards tie (bandwidth does not bind, and they differ only in
bandwidth), and VectorAdd-largest, which is bandwidth-bound and
separates every board.  The tie is asserted too — it is a property of
the model, and losing it would mean the arch tables leak into places
they should not.
"""

import hashlib

import pytest

from repro.gpu import registry
from repro.pcie.presets import pcie_gen1_bus
from repro.service.engine import ProjectionEngine, ProjectionRequest
from repro.transform.space import TransformationSpace
from repro.workloads.registry import get_workload

GOLDEN_HOTSPOT_SMALLEST = {
    "quadro_fx_5600": (
        "3555f63d4eb568dd966ccbf11ad3260c05f57c54844ab1fc5e950fff7c23a497"
    ),
    "tesla_c1060": (
        "f5adf36e5c9228d627772aa43bab2ddbcae436073d90988b0cb47dd679559ed8"
    ),
    "gtx_280": (
        "f5adf36e5c9228d627772aa43bab2ddbcae436073d90988b0cb47dd679559ed8"
    ),
}

GOLDEN_VECTORADD_LARGEST = {
    "quadro_fx_5600": (
        "2b04edc167ce16bf15f20c2d94e92ea680abb996f5c164d7bc7faeb5dc736e21"
    ),
    "tesla_c1060": (
        "486affe6339fedd30077fe6b3160cc8fa8eacf9a28fd934028d61f3000ed082e"
    ),
    "gtx_280": (
        "e5834eefbfff1990177444771a3569cf68ecd6a42c6b948e2e51be7db200699a"
    ),
}


def _summary_digest(arch_id, workload_name, pick):
    workload = get_workload(workload_name)
    dataset = pick(workload.datasets(), key=lambda d: d.size)
    engine = ProjectionEngine(
        arch=registry.get_arch(arch_id),
        bus=pcie_gen1_bus(),
        space=TransformationSpace.default(),
        explorer="fast",
    )
    response = engine.project(
        ProjectionRequest(
            program=workload.skeleton(dataset),
            hints=workload.hints(dataset),
        )
    )
    text = response.summary.to_json()
    return hashlib.sha256(text.encode()).hexdigest()


class TestGoldenSummaries:
    @pytest.mark.parametrize(
        "arch_id", sorted(GOLDEN_HOTSPOT_SMALLEST)
    )
    def test_hotspot_smallest(self, arch_id):
        assert (
            _summary_digest(arch_id, "HotSpot", min)
            == GOLDEN_HOTSPOT_SMALLEST[arch_id]
        ), f"{arch_id} projection output drifted from the seed capture"

    @pytest.mark.parametrize(
        "arch_id", sorted(GOLDEN_VECTORADD_LARGEST)
    )
    def test_vectoradd_largest(self, arch_id):
        assert (
            _summary_digest(arch_id, "VectorAdd", max)
            == GOLDEN_VECTORADD_LARGEST[arch_id]
        ), f"{arch_id} projection output drifted from the seed capture"

    def test_gt200_boards_tie_only_when_bandwidth_is_slack(self):
        # Same board pair, two workloads: identical summaries where the
        # peak-bandwidth bound is slack, distinct where it binds.
        assert (
            GOLDEN_HOTSPOT_SMALLEST["tesla_c1060"]
            == GOLDEN_HOTSPOT_SMALLEST["gtx_280"]
        )
        assert (
            GOLDEN_VECTORADD_LARGEST["tesla_c1060"]
            != GOLDEN_VECTORADD_LARGEST["gtx_280"]
        )
