"""Tests for the two-tier projection cache."""

import json

import pytest

from repro.service.cache import (
    DISK_FORMAT,
    ProjectionCache,
    disk_cache_stats,
)

SUMMARY = {"program": "p", "kernel_seconds": 1.0}


class TestMemoryTier:
    def test_miss_then_hit(self):
        cache = ProjectionCache(capacity=4)
        assert cache.get("k1") is None
        cache.put("k1", SUMMARY)
        assert cache.get("k1") == SUMMARY
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["hits_memory"] == 1
        assert stats["misses"] == 1
        assert stats["puts"] == 1

    def test_lru_eviction_order(self):
        cache = ProjectionCache(capacity=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        cache.get("a")  # refresh a: b is now least recent
        cache.put("c", {"v": 3})
        assert cache.get("b") is None
        assert cache.get("a") == {"v": 1}
        assert cache.get("c") == {"v": 3}
        assert cache.stats()["evictions"] == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ProjectionCache(capacity=0)

    def test_len_and_clear(self):
        cache = ProjectionCache()
        cache.put("a", SUMMARY)
        cache.put("b", SUMMARY)
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None


class TestDiskTier:
    def test_persists_across_instances(self, tmp_path):
        first = ProjectionCache(disk_dir=tmp_path / "cache")
        first.put("key1", SUMMARY)
        second = ProjectionCache(disk_dir=tmp_path / "cache")
        assert second.get("key1") == SUMMARY
        assert second.stats()["hits_disk"] == 1

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        ProjectionCache(disk_dir=tmp_path).put("k", SUMMARY)
        cache = ProjectionCache(disk_dir=tmp_path)
        cache.get("k")
        cache.get("k")
        stats = cache.stats()
        assert stats["hits_disk"] == 1
        assert stats["hits_memory"] == 1

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = ProjectionCache(disk_dir=tmp_path)
        (tmp_path / "broken.json").write_text("{not json")
        assert cache.get("broken") is None

    def test_wrong_format_version_is_a_miss(self, tmp_path):
        cache = ProjectionCache(disk_dir=tmp_path)
        (tmp_path / "old.json").write_text(
            json.dumps(
                {"format": DISK_FORMAT + 1, "key": "old", "summary": SUMMARY}
            )
        )
        assert cache.get("old") is None

    def test_mismatched_key_is_a_miss(self, tmp_path):
        cache = ProjectionCache(disk_dir=tmp_path)
        (tmp_path / "k1.json").write_text(
            json.dumps(
                {"format": DISK_FORMAT, "key": "other", "summary": SUMMARY}
            )
        )
        assert cache.get("k1") is None

    def test_clear_removes_disk_entries(self, tmp_path):
        cache = ProjectionCache(disk_dir=tmp_path)
        cache.put("a", SUMMARY)
        cache.clear()
        assert not list(tmp_path.glob("*.json"))
        assert ProjectionCache(disk_dir=tmp_path).get("a") is None

    def test_no_tmp_files_left_behind(self, tmp_path):
        cache = ProjectionCache(disk_dir=tmp_path)
        cache.put("a", SUMMARY)
        assert not [p for p in tmp_path.iterdir() if "tmp" in p.name]


class TestDiskCacheStats:
    def test_missing_directory(self, tmp_path):
        stats = disk_cache_stats(tmp_path / "nope")
        assert stats["entries"] == 0
        assert stats["total_bytes"] == 0

    def test_counts_entries_and_bytes(self, tmp_path):
        cache = ProjectionCache(disk_dir=tmp_path)
        cache.put("a", SUMMARY)
        cache.put("b", SUMMARY)
        stats = disk_cache_stats(tmp_path)
        assert stats["entries"] == 2
        assert stats["total_bytes"] > 0
        assert stats["path"] == str(tmp_path)
