"""Tests for the service metrics sink."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.metrics import ServiceMetrics


class TestCounters:
    def test_incr_and_read(self):
        metrics = ServiceMetrics()
        assert metrics.counter("requests") == 0
        metrics.incr("requests")
        metrics.incr("requests", 4)
        assert metrics.counter("requests") == 5

    def test_thread_safety(self):
        metrics = ServiceMetrics()

        def bump():
            for _ in range(1000):
                metrics.incr("n")

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert metrics.counter("n") == 8000


class TestTimers:
    def test_timer_accumulates(self):
        metrics = ServiceMetrics()
        metrics.add_time("explore", 0.25)
        metrics.add_time("explore", 0.25)
        assert metrics.stage_seconds("explore") == pytest.approx(0.5)
        assert metrics.stage_seconds("never") == 0.0

    def test_context_manager_records_time(self):
        metrics = ServiceMetrics()
        with metrics.timer("stage"):
            pass
        assert metrics.stage_seconds("stage") >= 0.0
        assert metrics.snapshot()["timers"]["stage"]["calls"] == 1

    def test_context_manager_records_on_exception(self):
        metrics = ServiceMetrics()
        with pytest.raises(RuntimeError):
            with metrics.timer("stage"):
                raise RuntimeError("boom")
        assert metrics.snapshot()["timers"]["stage"]["calls"] == 1

    def test_exception_increments_stage_errors(self):
        metrics = ServiceMetrics()
        with pytest.raises(RuntimeError):
            with metrics.timer("explore"):
                raise RuntimeError("boom")
        assert metrics.counter("explore_errors") == 1

    def test_success_does_not_touch_stage_errors(self):
        metrics = ServiceMetrics()
        with metrics.timer("explore"):
            pass
        assert metrics.counter("explore_errors") == 0

    def test_errors_counted_per_stage(self):
        metrics = ServiceMetrics()
        for stage, should_fail in (
            ("explore", True),
            ("explore", True),
            ("predict", False),
        ):
            try:
                with metrics.timer(stage):
                    if should_fail:
                        raise ValueError("boom")
            except ValueError:
                pass
        assert metrics.counter("explore_errors") == 2
        assert metrics.counter("predict_errors") == 0
        assert metrics.snapshot()["timers"]["explore"]["calls"] == 2

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            ServiceMetrics().add_time("x", -1.0)


class TestPercentiles:
    def test_percentile_over_recorded_durations(self):
        metrics = ServiceMetrics()
        for seconds in (0.010, 0.020, 0.030, 0.040):
            metrics.add_time("explore", seconds)
        assert metrics.percentile("explore", 0.5) == 0.020
        assert metrics.percentile("explore", 0.99) == 0.040

    def test_percentile_of_unknown_stage_raises(self):
        with pytest.raises(KeyError):
            ServiceMetrics().percentile("never", 0.5)

    def test_snapshot_carries_percentile_triple(self):
        metrics = ServiceMetrics()
        for seconds in (0.001, 0.002, 0.003):
            metrics.add_time("predict", seconds)
        entry = metrics.snapshot()["timers"]["predict"]
        assert entry["min"] == 0.001
        assert entry["max"] == 0.003
        assert entry["p50"] == 0.002
        assert entry["p95"] == 0.003
        assert entry["p99"] == 0.003

    def test_report_mentions_percentiles(self):
        metrics = ServiceMetrics()
        metrics.add_time("explore", 0.010)
        assert "p95" in metrics.report()


class TestSnapshotConsistency:
    """Snapshot totals must equal the sum of the recorded events."""

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["explore", "analyze", "predict"]),
                st.floats(
                    min_value=0.0,
                    max_value=10.0,
                    allow_nan=False,
                    allow_infinity=False,
                ),
            ),
            max_size=60,
        ),
        st.lists(
            st.tuples(
                st.sampled_from(["requests", "cache_hits"]),
                st.integers(0, 100),
            ),
            max_size=30,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_totals_equal_sum_of_events(self, timings, bumps):
        metrics = ServiceMetrics()
        for stage, seconds in timings:
            metrics.add_time(stage, seconds)
        for name, amount in bumps:
            metrics.incr(name, amount)
        snap = metrics.snapshot()
        for stage in {stage for stage, _ in timings}:
            recorded = [s for n, s in timings if n == stage]
            entry = snap["timers"][stage]
            assert entry["calls"] == len(recorded)
            assert entry["seconds"] == pytest.approx(sum(recorded))
            assert entry["min"] == min(recorded)
            assert entry["max"] == max(recorded)
        for name in {name for name, _ in bumps}:
            assert snap["counters"].get(name, 0) == sum(
                a for n, a in bumps if n == name
            )

    def test_threaded_stress_totals_are_exact(self):
        metrics = ServiceMetrics()
        per_thread = 500
        threads = 8

        def work(index):
            for _ in range(per_thread):
                metrics.incr("requests")
                metrics.add_time("explore", 0.001)
                if index % 2:
                    try:
                        with metrics.timer("analyze"):
                            raise RuntimeError("boom")
                    except RuntimeError:
                        pass

        pool = [
            threading.Thread(target=work, args=(i,)) for i in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        snap = metrics.snapshot()
        assert snap["counters"]["requests"] == threads * per_thread
        assert snap["timers"]["explore"]["calls"] == threads * per_thread
        assert snap["timers"]["explore"]["seconds"] == pytest.approx(
            threads * per_thread * 0.001
        )
        failing_threads = threads // 2
        assert (
            snap["counters"]["analyze_errors"]
            == failing_threads * per_thread
        )
        assert (
            snap["timers"]["analyze"]["calls"]
            == failing_threads * per_thread
        )


class TestViews:
    def test_snapshot_shape(self):
        metrics = ServiceMetrics()
        metrics.incr("requests", 2)
        metrics.add_time("explore", 0.1)
        snap = metrics.snapshot()
        assert snap["counters"] == {"requests": 2}
        assert snap["timers"]["explore"]["seconds"] == pytest.approx(0.1)
        assert snap["timers"]["explore"]["calls"] == 1

    def test_snapshot_is_a_copy(self):
        metrics = ServiceMetrics()
        metrics.incr("requests")
        snap = metrics.snapshot()
        snap["counters"]["requests"] = 99
        assert metrics.counter("requests") == 1

    def test_report_mentions_counters_and_stages(self):
        metrics = ServiceMetrics()
        metrics.incr("cache_hits", 3)
        metrics.add_time("predict", 0.01)
        report = metrics.report()
        assert "cache_hits" in report
        assert "predict" in report
        assert "ms" in report

    def test_empty_report(self):
        assert "(empty)" in ServiceMetrics().report()

    def test_reset(self):
        metrics = ServiceMetrics()
        metrics.incr("requests")
        metrics.add_time("explore", 1.0)
        metrics.reset()
        assert metrics.counter("requests") == 0
        assert metrics.stage_seconds("explore") == 0.0
