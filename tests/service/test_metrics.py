"""Tests for the service metrics sink."""

import threading

import pytest

from repro.service.metrics import ServiceMetrics


class TestCounters:
    def test_incr_and_read(self):
        metrics = ServiceMetrics()
        assert metrics.counter("requests") == 0
        metrics.incr("requests")
        metrics.incr("requests", 4)
        assert metrics.counter("requests") == 5

    def test_thread_safety(self):
        metrics = ServiceMetrics()

        def bump():
            for _ in range(1000):
                metrics.incr("n")

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert metrics.counter("n") == 8000


class TestTimers:
    def test_timer_accumulates(self):
        metrics = ServiceMetrics()
        metrics.add_time("explore", 0.25)
        metrics.add_time("explore", 0.25)
        assert metrics.stage_seconds("explore") == pytest.approx(0.5)
        assert metrics.stage_seconds("never") == 0.0

    def test_context_manager_records_time(self):
        metrics = ServiceMetrics()
        with metrics.timer("stage"):
            pass
        assert metrics.stage_seconds("stage") >= 0.0
        assert metrics.snapshot()["timers"]["stage"]["calls"] == 1

    def test_context_manager_records_on_exception(self):
        metrics = ServiceMetrics()
        with pytest.raises(RuntimeError):
            with metrics.timer("stage"):
                raise RuntimeError("boom")
        assert metrics.snapshot()["timers"]["stage"]["calls"] == 1

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            ServiceMetrics().add_time("x", -1.0)


class TestViews:
    def test_snapshot_shape(self):
        metrics = ServiceMetrics()
        metrics.incr("requests", 2)
        metrics.add_time("explore", 0.1)
        snap = metrics.snapshot()
        assert snap["counters"] == {"requests": 2}
        assert snap["timers"]["explore"]["seconds"] == pytest.approx(0.1)
        assert snap["timers"]["explore"]["calls"] == 1

    def test_snapshot_is_a_copy(self):
        metrics = ServiceMetrics()
        metrics.incr("requests")
        snap = metrics.snapshot()
        snap["counters"]["requests"] = 99
        assert metrics.counter("requests") == 1

    def test_report_mentions_counters_and_stages(self):
        metrics = ServiceMetrics()
        metrics.incr("cache_hits", 3)
        metrics.add_time("predict", 0.01)
        report = metrics.report()
        assert "cache_hits" in report
        assert "predict" in report
        assert "ms" in report

    def test_empty_report(self):
        assert "(empty)" in ServiceMetrics().report()

    def test_reset(self):
        metrics = ServiceMetrics()
        metrics.incr("requests")
        metrics.add_time("explore", 1.0)
        metrics.reset()
        assert metrics.counter("requests") == 0
        assert metrics.stage_seconds("explore") == 0.0
