"""Kernel-level cache: LRU semantics and engine integration.

The kernel tier caches *exploration* results under kernel content +
architecture + space + pruning; the bus stays out of the key, so bus
what-if studies re-price transfers without re-searching the
transformation space.
"""

import pytest

from repro.core.projector import GrophecyPlusPlus
from repro.gpu.arch import quadro_fx_5600, tesla_c1060
from repro.pcie.presets import pcie_gen1_bus, pcie_gen2_bus, pcie_gen3_bus
from repro.service.cache import KernelProjectionCache
from repro.service.engine import ProjectionEngine, ProjectionRequest
from repro.transform.space import TransformationSpace
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def space():
    return TransformationSpace.default()


@pytest.fixture(scope="module")
def srad_inputs():
    workload = get_workload("SRAD")
    dataset = workload.datasets()[0]
    return workload.skeleton(dataset), workload.hints(dataset)


class TestKernelProjectionCacheLru:
    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            KernelProjectionCache(capacity=0)

    def test_miss_then_hit(self):
        cache = KernelProjectionCache(capacity=4)
        assert cache.get("k") is None
        cache.put("k", "value")
        assert cache.get("k") == "value"
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_eviction_is_lru_not_fifo(self):
        cache = KernelProjectionCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b is now the oldest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_put_overwrites_without_eviction(self):
        cache = KernelProjectionCache(capacity=2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert len(cache) == 1
        assert cache.get("a") == 2
        assert cache.stats()["evictions"] == 0

    def test_clear_keeps_counters(self):
        cache = KernelProjectionCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1


class TestEngineIntegration:
    def test_bus_whatif_hits_kernel_cache(self, space, srad_inputs):
        """Same program over three buses: one exploration, two full
        kernel-cache hits, identical projections to the direct pipeline."""
        program, hints = srad_inputs
        engine = ProjectionEngine(tesla_c1060(), pcie_gen1_bus(), space)
        buses = (pcie_gen1_bus(), pcie_gen2_bus(), pcie_gen3_bus())
        responses = [
            engine.project(ProjectionRequest(program, hints, bus=bus))
            for bus in buses
        ]
        kernels = len(program.kernels)
        stats = engine.kernel_cache.stats()
        assert stats["misses"] == kernels
        assert stats["hits"] == kernels * (len(buses) - 1)
        assert engine.metrics.counter("kernel_cache_hits") == stats["hits"]
        assert (
            engine.metrics.counter("kernel_cache_misses") == stats["misses"]
        )
        for bus, response in zip(buses, responses):
            exact = GrophecyPlusPlus(tesla_c1060(), bus, space).project(
                program, hints
            )
            assert response.projection == exact

    def test_candidates_explored_counts_searches_not_hits(
        self, space, srad_inputs
    ):
        program, hints = srad_inputs
        engine = ProjectionEngine(tesla_c1060(), pcie_gen1_bus(), space)
        engine.project(ProjectionRequest(program, hints))
        explored = engine.metrics.counter("candidates_explored")
        assert explored > 0
        engine.project(ProjectionRequest(program, hints, bus=pcie_gen2_bus()))
        assert engine.metrics.counter("candidates_explored") == explored

    def test_partial_hit_explores_only_missing_kernels(
        self, space, srad_inputs
    ):
        program, hints = srad_inputs
        assert len(program.kernels) >= 2
        exact = GrophecyPlusPlus(
            tesla_c1060(), pcie_gen1_bus(), space
        ).project(program, hints)

        shared = KernelProjectionCache()
        engine = ProjectionEngine(
            tesla_c1060(), pcie_gen1_bus(), space, kernel_cache=shared
        )
        model = engine._model_for(tesla_c1060())
        key = engine._kernel_key(
            program.kernels[0], program.array_map, model.arch, space
        )
        shared.put(key, exact.kernels.kernels[0])

        response = engine.project(ProjectionRequest(program, hints))
        assert response.projection == exact
        assert engine.metrics.counter("kernel_cache_hits") == 1
        assert (
            engine.metrics.counter("kernel_cache_misses")
            == len(program.kernels) - 1
        )

    def test_prune_mode_gets_its_own_entries(self, space, srad_inputs):
        """Pruning reshapes the candidate tables, so the two modes must
        not share cache entries."""
        program, _ = srad_inputs
        plain = ProjectionEngine(tesla_c1060(), pcie_gen1_bus(), space)
        pruned = ProjectionEngine(
            tesla_c1060(), pcie_gen1_bus(), space, prune=True
        )
        model = plain._model_for(tesla_c1060())
        kernel = program.kernels[0]
        assert plain._kernel_key(
            kernel, program.array_map, model.arch, space
        ) != pruned._kernel_key(kernel, program.array_map, model.arch, space)

    def test_arch_gets_its_own_entries(self, space, srad_inputs):
        program, _ = srad_inputs
        engine = ProjectionEngine(tesla_c1060(), pcie_gen1_bus(), space)
        kernel = program.kernels[0]
        assert engine._kernel_key(
            kernel, program.array_map, tesla_c1060(), space
        ) != engine._kernel_key(
            kernel, program.array_map, quadro_fx_5600(), space
        )

    def test_capacity_zero_disables_tier(self, space, srad_inputs):
        program, hints = srad_inputs
        engine = ProjectionEngine(
            tesla_c1060(), pcie_gen1_bus(), space, kernel_cache_capacity=0
        )
        assert engine.kernel_cache is None
        response = engine.project(ProjectionRequest(program, hints))
        exact = GrophecyPlusPlus(
            tesla_c1060(), pcie_gen1_bus(), space
        ).project(program, hints)
        assert response.projection == exact
        assert engine.metrics.counter("kernel_cache_hits") == 0
        assert engine.metrics.counter("kernel_cache_misses") == 0

    def test_negative_capacity_rejected(self, space):
        with pytest.raises(ValueError, match="kernel_cache_capacity"):
            ProjectionEngine(
                tesla_c1060(),
                pcie_gen1_bus(),
                space,
                kernel_cache_capacity=-1,
            )

    def test_cache_shared_across_engines(self, space, srad_inputs):
        """A shared kernel cache carries explorations between engines
        with different buses (e.g. a what-if engine per generation)."""
        program, hints = srad_inputs
        shared = KernelProjectionCache()
        first = ProjectionEngine(
            tesla_c1060(), pcie_gen1_bus(), space, kernel_cache=shared
        )
        second = ProjectionEngine(
            tesla_c1060(), pcie_gen3_bus(), space, kernel_cache=shared
        )
        first.project(ProjectionRequest(program, hints))
        response = second.project(ProjectionRequest(program, hints))
        kernels = len(program.kernels)
        assert second.metrics.counter("kernel_cache_hits") == kernels
        exact = GrophecyPlusPlus(
            tesla_c1060(), pcie_gen3_bus(), space
        ).project(program, hints)
        assert response.projection == exact

    def test_programs_sharing_a_kernel_share_entries(self, space):
        """Program identity is out of the key: renaming the program (and
        nothing else) still hits."""
        workload = get_workload("SRAD")
        dataset = workload.datasets()[0]
        program = workload.skeleton(dataset)
        engine = ProjectionEngine(tesla_c1060(), pcie_gen1_bus(), space)
        model = engine._model_for(tesla_c1060())
        keys = [
            engine._kernel_key(k, program.array_map, model.arch, space)
            for k in program.kernels
        ]
        import dataclasses

        renamed = dataclasses.replace(program, name="renamed-srad")
        renamed_keys = [
            engine._kernel_key(k, renamed.array_map, model.arch, space)
            for k in renamed.kernels
        ]
        assert keys == renamed_keys
