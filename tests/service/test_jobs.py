"""Tests for the JSONL batch runner and request parsing."""

import json
from pathlib import Path

import pytest

from repro.service.cache import ProjectionCache
from repro.service.engine import ProjectionEngine
from repro.service.jobs import BadRequestError, parse_request, run_batch

INLINE_SKELETON = """\
program tiny
array a[1024] f32
array b[1024] f32

kernel copy
  parfor i in 0..1024
  stmt flops=1
    load a[i]
    store b[i]
"""


def write_jsonl(path, records):
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            if isinstance(record, str):
                fh.write(record + "\n")
            else:
                fh.write(json.dumps(record) + "\n")
    return path


class TestParseRequest:
    BASE = Path(".")

    def test_workload_with_dataset(self):
        request = parse_request(
            {"workload": "HotSpot", "dataset": "64 x 64"}, 0, self.BASE
        )
        assert "hotspot" in request.program.name
        assert request.request_id == "request-1"

    def test_inline_skeleton(self):
        request = parse_request(
            {"id": "x", "skeleton": INLINE_SKELETON}, 3, self.BASE
        )
        assert request.program.name == "tiny"
        assert request.request_id == "x"

    def test_skeleton_file_relative_to_requests_dir(self, tmp_path):
        (tmp_path / "t.skel").write_text(INLINE_SKELETON)
        request = parse_request(
            {"skeleton_file": "t.skel"}, 0, tmp_path
        )
        assert request.program.name == "tiny"

    def test_optional_fields(self):
        request = parse_request(
            {
                "workload": "VectorAdd",
                "iterations": 10,
                "cpu_ms": 25,
                "arch": "gtx_280",
                "pcie_gen": 2,
                "batched_transfers": True,
            },
            0,
            self.BASE,
        )
        assert request.iterations == 10
        assert request.cpu_seconds == pytest.approx(0.025)
        assert request.arch is not None and "280" in request.arch.name
        assert request.bus is not None
        assert request.batched_transfers

    @pytest.mark.parametrize(
        "record, fragment",
        [
            ([1, 2], "JSON object"),
            ({}, "exactly one"),
            ({"workload": "X", "skeleton": "y"}, "exactly one"),
            ({"workload": "NoSuchWorkload"}, "NoSuchWorkload"),
            ({"workload": "VectorAdd", "arch": "volta"}, "unknown arch"),
            ({"workload": "VectorAdd", "pcie_gen": 9}, "generation"),
            ({"workload": "VectorAdd", "iterations": 0}, "iterations"),
            (
                {"workload": "VectorAdd", "sparse_extents": {"a": "lots"}},
                "bad hints",
            ),
        ],
    )
    def test_bad_records_raise_one_line_errors(self, record, fragment):
        with pytest.raises(BadRequestError) as exc_info:
            parse_request(record, 0, self.BASE)
        message = str(exc_info.value)
        assert fragment in message
        assert "\n" not in message


class TestRunBatch:
    def test_error_isolation(self, tmp_path):
        requests = write_jsonl(
            tmp_path / "r.jsonl",
            [
                {"id": "good", "skeleton": INLINE_SKELETON},
                {"id": "bad-workload", "workload": "NoSuchWorkload"},
                "{this is not json",
                {"id": "bad-skel", "skeleton": "program broken\nwat\n"},
                {"id": "also-good", "workload": "VectorAdd"},
            ],
        )
        result = run_batch(requests, engine=ProjectionEngine())
        assert result.ok_count == 2
        assert result.error_count == 3
        ids = [r.request_id for r in result.records]
        assert ids == [
            "good", "bad-workload", "request-3", "bad-skel", "also-good"
        ]
        errors = {r.request_id: r.error for r in result.records if not r.ok}
        assert "NoSuchWorkload" in errors["bad-workload"]
        assert "bad JSON" in errors["request-3"]

    def test_output_file_in_input_order(self, tmp_path):
        requests = write_jsonl(
            tmp_path / "r.jsonl",
            [
                {"id": f"req-{i}", "skeleton": INLINE_SKELETON}
                for i in range(3)
            ],
        )
        out = tmp_path / "out.jsonl"
        run_batch(requests, output_path=out, engine=ProjectionEngine())
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert [row["id"] for row in rows] == ["req-0", "req-1", "req-2"]
        assert all(row["ok"] for row in rows)
        assert all("projection" in row for row in rows)

    def test_default_output_path(self, tmp_path):
        requests = write_jsonl(
            tmp_path / "r.jsonl", [{"workload": "VectorAdd"}]
        )
        result = run_batch(requests, engine=ProjectionEngine())
        assert result.output_path == str(tmp_path / "r.jsonl.results.jsonl")
        assert Path(result.output_path).is_file()

    def test_second_run_hits_cache(self, tmp_path):
        requests = write_jsonl(
            tmp_path / "r.jsonl",
            [
                {"id": "hs", "workload": "HotSpot", "dataset": "64 x 64"},
                {"id": "va", "workload": "VectorAdd"},
            ],
        )
        engine = ProjectionEngine(
            cache=ProjectionCache(disk_dir=tmp_path / "cache")
        )
        cold = run_batch(requests, engine=engine, max_workers=2)
        warm = run_batch(requests, engine=engine, max_workers=2)
        assert cold.hit_count == 0
        assert warm.hit_count == 2
        assert warm.metrics["counters"]["cache_hits"] == 2

    def test_metrics_snapshot_attached(self, tmp_path):
        requests = write_jsonl(
            tmp_path / "r.jsonl", [{"workload": "VectorAdd"}]
        )
        result = run_batch(requests, engine=ProjectionEngine())
        assert result.metrics["counters"]["requests"] == 1

    def test_report_mentions_errors(self, tmp_path):
        requests = write_jsonl(
            tmp_path / "r.jsonl",
            [{"id": "oops", "workload": "NoSuchWorkload"}],
        )
        result = run_batch(requests, engine=ProjectionEngine())
        report = result.report()
        assert "ok 0, errors 1" in report
        assert "oops" in report

    def test_timeout_produces_error_record(self, tmp_path):
        import time

        class SlowEngine(ProjectionEngine):
            # Deterministically slower than the timeout: the real
            # engine can finish before the main thread even asks for
            # the result, which made a bare 1e-9s timeout flaky.
            def project(self, request, workers=None):
                time.sleep(0.05)
                return super().project(request, workers)

        requests = write_jsonl(
            tmp_path / "r.jsonl",
            [{"id": "slow", "workload": "CFD"}],
        )
        result = run_batch(
            requests, engine=SlowEngine(), timeout=1e-3
        )
        assert result.error_count == 1
        assert "timed out" in result.records[0].error
