"""Parallel exploration must be bit-identical to the serial explorer."""

import multiprocessing

import pytest

from repro.gpu.arch import quadro_fx_5600
from repro.gpu.model import GpuPerformanceModel
from repro.gpu.vectorized import ScoreArena, columns_from_chars, fused_argmin
from repro.service.parallel import (
    StreamWorkerPool,
    explore_kernel_parallel,
    map_ordered,
    project_kernels_parallel,
    shared_pool,
    shutdown_pool,
    space_chunks,
    submit_shared,
)
from repro.skeleton import KernelBuilder, ProgramBuilder
from repro.transform.analysis import analyze_kernel
from repro.transform.explorer import explore_kernel, project_program
from repro.transform.space import MappingConfig, TransformationSpace

fork_available = "fork" in multiprocessing.get_all_start_methods()


def stencil_program(n=256):
    pb = ProgramBuilder("p")
    pb.array("src", (n, n)).array("dst", (n, n))
    kb = KernelBuilder("stencil")
    kb.parallel_loop("i", n - 1, 1).parallel_loop("j", n - 1, 1)
    kb.load("src", "i", "j").load("src", ("i", 1, -1), "j")
    kb.load("src", ("i", 1, 1), "j").store("dst", "i", "j")
    kb.statement(flops=4)
    return pb.kernel(kb).build()


def two_kernel_program(n=256):
    pb = ProgramBuilder("p2")
    pb.array("a", (n,)).array("b", (n,))
    k1 = KernelBuilder("first").parallel_loop("i", n)
    k1.load("a", "i").store("b", "i").statement(flops=1)
    k2 = KernelBuilder("second").parallel_loop("i", n)
    k2.load("b", "i").store("a", "i").statement(flops=2)
    return pb.kernel(k1).kernel(k2).build()


class TestMapOrdered:
    def test_preserves_input_order(self):
        items = list(range(20))
        assert map_ordered(lambda x: x * x, items, 4) == [
            x * x for x in items
        ]

    def test_serial_fallback_matches(self):
        items = ["a", "bb", "ccc"]
        assert map_ordered(len, items, None) == map_ordered(len, items, 8)

    def test_propagates_exceptions(self):
        def boom(x):
            raise RuntimeError(f"bad {x}")

        with pytest.raises(RuntimeError):
            map_ordered(boom, [1, 2], 2)


class TestSpaceChunks:
    def test_concatenation_preserves_order(self):
        configs = tuple(TransformationSpace.default())
        chunks = space_chunks(configs, 5)
        assert len(chunks) == 5
        flat = tuple(c for chunk in chunks for c in chunk)
        assert flat == configs

    def test_more_chunks_than_configs(self):
        configs = (MappingConfig(64), MappingConfig(128))
        chunks = space_chunks(configs, 10)
        assert len(chunks) == 2
        assert all(len(c) == 1 for c in chunks)

    def test_empty_space(self):
        assert space_chunks((), 4) == []

    def test_rejects_bad_chunk_count(self):
        with pytest.raises(ValueError):
            space_chunks((MappingConfig(64),), 0)


class TestParallelMatchesSerial:
    @pytest.mark.parametrize("workers", [1, 2, 7])
    def test_single_kernel_identical(self, workers):
        program = stencil_program()
        model = GpuPerformanceModel(quadro_fx_5600())
        serial = explore_kernel(program.kernels[0], program, model)
        parallel = explore_kernel_parallel(
            program.kernels[0], program, model, max_workers=workers
        )
        assert parallel.best == serial.best
        assert parallel.candidates == serial.candidates
        assert parallel.skipped == serial.skipped

    @pytest.mark.parametrize("workers", [1, 3])
    def test_multi_kernel_identical(self, workers):
        program = two_kernel_program()
        model = GpuPerformanceModel(quadro_fx_5600())
        serial = project_program(program, model)
        parallel = project_kernels_parallel(
            program, model, max_workers=workers
        )
        assert parallel == serial

    def test_no_legal_mapping_still_raises(self):
        # Only an oversized block on offer: every candidate is pruned.
        program = stencil_program()
        model = GpuPerformanceModel(quadro_fx_5600())
        space = TransformationSpace(
            block_sizes=(1024,),
            shared_memory_options=(False,),
            unroll_factors=(1,),
        )
        with pytest.raises(ValueError, match="no legal mapping"):
            explore_kernel_parallel(
                program.kernels[0], program, model, space, max_workers=4
            )


class TestSharedPool:
    def test_pool_is_reused_across_calls(self):
        shutdown_pool()
        first = shared_pool(2)
        second = shared_pool(2)
        assert first is second
        assert shared_pool(1) is first  # smaller asks reuse the pool

    def test_pool_grows_when_asked_for_more(self):
        shutdown_pool()
        small = shared_pool(1)
        grown = shared_pool(3)
        assert grown is not small
        assert shared_pool(2) is grown

    def test_shutdown_then_lazy_recreation(self):
        pool = shared_pool(2)
        shutdown_pool()
        fresh = shared_pool(2)
        assert fresh is not pool
        assert map_ordered(lambda x: x + 1, [1, 2, 3], 2) == [2, 3, 4]

    def test_submit_shared_runs_after_shutdown(self):
        # A submission raced against shutdown still produces a result
        # (inline fallback) instead of raising.
        shutdown_pool()
        future = submit_shared(lambda: 41 + 1)
        assert future.result() == 42
        shutdown_pool()
        assert submit_shared(len, "abc").result() == 3

    def test_map_ordered_uses_shared_pool(self):
        shutdown_pool()
        map_ordered(lambda x: x, list(range(8)), 4)
        # The fan-out above created the module pool; the next call with
        # equal-or-smaller width must reuse it rather than rebuild.
        pool = shared_pool(4)
        assert shared_pool(4) is pool


@pytest.mark.skipif(not fork_available, reason="needs the fork start method")
class TestStreamWorkerPool:
    def _columns(self, space=None):
        program = stencil_program()
        model = GpuPerformanceModel(quadro_fx_5600())
        analysis = analyze_kernel(
            program.kernels[0],
            program.array_map,
            model.arch.strict_coalescing,
        )
        space = space or TransformationSpace.wide()
        columns, _index_map, _errors = analysis.config_columns(
            list(space.configs())
        )
        return model, columns

    def test_pool_matches_serial_fused_argmin(self):
        model, columns = self._columns()
        serial = fused_argmin(model, columns, ScoreArena())
        pool = StreamWorkerPool(workers=2)
        try:
            # Tiny chunks force multi-chunk merging across workers.
            assert pool.score_columns(model, columns, chunk_rows=7) == serial
            # Second pass reuses the attached segment (warm path).
            assert pool.score_columns(model, columns, chunk_rows=7) == serial
        finally:
            pool.close()

    def test_pool_grows_capacity_across_batches(self):
        model, small = self._columns(TransformationSpace.naive())
        _, large = self._columns()
        pool = StreamWorkerPool(workers=2)
        try:
            assert pool.score_columns(model, small) == fused_argmin(
                model, small, ScoreArena()
            )
            assert pool.score_columns(model, large, chunk_rows=16) == (
                fused_argmin(model, large, ScoreArena())
            )
        finally:
            pool.close()

    def test_empty_grid(self):
        model, _ = self._columns(TransformationSpace.naive())
        pool = StreamWorkerPool(workers=1)
        try:
            empty = columns_from_chars([])
            assert pool.score_columns(model, empty) == (-1, float("inf"), 0)
        finally:
            pool.close()

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            StreamWorkerPool(workers=0)

    def test_close_unlinks_shared_segment(self):
        import os

        model, columns = self._columns()
        pool = StreamWorkerPool(workers=1)
        try:
            pool.score_columns(model, columns, chunk_rows=16)
            name = pool._shm.name
            assert os.path.exists(f"/dev/shm/{name}")
        finally:
            pool.close()
        assert not os.path.exists(f"/dev/shm/{name}")
        # Idempotent: a second close (e.g. the unregistered atexit hook
        # firing anyway) must not raise.
        pool._atexit_release()

    def test_atexit_releases_leaked_segment(self):
        """A process that exits without close() must not leak /dev/shm.

        Regression: before the atexit hook, killing a warm daemon (or ^C
        in the CLI) left the column block behind in /dev/shm until
        reboot.  Run the leak scenario in a subprocess and verify the
        segment is gone after a clean interpreter exit.
        """
        import os
        import subprocess
        import sys
        from pathlib import Path

        script = """
import os
from repro.gpu.arch import quadro_fx_5600
from repro.gpu.model import GpuPerformanceModel
from repro.service.parallel import StreamWorkerPool
from repro.skeleton import KernelBuilder, ProgramBuilder
from repro.transform.analysis import analyze_kernel
from repro.transform.space import TransformationSpace

pb = ProgramBuilder("p")
pb.array("src", (64, 64)).array("dst", (64, 64))
kb = KernelBuilder("k")
kb.parallel_loop("i", 63, 1).parallel_loop("j", 63, 1)
kb.load("src", "i", "j").store("dst", "i", "j")
kb.statement(flops=1)
program = pb.kernel(kb).build()
model = GpuPerformanceModel(quadro_fx_5600())
analysis = analyze_kernel(
    program.kernels[0], program.array_map, model.arch.strict_coalescing
)
columns, _, _ = analysis.config_columns(
    list(TransformationSpace.wide().configs())
)
pool = StreamWorkerPool(workers=1)
pool.score_columns(model, columns, chunk_rows=32)
print(pool._shm.name, flush=True)
assert os.path.exists(f"/dev/shm/{pool._shm.name}")
# Exit WITHOUT close(): the atexit hook must unlink the segment.
"""
        src = Path(__file__).resolve().parents[2] / "src"
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
            env={**os.environ, "PYTHONPATH": str(src)},
        )
        assert result.returncode == 0, result.stderr
        name = result.stdout.strip().splitlines()[-1]
        assert name
        assert not os.path.exists(f"/dev/shm/{name}")
