"""Parallel exploration must be bit-identical to the serial explorer."""

import pytest

from repro.gpu.arch import quadro_fx_5600
from repro.gpu.model import GpuPerformanceModel
from repro.service.parallel import (
    explore_kernel_parallel,
    map_ordered,
    project_kernels_parallel,
    space_chunks,
)
from repro.skeleton import KernelBuilder, ProgramBuilder
from repro.transform.explorer import explore_kernel, project_program
from repro.transform.space import MappingConfig, TransformationSpace


def stencil_program(n=256):
    pb = ProgramBuilder("p")
    pb.array("src", (n, n)).array("dst", (n, n))
    kb = KernelBuilder("stencil")
    kb.parallel_loop("i", n - 1, 1).parallel_loop("j", n - 1, 1)
    kb.load("src", "i", "j").load("src", ("i", 1, -1), "j")
    kb.load("src", ("i", 1, 1), "j").store("dst", "i", "j")
    kb.statement(flops=4)
    return pb.kernel(kb).build()


def two_kernel_program(n=256):
    pb = ProgramBuilder("p2")
    pb.array("a", (n,)).array("b", (n,))
    k1 = KernelBuilder("first").parallel_loop("i", n)
    k1.load("a", "i").store("b", "i").statement(flops=1)
    k2 = KernelBuilder("second").parallel_loop("i", n)
    k2.load("b", "i").store("a", "i").statement(flops=2)
    return pb.kernel(k1).kernel(k2).build()


class TestMapOrdered:
    def test_preserves_input_order(self):
        items = list(range(20))
        assert map_ordered(lambda x: x * x, items, 4) == [
            x * x for x in items
        ]

    def test_serial_fallback_matches(self):
        items = ["a", "bb", "ccc"]
        assert map_ordered(len, items, None) == map_ordered(len, items, 8)

    def test_propagates_exceptions(self):
        def boom(x):
            raise RuntimeError(f"bad {x}")

        with pytest.raises(RuntimeError):
            map_ordered(boom, [1, 2], 2)


class TestSpaceChunks:
    def test_concatenation_preserves_order(self):
        configs = tuple(TransformationSpace.default())
        chunks = space_chunks(configs, 5)
        assert len(chunks) == 5
        flat = tuple(c for chunk in chunks for c in chunk)
        assert flat == configs

    def test_more_chunks_than_configs(self):
        configs = (MappingConfig(64), MappingConfig(128))
        chunks = space_chunks(configs, 10)
        assert len(chunks) == 2
        assert all(len(c) == 1 for c in chunks)

    def test_empty_space(self):
        assert space_chunks((), 4) == []

    def test_rejects_bad_chunk_count(self):
        with pytest.raises(ValueError):
            space_chunks((MappingConfig(64),), 0)


class TestParallelMatchesSerial:
    @pytest.mark.parametrize("workers", [1, 2, 7])
    def test_single_kernel_identical(self, workers):
        program = stencil_program()
        model = GpuPerformanceModel(quadro_fx_5600())
        serial = explore_kernel(program.kernels[0], program, model)
        parallel = explore_kernel_parallel(
            program.kernels[0], program, model, max_workers=workers
        )
        assert parallel.best == serial.best
        assert parallel.candidates == serial.candidates
        assert parallel.skipped == serial.skipped

    @pytest.mark.parametrize("workers", [1, 3])
    def test_multi_kernel_identical(self, workers):
        program = two_kernel_program()
        model = GpuPerformanceModel(quadro_fx_5600())
        serial = project_program(program, model)
        parallel = project_kernels_parallel(
            program, model, max_workers=workers
        )
        assert parallel == serial

    def test_no_legal_mapping_still_raises(self):
        # Only an oversized block on offer: every candidate is pruned.
        program = stencil_program()
        model = GpuPerformanceModel(quadro_fx_5600())
        space = TransformationSpace(
            block_sizes=(1024,),
            shared_memory_options=(False,),
            unroll_factors=(1,),
        )
        with pytest.raises(ValueError, match="no legal mapping"):
            explore_kernel_parallel(
                program.kernels[0], program, model, space, max_workers=4
            )
