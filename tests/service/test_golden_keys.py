"""Golden cache keys: the content-addressed fingerprints are pinned.

The projection cache (memory + disk) and the daemon's result reuse both
address entries by :meth:`ProjectionEngine.fingerprint`.  Those keys
must be stable across processes, Python versions, and refactors — a
silent drift would orphan every persisted cache entry and turn warm
daemons cold after a deploy.  These tests pin the *computed* digests
for one fixed request (HotSpot, smallest dataset, default arch/bus/
space) across the three explorer paths.

If a test here fails because you deliberately changed a fingerprint
input (new skeleton field, arch table recalibration, key-format bump),
update the golden values *and* bump the relevant format/version
constant so old disk caches are invalidated rather than misread.
"""

from repro.gpu import registry
from repro.gpu.arch import gtx_280, quadro_fx_5600, tesla_c1060
from repro.pcie.presets import pcie_gen1_bus
from repro.service.engine import ProjectionEngine, ProjectionRequest
from repro.transform.space import TransformationSpace
from repro.workloads.registry import get_workload

GOLDEN_REQUEST_KEYS = {
    # fast/reference summaries are interchangeable by design, so they
    # share one key; stream summaries are argmin-only tables and get
    # their own.
    "reference": (
        "a487f6afef4896107ef5ab0f76207e8843fe2ab12192946cd4a09e1cfebc04d3"
    ),
    "fast": (
        "a487f6afef4896107ef5ab0f76207e8843fe2ab12192946cd4a09e1cfebc04d3"
    ),
    "stream": (
        "b3c585af5f908501e47ad6e34e4c2edb9a6b705cf6ff25693ef81fd80d0edaa0"
    ),
}

GOLDEN_STREAM_BATCHED_KEY = (
    "3c8f6e772f07f74c03ac06f11b867e1c2657c87c3167618e4592ae32c3f8fd65"
)

GOLDEN_COMPONENTS = {
    "program": (
        "019ece474bc7ba8a5971ae58b612cb2cd5c25e580ee3ef29dd5b53c97f90985d"
    ),
    "hints": (
        "5b776b736340d8c916ae36809d4b3e249b9c40956a1a915f0aeab010f91d5e35"
    ),
    "arch": (
        "45d2805f4ae70c45605a1259f0099cb9cecfd50c73fcb02587e4c95a7f02e928"
    ),
    "bus": (
        "e423bac8c0980c168c33256a3cc12ebf2aa3dec2190edb04596a58b161d1aa7c"
    ),
    "space_default": (
        "a22168329e6753342093e90e4f1ae8030739cd3f2e708c18f19ccdcff875ba14"
    ),
    "space_wide": (
        "5bb46e594b3f7a25cdc95bc8dfefe1500dc8ea7fec2ec51670c05f48e79d419e"
    ),
}


#: Machine-description fingerprints of the calibrated boards — computed
#: before the registry existed, against the hand-built constructors.
#: ``registry.get_arch`` must keep reproducing them byte-for-byte, or
#: every cache entry keyed under an arch would silently orphan.
GOLDEN_ARCH_FINGERPRINTS = {
    "quadro_fx_5600": (
        "45d2805f4ae70c45605a1259f0099cb9cecfd50c73fcb02587e4c95a7f02e928"
    ),
    "tesla_c1060": (
        "cee5fca948b92692189eb9e7df82487ea2c99c061f853f18d2c360c15727d9be"
    ),
    "gtx_280": (
        "22e71740192871fa796fd796edf99c1f61589c746666afd815f244c73f23f852"
    ),
}

#: Fast-explorer request keys for the fixed request with each calibrated
#: board as the per-request arch override (pre-registry captures).
GOLDEN_ARCH_REQUEST_KEYS = {
    "quadro_fx_5600": (
        "a487f6afef4896107ef5ab0f76207e8843fe2ab12192946cd4a09e1cfebc04d3"
    ),
    "tesla_c1060": (
        "6c206f1b34e5c4678394613985e1b90b873ab47a30945a5be028b1a06815c028"
    ),
    "gtx_280": (
        "45c6a1dcb7cf8866b083eadb23901518ec75eaeae356b953273be08823c743de"
    ),
}

_CONSTRUCTORS = {
    "quadro_fx_5600": quadro_fx_5600,
    "tesla_c1060": tesla_c1060,
    "gtx_280": gtx_280,
}


def _fixed_request():
    workload = get_workload("HotSpot")
    dataset = min(workload.datasets(), key=lambda d: d.size)
    return (
        workload.skeleton(dataset),
        workload.hints(dataset),
    )


def _engine(explorer: str) -> ProjectionEngine:
    return ProjectionEngine(
        arch=quadro_fx_5600(),
        bus=pcie_gen1_bus(),
        space=TransformationSpace.default(),
        explorer=explorer,
    )


class TestGoldenRequestKeys:
    def test_request_keys_match_golden(self):
        program, hints = _fixed_request()
        request = ProjectionRequest(program=program, hints=hints)
        for explorer, expected in GOLDEN_REQUEST_KEYS.items():
            assert _engine(explorer).fingerprint(request) == expected, (
                f"{explorer} cache key drifted — persisted caches would "
                "go cold; bump KEY_FORMAT if the change is deliberate"
            )

    def test_fast_and_reference_share_a_key(self):
        assert GOLDEN_REQUEST_KEYS["fast"] == GOLDEN_REQUEST_KEYS["reference"]

    def test_stream_key_is_distinct(self):
        assert (
            GOLDEN_REQUEST_KEYS["stream"] != GOLDEN_REQUEST_KEYS["fast"]
        )

    def test_batched_transfers_changes_the_key(self):
        program, hints = _fixed_request()
        request = ProjectionRequest(
            program=program, hints=hints, batched_transfers=True
        )
        assert (
            _engine("stream").fingerprint(request)
            == GOLDEN_STREAM_BATCHED_KEY
        )
        assert GOLDEN_STREAM_BATCHED_KEY != GOLDEN_REQUEST_KEYS["stream"]

    def test_keys_are_deterministic_across_engines(self):
        # A fresh engine (new caches, new explorer instance) must
        # produce byte-identical keys — that is the whole point of
        # content addressing.
        program, hints = _fixed_request()
        request = ProjectionRequest(program=program, hints=hints)
        first = _engine("stream").fingerprint(request)
        second = _engine("stream").fingerprint(request)
        assert first == second == GOLDEN_REQUEST_KEYS["stream"]


class TestGoldenComponentFingerprints:
    """The inputs that compose a request key are pinned individually, so
    a drift points straight at the layer that moved."""

    def test_program_fingerprint(self):
        program, _ = _fixed_request()
        assert program.fingerprint() == GOLDEN_COMPONENTS["program"]

    def test_hints_fingerprint(self):
        _, hints = _fixed_request()
        assert hints.fingerprint() == GOLDEN_COMPONENTS["hints"]

    def test_arch_fingerprint(self):
        assert (
            quadro_fx_5600().fingerprint() == GOLDEN_COMPONENTS["arch"]
        )

    def test_bus_fingerprint(self):
        assert pcie_gen1_bus().fingerprint() == GOLDEN_COMPONENTS["bus"]

    def test_space_fingerprints(self):
        assert (
            TransformationSpace.default().fingerprint()
            == GOLDEN_COMPONENTS["space_default"]
        )
        assert (
            TransformationSpace.wide().fingerprint()
            == GOLDEN_COMPONENTS["space_wide"]
        )


class TestGoldenRegistryArches:
    """The registry reassembles the calibrated boards byte-identically:
    same machine-description fingerprints, same request keys.  These
    values were captured against the hand-built constructors *before*
    the registry existed — a drift here means the refactor changed
    model inputs, not just code structure."""

    def test_registry_arch_fingerprints_match_golden(self):
        for arch_id, expected in GOLDEN_ARCH_FINGERPRINTS.items():
            assert registry.get_arch(arch_id).fingerprint() == expected, (
                f"{arch_id} machine description drifted through the "
                "registry"
            )

    def test_constructor_fingerprints_match_golden(self):
        for arch_id, factory in _CONSTRUCTORS.items():
            assert (
                factory().fingerprint()
                == GOLDEN_ARCH_FINGERPRINTS[arch_id]
            )

    def test_registry_request_keys_match_golden(self):
        program, hints = _fixed_request()
        for arch_id, expected in GOLDEN_ARCH_REQUEST_KEYS.items():
            engine = ProjectionEngine(
                arch=registry.get_arch(arch_id),
                bus=pcie_gen1_bus(),
                space=TransformationSpace.default(),
                explorer="fast",
            )
            request = ProjectionRequest(program=program, hints=hints)
            assert engine.fingerprint(request) == expected, (
                f"{arch_id} request key drifted — per-arch caches would "
                "go cold"
            )

    def test_nominal_generations_have_distinct_fingerprints(self):
        calibrated = set(GOLDEN_ARCH_FINGERPRINTS.values())
        for spec in registry.all_specs():
            if not spec.calibrated:
                fingerprint = registry.get_arch(spec.id).fingerprint()
                assert fingerprint not in calibrated
