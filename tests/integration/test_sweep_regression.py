"""Figure CSVs must be byte-identical with and without the sweep engine.

``ExperimentContext`` now serves fig 7-12 (and the PCIe what-if) through
the parametric sweep engine by default.  This regression pins the
engine's exactness at the artifact level: the exported CSV text of every
figure — the files under ``results/`` — is compared byte-for-byte
between a sweep-enabled and a sweep-disabled context.
"""

import pytest

from repro.harness.context import ExperimentContext
from repro.harness.export import to_csv
from repro.harness.speedups import (
    run_speedup_vs_iterations,
    run_speedup_vs_size,
)
from repro.pcie.presets import bus_for_generation
from repro.workloads import get_workload

SIZE_FIGURES = {"fig7": "CFD", "fig9": "HotSpot", "fig11": "SRAD"}
ITER_FIGURES = {"fig8": "CFD", "fig10": "HotSpot", "fig12": "SRAD"}


@pytest.fixture(scope="module")
def sweep_ctx():
    return ExperimentContext(seed=2013, sweep=True)


@pytest.fixture(scope="module")
def point_ctx():
    return ExperimentContext(seed=2013, sweep=False)


class TestFigureCsvRegression:
    @pytest.mark.parametrize("fig", sorted(SIZE_FIGURES))
    def test_size_figures_identical(self, sweep_ctx, point_ctx, fig):
        workload = get_workload(SIZE_FIGURES[fig])
        swept = run_speedup_vs_size(sweep_ctx, workload)
        exact = run_speedup_vs_size(point_ctx, workload)
        assert swept == exact, fig
        assert to_csv(swept) == to_csv(exact), fig

    @pytest.mark.parametrize("fig", sorted(ITER_FIGURES))
    def test_iteration_figures_identical(self, sweep_ctx, point_ctx, fig):
        workload = get_workload(ITER_FIGURES[fig])
        swept = run_speedup_vs_iterations(sweep_ctx, workload)
        exact = run_speedup_vs_iterations(point_ctx, workload)
        assert swept == exact, fig
        assert to_csv(swept) == to_csv(exact), fig


class TestWhatIfRegression:
    def test_bus_sweep_matches_direct_pricing(self, sweep_ctx, point_ctx):
        """The sweep-engine what-if (fixed plan, many buses) reproduces
        per-bus ``predict_plan`` exactly for every paper projection."""
        workload = get_workload("Stassuij")
        dataset = workload.datasets()[0]
        plan = point_ctx.projection(workload, dataset).plan
        buses = [bus_for_generation(g) for g in (1, 2, 3)]
        points = sweep_ctx.sweep_engine.sweep_buses(plan, buses)
        for bus, point in zip(buses, points):
            assert point.transfer_seconds == bus.predict_plan(plan)
