"""Golden regression values for the calibrated pipeline.

These pin the *current* end-to-end behavior (seed 2013) so that future
refactors that unintentionally shift projections or the virtual testbed
fail loudly.  Tolerances are tight (1-3%): they allow float noise, not
model drift.  If a deliberate model change moves these numbers, update
them alongside EXPERIMENTS.md.
"""

import pytest

from repro.workloads import get_workload

# (workload, dataset) -> (predicted kernel ms, predicted transfer ms)
GOLDEN_PREDICTIONS = {
    ("CFD", "97K"): (1.087, 3.330),
    ("CFD", "233K"): (2.578, 7.912),
    ("HotSpot", "1024 x 1024"): (0.642, 5.053),
    ("SRAD", "4096 x 4096"): (28.16, 53.22),
    ("Stassuij", "132 x 2048"): (2.237, 5.272),
    ("PathFinder", "100K cols"): (4.319, 10.81),
    ("KMeans", "64K points"): (1.087, 1.843),
}

# (workload, dataset) -> measured kernel ms (10-run mean, seed 2013).
GOLDEN_MEASURED_KERNEL = {
    ("CFD", "97K"): 1.90,
    ("HotSpot", "1024 x 1024"): 1.20,
    ("SRAD", "4096 x 4096"): 28.1,
    ("Stassuij", "132 x 2048"): 2.40,
}


class TestGoldenPredictions:
    @pytest.mark.parametrize(
        "key", sorted(GOLDEN_PREDICTIONS, key=str),
        ids=lambda k: f"{k[0]}-{k[1]}",
    )
    def test_projection_values(self, ctx, key):
        workload = get_workload(key[0])
        dataset = workload.dataset(key[1])
        projection = ctx.projection(workload, dataset)
        kernel_ms, transfer_ms = GOLDEN_PREDICTIONS[key]
        assert projection.kernel_seconds * 1e3 == pytest.approx(
            kernel_ms, rel=0.03
        )
        assert projection.transfer_seconds * 1e3 == pytest.approx(
            transfer_ms, rel=0.03
        )

    @pytest.mark.parametrize(
        "key", sorted(GOLDEN_MEASURED_KERNEL, key=str),
        ids=lambda k: f"{k[0]}-{k[1]}",
    )
    def test_measured_kernel_values(self, ctx, key):
        workload = get_workload(key[0])
        dataset = workload.dataset(key[1])
        measured = ctx.measured(workload, dataset)
        assert measured.kernel_seconds * 1e3 == pytest.approx(
            GOLDEN_MEASURED_KERNEL[key], rel=0.05
        )

    def test_calibrated_bus_parameters(self, ctx):
        # The 2-point calibration on seed 2013's testbed.
        assert ctx.bus_model.h2d.alpha * 1e6 == pytest.approx(9.8, abs=0.4)
        assert ctx.bus_model.h2d.bandwidth / 1e9 == pytest.approx(
            2.45, rel=0.02
        )
        assert ctx.bus_model.d2h.bandwidth / 1e9 == pytest.approx(
            2.60, rel=0.02
        )

    def test_best_mappings_stable(self, ctx):
        """The explorer's choices for key kernels must not drift silently."""
        w = get_workload("SRAD")
        projection = ctx.projection(w, w.dataset("4096 x 4096"))
        for kp in projection.kernels.kernels:
            assert kp.best.config.use_shared_memory, kp.kernel
        w = get_workload("Stassuij")
        projection = ctx.projection(w, w.datasets()[0])
        assert projection.kernels.kernels[0].best.config.block_size <= 128
