"""Shared experiment context for the integration (paper-shape) tests."""

import pytest

from repro.harness.context import ExperimentContext


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext(seed=2013)
