"""Integration tests: the paper's qualitative claims must hold end-to-end.

These assertions are deliberately loose bands around the paper's numbers —
our testbed is a simulator, so we check *shape*: who wins, by roughly what
factor, and where crossovers fall (see EXPERIMENTS.md for the full
paper-vs-measured record).
"""

import pytest

from repro.datausage import Direction
from repro.harness import paperref
from repro.harness.apps import run_fig5_transfer_scatter, run_table1_measured
from repro.harness.speedups import (
    run_speedup_vs_iterations,
    run_table2_speedup_error,
)
from repro.harness.transfer_sweep import (
    run_fig3_pinned_speedup,
    run_fig4_model_error,
)
from repro.workloads import get_workload, paper_workloads


class TestHeadlineClaims:
    """Abstract: transfer error ~8%; speedup error 255% -> 9%."""

    def test_transfer_prediction_error_band(self, ctx):
        errors = [
            ctx.report(w, ds).transfer_error
            for w in paper_workloads()
            for ds in w.datasets()
        ]
        mean = sum(errors) / len(errors)
        # Paper: 8% average transfer-time error.
        assert mean < 0.20

    def test_kernel_prediction_error_band(self, ctx):
        errors = [
            ctx.report(w, ds).kernel_error
            for w in paper_workloads()
            for ds in w.datasets()
        ]
        mean = sum(errors) / len(errors)
        # Paper: 15% average kernel-time error; our reimplemented
        # analytical model is honest but rougher on stencils.
        assert mean < 0.55

    def test_speedup_error_collapse(self, ctx):
        """Modeling transfers must slash the speedup error by >= 10x."""
        t2 = run_table2_speedup_error(ctx)
        avg = t2.application_average
        assert avg.kernel_only_error > 2.0  # paper: 255%
        assert avg.both_error < 0.35  # paper: 9%
        assert avg.kernel_only_error > 10 * avg.both_error

    def test_error_ordering_kernel_transfer_both(self, ctx):
        """Transfer-only beats kernel-only; both beats either (Table II)."""
        avg = run_table2_speedup_error(ctx).application_average
        assert (
            avg.kernel_only_error
            > avg.transfer_only_error
            > avg.both_error
        )


class TestTable1Shape:
    def test_kernel_times_match_paper(self, ctx):
        t1 = run_table1_measured(ctx)
        for (app, size), ref in paperref.TABLE1.items():
            row = t1.row(app, size)
            assert row.kernel_ms == pytest.approx(ref.kernel_ms, rel=0.10)

    def test_transfer_times_within_band(self, ctx):
        t1 = run_table1_measured(ctx)
        for (app, size), ref in paperref.TABLE1.items():
            row = t1.row(app, size)
            assert row.transfer_ms == pytest.approx(
                ref.transfer_ms, rel=0.30
            ), (app, size)

    def test_percent_transfer_band(self, ctx):
        """Transfer is ~2/3 of total for most datasets (41-79% range)."""
        t1 = run_table1_measured(ctx)
        for (app, size), ref in paperref.TABLE1.items():
            row = t1.row(app, size)
            assert row.percent_transfer == pytest.approx(
                ref.percent_transfer, abs=12
            ), (app, size)


class TestTable2Shape:
    def test_cfd_rows_close_to_paper(self, ctx):
        t2 = run_table2_speedup_error(ctx)
        for size in ("97K", "193K", "233K"):
            ref = paperref.TABLE2[("CFD", size)]
            row = t2.row("CFD", size)
            assert row.kernel_only_error == pytest.approx(
                ref.kernel_only, rel=0.25
            )
            assert row.both_error < 0.45

    def test_srad_rows_close_to_paper(self, ctx):
        t2 = run_table2_speedup_error(ctx)
        for size in ("1024 x 1024", "2048 x 2048", "4096 x 4096"):
            ref = paperref.TABLE2[("SRAD", size)]
            row = t2.row("SRAD", size)
            assert row.kernel_only_error == pytest.approx(
                ref.kernel_only, rel=0.35
            )
            assert row.both_error <= ref.both + 0.10

    def test_error_shrinks_with_data_size(self, ctx):
        """Within CFD and SRAD, the combined error falls as data grows."""
        t2 = run_table2_speedup_error(ctx)
        cfd = [t2.row("CFD", s).both_error for s in ("97K", "193K", "233K")]
        assert cfd[0] > cfd[-1]


class TestStassuijDecisionFlip:
    """Section V-B.4: the paper's decisive qualitative result."""

    def test_kernel_only_predicts_win_but_gpu_loses(self, ctx):
        w = get_workload("Stassuij")
        report = ctx.report(w, w.datasets()[0])
        kernel_only = report.predicted_speedup("kernel")
        measured = report.measured.speedup()
        both = report.predicted_speedup("both")
        assert kernel_only > 1.0  # paper: 1.10x -> "port it!"
        assert measured < 0.5  # paper: 0.39x -> actually a slowdown
        assert both < 1.0  # paper: 0.38x -> correctly predicted loss
        assert both == pytest.approx(measured, rel=0.25)

    def test_other_apps_do_not_flip(self, ctx):
        """For CFD/HotSpot/SRAD kernel-only overpredicts the magnitude
        but not the direction (footnote: speedup stays > 1)."""
        for name in ("CFD", "SRAD"):
            w = get_workload(name)
            for ds in w.datasets():
                report = ctx.report(w, ds)
                measured = report.measured.speedup()
                kernel_only = report.predicted_speedup("kernel")
                assert (measured > 1.0) == (kernel_only > 1.0), (
                    name,
                    ds.label,
                )


class TestIterationScaling:
    def test_cfd_crossover_near_paper(self, ctx):
        result = run_speedup_vs_iterations(ctx, get_workload("CFD"))
        assert result.accuracy_crossover is not None
        assert 8 <= result.accuracy_crossover <= 60  # paper: 18
        assert result.limit_error < 0.45  # paper: 22.6%

    def test_predictions_converge_in_limit(self, ctx):
        for name in ("CFD", "HotSpot", "SRAD"):
            result = run_speedup_vs_iterations(
                ctx, get_workload(name),
                iteration_counts=(1, 100_000),
            )
            with_t = result.predicted_with_transfer[-1]
            without_t = result.predicted_without_transfer[-1]
            assert with_t == pytest.approx(without_t, rel=0.01), name

    def test_transfer_aware_wins_at_one_iteration(self, ctx):
        """At 1 iteration the transfer-aware prediction is far better."""
        for name in ("CFD", "HotSpot", "SRAD"):
            w = get_workload(name)
            ds = max(w.datasets(), key=lambda d: d.size)
            report = ctx.report(w, ds)
            assert report.speedup_error("both") < 0.3 * report.speedup_error(
                "kernel"
            ), name


class TestBusModelClaims:
    def test_fig4_errors_within_paper_band(self, ctx):
        r = run_fig4_model_error(ctx)
        assert r.mean_h2d < 2 * paperref.FIG4_MEAN_ERROR_H2D
        assert r.mean_d2h < 2 * paperref.FIG4_MEAN_ERROR_D2H
        assert r.max_h2d < 2 * paperref.FIG4_MAX_ERROR_H2D
        # Essentially zero above 1MB.
        assert r.mean_above(2**20, Direction.H2D) < 0.01
        assert r.mean_above(2**20, Direction.D2H) < 0.01

    def test_fig3_pinned_crossover(self, ctx):
        r = run_fig3_pinned_speedup(ctx)
        crossover = r.crossover_size_h2d()
        assert crossover is not None
        assert crossover <= 2 * paperref.FIG3_H2D_CROSSOVER_BYTES
        # D2H: pinned always wins.
        assert all(s >= 0.99 for s in r.d2h_speedup)

    def test_fig5_mean_error_band(self, ctx):
        r = run_fig5_transfer_scatter(ctx)
        assert r.mean_error < 2 * paperref.FIG5_MEAN_TRANSFER_ERROR
