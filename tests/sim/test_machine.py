"""Tests for the assembled virtual testbed."""

import pytest

from repro.cpu.model import CpuWorkProfile
from repro.datausage import Direction
from repro.pcie.channel import MemoryKind
from repro.sim.gpu_sim import KernelWork
from repro.sim.machine import VirtualTestbed, argonne_testbed
from repro.sim.measurement import MeasuredValue, repeat_mean
from repro.sim.noise import BimodalQuirk
from repro.util.units import MiB


class TestRepeatMean:
    def test_runs_exactly_n(self):
        calls = []
        mv = repeat_mean(lambda: calls.append(1) or 1.5, repetitions=10)
        assert len(calls) == 10
        assert mv.mean == 1.5
        assert mv.repetitions == 10

    def test_mean_of_varying(self):
        values = iter([1.0, 2.0, 3.0])
        mv = repeat_mean(lambda: next(values), repetitions=3)
        assert mv.mean == pytest.approx(2.0)
        assert mv.spread > 0

    def test_rejects_zero_reps(self):
        with pytest.raises(ValueError):
            repeat_mean(lambda: 1.0, repetitions=0)


class TestVirtualTestbed:
    def test_reproducible_across_instances(self):
        a = argonne_testbed(seed=99)
        b = argonne_testbed(seed=99)
        w = KernelWork("k", 100_000, 1e6, 1e6, 0.0)
        assert a.measure_kernel(w).mean == b.measure_kernel(w).mean
        assert (
            a.measure_transfer(MiB, Direction.H2D).mean
            == b.measure_transfer(MiB, Direction.H2D).mean
        )

    def test_seed_changes_measurements(self):
        a = argonne_testbed(seed=1)
        b = argonne_testbed(seed=2)
        assert (
            a.measure_transfer(MiB, Direction.H2D).mean
            != b.measure_transfer(MiB, Direction.H2D).mean
        )

    def test_default_architectures(self):
        tb = argonne_testbed()
        assert "FX 5600" in tb.gpu_arch.name
        assert "E5405" in tb.cpu_arch.name

    def test_measure_transfer_with_quirk_inflates_mean(self):
        tb1 = argonne_testbed(seed=5)
        tb2 = argonne_testbed(seed=5)
        plain = tb1.measure_transfer(MiB, Direction.H2D, repetitions=50)
        quirky = tb2.measure_transfer(
            MiB,
            Direction.H2D,
            quirk=BimodalQuirk(probability=0.5, slow_factor=2.3),
            repetitions=50,
        )
        assert quirky.mean > 1.3 * plain.mean
        # The quirky transfer has the paper's "half the runs much slower"
        # signature: huge spread.
        assert quirky.spread > 3 * plain.spread

    def test_measure_cpu(self):
        tb = argonne_testbed()
        p = CpuWorkProfile("p", 1e9, 1e6)
        mv = tb.measure_cpu(p, hardware_factor=1.5)
        assert isinstance(mv, MeasuredValue)
        assert mv.mean == pytest.approx(0.15, rel=0.05)

    def test_pageable_memory_measurement(self):
        tb = argonne_testbed()
        pinned = tb.measure_transfer(
            16 * MiB, Direction.H2D, MemoryKind.PINNED
        )
        pageable = tb.measure_transfer(
            16 * MiB, Direction.H2D, MemoryKind.PAGEABLE
        )
        assert pageable.mean > pinned.mean
