"""Tests for the GPU/CPU execution simulators."""

import pytest

from repro.cpu.model import CpuWorkProfile
from repro.sim.cpu_sim import SimulatedCpu
from repro.sim.gpu_sim import (
    GpuSimParams,
    KernelWork,
    SimulatedGpu,
    kernel_work_from_skeleton,
)
from repro.skeleton import ArrayDecl, DType, KernelBuilder
from repro.util.rng import RngStream


def work(**kwargs) -> KernelWork:
    defaults = dict(
        name="k",
        threads=1_000_000,
        useful_bytes=28e6,
        flops=14e6,
        irregular_fraction=0.0,
    )
    defaults.update(kwargs)
    return KernelWork(**defaults)


class TestKernelWork:
    def test_validation(self):
        with pytest.raises(ValueError):
            work(threads=0)
        with pytest.raises(ValueError):
            work(irregular_fraction=1.5)


class TestKernelWorkFromSkeleton:
    def test_streaming_kernel(self):
        kb = KernelBuilder("copy").parallel_loop("i", 1000)
        kb.load("a", "i").store("b", "i").statement(flops=2)
        arrays = {
            "a": ArrayDecl("a", (1000,)),
            "b": ArrayDecl("b", (1000,)),
        }
        w = kernel_work_from_skeleton(kb.build(), arrays)
        assert w.threads == 1000
        assert w.useful_bytes == 8 * 1000
        assert w.flops == 2000
        assert w.irregular_fraction == 0.0

    def test_misaligned_taps_counted_irregular(self):
        kb = KernelBuilder("stencil")
        kb.parallel_loop("i", 63, 1).parallel_loop("j", 63, 1)
        kb.load("a", "i", "j").load("a", "i", ("j", 1, -1))
        kb.store("b", "i", "j").statement(flops=1)
        arrays = {
            "a": ArrayDecl("a", (64, 64)),
            "b": ArrayDecl("b", (64, 64)),
        }
        w = kernel_work_from_skeleton(kb.build(), arrays,
                                      strict_coalescing=True)
        assert w.irregular_fraction == pytest.approx(1 / 3)
        relaxed = kernel_work_from_skeleton(kb.build(), arrays,
                                            strict_coalescing=False)
        assert relaxed.irregular_fraction == 0.0

    def test_amortized_statement_weighting(self):
        kb = KernelBuilder("amortized").parallel_loop("i", 10).loop("k", 100)
        kb.load("meta", "i").statement(flops=0, amortize=("i",))
        kb.load("a", "i").statement(flops=1)
        arrays = {
            "meta": ArrayDecl("meta", (10,)),
            "a": ArrayDecl("a", (10,)),
        }
        w = kernel_work_from_skeleton(kb.build(), arrays)
        # meta read once per i (10 x 4B); a read per (i, k) (1000 x 4B).
        assert w.useful_bytes == pytest.approx(40 + 4000)

    def test_complex_flop_expansion(self):
        kb = KernelBuilder("cplx").parallel_loop("i", 10)
        kb.load("z", "i").store("z", "i").statement(flops=2)
        arrays = {"z": ArrayDecl("z", (10,), DType.complex128)}
        w = kernel_work_from_skeleton(kb.build(), arrays)
        assert w.flops == pytest.approx(2 * 4 * 10)


class TestSimulatedGpu:
    def test_bandwidth_bound_scale(self):
        gpu = SimulatedGpu(rng=RngStream(1, "g"))
        w = work()
        t = gpu.expected_kernel_time(w)
        p = gpu.params
        floor = w.useful_bytes / p.peak_bandwidth
        assert t > floor  # can't beat theoretical peak
        assert t < 10 * floor

    def test_irregular_slower(self):
        gpu = SimulatedGpu()
        assert gpu.expected_kernel_time(
            work(irregular_fraction=1.0)
        ) > 2 * gpu.expected_kernel_time(work(irregular_fraction=0.0))

    def test_small_grid_less_efficient(self):
        p = GpuSimParams()
        big = p.effective_bandwidth(work(threads=5_000_000))
        small = p.effective_bandwidth(work(threads=4_000))
        assert small < big

    def test_launch_overhead_floor(self):
        gpu = SimulatedGpu()
        t = gpu.expected_kernel_time(
            work(threads=1, useful_bytes=4, flops=1)
        )
        assert t >= gpu.params.launch_overhead

    def test_hardware_factor_scales_body(self):
        gpu = SimulatedGpu()
        w = work()
        launch = gpu.params.launch_overhead
        t1 = gpu.expected_kernel_time(w, 1.0) - launch
        t2 = gpu.expected_kernel_time(w, 2.0) - launch
        assert t2 == pytest.approx(2 * t1)

    def test_bad_factor_rejected(self):
        with pytest.raises(ValueError):
            SimulatedGpu().expected_kernel_time(work(), 0.0)

    def test_noise_bounded(self):
        gpu = SimulatedGpu(rng=RngStream(5, "n"))
        truth = gpu.expected_kernel_time(work())
        for _ in range(50):
            assert gpu.kernel_time(work()) == pytest.approx(truth, rel=0.1)

    def test_wave_granularity(self):
        gpu = SimulatedGpu()
        p = gpu.params
        # 1.05 waves rounds up to 2 -> disproportionate cost.
        exact = work(threads=p.wave_threads, useful_bytes=1e8)
        ragged = work(threads=int(p.wave_threads * 1.05), useful_bytes=1e8)
        t_exact = gpu.expected_kernel_time(exact)
        t_ragged = gpu.expected_kernel_time(ragged)
        assert t_ragged > 1.5 * t_exact


class TestSimulatedCpu:
    def test_roofline_based(self):
        cpu = SimulatedCpu(rng=RngStream(1, "c"))
        p = CpuWorkProfile("stream", bytes_moved=1e9, flops=1e6)
        assert cpu.expected_time(p) == pytest.approx(0.1)

    def test_factor_and_noise(self):
        cpu = SimulatedCpu(rng=RngStream(2, "c"))
        p = CpuWorkProfile("p", 1e9, 1e6)
        assert cpu.expected_time(p, 2.0) == pytest.approx(0.2)
        samples = [cpu.run_time(p) for _ in range(30)]
        assert len(set(samples)) > 1
        assert sum(samples) / len(samples) == pytest.approx(0.1, rel=0.02)
