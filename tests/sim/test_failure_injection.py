"""Failure injection: the pipeline must fail loudly or degrade sanely.

These tests feed hostile inputs into each stage — pathological
measurement channels, extreme noise, degenerate kernels — and check that
errors surface as exceptions with useful messages (never silent garbage).
"""

import dataclasses

import pytest

from repro.datausage import Direction
from repro.gpu.arch import quadro_fx_5600
from repro.gpu.characteristics import KernelCharacteristics
from repro.gpu.model import GpuPerformanceModel
from repro.pcie.calibration import Calibrator, calibrate_bus
from repro.pcie.channel import MemoryKind
from repro.pcie.model import LinearTransferModel
from repro.sim.gpu_sim import GpuSimParams, KernelWork, SimulatedGpu
from repro.sim.noise import NoiseProfile
from repro.sim.pcie_sim import PcieLinkParams, SimulatedPcieBus, argonne_pcie_params
from repro.util.rng import RngStream


class BrokenChannel:
    """A channel whose timer is broken (returns zero)."""

    def transfer_time(self, size, direction, memory=MemoryKind.PINNED):
        return 0.0


class NegativeChannel:
    """A channel with clock skew (returns negative durations)."""

    def transfer_time(self, size, direction, memory=MemoryKind.PINNED):
        return -1e-6


class InfiniteChannel:
    def transfer_time(self, size, direction, memory=MemoryKind.PINNED):
        return float("inf")


class TestHostileCalibration:
    def test_zero_timer_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            calibrate_bus(BrokenChannel())

    def test_negative_timer_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            calibrate_bus(NegativeChannel())

    def test_infinite_timer_produces_infinite_model(self):
        # Not rejected (it is 'positive'), but predictions are inf, which
        # any sane consumer notices immediately.
        model = calibrate_bus(InfiniteChannel())
        assert model.h2d.predict(1024) == float("inf")

    def test_extreme_noise_still_averages_out(self):
        """50% lognormal jitter: 10-run means stay within ~2x of truth."""
        params = argonne_pcie_params()
        noisy = {
            key: dataclasses.replace(
                link,
                noise=NoiseProfile(sigma_small=0.5, sigma_floor=0.5,
                                   decay_bytes=1024.0),
            )
            for key, link in params.items()
        }
        bus = SimulatedPcieBus(noisy, RngStream(3, "chaos"))
        model = Calibrator(bus).calibrate_direction(Direction.H2D)
        truth = params[(Direction.H2D, MemoryKind.PINNED)]
        assert 0.3 * truth.alpha < model.alpha < 3 * truth.alpha
        assert 0.3 * truth.bandwidth < model.bandwidth < 3 * truth.bandwidth


class TestDegenerateLinkParams:
    def test_zero_alpha_rejected(self):
        with pytest.raises(ValueError):
            PcieLinkParams(
                alpha=0.0, bandwidth=1e9, staging_bandwidth=None,
                bump_amplitude=0.0, bump_center_log2=10, bump_width_log2=1,
                noise=NoiseProfile.constant(0.0),
            )

    def test_negative_bump_rejected(self):
        with pytest.raises(ValueError):
            PcieLinkParams(
                alpha=1e-6, bandwidth=1e9, staging_bandwidth=None,
                bump_amplitude=-0.5, bump_center_log2=10, bump_width_log2=1,
                noise=NoiseProfile.constant(0.0),
            )


class TestDegenerateKernels:
    def test_single_thread_kernel(self):
        model = GpuPerformanceModel(quadro_fx_5600())
        t = model.kernel_time(
            KernelCharacteristics(
                name="one", threads=1, block_size=32,
                comp_insts_per_thread=1.0, mem_insts_per_thread=1.0,
            )
        )
        assert 0 < t < 1e-3  # microseconds, not garbage

    def test_enormous_kernel_finite(self):
        model = GpuPerformanceModel(quadro_fx_5600())
        t = model.kernel_time(
            KernelCharacteristics(
                name="huge", threads=10**9, block_size=512,
                comp_insts_per_thread=100.0,
                mem_insts_per_thread=50.0,
                coalesced_fraction=0.0,
            )
        )
        assert t > 1.0  # genuinely huge
        assert t != float("inf")

    def test_gpu_sim_zero_byte_kernel(self):
        gpu = SimulatedGpu()
        t = gpu.expected_kernel_time(
            KernelWork("empty", threads=1, useful_bytes=0.0, flops=0.0,
                       irregular_fraction=0.0)
        )
        assert t == pytest.approx(gpu.params.launch_overhead)

    def test_gpu_sim_params_bounds(self):
        params = GpuSimParams(gather_bandwidth_fraction=0.01)
        slow = params.effective_bandwidth(
            KernelWork("g", 10**6, 1e6, 0.0, irregular_fraction=1.0)
        )
        fast = params.effective_bandwidth(
            KernelWork("s", 10**6, 1e6, 0.0, irregular_fraction=0.0)
        )
        assert slow < 0.05 * fast


class TestModelEdgeValues:
    def test_tiny_beta_ok(self):
        m = LinearTransferModel(alpha=1e-6, beta=1e-18)  # exabyte/s bus
        assert m.predict(2**40) > 0

    def test_prediction_overflow_safe(self):
        m = LinearTransferModel(alpha=1e-6, beta=1e-9)
        assert m.predict(2**60) < float("inf")
