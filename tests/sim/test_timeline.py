"""Tests for application-run timelines."""

import pytest

from repro.core.overlap import estimate_overlap
from repro.harness.context import ExperimentContext
from repro.sim.timeline import (
    LANE_COMPUTE,
    LANE_COPY,
    Timeline,
    TimelineEvent,
    overlapped_timeline,
    synchronous_timeline,
)
from repro.workloads import Srad, Stassuij


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(seed=17)


@pytest.fixture(scope="module")
def srad_projection(ctx):
    w = Srad()
    return ctx.projection(w, w.datasets()[0])


class TestTimelineEvent:
    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            TimelineEvent(1.0, 0.5, LANE_COPY, "bad")

    def test_duration(self):
        assert TimelineEvent(1.0, 3.0, LANE_COPY, "x").duration == 2.0


class TestSynchronousTimeline:
    def test_makespan_matches_projection(self, srad_projection):
        tl = synchronous_timeline(srad_projection, iterations=3)
        assert tl.makespan == pytest.approx(
            srad_projection.total_seconds(3), rel=1e-9
        )

    def test_event_structure(self, srad_projection):
        tl = synchronous_timeline(srad_projection, iterations=2)
        copies = tl.lane(LANE_COPY)
        kernels = tl.lane(LANE_COMPUTE)
        assert len(copies) == srad_projection.plan.transfer_count
        assert len(kernels) == 2 * len(srad_projection.kernels.kernels)
        # Serial: no two events overlap anywhere.
        ordered = sorted(tl.events, key=lambda e: e.start)
        for a, b in zip(ordered, ordered[1:]):
            assert b.start >= a.end - 1e-12

    def test_h2d_before_kernels_before_d2h(self, srad_projection):
        tl = synchronous_timeline(srad_projection)
        h2d_end = max(
            e.end for e in tl.lane(LANE_COPY) if e.label.startswith("H2D")
        )
        kernel_start = min(e.start for e in tl.lane(LANE_COMPUTE))
        d2h_start = min(
            e.start for e in tl.lane(LANE_COPY) if e.label.startswith("D2H")
        )
        assert h2d_end <= kernel_start + 1e-12
        assert max(e.end for e in tl.lane(LANE_COMPUTE)) <= d2h_start + 1e-12

    def test_render(self, srad_projection):
        text = synchronous_timeline(srad_projection).render(width=40)
        assert "makespan" in text
        assert "copy" in text and "compute" in text
        assert "#" in text


class TestOverlappedTimeline:
    def test_beats_synchronous(self, srad_projection):
        sync = synchronous_timeline(srad_projection, iterations=4)
        over = overlapped_timeline(srad_projection, chunks=8, iterations=4)
        assert over.makespan < sync.makespan

    def test_copy_engine_never_double_booked(self, srad_projection):
        tl = overlapped_timeline(srad_projection, chunks=6)
        copies = sorted(tl.lane(LANE_COPY), key=lambda e: e.start)
        for a, b in zip(copies, copies[1:]):
            assert b.start >= a.end - 1e-12

    def test_compute_waits_for_its_chunk(self, srad_projection):
        tl = overlapped_timeline(srad_projection, chunks=4)
        for i in range(4):
            h2d = next(
                e for e in tl.events if e.label == f"H2D c{i}"
            )
            kernel = next(
                e for e in tl.events if e.label == f"kernel c{i}"
            )
            assert kernel.start >= h2d.end - 1e-12

    def test_consistent_with_pipeline_bound(self, ctx):
        """The event-level schedule lands close to the closed form used
        by estimate_overlap (which searches chunk counts and folds the
        per-chunk alphas the timeline's even split spreads out)."""
        w = Stassuij()
        projection = ctx.projection(w, w.datasets()[0])
        est = estimate_overlap(projection, ctx.bus_model)
        tl = overlapped_timeline(projection, chunks=est.chunks)
        assert tl.makespan == pytest.approx(
            est.overlapped_seconds, rel=0.25
        )

    def test_busy_fractions(self, srad_projection):
        tl = overlapped_timeline(srad_projection, chunks=8)
        assert 0 < tl.busy_fraction(LANE_COPY) <= 1.0
        assert 0 < tl.busy_fraction(LANE_COMPUTE) <= 1.0

    def test_validation(self, srad_projection):
        with pytest.raises(ValueError):
            overlapped_timeline(srad_projection, chunks=0)
