"""Tests for the noise models."""

import pytest

from repro.sim.noise import BimodalQuirk, NoiseProfile
from repro.util.rng import RngStream
from repro.util.units import KiB, MiB


class TestNoiseProfile:
    def test_sigma_decays_with_size(self):
        p = NoiseProfile(sigma_small=0.05, sigma_floor=0.002,
                         decay_bytes=64 * KiB)
        assert p.sigma(1) > p.sigma(64 * KiB) > p.sigma(16 * MiB)
        assert p.sigma(512 * MiB) == pytest.approx(0.002, rel=1e-3)

    def test_factor_positive(self):
        p = NoiseProfile(0.05, 0.002, 64 * KiB)
        rng = RngStream(7, "t")
        for _ in range(200):
            assert p.factor(1024, rng) > 0

    def test_constant_profile(self):
        p = NoiseProfile.constant(0.01)
        assert p.sigma(1) == p.sigma(1e9) == pytest.approx(0.01)

    def test_zero_noise_profile(self):
        p = NoiseProfile.constant(0.0)
        assert p.factor(123, RngStream(1)) == 1.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            NoiseProfile(-0.1, 0.0, 1.0)

    def test_small_transfers_jitter_more(self):
        """The Fig. 5 HotSpot effect: same-size small transfers vary."""
        p = NoiseProfile(0.05, 0.002, 64 * KiB)
        rng = RngStream(11, "j")
        small = [p.factor(64, rng) for _ in range(300)]
        large = [p.factor(64 * MiB, rng) for _ in range(300)]

        def spread(xs):
            mean = sum(xs) / len(xs)
            return (sum((x - mean) ** 2 for x in xs) / len(xs)) ** 0.5

        assert spread(small) > 5 * spread(large)


class TestBimodalQuirk:
    def test_factor_values(self):
        q = BimodalQuirk(probability=0.5, slow_factor=2.3)
        rng = RngStream(3, "q")
        factors = {q.factor(rng) for _ in range(200)}
        assert factors == {1.0, 2.3}

    def test_rate(self):
        q = BimodalQuirk(probability=0.5, slow_factor=2.0)
        rng = RngStream(5, "q")
        slow = sum(q.factor(rng) > 1 for _ in range(2000))
        assert 850 < slow < 1150

    def test_never_quirky(self):
        q = BimodalQuirk(probability=0.0, slow_factor=3.0)
        assert q.factor(RngStream(1)) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BimodalQuirk(probability=1.5, slow_factor=2.0)
        with pytest.raises(ValueError):
            BimodalQuirk(probability=0.5, slow_factor=0.5)
