"""Tests for the PCIe bus simulator (the virtual testbed's ground truth)."""

import pytest

from repro.datausage import Direction
from repro.pcie.channel import MemoryKind, TransferChannel
from repro.sim.pcie_sim import SimulatedPcieBus, argonne_pcie_params
from repro.util.rng import RngStream
from repro.util.units import KiB, MiB


@pytest.fixture
def bus() -> SimulatedPcieBus:
    return SimulatedPcieBus(rng=RngStream(42, "test-bus"))


class TestParamsPreset:
    def test_all_modes_present(self):
        params = argonne_pcie_params()
        assert len(params) == 4

    def test_pinned_matches_paper_scale(self):
        """alpha ~ 10us, bandwidth ~ 2.5 GB/s (Section III-C)."""
        h2d = argonne_pcie_params()[(Direction.H2D, MemoryKind.PINNED)]
        assert 5e-6 < h2d.alpha < 20e-6
        assert 2.0e9 < h2d.bandwidth < 3.0e9

    def test_missing_mode_rejected(self):
        params = argonne_pcie_params()
        del params[(Direction.D2H, MemoryKind.PAGEABLE)]
        with pytest.raises(ValueError, match="missing link modes"):
            SimulatedPcieBus(params)


class TestGroundTruthShape:
    def test_is_a_transfer_channel(self, bus):
        assert isinstance(bus, TransferChannel)

    def test_monotone_in_size(self, bus):
        sizes = [1, KiB, 64 * KiB, MiB, 64 * MiB, 512 * MiB]
        times = [
            bus.expected_time(s, Direction.H2D, MemoryKind.PINNED)
            for s in sizes
        ]
        assert times == sorted(times)

    def test_alpha_floor_for_tiny_transfers(self, bus):
        t1 = bus.expected_time(1, Direction.H2D)
        t512 = bus.expected_time(512, Direction.H2D)
        # Flat below ~1KB: alpha dominates (Fig. 2's plateau).
        assert t512 < 1.1 * t1

    def test_bandwidth_dominates_large(self, bus):
        t = bus.expected_time(512 * MiB, Direction.H2D)
        link = bus.link(Direction.H2D, MemoryKind.PINNED)
        assert t == pytest.approx(512 * MiB / link.bandwidth, rel=0.05)

    def test_pinned_beats_pageable_above_2kb_h2d(self, bus):
        """Fig. 2/3: pageable H2D wins only below ~2KB."""
        assert bus.expected_time(
            1, Direction.H2D, MemoryKind.PAGEABLE
        ) < bus.expected_time(1, Direction.H2D, MemoryKind.PINNED)
        for size in (8 * KiB, MiB, 512 * MiB):
            assert bus.expected_time(
                size, Direction.H2D, MemoryKind.PINNED
            ) < bus.expected_time(size, Direction.H2D, MemoryKind.PAGEABLE)

    def test_pinned_always_beats_pageable_d2h(self, bus):
        for size in (1, KiB, MiB, 512 * MiB):
            assert bus.expected_time(
                size, Direction.D2H, MemoryKind.PINNED
            ) < bus.expected_time(size, Direction.D2H, MemoryKind.PAGEABLE)

    def test_pageable_speedup_band_at_large_sizes(self, bus):
        """Fig. 3: pinned is roughly ~2x at the large end."""
        pinned = bus.expected_time(512 * MiB, Direction.H2D, MemoryKind.PINNED)
        pageable = bus.expected_time(
            512 * MiB, Direction.H2D, MemoryKind.PAGEABLE
        )
        assert 1.5 < pageable / pinned < 2.5

    def test_curvature_vanishes_above_1mb(self, bus):
        """Fig. 4: the linear model error is ~0 above 1 MB."""
        link = bus.link(Direction.H2D, MemoryKind.PINNED)
        for size in (4 * MiB, 64 * MiB, 512 * MiB):
            linear = link.alpha + size / link.bandwidth
            assert bus.expected_time(size, Direction.H2D) == pytest.approx(
                linear, rel=0.01
            )


class TestMeasuredRuns:
    def test_noise_around_truth(self, bus):
        truth = bus.expected_time(MiB, Direction.H2D)
        samples = [
            bus.transfer_time(MiB, Direction.H2D) for _ in range(50)
        ]
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(truth, rel=0.02)
        assert len(set(samples)) > 1  # actually random

    def test_deterministic_given_seed(self):
        a = SimulatedPcieBus(rng=RngStream(7, "x"))
        b = SimulatedPcieBus(rng=RngStream(7, "x"))
        assert [
            a.transfer_time(KiB, Direction.H2D) for _ in range(5)
        ] == [b.transfer_time(KiB, Direction.H2D) for _ in range(5)]
