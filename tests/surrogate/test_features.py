"""Feature extraction: schema stability, determinism, size synthesis."""

import numpy as np

from repro.surrogate.features import (
    FEATURE_COUNT,
    FEATURE_NAMES,
    feature_rows_for_sizes,
    fill_size_features,
    kernel_feature_row,
    kernel_static_template,
)
from repro.transform.analysis import analyze_kernel
from repro.workloads.registry import get_workload


def _analysis(arch):
    workload = get_workload("HotSpot")
    dataset = max(workload.datasets(), key=lambda d: d.size)
    program = workload.skeleton(dataset)
    return analyze_kernel(
        program.kernels[0], program.array_map, arch.strict_coalescing
    )


class TestSchema:
    def test_count_matches_names(self):
        assert FEATURE_COUNT == len(FEATURE_NAMES)

    def test_names_are_unique(self):
        assert len(set(FEATURE_NAMES)) == len(FEATURE_NAMES)


class TestExtraction:
    def test_row_shape_and_finiteness(self, arch):
        row = kernel_feature_row(_analysis(arch), arch)
        assert row.shape == (FEATURE_COUNT,)
        assert np.all(np.isfinite(row))

    def test_deterministic(self, arch):
        analysis = _analysis(arch)
        first = kernel_feature_row(analysis, arch)
        second = kernel_feature_row(analysis, arch)
        assert np.array_equal(first, second)

    def test_default_size_is_native_parallelism(self, arch):
        analysis = _analysis(arch)
        implicit = kernel_feature_row(analysis, arch)
        explicit = kernel_feature_row(
            analysis, arch, analysis.parallel_iterations
        )
        assert np.array_equal(implicit, explicit)

    def test_size_changes_only_size_features(self, arch):
        analysis = _analysis(arch)
        small = kernel_feature_row(analysis, arch, 1024)
        large = kernel_feature_row(analysis, arch, 1024 * 64)
        changed = np.nonzero(small != large)[0]
        assert changed.size > 0
        size_names = {
            "log_parallel_iters",
            "log_parallel_iters_sq",
            "log_sm_occupancy_pressure",
            "log_mem_time_scale",
            "log_comp_time_scale",
        }
        # roofline_balance = log_mem - log_comp: both shift by +log n,
        # so the balance is size-invariant and need not change.
        for index in changed:
            assert FEATURE_NAMES[index] in size_names

    def test_template_plus_fill_equals_direct_row(self, arch):
        analysis = _analysis(arch)
        template = kernel_static_template(analysis, arch)
        filled = fill_size_features(template.copy(), analysis, arch, 4096)
        assert np.array_equal(
            filled, kernel_feature_row(analysis, arch, 4096)
        )

    def test_rows_for_sizes_matches_per_size_rows(self, arch):
        analysis = _analysis(arch)
        sizes = [512, 4096, 65536]
        block = feature_rows_for_sizes(analysis, arch, sizes)
        assert block.shape == (len(sizes), FEATURE_COUNT)
        for position, size in enumerate(sizes):
            assert np.array_equal(
                block[position], kernel_feature_row(analysis, arch, size)
            )

    def test_size_floor_at_one(self, arch):
        analysis = _analysis(arch)
        floored = kernel_feature_row(analysis, arch, 0)
        one = kernel_feature_row(analysis, arch, 1)
        assert np.array_equal(floored, one)
