"""The gated serving front-end: modes, fallbacks, caching, adapter."""

import dataclasses

import numpy as np
import pytest

from repro.gpu.arch import gtx_280
from repro.service.engine import ProjectionEngine, ProjectionRequest
from repro.skeleton import KernelBuilder, ProgramBuilder
from repro.surrogate.engine import (
    SERVING_MODES,
    SurrogateBatchAdapter,
    SurrogateEngine,
    SurrogateResponse,
)
from repro.surrogate.store import StaleModelError
from repro.transform.space import TransformationSpace

from tests.surrogate.conftest import request_for

#: A workload the small model was trained on and answers confidently.
SERVED = ("VectorAdd", "4M")
#: A workload the small model never saw (falls back out-of-domain).
UNSEEN = ("KMeans", None)


def unservable_request():
    """A program whose only kernel exposes no parallel loop."""
    pb = ProgramBuilder("noparallel")
    pb.array("a", (16,))
    kb = KernelBuilder("serial_only")
    kb.loop("i", 16)
    kb.load("a", "i").statement(flops=1)
    return ProjectionRequest(program=pb.kernel(kb).build())


class TestConstruction:
    def test_mode_validation(self, model, exact_engine):
        with pytest.raises(ValueError, match="serving mode"):
            SurrogateEngine(model, exact_engine, mode="bogus")
        for mode in SERVING_MODES:
            SurrogateEngine(model, exact_engine, mode=mode)

    def test_arch_mismatch_fails_fast(self, model, space):
        other = ProjectionEngine(
            arch=gtx_280(), space=space, explorer="stream"
        )
        with pytest.raises(StaleModelError, match="arch"):
            SurrogateEngine(model, other)

    def test_space_mismatch_fails_fast(self, model, arch):
        other = ProjectionEngine(
            arch=arch, space=TransformationSpace.wide(), explorer="stream"
        )
        with pytest.raises(StaleModelError, match="space"):
            SurrogateEngine(model, other)


class TestServing:
    def test_confident_query_is_served_by_the_model(self, surrogate):
        response = surrogate.project(request_for(*SERVED))
        assert response.path == "surrogate"
        assert response.provenance.reason == "accepted"
        assert response.estimate is not None
        assert response.response is None
        assert response.confidence is not None
        assert response.estimate.kernel_seconds > 0
        assert response.estimate.transfer_seconds > 0
        assert not response.cached

    def test_estimate_mappings_cover_every_kernel(self, surrogate):
        request = request_for(*SERVED)
        response = surrogate.project(request)
        names = [name for name, _label in response.estimate.mappings]
        assert names == [k.name for k in request.program.kernels]

    def test_surrogate_hit_counts(self, surrogate):
        before = surrogate.metrics.counter("surrogate_hits")
        surrogate.project(request_for(*SERVED))
        assert surrogate.metrics.counter("surrogate_hits") == before + 1

    def test_low_confidence_falls_back(self, surrogate):
        response = surrogate.project(request_for("CFD"))
        assert response.path == "exact"
        assert response.provenance.reason == "low_confidence"
        assert response.response is not None
        assert response.estimate is None

    def test_out_of_domain_falls_back(self, surrogate):
        response = surrogate.project(request_for(*UNSEEN))
        assert response.path == "exact"
        assert response.provenance.reason == "out_of_domain"

    def test_consensus_failure_reports_disagreement_confidence(
        self, surrogate, model
    ):
        # HotSpot's largest dataset makes the two members disagree with
        # this small model: the served confidence must be the measured
        # disagreement-case accuracy, not the consensus-suffix accuracy.
        response = surrogate.project(request_for("HotSpot", "1024 x 1024"))
        assert response.path == "exact"
        assert response.provenance.reason == "low_confidence"
        assert response.confidence == model.disagreement_accuracy

    def test_fallback_counts(self, surrogate):
        before = surrogate.metrics.counter("surrogate_fallbacks")
        surrogate.project(request_for("CFD"))
        assert (
            surrogate.metrics.counter("surrogate_fallbacks") == before + 1
        )

    def test_fallback_summary_is_bitwise_exact(
        self, surrogate, arch, space
    ):
        request = request_for("CFD")
        served = surrogate.project(request)
        direct = ProjectionEngine(
            arch=arch,
            bus=surrogate.exact.bus,
            space=space,
            explorer="stream",
        )
        expected = direct.project(request)
        assert (
            served.response.summary.to_json() == expected.summary.to_json()
        )

    def test_unservable_program_routes_to_the_exact_error(self, surrogate):
        with pytest.raises(ValueError, match="serial_only"):
            surrogate.project(unservable_request())


class TestModes:
    def test_exact_mode_bypasses_the_model(self, surrogate):
        response = surrogate.project(request_for(*SERVED), "exact")
        assert response.path == "exact"
        assert response.provenance.reason == "requested"
        assert response.response is not None

    def test_forced_mode_serves_below_threshold(
        self, model, exact_engine
    ):
        gated = SurrogateEngine(
            model.with_threshold(float("inf")), exact_engine
        )
        auto = gated.project(request_for(*SERVED))
        assert auto.path == "exact"
        forced = gated.project(request_for(*SERVED), "surrogate")
        assert forced.path == "surrogate"
        assert forced.provenance.reason == "forced"

    def test_unknown_mode_raises(self, surrogate):
        with pytest.raises(ValueError, match="serving mode"):
            surrogate.project(request_for(*SERVED), "bogus")

    def test_provenance_engine_forces_exact_in_auto(self, model, arch, space):
        traced = ProjectionEngine(
            arch=arch, space=space, explorer="stream", provenance=True
        )
        gated = SurrogateEngine(model, traced)
        response = gated.project(request_for(*SERVED))
        assert response.path == "exact"
        assert response.provenance.reason == "provenance"
        # Forced mode still serves: provenance only gates auto.
        assert gated.project(request_for(*SERVED), "surrogate").path == (
            "surrogate"
        )

    def test_request_arch_mismatch_falls_back(self, surrogate):
        request = dataclasses.replace(
            request_for(*SERVED), arch=gtx_280()
        )
        response = surrogate.project(request)
        assert response.path == "exact"
        assert response.provenance.reason == "arch_mismatch"

    def test_registry_arch_mismatch_falls_back(self, surrogate):
        # A registry generation the model was never trained for must
        # take the clean arch_mismatch fallback, not a stale estimate.
        from repro.gpu.registry import get_arch

        request = dataclasses.replace(
            request_for(*SERVED), arch=get_arch("fermi_gtx_480")
        )
        before = surrogate.metrics.counter("surrogate_fallbacks")
        response = surrogate.project(request)
        assert response.path == "exact"
        assert response.provenance.reason == "arch_mismatch"
        assert (
            surrogate.metrics.counter("surrogate_fallbacks") == before + 1
        )

    def test_registry_arch_fallback_is_bitwise_exact(
        self, surrogate, arch, space
    ):
        from repro.gpu.registry import get_arch

        request = dataclasses.replace(
            request_for(*SERVED), arch=get_arch("fermi_gtx_480")
        )
        served = surrogate.project(request)
        direct = ProjectionEngine(
            arch=arch,
            bus=surrogate.exact.bus,
            space=space,
            explorer="stream",
        )
        expected = direct.project(request)
        assert (
            served.response.summary.to_json() == expected.summary.to_json()
        )

    def test_calibrated_registry_arch_still_serves(self, surrogate, arch):
        # The registry id of the trained arch assembles a value-equal
        # machine description: the fingerprint guard must NOT trip.
        from repro.gpu.registry import spec_for_arch, get_arch

        spec = spec_for_arch(arch)
        assert spec is not None
        request = dataclasses.replace(
            request_for(*SERVED), arch=get_arch(spec.id)
        )
        response = surrogate.project(request)
        assert response.path == "surrogate"
        assert response.provenance.reason == "accepted"

    def test_request_space_mismatch_falls_back(self, surrogate):
        request = dataclasses.replace(
            request_for(*SERVED), space=TransformationSpace.wide()
        )
        response = surrogate.project(request)
        assert response.path == "exact"
        assert response.provenance.reason == "space_mismatch"


class TestPreparedCache:
    def test_same_program_identity_is_prepared_once(self, surrogate):
        request = request_for(*SERVED)
        surrogate.project(request)
        prepared = dict(surrogate._prepared)
        for _ in range(3):
            surrogate.project(request)
        assert dict(surrogate._prepared) == prepared

    def test_new_program_object_is_prepared_fresh(self, surrogate):
        surrogate.project(request_for(*SERVED))
        surrogate.project(request_for(*SERVED))  # new skeleton object
        assert len(surrogate._prepared) == 2

    def test_iterations_scale_total_seconds(self, surrogate):
        once = surrogate.project(request_for(*SERVED))
        many = surrogate.project(request_for(*SERVED, iterations=10))
        estimate = many.estimate
        assert many.total_seconds == pytest.approx(
            estimate.kernel_seconds * 10 + estimate.transfer_seconds
        )
        assert once.total_seconds < many.total_seconds


class TestRecords:
    def test_surrogate_record_shape(self, surrogate):
        record = surrogate.project(request_for(*SERVED)).to_dict()
        assert record["ok"] is True
        assert record["path"] == "surrogate"
        assert record["serving"]["reason"] == "accepted"
        for key in (
            "seconds",
            "total_seconds",
            "kernel_seconds",
            "transfer_seconds",
            "log_band",
            "mappings",
        ):
            assert key in record, key

    def test_fallback_record_extends_the_engine_record(self, surrogate):
        record = surrogate.project(request_for("CFD")).to_dict()
        assert record["path"] == "exact"
        assert record["serving"]["reason"] == "low_confidence"
        assert record["ok"] is True
        assert "summary" in record or "total_seconds" in record

    def test_response_invariant(self):
        with pytest.raises(ValueError):
            SurrogateResponse(
                request_id="x",
                provenance=None,  # never reached: estimate/response clash
                seconds=0.0,
                iterations=1,
            )


class TestProjectMany:
    def test_serves_a_mixed_batch(self, surrogate):
        responses = surrogate.project_many(
            [request_for(*SERVED), request_for("CFD")]
        )
        assert [r.path for r in responses] == ["surrogate", "exact"]


class TestBatchAdapter:
    def test_adapter_drops_the_workers_argument(self, surrogate):
        adapter = SurrogateBatchAdapter(surrogate)
        response = adapter.project(request_for(*SERVED), workers=8)
        assert response.path == "surrogate"
        assert adapter.metrics is surrogate.metrics

    def test_adapter_mode_override(self, surrogate):
        adapter = SurrogateBatchAdapter(surrogate, mode="exact")
        response = adapter.project(request_for(*SERVED))
        assert response.path == "exact"
        assert response.provenance.reason == "requested"
