"""Shared fixtures: one small trained surrogate, built once per session.

Three workloads x 12 sizes/kernel keeps generation under 100 ms while
still exercising multiple kernels, classes, and a non-trivial
calibration split.
"""

import pytest

from repro.gpu.arch import quadro_fx_5600
from repro.pcie.presets import pcie_gen1_bus
from repro.service.engine import ProjectionEngine, ProjectionRequest
from repro.surrogate.dataset import generate_training_set
from repro.surrogate.engine import SurrogateEngine
from repro.surrogate.model import train_surrogate
from repro.transform.space import TransformationSpace
from repro.workloads.registry import get_workload

TRAIN_WORKLOADS = ("HotSpot", "VectorAdd", "SRAD")


@pytest.fixture(scope="session")
def arch():
    return quadro_fx_5600()


@pytest.fixture(scope="session")
def space():
    return TransformationSpace.default()


@pytest.fixture(scope="session")
def training(arch, space):
    return generate_training_set(
        arch,
        space,
        workloads=tuple(get_workload(name) for name in TRAIN_WORKLOADS),
        sizes_per_kernel=12,
    )


@pytest.fixture(scope="session")
def model(training, arch, space):
    return train_surrogate(training, arch, space)


@pytest.fixture()
def exact_engine(arch, space):
    return ProjectionEngine(
        arch=arch, bus=pcie_gen1_bus(), space=space, explorer="stream"
    )


@pytest.fixture()
def surrogate(model, exact_engine):
    return SurrogateEngine(model, exact_engine)


def request_for(workload_name, dataset_label=None, **kwargs):
    workload = get_workload(workload_name)
    datasets = list(workload.datasets())
    if dataset_label is None:
        dataset = min(datasets, key=lambda d: d.size)
    else:
        dataset = next(d for d in datasets if d.label == dataset_label)
    return ProjectionRequest(
        program=workload.skeleton(dataset),
        hints=workload.hints(dataset),
        request_id=f"{workload.name}/{dataset.label}",
        **kwargs,
    )
