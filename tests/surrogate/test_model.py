"""The ensemble model: folded serving, consensus gate, calibration."""

import numpy as np
import pytest

from repro.surrogate.model import (
    ExemplarClassifier,
    MappingClassifier,
    RidgeRegressor,
    evaluate_model,
    train_surrogate,
)


class TestRidgeRegressor:
    def test_recovers_linear_relation(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 4))
        y = x @ np.array([1.0, -2.0, 0.5, 3.0]) + 0.7
        fitted = RidgeRegressor.fit(x, y, lam=1e-8)
        assert np.allclose(fitted.predict(x), y, atol=1e-5)


class TestMappingClassifier:
    def test_separable_classes(self):
        rng = np.random.default_rng(1)
        x = np.vstack(
            [rng.normal(-3, 0.2, (50, 3)), rng.normal(3, 0.2, (50, 3))]
        )
        labels = np.array([4] * 50 + [9] * 50)
        fitted = MappingClassifier.fit(x, labels)
        assert np.array_equal(fitted.predict(x), labels)
        assert np.array_equal(fitted.classes, [4, 9])


class TestExemplarClassifier:
    def test_memorizes_training_rows(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(30, 5))
        labels = rng.integers(0, 4, size=30)
        fitted = ExemplarClassifier.fit(x, labels)
        assert np.array_equal(fitted.predict(x), labels)

    def test_nearest_wins(self):
        x = np.array([[0.0, 0.0], [10.0, 10.0]])
        labels = np.array([1, 2])
        fitted = ExemplarClassifier.fit(x, labels)
        assert fitted.predict(np.array([[1.0, 1.0]]))[0] == 1
        assert fitted.predict(np.array([[9.0, 9.0]]))[0] == 2


class TestTrainedModel:
    def test_folded_standardization_serves_raw_features(self, model, training):
        """Serving is raw @ matrix + bias — no per-query standardize."""
        log_pred, labels, margins = model.predict_rows(training.features)
        assert log_pred.shape == (training.rows,)
        assert labels.shape == (training.rows,)
        assert margins.shape == (training.rows,)
        # Labels are valid class indices from the training space.
        assert set(labels.tolist()) <= set(
            model.exemplar_labels.tolist()
        )

    def test_served_label_is_the_exemplar_members(self, model, training):
        features = training.features
        standardized = features * model.scale + model.shift
        d2 = (
            (standardized**2).sum(axis=1)[:, None]
            - 2.0 * standardized @ model.exemplars.T
            + (model.exemplars**2).sum(axis=1)[None, :]
        )
        nearest = model.exemplar_labels[np.argmin(d2, axis=1)]
        _, labels, _ = model.predict_rows(features)
        assert np.array_equal(labels, nearest)

    def test_consensus_gate_marks_disagreement_neg_inf(self, model, training):
        features = training.features
        scores = features @ model.matrix + model.bias
        ridge_labels = model.class_indices[
            np.argmax(scores[:, 1:], axis=1)
        ]
        _, served, margins = model.predict_rows(features)
        disagree = served != ridge_labels
        assert np.all(np.isneginf(margins[disagree]))
        assert np.all(np.isfinite(margins[~disagree]))

    def test_accepts_requires_domain_and_threshold(self, model, training):
        features = training.features
        _, _, margins = model.predict_rows(features)
        verdict = model.accepts(features, margins)
        assert np.array_equal(
            verdict,
            model.in_domain(features) & (margins >= model.threshold),
        )
        # Far outside the trained box: never accepted.
        outlier = features[:1] + 1e9
        assert not model.accepts(outlier, np.array([np.inf]))[0]

    def test_neg_inf_margin_never_accepted(self, model, training):
        features = training.features[:1]
        assert not model.accepts(features, np.array([-np.inf]))[0]

    def test_with_threshold(self, model, training):
        features = training.features
        _, _, margins = model.predict_rows(features)
        none = model.with_threshold(float("inf"))
        assert not none.accepts(features, margins).any()
        generous = model.with_threshold(-1e18)
        accepted = generous.accepts(features, margins)
        # Consensus + in-domain rows all clear a -1e18 threshold.
        expected = np.isfinite(margins) & generous.in_domain(features)
        assert np.array_equal(accepted, expected)


class TestCalibration:
    def test_accuracy_grid_is_sane(self, model):
        assert model.margin_grid.shape == model.accuracy_at.shape
        assert np.all(np.diff(model.margin_grid) >= 0)
        assert np.all(model.accuracy_at >= 0)
        assert np.all(model.accuracy_at <= 1)

    def test_threshold_meets_target_on_calibration(self, model):
        if not np.isfinite(model.threshold):
            pytest.skip("calibration could not reach the target")
        at = np.searchsorted(
            model.margin_grid, model.threshold, side="left"
        )
        assert model.accuracy_at[at] >= model.target_accuracy

    def test_confidence_lookup(self, model):
        grid = model.margin_grid
        conf = model.confidence(np.array([grid[0], grid[-1], grid[-1] + 1]))
        assert conf[0] == model.accuracy_at[0]
        assert conf[1] == model.accuracy_at[-1]
        assert conf[2] == model.accuracy_at[-1]  # clamped past the end

    def test_disagreement_confidence_is_reported_for_neg_inf(self, model):
        conf = model.confidence(np.array([-np.inf, np.inf]))
        assert conf[0] == model.disagreement_accuracy
        assert conf[1] == model.accuracy_at[-1]
        assert 0.0 <= model.disagreement_accuracy <= 1.0

    def test_conformal_band_is_positive_and_tight(self, model):
        assert model.conformal_log_band > 0
        # log-space band under 50% — the rooflines do the heavy lifting.
        assert model.conformal_log_band < 0.5

    def test_target_accuracy_validation(self, training, arch, space):
        with pytest.raises(ValueError):
            train_surrogate(training, arch, space, target_accuracy=0.0)
        with pytest.raises(ValueError):
            train_surrogate(training, arch, space, target_accuracy=1.5)

    def test_unreachable_target_disables_acceptance(
        self, training, arch, space
    ):
        # target_accuracy=1.0 is reachable only if some suffix is
        # perfect; either way the invariant holds: a finite threshold
        # implies the suffix accuracy at it is 1.0.
        strict = train_surrogate(
            training, arch, space, target_accuracy=1.0
        )
        if np.isfinite(strict.threshold):
            at = np.searchsorted(
                strict.margin_grid, strict.threshold, side="left"
            )
            assert strict.accuracy_at[at] == 1.0
        else:
            _, _, margins = strict.predict_rows(training.features)
            assert not strict.accepts(training.features, margins).any()

    def test_stats_record_the_split(self, model, training):
        stats = model.stats
        assert stats["rows"] == training.rows
        assert (
            stats["fit_rows"] + stats["calibration_rows"] == training.rows
        )
        assert 0 <= stats["calibration_consensus"] <= 1
        assert stats["classes"] == model.class_count


class TestEvaluate:
    def test_report_structure(self, model, training):
        report = evaluate_model(model, training)
        assert report["rows"] == training.rows
        assert 0 <= report["top1_agreement"] <= 1
        assert 0 <= report["acceptance_rate"] <= 1
        assert report["log_mae"] >= 0
        if report["accepted_rows"]:
            assert (
                report["accepted_top1_agreement"]
                >= report["top1_agreement"] - 0.5
            )

    def test_feature_width_mismatch_is_unconstructable(self, training):
        """TrainingSet validates width, so evaluate never sees a bad one."""
        import dataclasses

        with pytest.raises(ValueError, match="columns"):
            dataclasses.replace(
                training,
                features=training.features[:, :5],
            )
