"""Model persistence: exact round trip, and every staleness guard."""

import dataclasses
import json

import numpy as np
import pytest

from repro.gpu.arch import gtx_280
from repro.surrogate.store import (
    MODEL_FORMAT,
    StaleModelError,
    describe_model,
    load_model,
    save_model,
)
from repro.transform.space import TransformationSpace

ARRAY_FIELDS = (
    "matrix",
    "bias",
    "class_indices",
    "exemplars",
    "exemplar_labels",
    "scale",
    "shift",
    "margin_grid",
    "accuracy_at",
    "domain_lo",
    "domain_hi",
)

SCALAR_FIELDS = (
    "feature_schema",
    "arch_fingerprint",
    "space_fingerprint",
    "arch_name",
    "threshold",
    "disagreement_accuracy",
    "target_accuracy",
    "conformal_log_band",
)


class TestRoundTrip:
    def test_bitwise_round_trip(self, model, tmp_path):
        path = save_model(model, tmp_path / "model.npz")
        loaded = load_model(path)
        for field in ARRAY_FIELDS:
            assert np.array_equal(
                getattr(loaded, field), getattr(model, field)
            ), field
        for field in SCALAR_FIELDS:
            assert getattr(loaded, field) == getattr(model, field), field
        assert loaded.stats == model.stats

    def test_round_trip_predictions_are_identical(
        self, model, training, tmp_path
    ):
        loaded = load_model(save_model(model, tmp_path / "model.npz"))
        before = model.predict_rows(training.features)
        after = loaded.predict_rows(training.features)
        for left, right in zip(before, after):
            assert np.array_equal(left, right)

    def test_save_creates_parent_dirs(self, model, tmp_path):
        path = save_model(model, tmp_path / "deep" / "nested" / "m.npz")
        assert path.is_file()

    def test_fingerprint_guard_passes_for_matching_config(
        self, model, tmp_path, arch, space
    ):
        path = save_model(model, tmp_path / "model.npz")
        loaded = load_model(path, arch, space)
        assert loaded.arch_name == arch.name


class TestGuards:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_model(tmp_path / "absent.npz")

    def test_arch_mismatch(self, model, tmp_path, space):
        path = save_model(model, tmp_path / "model.npz")
        with pytest.raises(StaleModelError, match="does not match"):
            load_model(path, gtx_280(), space)

    def test_space_mismatch(self, model, tmp_path, arch):
        path = save_model(model, tmp_path / "model.npz")
        with pytest.raises(StaleModelError, match="transformation space"):
            load_model(path, arch, TransformationSpace.wide())

    def test_schema_mismatch(self, model, tmp_path):
        stale = dataclasses.replace(model, feature_schema=999)
        path = save_model(stale, tmp_path / "model.npz")
        with pytest.raises(StaleModelError, match="feature schema"):
            load_model(path)

    def test_format_mismatch(self, model, tmp_path):
        path = save_model(model, tmp_path / "model.npz")
        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
        meta = json.loads(bytes(arrays["meta"].tobytes()).decode("utf-8"))
        meta["model_format"] = MODEL_FORMAT + 1
        arrays["meta"] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(StaleModelError, match="format"):
            load_model(path)

    def test_missing_array_is_stale(self, model, tmp_path):
        path = save_model(model, tmp_path / "model.npz")
        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
        del arrays["exemplars"]
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(StaleModelError, match="exemplars"):
            load_model(path)

    def test_not_a_model_artifact(self, tmp_path):
        path = tmp_path / "random.npz"
        with open(path, "wb") as handle:
            np.savez(handle, junk=np.arange(3))
        with pytest.raises(StaleModelError, match="meta"):
            load_model(path)


class TestDescribe:
    def test_describe_without_guard(self, model, tmp_path):
        path = save_model(model, tmp_path / "model.npz")
        info = describe_model(path)
        assert info["arch"] == model.arch_name
        assert info["classes"] == model.class_count
        assert info["threshold"] == model.threshold
        assert info["stats"] == model.stats
