"""Training-data generation: grids, labels, determinism, splits."""

import numpy as np
import pytest

from repro.gpu.model import GpuPerformanceModel
from repro.gpu.vectorized import ScoreArena, fused_argmin
from repro.surrogate.dataset import (
    TrainingSet,
    generate_training_set,
    size_grid,
    split_rows,
)
from repro.transform.analysis import analyze_kernel
from repro.workloads.registry import get_workload


class TestSizeGrid:
    def test_geometric_span_and_dedup(self):
        sizes = size_grid(1024, 8, (0.5, 2.0))
        assert sizes[0] == 512
        assert sizes[-1] == 2048
        assert np.all(np.diff(sizes) > 0)  # unique and ascending

    def test_floor_at_one(self):
        sizes = size_grid(2, 16, (0.01, 1.0))
        assert sizes[0] == 1

    def test_invalid_span_raises(self):
        with pytest.raises(ValueError):
            size_grid(1024, 8, (2.0, 1.0))
        with pytest.raises(ValueError):
            size_grid(1024, 8, (0.0, 1.0))


class TestGeneration:
    def test_shapes_and_ranges(self, training, space):
        configs = space.configs()
        assert training.rows > 0
        assert training.features.shape == (training.rows, 32)
        assert training.log_seconds.shape == (training.rows,)
        assert np.all(training.best_index >= 0)
        assert np.all(training.best_index < len(configs))
        assert np.all(training.sizes >= 1)
        assert np.all(training.groups >= 0)
        assert np.all(training.groups < len(training.kernel_names))
        assert np.all(np.isfinite(training.features))
        assert np.all(np.isfinite(training.log_seconds))

    def test_deterministic(self, arch, space, training):
        again = generate_training_set(
            arch,
            space,
            workloads=tuple(
                get_workload(name)
                for name in ("HotSpot", "VectorAdd", "SRAD")
            ),
            sizes_per_kernel=12,
        )
        assert np.array_equal(again.features, training.features)
        assert np.array_equal(again.log_seconds, training.log_seconds)
        assert np.array_equal(again.best_index, training.best_index)
        assert again.kernel_names == training.kernel_names

    def test_labels_match_fused_argmin(self, arch, space, training):
        """Spot-check: a row's label is the exact scorer's argmin."""
        workload = get_workload("HotSpot")
        dataset = max(workload.datasets(), key=lambda d: d.size)
        program = workload.skeleton(dataset)
        analysis = analyze_kernel(
            program.kernels[0], program.array_map, arch.strict_coalescing
        )
        kernel_id = training.kernel_names.index(
            f"HotSpot/{program.kernels[0].name}"
        )
        rows = np.nonzero(training.groups == kernel_id)[0]
        assert rows.size > 0
        row = int(rows[0])
        configs = space.configs()
        columns, index_map, _errors = analysis.config_columns(
            configs, int(training.sizes[row])
        )
        model = GpuPerformanceModel(arch)
        best_row, seconds, _legal = fused_argmin(
            model, columns, ScoreArena()
        )
        assert int(index_map[best_row]) == int(training.best_index[row])
        assert float(np.log(seconds)) == pytest.approx(
            float(training.log_seconds[row])
        )

    def test_max_kernels_cap(self, arch, space):
        capped = generate_training_set(
            arch,
            space,
            workloads=(get_workload("SRAD"),),
            sizes_per_kernel=4,
            max_kernels_per_workload=1,
        )
        assert len(capped.kernel_names) == 1

    def test_subset_preserves_alignment(self, training):
        indices = np.arange(0, training.rows, 2)
        part = training.subset(indices)
        assert part.rows == indices.shape[0]
        assert np.array_equal(part.sizes, training.sizes[indices])
        assert part.kernel_names == training.kernel_names

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            TrainingSet(
                features=np.zeros((3, 32)),
                log_seconds=np.zeros(2),  # misaligned
                best_index=np.zeros(3, dtype=np.int64),
                groups=np.zeros(3, dtype=np.int64),
                sizes=np.ones(3, dtype=np.int64),
                kernel_names=("k",),
            )
        with pytest.raises(ValueError):
            TrainingSet(
                features=np.zeros((3, 7)),  # wrong width
                log_seconds=np.zeros(3),
                best_index=np.zeros(3, dtype=np.int64),
                groups=np.zeros(3, dtype=np.int64),
                sizes=np.ones(3, dtype=np.int64),
                kernel_names=("k",),
            )


class TestSplitRows:
    def test_partition_is_exact_and_disjoint(self):
        parts = split_rows(100, (0.25,), seed=3)
        assert len(parts) == 2
        merged = np.concatenate(parts)
        assert merged.shape == (100,)
        assert np.array_equal(np.sort(merged), np.arange(100))

    def test_deterministic_per_seed(self):
        assert np.array_equal(
            split_rows(50, (0.5,), seed=1)[0],
            split_rows(50, (0.5,), seed=1)[0],
        )
        assert not np.array_equal(
            split_rows(50, (0.5,), seed=1)[0],
            split_rows(50, (0.5,), seed=2)[0],
        )

    def test_small_row_counts_keep_parts_nonempty(self):
        parts = split_rows(2, (0.9,))
        assert all(part.size > 0 for part in parts)

    def test_validation(self):
        with pytest.raises(ValueError):
            split_rows(0, (0.5,))
        with pytest.raises(ValueError):
            split_rows(10, (1.5,))
