"""The top-level public API surface must stay importable and coherent."""

import repro


class TestTopLevelApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_readme_quickstart_flow(self):
        """The README's quickstart snippet, verbatim in spirit."""
        n = 1 << 16
        pb = repro.ProgramBuilder("vectoradd")
        pb.array("a", (n,)).array("b", (n,)).array("c", (n,))
        kb = repro.KernelBuilder("add").parallel_loop("i", n)
        kb.load("a", "i").load("b", "i").store("c", "i").statement(flops=1)
        program = pb.kernel(kb).build()

        testbed = repro.argonne_testbed()
        bus = repro.calibrate_bus(testbed.bus)
        projection = repro.GrophecyPlusPlus(
            repro.quadro_fx_5600(), bus
        ).project(program)
        assert projection.transfer_fraction > 0.5
        assert projection.speedup(22e-3) > 0

    def test_every_subpackage_importable(self):
        import importlib

        for module in (
            "repro.util",
            "repro.skeleton",
            "repro.brs",
            "repro.datausage",
            "repro.pcie",
            "repro.gpu",
            "repro.transform",
            "repro.cpu",
            "repro.sim",
            "repro.core",
            "repro.workloads",
            "repro.harness",
            "repro.service",
            "repro.obs",
            "repro.cli",
        ):
            mod = importlib.import_module(module)
            assert mod.__doc__, f"{module} lacks a module docstring"

    def test_subpackage_alls_resolve(self):
        import importlib

        for module in (
            "repro.util",
            "repro.skeleton",
            "repro.brs",
            "repro.datausage",
            "repro.pcie",
            "repro.gpu",
            "repro.transform",
            "repro.sim",
            "repro.core",
            "repro.workloads",
            "repro.cpu",
            "repro.service",
            "repro.obs",
        ):
            mod = importlib.import_module(module)
            for name in getattr(mod, "__all__", ()):
                assert hasattr(mod, name), f"{module}.{name}"
