"""Tests for repro.skeleton.access (affine indices and accesses)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.skeleton.access import AccessKind, AffineIndex, ArrayAccess
from repro.skeleton.loops import Loop


class TestAffineIndexBasics:
    def test_var_constructor(self):
        idx = AffineIndex.var("i", 2, 3)
        assert idx.coefficient("i") == 2
        assert idx.offset == 3
        assert not idx.is_constant

    def test_const_constructor(self):
        idx = AffineIndex.const(7)
        assert idx.is_constant
        assert idx.offset == 7
        assert idx.variables() == frozenset()

    def test_zero_coefficients_dropped(self):
        idx = AffineIndex({"i": 0, "j": 1})
        assert idx.variables() == frozenset({"j"})

    def test_evaluate(self):
        idx = AffineIndex({"i": 2, "j": -1}, 5)
        assert idx.evaluate({"i": 3, "j": 4}) == 2 * 3 - 4 + 5

    def test_evaluate_missing_binding(self):
        with pytest.raises(KeyError):
            AffineIndex.var("i").evaluate({})

    def test_shifted(self):
        idx = AffineIndex.var("i").shifted(-1)
        assert idx.offset == -1
        assert idx.coefficient("i") == 1

    def test_frozen_coeffs(self):
        idx = AffineIndex.var("i")
        with pytest.raises(TypeError):
            idx.coeffs["j"] = 1  # type: ignore[index]


class TestAffineIndexBounds:
    def setup_method(self):
        self.loops = {
            "i": Loop("i", 0, 10),
            "j": Loop("j", 2, 8),
        }

    def test_single_var(self):
        lo, hi = AffineIndex.var("i").bounds(self.loops)
        assert (lo, hi) == (0, 9)

    def test_negative_coefficient(self):
        lo, hi = AffineIndex.var("i", -1, 100).bounds(self.loops)
        assert (lo, hi) == (91, 100)

    def test_two_vars(self):
        idx = AffineIndex({"i": 1, "j": 2})
        lo, hi = idx.bounds(self.loops)
        assert (lo, hi) == (0 + 4, 9 + 14)

    def test_constant(self):
        assert AffineIndex.const(5).bounds(self.loops) == (5, 5)

    def test_unknown_variable(self):
        with pytest.raises(KeyError):
            AffineIndex.var("k").bounds(self.loops)

    @given(st.integers(-4, 4), st.integers(-10, 10))
    def test_bounds_contain_all_values(self, coeff, offset):
        idx = AffineIndex({"i": coeff}, offset)
        lo, hi = idx.bounds(self.loops)
        for i in range(0, 10):
            assert lo <= idx.evaluate({"i": i}) <= hi


class TestAffineIndexStride:
    def test_unit(self):
        loops = {"i": Loop("i", 0, 10)}
        assert AffineIndex.var("i").stride(loops) == 1

    def test_coefficient_scales_stride(self):
        loops = {"i": Loop("i", 0, 10)}
        assert AffineIndex.var("i", 3).stride(loops) == 3

    def test_loop_step_scales_stride(self):
        loops = {"i": Loop("i", 0, 10, step=2)}
        assert AffineIndex.var("i").stride(loops) == 2

    def test_gcd_of_two_vars(self):
        loops = {"i": Loop("i", 0, 4), "j": Loop("j", 0, 4)}
        idx = AffineIndex({"i": 4, "j": 6})
        assert idx.stride(loops) == 2

    def test_constant_has_zero_stride(self):
        assert AffineIndex.const(3).stride({}) == 0

    def test_single_trip_loop_ignored(self):
        loops = {"i": Loop("i", 5, 6)}
        assert AffineIndex.var("i", 7).stride(loops) == 0


class TestArrayAccess:
    def test_basic(self):
        acc = ArrayAccess("a", (AffineIndex.var("i"),), AccessKind.STORE)
        assert acc.is_store and not acc.is_load
        assert acc.rank == 1

    def test_requires_subscripts(self):
        with pytest.raises(ValueError):
            ArrayAccess("a", ())

    def test_requires_name(self):
        with pytest.raises(ValueError):
            ArrayAccess("", (AffineIndex.var("i"),))

    def test_variables_union(self):
        acc = ArrayAccess(
            "a", (AffineIndex.var("i"), AffineIndex.var("j"))
        )
        assert acc.variables() == frozenset({"i", "j"})

    def test_innermost_coefficient(self):
        acc = ArrayAccess(
            "a", (AffineIndex.var("i"), AffineIndex.var("j", 4))
        )
        assert acc.innermost_coefficient("j") == 4
        assert acc.innermost_coefficient("i") == 0
