"""Tests for the skeleton text format parser."""

import pytest

from repro.datausage import analyze_transfers
from repro.skeleton import ArrayKind, DType
from repro.skeleton.parser import (
    SkeletonParseError,
    parse_skeleton,
    parse_skeleton_file,
)

HOTSPOT = """
program hotspot
array temp[64][64] f32
array power[64][64] f32
array out[64][64] f32

kernel step
  parfor i in 1..63
  parfor j in 1..63
  stmt flops=14
    load temp[i][j]
    load temp[i-1][j]     # north tap
    load temp[i+1][j]
    load temp[i][j-1]
    load temp[i][j+1]
    load power[i][j]
    store out[i][j]
"""


class TestBasicParsing:
    def test_hotspot_roundtrip(self):
        prog = parse_skeleton(HOTSPOT)
        assert prog.name == "hotspot"
        assert [a.name for a in prog.arrays] == ["temp", "power", "out"]
        kernel = prog.kernels[0]
        assert kernel.name == "step"
        assert kernel.parallel_iterations == 62 * 62
        assert kernel.loads_per_iteration() == 6
        assert kernel.flops_per_iteration == 14

    def test_comments_and_blank_lines_ignored(self):
        prog = parse_skeleton(
            "# leading comment\n\nprogram p\narray a[4]\n"
            "kernel k\n parfor i in 0..4\n stmt flops=1\n  load a[i]\n"
        )
        assert prog.name == "p"

    def test_analysis_ready(self):
        plan = analyze_transfers(parse_skeleton(HOTSPOT))
        assert {t.array for t in plan.inputs} == {"temp", "power"}
        assert {t.array for t in plan.outputs} == {"out"}

    def test_dtypes_and_sparse(self):
        prog = parse_skeleton(
            "program p\n"
            "array a[8] c128\n"
            "array s[8] f64 sparse\n"
            "kernel k\n parfor i in 0..8\n stmt\n  load a[i]\n  load s[i]\n"
            "  store a[i]\n"
        )
        assert prog.array("a").dtype is DType.complex128
        assert prog.array("s").kind is ArrayKind.SPARSE

    def test_temporaries(self):
        prog = parse_skeleton(
            "program p\narray a[8]\narray t[8]\ntemporary t\n"
            "kernel k\n parfor i in 0..8\n stmt\n  load a[i]\n  store t[i]\n"
        )
        assert prog.temporaries == frozenset({"t"})

    def test_serial_loop_with_step(self):
        prog = parse_skeleton(
            "program p\narray a[64]\n"
            "kernel k\n parfor i in 0..8\n for k in 0..16 step 2\n"
            " stmt flops=1\n  load a[k]\n"
        )
        loop = prog.kernels[0].loops[1]
        assert not loop.parallel and loop.step == 2 and loop.trip_count == 8

    def test_gather_with_dims(self):
        prog = parse_skeleton(
            "program p\narray x[16][32]\narray y[16][32]\n"
            "kernel k\n parfor r in 0..16\n parfor j in 0..32\n"
            " stmt flops=1\n  gather x[r][j] dims=0\n  store y[r][j]\n"
        )
        access = prog.kernels[0].accesses()[0]
        assert access.indirect and access.indirect_dims == (0,)

    def test_amortize_and_prob(self):
        prog = parse_skeleton(
            "program p\narray a[8]\narray b[8]\n"
            "kernel k\n parfor i in 0..8\n for t in 0..4\n"
            " stmt flops=1 prob=0.5 amortize=i\n  load a[i]\n"
            " stmt flops=2\n  load b[i]\n"
        )
        s0, s1 = prog.kernels[0].statements
        assert s0.branch_prob == 0.5
        assert s0.amortize == ("i",)
        assert s1.amortize is None


class TestAffineSubscripts:
    @pytest.mark.parametrize(
        "expr,coeffs,offset",
        [
            ("i", {"i": 1}, 0),
            ("i+1", {"i": 1}, 1),
            ("i - 3", {"i": 1}, -3),
            ("2*i", {"i": 2}, 0),
            ("2*i - 1", {"i": 2}, -1),
            ("8*i+j", {"i": 8, "j": 1}, 0),
            ("5", {}, 5),
            ("-2 + i", {"i": 1}, -2),
        ],
    )
    def test_expressions(self, expr, coeffs, offset):
        prog = parse_skeleton(
            "program p\narray a[1024]\n"
            "kernel k\n parfor i in 3..8\n parfor j in 3..8\n"
            f" stmt\n  load a[{expr}]\n  store a[i]\n"
        )
        idx = prog.kernels[0].accesses()[0].indices[0]
        assert dict(idx.coeffs) == coeffs
        assert idx.offset == offset


class TestParseErrors:
    @pytest.mark.parametrize(
        "text,fragment",
        [
            ("array a[4]", "program"),
            ("program p\nprogram q", "duplicate"),
            ("program p\nfrobnicate", "unknown directive"),
            ("program p\narray a[4]\nkernel k\n stmt\n  load a[i]",
             "invalid program"),
            ("program p\narray a[4]\nkernel k\n parfor i in 0..4\n"
             "  load a[i]", "outside a stmt"),
            ("program p\narray a[4] q16", "unknown array attribute"),
            ("program p\narray a[4]\nkernel k\n parfor i in 0..4\n stmt\n",
             "no accesses"),
            ("program p\narray a[4]\nkernel k\n parfor i in zero..4\n",
             "expected <lo>..<hi>"),
            ("program p\narray a[4]\nkernel k\n parfor i in 0..4\n"
             " stmt\n  load a[i*i]", "subscript term"),
        ],
    )
    def test_malformed(self, text, fragment):
        with pytest.raises(SkeletonParseError, match=fragment):
            parse_skeleton(text)

    def test_empty_input(self):
        with pytest.raises(SkeletonParseError, match="empty skeleton"):
            parse_skeleton("# nothing here\n")

    def test_invalid_program_rejected(self):
        # Out-of-bounds access caught by validation at build time.
        with pytest.raises(SkeletonParseError, match="invalid program"):
            parse_skeleton(
                "program p\narray a[4]\nkernel k\n parfor i in 0..8\n"
                " stmt\n  load a[i]\n"
            )


class TestFileParsing:
    def test_bundled_examples_parse(self):
        for name in ("jacobi2d", "spmv"):
            prog = parse_skeleton_file(f"examples/skeletons/{name}.skel")
            assert prog.kernels

    def test_from_tmp_file(self, tmp_path):
        path = tmp_path / "mini.skel"
        path.write_text(HOTSPOT)
        assert parse_skeleton_file(path).name == "hotspot"
