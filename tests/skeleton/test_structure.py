"""Tests for loops, statements, kernels, programs, and validation."""

import pytest

from repro.skeleton import (
    AccessKind,
    AffineIndex,
    ArrayAccess,
    ArrayDecl,
    ArrayKind,
    DType,
    KernelBuilder,
    KernelSkeleton,
    Loop,
    ProgramBuilder,
    SkeletonError,
    Statement,
    validate_kernel,
)


class TestLoop:
    def test_trip_count(self):
        assert Loop("i", 0, 10).trip_count == 10
        assert Loop("i", 0, 10, 3).trip_count == 4
        assert Loop("i", 2, 8, 2).trip_count == 3

    def test_last(self):
        assert Loop("i", 0, 10, 3).last == 9
        assert Loop("i", 2, 8, 2).last == 6

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Loop("i", 5, 5)

    def test_bad_step(self):
        with pytest.raises(ValueError):
            Loop("i", 0, 10, 0)

    def test_with_bounds_preserves_flags(self):
        l = Loop("i", 0, 10, parallel=True).with_bounds(0, 5)
        assert l.parallel and l.upper == 5


class TestDType:
    def test_sizes(self):
        assert DType.float32.size_bytes == 4
        assert DType.complex64.size_bytes == 8
        assert DType.complex128.size_bytes == 16

    def test_flags(self):
        assert DType.complex64.is_complex
        assert DType.float32.is_floating
        assert not DType.int32.is_floating


class TestArrayDecl:
    def test_size_bytes(self):
        a = ArrayDecl("a", (1024, 1024), DType.float32)
        assert a.size_bytes == 4 * 1024 * 1024
        assert a.element_count == 1024 * 1024
        assert a.rank == 2

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            ArrayDecl("a", ())
        with pytest.raises(ValueError):
            ArrayDecl("a", (0,))

    def test_requires_name(self):
        with pytest.raises(ValueError):
            ArrayDecl("", (4,))


class TestStatement:
    def _acc(self, kind):
        return ArrayAccess("a", (AffineIndex.var("i"),), kind)

    def test_load_store_partition(self):
        s = Statement(
            (self._acc(AccessKind.LOAD), self._acc(AccessKind.STORE)), flops=2
        )
        assert len(s.loads) == 1 and len(s.stores) == 1
        assert s.arrays() == frozenset({"a"})

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            Statement((self._acc(AccessKind.LOAD),), flops=-1)

    def test_branch_prob_bounds(self):
        with pytest.raises(ValueError):
            Statement((self._acc(AccessKind.LOAD),), branch_prob=0.0)
        with pytest.raises(ValueError):
            Statement((self._acc(AccessKind.LOAD),), branch_prob=1.5)


def _simple_kernel(n=100, parallel=True):
    kb = KernelBuilder("k").loop("i", n, parallel=parallel)
    kb.load("a", "i").store("b", "i").statement(flops=3)
    return kb.build()


class TestKernelSkeleton:
    def test_work_accounting(self):
        k = _simple_kernel(100)
        assert k.parallel_iterations == 100
        assert k.serial_iterations == 1
        assert k.total_iterations == 100
        assert k.flops_per_iteration == 3
        assert k.total_flops == 300
        assert k.loads_per_iteration() == 1
        assert k.stores_per_iteration() == 1

    def test_reads_writes(self):
        k = _simple_kernel()
        assert k.reads() == frozenset({"a"})
        assert k.writes() == frozenset({"b"})

    def test_serial_and_parallel_mix(self):
        kb = KernelBuilder("k").parallel_loop("i", 10).loop("t", 5)
        kb.load("a", "i").statement(flops=1)
        k = kb.build()
        assert k.parallel_iterations == 10
        assert k.serial_iterations == 5
        assert k.total_iterations == 50

    def test_duplicate_loop_var_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            KernelSkeleton(
                "k",
                (Loop("i", 0, 4), Loop("i", 0, 4)),
                (
                    Statement(
                        (ArrayAccess("a", (AffineIndex.var("i"),)),), 1.0
                    ),
                ),
            )

    def test_needs_loops_and_statements(self):
        stmt = Statement((ArrayAccess("a", (AffineIndex.var("i"),)),), 1.0)
        with pytest.raises(ValueError):
            KernelSkeleton("k", (), (stmt,))
        with pytest.raises(ValueError):
            KernelSkeleton("k", (Loop("i", 0, 4),), ())

    def test_branch_prob_weights_flops(self):
        kb = KernelBuilder("k").loop("i", 10)
        kb.load("a", "i").statement(flops=10, branch_prob=0.5)
        k = kb.build()
        assert k.flops_per_iteration == 5.0


class TestBuilderErrors:
    def test_statement_without_accesses(self):
        with pytest.raises(ValueError, match="no queued accesses"):
            KernelBuilder("k").loop("i", 4).statement()

    def test_unclosed_accesses(self):
        kb = KernelBuilder("k").loop("i", 4).load("a", "i")
        with pytest.raises(ValueError, match="without a closing"):
            kb.build()

    def test_subscript_coercion(self):
        kb = KernelBuilder("k").loop("i", 4)
        kb.load("a", ("i", 2, 1)).load("b", 0).store("c", "i").statement()
        k = kb.build()
        acc = k.accesses()[0]
        assert acc.indices[0].coefficient("i") == 2
        assert acc.indices[0].offset == 1


class TestValidation:
    def _env(self):
        return {
            "a": ArrayDecl("a", (100,)),
            "s": ArrayDecl("s", (50,), kind=ArrayKind.SPARSE),
        }

    def test_valid_kernel_passes(self):
        k = (
            KernelBuilder("k")
            .loop("i", 100)
            .load("a", "i")
            .statement()
            .build()
        )
        validate_kernel(k, self._env())

    def test_undeclared_array(self):
        k = (
            KernelBuilder("k")
            .loop("i", 10)
            .load("zzz", "i")
            .statement()
            .build()
        )
        with pytest.raises(SkeletonError, match="undeclared"):
            validate_kernel(k, self._env())

    def test_rank_mismatch(self):
        k = (
            KernelBuilder("k")
            .loop("i", 10)
            .load("a", "i", "i")
            .statement()
            .build()
        )
        with pytest.raises(SkeletonError, match="rank"):
            validate_kernel(k, self._env())

    def test_out_of_bounds(self):
        k = (
            KernelBuilder("k")
            .loop("i", 101)
            .load("a", "i")
            .statement()
            .build()
        )
        with pytest.raises(SkeletonError, match="outside"):
            validate_kernel(k, self._env())

    def test_negative_subscript_bound(self):
        k = (
            KernelBuilder("k")
            .loop("i", 10)
            .load("a", ("i", 1, -1))
            .statement()
            .build()
        )
        with pytest.raises(SkeletonError, match="outside"):
            validate_kernel(k, self._env())

    def test_sparse_skips_bounds(self):
        # Sparse arrays have data-dependent subscripts; static bounds are
        # not enforced.
        k = (
            KernelBuilder("k")
            .loop("i", 1000)
            .load("s", "i")
            .statement()
            .build()
        )
        validate_kernel(k, self._env())

    def test_unknown_loop_variable(self):
        stmt = Statement((ArrayAccess("a", (AffineIndex.var("q"),)),), 1.0)
        k = KernelSkeleton("k", (Loop("i", 0, 10),), (stmt,))
        with pytest.raises(SkeletonError, match="loop variables"):
            validate_kernel(k, self._env())


class TestProgramSkeleton:
    def _program(self):
        pb = ProgramBuilder("p")
        pb.array("a", (100,)).array("b", (100,))
        kb = KernelBuilder("k1").parallel_loop("i", 100)
        kb.load("a", "i").store("b", "i").statement(flops=1)
        pb.kernel(kb)
        return pb

    def test_build_and_lookup(self):
        p = self._program().build()
        assert p.array("a").name == "a"
        assert p.kernel("k1").name == "k1"
        assert p.total_flops == 100

    def test_missing_array_lookup(self):
        p = self._program().build()
        with pytest.raises(KeyError):
            p.array("zzz")
        with pytest.raises(KeyError):
            p.kernel("zzz")

    def test_duplicate_arrays_rejected(self):
        pb = self._program()
        pb.array("a", (5,))
        with pytest.raises(ValueError, match="twice"):
            pb.build()

    def test_unknown_temporary_rejected(self):
        pb = self._program().temporary("nope")
        with pytest.raises(ValueError, match="undeclared"):
            pb.build()

    def test_builder_validates_kernels(self):
        pb = ProgramBuilder("p").array("a", (10,))
        kb = KernelBuilder("bad").loop("i", 20)
        kb.load("a", "i").statement()
        with pytest.raises(SkeletonError):
            pb.kernel(kb)
