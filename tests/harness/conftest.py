"""Shared (expensive) experiment context for harness tests."""

import pytest

from repro.harness.context import ExperimentContext


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    """One calibrated virtual testbed for the whole harness test session."""
    return ExperimentContext(seed=2013)
