"""Tests for the one-call artifact writer."""

import pytest

from repro.harness.artifacts import write_all_artifacts


class TestWriteAllArtifacts:
    @pytest.fixture(scope="class")
    def written(self, tmp_path_factory):
        from repro.harness.context import ExperimentContext

        outdir = tmp_path_factory.mktemp("artifacts")
        ctx = ExperimentContext(seed=33)
        return outdir, write_all_artifacts(ctx, outdir)

    def test_every_artifact_in_three_formats(self, written):
        outdir, paths = written
        names = {p.name for p in paths}
        for artifact in ("table1", "table2", "fig4", "fig8", "fig12"):
            for suffix in (".txt", ".md", ".csv"):
                assert f"{artifact}{suffix}" in names

    def test_charts_written_for_figures(self, written):
        outdir, paths = written
        names = {p.name for p in paths}
        assert "fig5.chart.txt" in names
        assert "fig12.chart.txt" in names
        assert "table1.chart.txt" not in names  # tables have no chart

    def test_summary_contains_headline(self, written):
        outdir, _ = written
        summary = (outdir / "summary.md").read_text()
        assert "speedup error, kernel-only" in summary
        assert "255%" in summary  # the paper column
        assert "| metric | paper | this run |" in summary

    def test_files_nonempty_and_parse(self, written):
        outdir, paths = written
        for path in paths:
            text = path.read_text()
            assert text.strip(), path.name
            if path.suffix == ".csv":
                header = text.splitlines()[0]
                assert "," in header

    def test_no_charts_mode(self, tmp_path):
        from repro.harness.context import ExperimentContext

        ctx = ExperimentContext(seed=34)
        paths = write_all_artifacts(
            ctx, tmp_path, formats=("csv",), charts=False
        )
        assert all(p.suffix == ".csv" or p.name == "summary.md" for p in paths)
