"""Tests for the shared experiment context."""

import pytest

from repro.harness.context import ExperimentContext
from repro.workloads import HotSpot, get_workload


class TestExperimentContext:
    def test_calibration_matches_paper_scale(self, ctx):
        # alpha ~ 10us, bandwidth ~ 2.5 GB/s on the pinned H2D link.
        assert 5e-6 < ctx.bus_model.h2d.alpha < 20e-6
        assert 2.0e9 < ctx.bus_model.h2d.bandwidth < 3.0e9

    def test_projection_cached(self, ctx):
        w = HotSpot()
        ds = w.datasets()[1]
        assert ctx.projection(w, ds) is ctx.projection(w, ds)

    def test_measured_cached_and_stable(self, ctx):
        w = HotSpot()
        ds = w.datasets()[1]
        assert ctx.measured(w, ds) is ctx.measured(w, ds)

    def test_measured_kernel_matches_targets(self, ctx):
        """The replayed calibration reproduces Table I kernel times."""
        w = HotSpot()
        for ds in w.datasets():
            target = w.testbed_targets(ds).kernel_seconds
            measured = ctx.measured(w, ds).kernel_seconds
            assert measured == pytest.approx(target, rel=0.05)

    def test_measured_cpu_matches_anchor(self, ctx):
        w = get_workload("Stassuij")
        ds = w.datasets()[0]
        assert ctx.measured(w, ds).cpu_seconds == pytest.approx(
            2.85e-3, rel=0.05
        )

    def test_per_transfer_alignment(self, ctx):
        w = get_workload("CFD")
        ds = w.datasets()[0]
        plan = ctx.projection(w, ds).plan
        measured = ctx.measured(w, ds)
        assert len(measured.per_transfer_seconds) == plan.transfer_count

    def test_factors_are_order_one(self, ctx):
        """Replay factors should be modest corrections, not magic."""
        for name in ("CFD", "HotSpot", "SRAD", "Stassuij"):
            w = get_workload(name)
            for ds in w.datasets():
                f = ctx.factors(w, ds)
                assert 0.2 < f.kernel_factor < 20.0, (name, ds.label)
                assert 0.2 < f.cpu_factor < 20.0, (name, ds.label)

    def test_seeds_isolate_contexts(self):
        a = ExperimentContext(seed=1)
        b = ExperimentContext(seed=2)
        w = HotSpot()
        ds = w.datasets()[0]
        assert (
            a.measured(w, ds).kernel_seconds
            != b.measured(w, ds).kernel_seconds
        )

    def test_report_cached(self, ctx):
        """Satellite of the sweep PR: one report object per
        (workload, dataset) key, not a fresh wrapper per call."""
        w = HotSpot()
        ds = w.datasets()[0]
        assert ctx.report(w, ds) is ctx.report(w, ds)


class TestSweepWiring:
    def test_sweep_on_by_default(self, ctx):
        assert ctx.sweep is True

    def test_projection_equals_per_point_path(self, ctx):
        """The sweep-served projections must be dataclass-equal to what
        a sweep-disabled context (the old per-point path) computes."""
        plain = ExperimentContext(seed=2013, sweep=False)
        w = get_workload("CFD")
        for ds in w.datasets():
            assert ctx.projection(w, ds) == plain.projection(w, ds)

    def test_first_projection_sweeps_whole_workload(self):
        context = ExperimentContext(seed=2013)
        w = get_workload("SRAD")
        datasets = w.datasets()
        context.projection(w, datasets[0])
        # Every sibling dataset was projected by the same structural pass.
        for ds in datasets:
            assert (w.name, ds.label) in context._projections

    def test_project_all_reuses_cached_points(self, ctx):
        w = get_workload("CFD")
        before = [ctx.projection(w, ds) for ds in w.datasets()]
        after = ctx.project_all(w)
        assert all(a is b for a, b in zip(after, before))

    def test_sweep_engine_is_lazy_and_shared(self):
        context = ExperimentContext(seed=2013)
        assert context._sweep_engine is None
        engine = context.sweep_engine
        assert engine is context.sweep_engine
        assert engine.model is context.projector.model

    def test_sweep_disabled_stays_per_point(self):
        context = ExperimentContext(seed=2013, sweep=False)
        w = get_workload("CFD")
        datasets = w.datasets()
        context.projection(w, datasets[0])
        assert (w.name, datasets[0].label) in context._projections
        assert (w.name, datasets[-1].label) not in context._projections
