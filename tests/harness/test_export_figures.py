"""Tests for exporters and ASCII-figure rendering of results."""

import pytest

from repro.datausage import Direction
from repro.harness import figures
from repro.harness.apps import (
    run_fig5_transfer_scatter,
    run_fig6_error_scatter,
    run_table1_measured,
)
from repro.harness.export import export, save, to_csv, to_markdown, to_text
from repro.harness.speedups import (
    run_speedup_vs_iterations,
    run_speedup_vs_size,
    run_table2_speedup_error,
)
from repro.harness.transfer_sweep import (
    run_fig2_transfer_times,
    run_fig3_pinned_speedup,
    run_fig4_model_error,
)
from repro.workloads import get_workload


class TestExport:
    def test_text_matches_as_table(self, ctx):
        result = run_table1_measured(ctx)
        assert to_text(result) == result.as_table().render()

    def test_markdown_structure(self, ctx):
        result = run_table2_speedup_error(ctx)
        md = to_markdown(result)
        lines = md.splitlines()
        assert lines[0].startswith("**Table II")
        header = next(l for l in lines if l.startswith("| Application"))
        assert header.count("|") == 6
        assert any(l.startswith("|---") for l in lines)

    def test_csv_structure(self, ctx):
        result = run_table1_measured(ctx)
        csv = to_csv(result)
        lines = csv.splitlines()
        assert lines[0].startswith("Application,Data Size")
        assert len(lines) == 1 + len(result.rows)

    def test_csv_quoting(self):
        from repro.util.tables import Table

        t = Table(["a"], title="x")
        t.add_row(['he said "1,2"'])
        assert t.to_csv().splitlines()[1] == '"he said ""1,2"""'

    def test_export_dispatch(self, ctx):
        result = run_table1_measured(ctx)
        assert export(result, "markdown") == to_markdown(result)
        with pytest.raises(ValueError):
            export(result, "pdf")

    def test_save_infers_format(self, ctx, tmp_path):
        result = run_table1_measured(ctx)
        md = save(result, tmp_path / "t1.md")
        csv = save(result, tmp_path / "t1.csv")
        txt = save(result, tmp_path / "t1.txt")
        assert md.read_text().startswith("**Table I")
        assert csv.read_text().startswith("Application,")
        assert "Application" in txt.read_text()

    def test_every_result_has_as_table(self, ctx):
        results = [
            run_table1_measured(ctx),
            run_table2_speedup_error(ctx),
            run_fig2_transfer_times(ctx, Direction.H2D, repetitions=2),
            run_fig3_pinned_speedup(ctx, repetitions=2),
            run_fig4_model_error(ctx, repetitions=2),
            run_fig5_transfer_scatter(ctx),
            run_fig6_error_scatter(ctx),
            run_speedup_vs_size(ctx, get_workload("SRAD")),
            run_speedup_vs_iterations(ctx, get_workload("SRAD")),
        ]
        for result in results:
            table = result.as_table()
            assert table.rows, type(result).__name__
            assert to_markdown(result).startswith("**")


class TestFigureCharts:
    def test_fig2_chart(self, ctx):
        r = run_fig2_transfer_times(ctx, Direction.H2D, repetitions=2)
        chart = figures.fig2_chart(r)
        assert "log-log" in chart
        assert "pinned" in chart and "pageable" in chart

    def test_fig3_chart(self, ctx):
        chart = figures.fig3_chart(run_fig3_pinned_speedup(ctx, repetitions=2))
        assert "CPU-to-GPU" in chart

    def test_fig4_chart(self, ctx):
        chart = figures.fig4_chart(run_fig4_model_error(ctx, repetitions=2))
        assert "to GPU" in chart

    def test_fig5_chart_has_diagonal(self, ctx):
        chart = figures.fig5_chart(run_fig5_transfer_scatter(ctx))
        assert "y=x" in chart
        assert "o" in chart

    def test_fig6_chart(self, ctx):
        chart = figures.fig6_chart(run_fig6_error_scatter(ctx))
        assert "kernel error" in chart

    def test_speedup_charts(self, ctx):
        size_chart = figures.speedup_vs_size_chart(
            run_speedup_vs_size(ctx, get_workload("CFD"))
        )
        iter_chart = figures.speedup_vs_iterations_chart(
            run_speedup_vs_iterations(ctx, get_workload("CFD"))
        )
        assert "CFD" in size_chart
        assert "iterations" in iter_chart
        assert "kernel only" in iter_chart
