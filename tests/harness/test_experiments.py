"""Unit-level tests of each experiment runner's structure and rendering."""

import pytest

from repro.datausage import Direction
from repro.harness.apps import (
    run_fig5_transfer_scatter,
    run_fig6_error_scatter,
    run_table1_measured,
)
from repro.harness.speedups import (
    run_speedup_vs_iterations,
    run_speedup_vs_size,
    run_table2_speedup_error,
)
from repro.harness.transfer_sweep import (
    run_fig2_transfer_times,
    run_fig3_pinned_speedup,
    run_fig4_model_error,
)
from repro.workloads import Stassuij, get_workload


class TestTransferSweepRunners:
    def test_fig2_structure(self, ctx):
        result = run_fig2_transfer_times(ctx, Direction.H2D, repetitions=3)
        assert len(result.sizes) == 30
        assert len(result.pinned) == 30
        # Rendered output includes the model overlay.
        text = result.render()
        assert "predicted(pinned)" in text and "512MB" in text

    def test_fig3_crossover(self, ctx):
        result = run_fig3_pinned_speedup(ctx, repetitions=3)
        crossover = result.crossover_size_h2d()
        assert crossover is not None
        assert 512 <= crossover <= 8192  # paper: ~2KB
        assert "Fig. 3" in result.render()

    def test_fig4_structure(self, ctx):
        result = run_fig4_model_error(ctx, repetitions=3)
        assert result.mean_h2d < 0.10
        assert result.mean_above(2**20, Direction.H2D) < 0.01
        assert "mean error" in result.render()


class TestAppRunners:
    def test_table1_rows_complete(self, ctx):
        result = run_table1_measured(ctx)
        assert len(result.rows) == 10  # 3+3+3+1 datasets
        row = result.row("SRAD", "4096 x 4096")
        assert row.input_mb == pytest.approx(64.0, rel=0.01)
        with pytest.raises(KeyError):
            result.row("SRAD", "7 x 7")
        assert "Table I" in result.render()

    def test_table1_transfer_dominates_except_tiny_hotspot(self, ctx):
        """Paper: transfer > kernel for all but HotSpot's smallest set."""
        result = run_table1_measured(ctx)
        for row in result.rows:
            if (row.application, row.data_size) == ("HotSpot", "64 x 64"):
                continue
            assert row.transfer_ms > row.kernel_ms, (
                row.application,
                row.data_size,
            )

    def test_fig5_points_and_outliers(self, ctx):
        result = run_fig5_transfer_scatter(ctx)
        assert len(result.points) >= 30
        # The bimodal CFD transfer shows as repeated outliers.
        outlier_apps = {p.application for p in result.outliers(0.3)}
        assert outlier_apps == {"CFD"}
        assert "Fig. 5" in result.render()

    def test_fig6_points(self, ctx):
        result = run_fig6_error_scatter(ctx)
        assert len(result.points) == 10
        assert all(p.transfer_error >= 0 for p in result.points)
        assert "Fig. 6" in result.render()


class TestSpeedupRunners:
    def test_speedup_vs_size(self, ctx):
        result = run_speedup_vs_size(ctx, get_workload("HotSpot"))
        assert len(result.labels) == 3
        # Kernel-only prediction always the most optimistic.
        for with_t, without_t in zip(
            result.predicted_with_transfer,
            result.predicted_without_transfer,
        ):
            assert without_t > with_t
        assert "HotSpot" in result.render()

    def test_speedup_vs_iterations_converges(self, ctx):
        result = run_speedup_vs_iterations(
            ctx, get_workload("SRAD"),
            iteration_counts=(1, 10, 100, 1000, 10000),
        )
        # With and without transfer converge at large iteration counts.
        gap_small = abs(
            result.predicted_with_transfer[0]
            - result.predicted_without_transfer[0]
        )
        gap_large = abs(
            result.predicted_with_transfer[-1]
            - result.predicted_without_transfer[-1]
        )
        assert gap_large < 0.05 * gap_small
        assert "crossover" in result.render()

    def test_measured_speedup_rises_with_iterations(self, ctx):
        result = run_speedup_vs_iterations(
            ctx, get_workload("CFD"), iteration_counts=(1, 4, 16, 64)
        )
        assert list(result.measured) == sorted(result.measured)

    def test_non_iterative_rejected(self, ctx):
        with pytest.raises(ValueError):
            run_speedup_vs_iterations(ctx, Stassuij())

    def test_table2_structure(self, ctx):
        result = run_table2_speedup_error(ctx)
        assert len(result.rows) == 10
        avg = result.application_average
        assert avg.kernel_only_error > avg.transfer_only_error
        assert avg.transfer_only_error > avg.both_error
        assert "Table II" in result.render()
        row = result.row("CFD", "97K")
        assert row.kernel_only_error > 1.0
        with pytest.raises(KeyError):
            result.row("CFD", "1K")
