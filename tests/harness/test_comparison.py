"""Tests for the automated paper-vs-reproduction comparison."""

import pytest

from repro.harness.comparison import (
    ComparisonRow,
    PaperComparison,
    compare_with_paper,
)


class TestComparisonRow:
    def test_match_verdict(self):
        row = ComparisonRow("m", paper=0.10, reproduced=0.11, tolerance=0.2)
        assert row.verdict == "match"

    def test_differs_verdict(self):
        row = ComparisonRow("m", paper=0.10, reproduced=0.30, tolerance=0.2)
        assert row.verdict == "differs"

    def test_rendering_percent_vs_plain(self):
        pct = ComparisonRow("m", 0.5, 0.5, 0.1, percent=True)
        plain = ComparisonRow("m", 3.0, 3.0, 0.1, percent=False)
        assert pct.cells()[1] == "50.0%"
        assert plain.cells()[1] == "3"


class TestCompareWithPaper:
    @pytest.fixture(scope="class")
    def comparison(self, tmp_path_factory):
        from repro.harness.context import ExperimentContext

        return compare_with_paper(ExperimentContext(seed=2013))

    def test_covers_every_evaluation_surface(self, comparison):
        metrics = " ".join(r.metric for r in comparison.rows)
        for fragment in (
            "Fig4", "Table1", "Fig5", "Table2", "crossover",
            "limit error", "Stassuij",
        ):
            assert fragment in metrics

    def test_most_metrics_match(self, comparison):
        """The reproduction's contract: >= 80% of paper statistics land
        within their per-row tolerance (the misses are the documented
        HotSpot stencil-model gap; see EXPERIMENTS.md)."""
        assert comparison.match_fraction >= 0.8

    def test_misses_are_all_hotspot(self, comparison):
        misses = [r.metric for r in comparison.rows if r.verdict == "differs"]
        assert misses  # the gap is real and must stay visible
        assert all("HotSpot" in m for m in misses), misses

    def test_render_and_export(self, comparison):
        text = comparison.render()
        assert "metrics within tolerance" in text
        md = comparison.as_table().to_markdown()
        assert md.startswith("**Paper vs reproduction**")
