"""Consistency checks on the transcribed paper numbers.

Table II's three columns are not independent: given Table I's measured
kernel+transfer total, each error column implies a predicted time, and
those implied predictions must satisfy the combined-column identity

    1 + err_both ~= T_total / (pred_kernel + pred_transfer)

This cross-validates our transcription of the paper (and caught a wrong
row during development).
"""

import pytest

from repro.harness import paperref


def implied_prediction(total_ms: float, error: float) -> float:
    """Kernel-only/transfer-only predictions always under-shoot the
    total (speedup over-predicted), so ``pred = total / (1 + err)``."""
    return total_ms / (1.0 + error)


class TestTable2InternalConsistency:
    @pytest.mark.parametrize(
        "key", sorted(paperref.TABLE2, key=str),
        ids=lambda k: f"{k[0]}-{k[1]}",
    )
    def test_columns_mutually_consistent(self, key):
        t1 = paperref.TABLE1[key]
        t2 = paperref.TABLE2[key]
        total = t1.kernel_ms + t1.transfer_ms
        pred_k = implied_prediction(total, t2.kernel_only)
        pred_t = implied_prediction(total, t2.transfer_only)
        implied_both = abs(total / (pred_k + pred_t) - 1.0)
        # Rounding in the paper's printed percentages leaves a few points
        # of slack; HotSpot 64x64's "<0.1" rows get more.
        slack = 0.06 if key != ("HotSpot", "64 x 64") else 0.25
        assert implied_both == pytest.approx(t2.both, abs=slack), (
            f"{key}: implied {implied_both:.2f} vs printed {t2.both:.2f}"
        )

    def test_average_rows_match_items(self):
        rows = list(paperref.TABLE2.values())
        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
        assert mean([r.kernel_only for r in rows]) == pytest.approx(
            paperref.TABLE2_AVERAGE_DATASETS.kernel_only, abs=0.03
        )
        assert mean([r.both for r in rows]) == pytest.approx(
            paperref.TABLE2_AVERAGE_DATASETS.both, abs=0.02
        )

    def test_application_average_weighs_apps_equally(self):
        apps: dict[str, list] = {}
        for (app, _), row in paperref.TABLE2.items():
            apps.setdefault(app, []).append(row)
        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
        app_means = [
            mean([r.kernel_only for r in rows]) for rows in apps.values()
        ]
        assert mean(app_means) == pytest.approx(
            paperref.TABLE2_AVERAGE_APPLICATIONS.kernel_only, abs=0.03
        )


class TestTable1InternalConsistency:
    @pytest.mark.parametrize(
        "key", sorted(paperref.TABLE1, key=str),
        ids=lambda k: f"{k[0]}-{k[1]}",
    )
    def test_percent_transfer_matches_times(self, key):
        row = paperref.TABLE1[key]
        implied = 100 * row.transfer_ms / (row.kernel_ms + row.transfer_ms)
        assert implied == pytest.approx(row.percent_transfer, abs=4.0)

    def test_stassuij_cpu_anchor_derivation(self):
        """Section V-B.4 algebra: kernel-only speedup 1.10x with the
        measured total implies the CPU time, and that CPU time over the
        total gives the measured 0.39x speedup."""
        t1 = paperref.TABLE1[("Stassuij", "132 x 2048")]
        t2 = paperref.TABLE2[("Stassuij", "132 x 2048")]
        total = t1.kernel_ms + t1.transfer_ms
        pred_k = implied_prediction(total, t2.kernel_only)
        cpu = paperref.STASSUIJ_KERNEL_ONLY_SPEEDUP * pred_k
        assert cpu / total == pytest.approx(
            paperref.STASSUIJ_MEASURED_SPEEDUP, abs=0.03
        )
