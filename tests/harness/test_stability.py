"""Tests for the seed-stability study."""

import pytest

from repro.harness.stability import StabilityResult, headline_across_seeds
from repro.util.stats import summarize


class TestHeadlineAcrossSeeds:
    @pytest.fixture(scope="class")
    def result(self):
        return headline_across_seeds(seeds=(2013, 5))

    def test_structure(self, result):
        assert result.seeds == (2013, 5)
        assert result.kernel_only.n == 2
        assert result.both.n == 2

    def test_headline_ordering_every_seed(self, result):
        assert result.kernel_only.minimum > result.transfer_only.maximum
        assert result.transfer_only.minimum > result.both.maximum

    def test_conclusion_stable(self, result):
        assert result.conclusion_stable

    def test_render(self, result):
        text = result.render()
        assert "kernel-only error" in text
        assert "2 testbed seeds" in text
        assert result.as_table().to_csv().startswith("metric,")

    def test_rejects_no_seeds(self):
        with pytest.raises(ValueError):
            headline_across_seeds(seeds=())


class TestStabilityResultLogic:
    def _result(self, kernel_min, both_max):
        return StabilityResult(
            seeds=(1,),
            kernel_only=summarize([kernel_min]),
            transfer_only=summarize([0.5]),
            both=summarize([both_max]),
        )

    def test_stability_threshold(self):
        assert self._result(4.0, 0.2).conclusion_stable
        assert not self._result(1.5, 0.2).conclusion_stable
