"""Provenance exactness: components must sum to the projection, bitwise."""

import pytest

from repro.core.projector import GrophecyPlusPlus
from repro.gpu.arch import quadro_fx_5600
from repro.obs.provenance import ProjectionProvenance, build_provenance
from repro.pcie.presets import pcie_gen1_bus, pcie_gen2_bus
from repro.workloads.registry import all_workloads, get_workload


def _project(workload_name, bus=None):
    workload = get_workload(workload_name)
    dataset = workload.datasets()[0]
    bus = bus or pcie_gen1_bus()
    projection = GrophecyPlusPlus(quadro_fx_5600(), bus).project(
        workload.skeleton(dataset), workload.hints(dataset)
    )
    return projection, bus


class TestExactness:
    @pytest.mark.parametrize(
        "name", [w.name for w in all_workloads()]
    )
    def test_components_sum_to_total_exactly(self, name):
        projection, bus = _project(name)
        provenance = build_provenance(projection, bus)
        assert (
            provenance.kernel_seconds
            + provenance.transfer_seconds
            + provenance.setup_seconds
            == provenance.total_seconds
        )
        assert provenance.total_seconds == projection.total_seconds(1)
        assert provenance.kernel_seconds == projection.kernel_seconds
        assert provenance.transfer_seconds == projection.transfer_seconds

    def test_per_transfer_alpha_beta_split_is_exact(self):
        projection, bus = _project("CFD")
        provenance = build_provenance(projection, bus)
        assert provenance.transfers
        for transfer, seconds in zip(
            provenance.transfers, projection.per_transfer_seconds
        ):
            assert transfer.alpha_seconds + transfer.beta_seconds == seconds
            assert transfer.seconds == seconds

    def test_per_kernel_seconds_match_the_winners(self):
        projection, bus = _project("SRAD")
        provenance = build_provenance(projection, bus)
        assert len(provenance.kernels) == len(projection.kernels.kernels)
        for prov, kp in zip(
            provenance.kernels, projection.kernels.kernels
        ):
            assert prov.seconds == kp.seconds
            assert prov.best_mapping == kp.best.config.label()
            assert prov.regime == kp.best.breakdown.regime
            assert prov.search_width == kp.search_width

    def test_wrong_bus_is_rejected(self):
        projection, _ = _project("HotSpot", bus=pcie_gen1_bus())
        with pytest.raises(ValueError, match="pass the bus"):
            build_provenance(projection, pcie_gen2_bus())


class TestRunnerUp:
    def test_runner_up_gap_is_nonnegative_and_second_best(self):
        projection, bus = _project("HotSpot")
        provenance = build_provenance(projection, bus)
        for prov, kp in zip(
            provenance.kernels, projection.kernels.kernels
        ):
            if len(kp.candidates) < 2:
                assert prov.runner_up_mapping is None
                continue
            assert prov.runner_up_mapping is not None
            assert prov.runner_up_gap_seconds >= 0.0
            others = [
                c.seconds
                for c in kp.candidates
                if c.config != kp.best.config
            ]
            assert (
                prov.runner_up_gap_seconds
                == min(others) - kp.best.seconds
            )


class TestRoundTripAndViews:
    def test_dict_and_json_round_trip_exactly(self):
        projection, bus = _project("CFD")
        provenance = build_provenance(projection, bus)
        assert (
            ProjectionProvenance.from_dict(provenance.to_dict())
            == provenance
        )
        assert (
            ProjectionProvenance.from_json(provenance.to_json())
            == provenance
        )

    def test_shares_sum_to_one_without_setup(self):
        projection, bus = _project("CFD")
        provenance = build_provenance(projection, bus)
        assert provenance.setup_seconds == 0.0
        assert provenance.kernel_share + provenance.transfer_share == (
            pytest.approx(1.0)
        )

    def test_alpha_beta_totals_cover_transfer_time(self):
        projection, bus = _project("CFD")
        provenance = build_provenance(projection, bus)
        assert (
            provenance.alpha_seconds + provenance.beta_seconds
            == pytest.approx(provenance.transfer_seconds)
        )

    def test_explain_mentions_every_kernel_and_transfer(self):
        projection, bus = _project("SRAD")
        text = build_provenance(projection, bus).explain()
        for kp in projection.kernels.kernels:
            assert kp.kernel in text
        for transfer in projection.plan.transfers:
            assert transfer.array in text
        assert "runner-up" in text or "sole candidate" in text
