"""Prometheus exposition: rendering and the strict line-format parser."""

import pytest

from repro.obs.prometheus import (
    metric_name,
    parse_exposition,
    render_snapshot,
)
from repro.service.metrics import ServiceMetrics


class TestMetricName:
    def test_namespaced_and_suffixed(self):
        assert metric_name("cache_hits") == "repro_cache_hits_total"

    def test_sanitizes_invalid_characters(self):
        assert metric_name("weird-name.x") == "repro_weird_name_x_total"

    def test_keeps_existing_total_suffix(self):
        assert metric_name("requests_total") == "repro_requests_total"


class TestRenderSnapshot:
    def _snapshot(self):
        metrics = ServiceMetrics()
        metrics.incr("requests", 3)
        metrics.incr("cache_hits")
        for seconds in (0.010, 0.020, 0.030):
            metrics.add_time("explore", seconds)
        return metrics.snapshot()

    def test_counters_render_as_counter_families(self):
        text = render_snapshot(self._snapshot())
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 3" in text
        assert "repro_cache_hits_total 1" in text

    def test_timers_render_as_one_summary_family(self):
        text = render_snapshot(self._snapshot())
        assert "# TYPE repro_stage_duration_seconds summary" in text
        assert 'stage="explore",quantile="0.5"' in text
        assert 'repro_stage_duration_seconds_count{stage="explore"} 3' in (
            text
        )

    def test_empty_snapshot_renders_empty(self):
        assert render_snapshot({"counters": {}, "timers": {}}) == ""

    def test_every_line_parses_back(self):
        samples = list(parse_exposition(render_snapshot(self._snapshot())))
        names = {name for name, _, _ in samples}
        assert "repro_requests_total" in names
        assert "repro_stage_duration_seconds_sum" in names
        by_key = {
            (name, labels.get("stage"), labels.get("quantile")): value
            for name, labels, value in samples
        }
        assert by_key[("repro_requests_total", None, None)] == 3.0
        assert (
            by_key[("repro_stage_duration_seconds", "explore", "0.5")]
            == 0.020
        )
        assert by_key[
            ("repro_stage_duration_seconds_count", "explore", None)
        ] == 3.0

    def test_sum_value_round_trips_exactly(self):
        snapshot = self._snapshot()
        samples = list(parse_exposition(render_snapshot(snapshot)))
        total = next(
            value
            for name, labels, value in samples
            if name == "repro_stage_duration_seconds_sum"
        )
        assert total == snapshot["timers"]["explore"]["seconds"]


class TestParseExposition:
    def test_skips_comments_and_blank_lines(self):
        text = "# HELP x y\n\nrepro_x_total 1\n"
        assert list(parse_exposition(text)) == [("repro_x_total", {}, 1.0)]

    def test_parses_labels(self):
        ((name, labels, value),) = parse_exposition(
            'family{stage="explore",quantile="0.95"} 0.5\n'
        )
        assert name == "family"
        assert labels == {"stage": "explore", "quantile": "0.95"}
        assert value == 0.5

    @pytest.mark.parametrize(
        "line",
        [
            "not a sample at all!",
            "name{unterminated 1",
            'name{key=unquoted} 1',
            "name notanumber",
        ],
    )
    def test_malformed_lines_raise(self, line):
        with pytest.raises(ValueError):
            list(parse_exposition(line + "\n"))

    def test_to_prometheus_is_parseable_end_to_end(self):
        metrics = ServiceMetrics()
        metrics.incr("requests")
        metrics.add_time("predict", 0.001)
        samples = list(parse_exposition(metrics.to_prometheus()))
        assert samples  # strict parse of the whole exposition succeeded
