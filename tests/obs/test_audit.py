"""Shadow auditor: deterministic sampling, verdicts, health, backpressure.

These tests drive the auditor with small fakes (an exact "engine" whose
answer we control, surrogate responses whose mappings we control) so
every agreement/disagreement verdict is deterministic; the end-to-end
auditor-inside-a-daemon path lives in ``tests/daemon/test_obs.py``.
"""

from types import SimpleNamespace

import pytest

from repro.obs.audit import ShadowAuditor
from repro.obs.events import EventLog
from repro.service.metrics import ServiceMetrics


def fake_exact(labels, total_seconds=1.0):
    """An 'exact engine' returning fixed winning mappings."""
    kernels = [
        SimpleNamespace(name=name, best_mapping=label)
        for name, label in labels.items()
    ]
    response = SimpleNamespace(
        summary=SimpleNamespace(kernels=kernels),
        total_seconds=total_seconds,
    )
    return SimpleNamespace(
        project=lambda request: response, metrics=ServiceMetrics()
    )


def fake_response(labels, total_seconds=1.0, request_id="r1"):
    """A surrogate response whose estimate carries fixed mappings."""
    return SimpleNamespace(
        request_id=request_id,
        confidence=0.9,
        total_seconds=total_seconds,
        estimate=SimpleNamespace(mappings=tuple(labels.items())),
    )


LABELS = {"kernel_a": "tiled-16", "kernel_b": "coalesced"}


def drain(auditor):
    """Process everything queued, synchronously."""
    auditor.start()
    auditor.stop()


class TestSampling:
    def test_every_nth_answer_is_sampled_deterministically(self):
        auditor = ShadowAuditor(fake_exact(LABELS), rate=0.5)
        verdicts = [
            auditor.consider(None, fake_response(LABELS))
            for _ in range(6)
        ]
        # rate 0.5 -> every 2nd considered answer, counter-based.
        assert verdicts == [False, True, False, True, False, True]
        assert auditor.snapshot()["considered"] == 6

    def test_rate_one_samples_everything(self):
        auditor = ShadowAuditor(fake_exact(LABELS), rate=1.0)
        assert auditor.consider(None, fake_response(LABELS))
        assert auditor.pending() == 1

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            ShadowAuditor(fake_exact(LABELS), rate=0.0)
        with pytest.raises(ValueError):
            ShadowAuditor(fake_exact(LABELS), rate=1.5)


class TestVerdicts:
    def test_agreement_when_mappings_match(self):
        metrics = ServiceMetrics()
        auditor = ShadowAuditor(
            fake_exact(LABELS), rate=1.0, metrics=metrics
        )
        for _ in range(3):
            auditor.consider(None, fake_response(LABELS))
        drain(auditor)
        snapshot = auditor.snapshot()
        assert snapshot["audits"] == 3
        assert snapshot["disagreements"] == 0
        assert snapshot["agreement"] == 1.0
        assert metrics.snapshot()["counters"]["obs_surrogate_audits"] == 3

    def test_disagreement_counted_and_emitted(self):
        metrics = ServiceMetrics()
        events = EventLog()
        auditor = ShadowAuditor(
            fake_exact(LABELS),
            rate=1.0,
            metrics=metrics,
            events=events,
        )
        wrong = dict(LABELS, kernel_a="naive")
        auditor.consider(None, fake_response(wrong))
        drain(auditor)
        snapshot = auditor.snapshot()
        assert snapshot["disagreements"] == 1
        assert snapshot["agreement"] == 0.0
        counters = metrics.snapshot()["counters"]
        assert counters["obs_surrogate_audit_disagreements"] == 1
        (event,) = events.tail(types=("audit",))
        assert event.attrs["agreed"] is False
        assert event.attrs["abs_log_drift"] >= 0.0

    def test_drift_is_abs_log_ratio(self):
        auditor = ShadowAuditor(
            fake_exact(LABELS, total_seconds=1.0), rate=1.0
        )
        import math

        auditor.consider(
            None, fake_response(LABELS, total_seconds=math.e)
        )
        drain(auditor)
        assert auditor.snapshot()["mean_abs_log_drift"] == pytest.approx(
            1.0, rel=1e-6
        )


class TestHealth:
    def test_healthy_until_min_samples(self):
        auditor = ShadowAuditor(
            fake_exact(LABELS),
            rate=1.0,
            min_agreement=0.9,
            min_samples=5,
        )
        wrong = dict(LABELS, kernel_a="naive")
        for _ in range(4):
            auditor.consider(None, fake_response(wrong))
        drain(auditor)
        # Four unanimous disagreements, but below the sample floor.
        assert auditor.healthy()

    def test_flips_once_agreement_falls_below_the_bar(self):
        auditor = ShadowAuditor(
            fake_exact(LABELS),
            rate=1.0,
            min_agreement=0.9,
            min_samples=5,
        )
        wrong = dict(LABELS, kernel_a="naive")
        for index in range(10):
            labels = LABELS if index % 2 else wrong
            auditor.consider(None, fake_response(labels))
        drain(auditor)
        assert auditor.agreement() == pytest.approx(0.5)
        assert not auditor.healthy()
        assert auditor.snapshot()["healthy"] is False

    def test_recovers_as_the_window_rolls(self):
        auditor = ShadowAuditor(
            fake_exact(LABELS),
            rate=1.0,
            min_agreement=0.9,
            min_samples=5,
            window=8,
            max_pending=64,
        )
        wrong = dict(LABELS, kernel_a="naive")
        for _ in range(8):
            auditor.consider(None, fake_response(wrong))
        drain(auditor)
        assert not auditor.healthy()
        for _ in range(8):
            auditor.consider(None, fake_response(LABELS))
        drain(auditor)
        assert auditor.agreement() == 1.0
        assert auditor.healthy()


class TestBackpressure:
    def test_full_queue_drops_and_counts_instead_of_blocking(self):
        metrics = ServiceMetrics()
        auditor = ShadowAuditor(
            fake_exact(LABELS), rate=1.0, max_pending=1, metrics=metrics
        )
        assert auditor.consider(None, fake_response(LABELS))
        # The thread is not running, so the second sample finds the
        # queue full — it must drop, never block the serving path.
        assert not auditor.consider(None, fake_response(LABELS))
        snapshot = auditor.snapshot()
        assert snapshot["dropped"] == 1
        assert metrics.snapshot()["counters"]["obs_audit_dropped"] == 1

    def test_audit_errors_never_escape(self):
        metrics = ServiceMetrics()
        exploding = SimpleNamespace(
            project=lambda request: (_ for _ in ()).throw(
                RuntimeError("boom")
            ),
            metrics=metrics,
        )
        auditor = ShadowAuditor(exploding, rate=1.0, metrics=metrics)
        auditor.consider(None, fake_response(LABELS))
        drain(auditor)
        assert metrics.snapshot()["counters"]["obs_audit_errors"] == 1
        assert auditor.snapshot()["audits"] == 0

    def test_stop_is_idempotent(self):
        auditor = ShadowAuditor(fake_exact(LABELS), rate=1.0)
        auditor.start()
        auditor.start()  # second start is a no-op
        auditor.stop()
        auditor.stop()
