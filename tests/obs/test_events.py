"""The structured event log: ring semantics, follower protocol, rotation."""

import json

import pytest

from repro.obs.events import EVENT_TYPES, Event, EventLog


class TestEmit:
    def test_sequences_are_monotone_from_one(self):
        log = EventLog()
        seqs = [log.emit("submit").seq for _ in range(5)]
        assert seqs == [1, 2, 3, 4, 5]
        assert log.last_seq == 5

    def test_unknown_type_fails_loudly(self):
        log = EventLog()
        with pytest.raises(ValueError, match="unknown event type"):
            log.emit("definitely-not-a-type")

    def test_every_vocabulary_type_is_accepted(self):
        log = EventLog()
        for event_type in EVENT_TYPES:
            log.emit(event_type)
        assert log.last_seq == len(EVENT_TYPES)

    def test_identity_and_attrs_carried(self):
        log = EventLog()
        event = log.emit(
            "complete",
            job_id="j1",
            trace_id="t1",
            client="alice",
            run_seconds=0.25,
        )
        assert event.job_id == "j1"
        assert event.trace_id == "t1"
        assert event.client == "alice"
        assert event.attrs == {"run_seconds": 0.25}


class TestRing:
    def test_capacity_bounds_the_ring(self):
        log = EventLog(capacity=3)
        for _ in range(10):
            log.emit("submit")
        assert len(log) == 3
        # Sequence numbers keep counting past evicted events.
        assert [e.seq for e in log.tail()] == [8, 9, 10]

    def test_tail_after_is_the_follower_protocol(self):
        log = EventLog()
        for _ in range(6):
            log.emit("submit")
        first = log.tail(limit=3, after=0)
        assert [e.seq for e in first] == [4, 5, 6]
        # A follower passes the last seen seq back; nothing re-delivers.
        assert log.tail(after=6) == []
        log.emit("complete")
        (fresh,) = log.tail(after=6)
        assert fresh.type == "complete"

    def test_tail_filters_by_type(self):
        log = EventLog()
        log.emit("submit")
        log.emit("fail")
        log.emit("submit")
        failures = log.tail(types=("fail",))
        assert [e.type for e in failures] == ["fail"]

    def test_counts_by_type(self):
        log = EventLog()
        log.emit("submit")
        log.emit("submit")
        log.emit("fail")
        assert log.counts() == {"submit": 2, "fail": 1}


class TestRoundTrip:
    def test_event_dict_round_trip(self):
        log = EventLog()
        event = log.emit("audit", job_id="j", agreed=True)
        assert Event.from_dict(event.to_dict()) == event

    def test_sparse_fields_omitted(self):
        log = EventLog()
        record = log.emit("submit").to_dict()
        assert "job_id" not in record
        assert "client" not in record
        assert "attrs" not in record


class TestJsonlSink:
    def test_appends_one_json_line_per_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("submit", job_id="j1")
        log.emit("complete", job_id="j1")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        rows = [json.loads(line) for line in lines]
        assert [row["type"] for row in rows] == ["submit", "complete"]

    def test_size_rotation_shifts_files(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path, max_bytes=1024, rotations=2)
        # Fat events so a handful of emits crosses the 1 KiB threshold
        # several times over.
        blob = "x" * 512
        for _ in range(12):
            log.emit("submit", note=blob)
        assert path.exists()
        assert path.with_name("events.jsonl.1").exists()
        assert path.with_name("events.jsonl.2").exists()
        # Bounded: nothing beyond the configured rotation count.
        assert not path.with_name("events.jsonl.3").exists()

    def test_reopens_existing_file_and_keeps_rotating(self, tmp_path):
        path = tmp_path / "events.jsonl"
        EventLog(path, max_bytes=1024).emit("submit", note="x" * 200)
        log = EventLog(path, max_bytes=1024, rotations=2)
        for _ in range(8):
            log.emit("submit", note="y" * 512)
        assert path.with_name("events.jsonl.1").exists()

    def test_rejects_degenerate_limits(self, tmp_path):
        with pytest.raises(ValueError):
            EventLog(capacity=0)
        with pytest.raises(ValueError):
            EventLog(tmp_path / "e.jsonl", max_bytes=10)
