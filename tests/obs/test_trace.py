"""Tests for the hierarchical tracer and its exports."""

import json
import threading

from repro.obs.trace import (
    CHROME_EVENT_KEYS,
    Tracer,
    current,
    install,
    span,
    tracing,
    uninstall,
)


class TestTracerRecording:
    def test_records_name_category_and_attrs(self):
        tracer = Tracer()
        with tracer.span("search", category="service", kernel="k") as h:
            h.set(explored=40)
        (recorded,) = tracer.spans()
        assert recorded.name == "search"
        assert recorded.category == "service"
        assert recorded.attrs == {"kernel": "k", "explored": 40}
        assert recorded.duration >= 0.0

    def test_nesting_sets_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["outer"].parent_id is None
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["sibling"].parent_id == by_name["outer"].span_id

    def test_span_recorded_even_when_body_raises(self):
        tracer = Tracer()
        try:
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert len(tracer) == 1
        # The failed span must not corrupt nesting for the next one.
        with tracer.span("after"):
            pass
        assert tracer.spans()[-1].parent_id is None

    def test_threads_record_on_their_own_lanes(self):
        tracer = Tracer()
        # Hold all threads alive together: the OS reuses thread ids of
        # finished threads, which would collapse the lanes.
        barrier = threading.Barrier(4)

        def work(index):
            with tracer.span("worker", index=index):
                with tracer.span("step"):
                    barrier.wait(timeout=10)

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = tracer.spans()
        assert len(spans) == 8
        workers = [s for s in spans if s.name == "worker"]
        assert all(s.parent_id is None for s in workers)
        steps = {s.parent_id for s in spans if s.name == "step"}
        assert steps == {s.span_id for s in workers}
        assert len({s.thread_id for s in workers}) == 4

    def test_clear_and_len(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert len(tracer) == 1
        tracer.clear()
        assert len(tracer) == 0


class TestExports:
    def _traced(self):
        tracer = Tracer()
        with tracer.span("project", program="p"):
            with tracer.span("search", kernel="k"):
                pass
        return tracer

    def test_jsonl_one_object_per_span(self):
        tracer = self._traced()
        lines = tracer.to_jsonl().splitlines()
        assert len(lines) == 2
        rows = [json.loads(line) for line in lines]
        assert {row["name"] for row in rows} == {"project", "search"}

    def test_write_jsonl(self, tmp_path):
        path = self._traced().write_jsonl(tmp_path / "trace.jsonl")
        content = path.read_text()
        assert content.endswith("\n")
        assert len(content.splitlines()) == 2

    def test_chrome_trace_has_required_keys(self):
        doc = self._traced().chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert len(events) == 2
        for event in events:
            for key in CHROME_EVENT_KEYS:
                assert key in event, key
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0

    def test_chrome_trace_keeps_hierarchy_in_args(self):
        events = self._traced().chrome_trace()["traceEvents"]
        by_name = {e["name"]: e for e in events}
        assert (
            by_name["search"]["args"]["parent_id"]
            == by_name["project"]["args"]["span_id"]
        )

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        path = self._traced().write_chrome_trace(tmp_path / "t.json")
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == 2


class TestAmbientTracing:
    def test_disabled_by_default_and_null_span_is_shared(self):
        assert current() is None
        first = span("anything", attr=1)
        second = span("else")
        assert first is second  # the shared no-op
        with first as handle:
            handle.set(ignored=True)  # must be a silent no-op

    def test_install_uninstall(self):
        tracer = Tracer()
        install(tracer)
        try:
            assert current() is tracer
            with span("recorded"):
                pass
        finally:
            uninstall()
        assert current() is None
        assert len(tracer) == 1

    def test_tracing_scopes_and_restores(self):
        with tracing() as tracer:
            assert current() is tracer
            with span("inside"):
                pass
        assert current() is None
        assert [s.name for s in tracer.spans()] == ["inside"]

    def test_tracing_uses_the_caller_tracer_even_when_empty(self):
        # Regression: Tracer defines __len__, so an empty tracer is
        # falsy — `tracer or Tracer()` would silently swap it out.
        mine = Tracer()
        with tracing(mine) as active:
            assert active is mine
            with span("kept"):
                pass
        assert len(mine) == 1

    def test_tracing_nests_and_restores_previous(self):
        outer = Tracer()
        inner = Tracer()
        with tracing(outer):
            with tracing(inner):
                with span("deep"):
                    pass
            assert current() is outer
        assert len(inner) == 1
        assert len(outer) == 0


class TestScopedTracing:
    """The thread-scoped layer the daemon's workers trace jobs under."""

    def test_scoped_tracer_captures_spans(self):
        from repro.obs.trace import scoped_tracing

        with scoped_tracing() as tracer:
            with span("job", category="daemon"):
                with span("project"):
                    pass
        names = {s.name for s in tracer.spans()}
        assert names == {"job", "project"}

    def test_fresh_empty_tracer_is_not_skipped(self):
        # Regression: a Tracer with zero spans is falsy (__len__ == 0);
        # the scope lookup must use an identity check, not truthiness,
        # or the very first span of every scoped job is lost.
        from repro.obs.trace import scoped_tracing

        tracer = Tracer()
        assert not tracer  # the trap this test pins down
        with scoped_tracing(tracer):
            with span("first"):
                pass
        assert [s.name for s in tracer.spans()] == ["first"]

    def test_scope_wins_over_ambient(self):
        from repro.obs.trace import scoped_tracing

        ambient = Tracer()
        with tracing(ambient):
            with scoped_tracing() as scoped:
                with span("routed"):
                    pass
            with span("ambient-again"):
                pass
        assert [s.name for s in scoped.spans()] == ["routed"]
        assert [s.name for s in ambient.spans()] == ["ambient-again"]

    def test_scope_is_invisible_to_other_threads(self):
        from repro.obs.trace import scoped_tracing

        ready = threading.Event()
        release = threading.Event()
        scoped = Tracer()
        other = Tracer()

        def scoped_worker():
            with scoped_tracing(scoped):
                ready.set()
                release.wait(5)
                with span("scoped-span"):
                    pass

        def other_worker():
            ready.wait(5)
            # A live scope elsewhere must not leak here: with no
            # ambient tracer this span is a no-op.
            with span("unscoped-span"):
                pass
            with scoped_tracing(other):
                with span("other-span"):
                    pass
            release.set()

        threads = [
            threading.Thread(target=scoped_worker),
            threading.Thread(target=other_worker),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10)
        assert [s.name for s in scoped.spans()] == ["scoped-span"]
        assert [s.name for s in other.spans()] == ["other-span"]

    def test_concurrent_scopes_record_disjoint_traces(self):
        from repro.obs.trace import scoped_tracing

        tracers = [Tracer() for _ in range(4)]
        barrier = threading.Barrier(4)

        def worker(index):
            with scoped_tracing(tracers[index]):
                barrier.wait(5)
                with span("job", job=index):
                    with span("inner", job=index):
                        pass

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10)
        for index, tracer in enumerate(tracers):
            spans = tracer.spans()
            assert len(spans) == 2
            assert all(s.attrs["job"] == index for s in spans)

    def test_scopes_nest_and_restore(self):
        from repro.obs.trace import scope_active, scoped_tracing

        assert not scope_active()
        with scoped_tracing() as outer:
            assert scope_active()
            with scoped_tracing() as inner:
                with span("deep"):
                    pass
            with span("shallow"):
                pass
        assert not scope_active()
        assert [s.name for s in inner.spans()] == ["deep"]
        assert [s.name for s in outer.spans()] == ["shallow"]

    def test_disabled_path_stays_null_span(self):
        from repro.obs.trace import _NULL_SPAN

        assert span("anything") is _NULL_SPAN
