"""Histogram percentiles: exact totals, bounded window, nearest rank."""

import math
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import Histogram, nearest_rank

finite = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestNearestRank:
    def test_conventional_examples(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert nearest_rank(values, 0.5) == 2.0
        assert nearest_rank(values, 0.25) == 1.0
        assert nearest_rank(values, 1.0) == 4.0

    def test_rejects_empty_and_bad_quantiles(self):
        with pytest.raises(ValueError):
            nearest_rank([], 0.5)
        with pytest.raises(ValueError):
            nearest_rank([1.0], 0.0)
        with pytest.raises(ValueError):
            nearest_rank([1.0], 1.5)

    @given(st.lists(finite, min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_result_is_always_an_observed_value(self, values):
        for quantile in (0.5, 0.95, 0.99):
            assert nearest_rank(values, quantile) in values


class TestHistogram:
    def test_exact_count_sum_min_max(self):
        histogram = Histogram()
        for value in (3.0, 1.0, 2.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == 6.0
        assert snap["min"] == 1.0
        assert snap["max"] == 3.0
        assert snap["p50"] == 2.0

    def test_empty_snapshot(self):
        assert Histogram().snapshot() == {"count": 0, "sum": 0.0}

    def test_rejects_non_finite(self):
        histogram = Histogram()
        for bad in (math.nan, math.inf, -math.inf):
            with pytest.raises(ValueError):
                histogram.observe(bad)

    def test_window_is_bounded_but_totals_are_exact(self):
        histogram = Histogram(capacity=8)
        for index in range(100):
            histogram.observe(float(index))
        snap = histogram.snapshot()
        assert snap["count"] == 100
        assert snap["sum"] == sum(range(100))
        assert snap["min"] == 0.0
        assert snap["max"] == 99.0
        # Percentiles come from the last `capacity` observations.
        assert snap["p50"] >= 92.0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Histogram(capacity=0)

    def test_percentile_matches_nearest_rank(self):
        histogram = Histogram()
        values = [5.0, 1.0, 9.0, 3.0, 7.0]
        for value in values:
            histogram.observe(value)
        for quantile in (0.5, 0.95, 0.99):
            assert histogram.percentile(quantile) == nearest_rank(
                values, quantile
            )

    @given(st.lists(finite, min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_totals_equal_sum_of_observations(self, values):
        histogram = Histogram(capacity=16)
        for value in values:
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == len(values)
        assert snap["sum"] == pytest.approx(sum(values))
        assert snap["min"] == min(values)
        assert snap["max"] == max(values)

    def test_thread_safety_exact_totals(self):
        histogram = Histogram(capacity=32)

        def work():
            for _ in range(1000):
                histogram.observe(1.0)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert histogram.count == 8000
        assert histogram.sum == 8000.0
