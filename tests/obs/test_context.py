"""Trace-context propagation and cross-process trace stitching."""

import pytest

from repro.obs.context import (
    TraceContext,
    build_job_trace,
    lifecycle_event,
    new_trace_id,
    validate_chrome_trace,
)
from repro.obs.trace import Tracer


class TestTraceContext:
    def test_new_trace_ids_are_unique_and_short_enough(self):
        ids = {new_trace_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(len(tid) <= 64 for tid in ids)

    def test_round_trip(self):
        context = TraceContext(trace_id="abc123", client_submitted=17.5)
        assert TraceContext.from_dict(context.to_dict()) == context

    def test_client_submitted_is_optional_on_the_wire(self):
        context = TraceContext(trace_id="abc123")
        record = context.to_dict()
        assert "client_submitted" not in record
        assert TraceContext.from_dict(record) == context


class TestLifecycleEvent:
    def test_is_a_complete_event_in_microseconds(self):
        event = lifecycle_event("queue-dwell", 10.0, 10.5, "t1", 42)
        assert event["ph"] == "X"
        assert event["ts"] == pytest.approx(10.0 * 1e6)
        assert event["dur"] == pytest.approx(0.5 * 1e6)
        assert event["pid"] == 42
        assert event["args"]["trace_id"] == "t1"

    def test_negative_interval_clamps_to_zero_duration(self):
        # Client and daemon clocks may disagree; a skewed client clock
        # must not produce a negative-duration span.
        event = lifecycle_event("client-submit", 11.0, 10.0, "t1", 1)
        assert event["dur"] == 0.0


class TestBuildJobTrace:
    def _traced(self):
        tracer = Tracer()
        with tracer.span("job", category="daemon"):
            with tracer.span("project"):
                pass
        return tracer

    def test_stitches_lifecycle_and_worker_spans(self):
        tracer = self._traced()
        document = build_job_trace(
            trace_id="tid1",
            job_id="job1",
            tracer=tracer,
            pid=7,
            submitted=tracer.wall_epoch - 0.2,
            started=tracer.wall_epoch,
            finished=tracer.wall_epoch + 1.0,
            client_submitted=tracer.wall_epoch - 0.5,
        )
        names = [event["name"] for event in document["traceEvents"]]
        assert names[:2] == ["client-submit", "queue-dwell"]
        assert "job" in names and "project" in names
        assert document["trace_id"] == "tid1"
        assert document["job_id"] == "job1"
        assert validate_chrome_trace(document) == 4

    def test_events_sorted_by_absolute_timestamp(self):
        tracer = self._traced()
        document = build_job_trace(
            trace_id="tid1",
            job_id="job1",
            tracer=tracer,
            pid=7,
            submitted=tracer.wall_epoch - 0.2,
            started=tracer.wall_epoch - 0.1,
            client_submitted=tracer.wall_epoch - 0.5,
        )
        stamps = [event["ts"] for event in document["traceEvents"]]
        assert stamps == sorted(stamps)

    def test_every_event_tagged_with_the_trace_id(self):
        tracer = self._traced()
        document = build_job_trace(
            trace_id="tid9",
            job_id="job9",
            tracer=tracer,
            pid=7,
            submitted=tracer.wall_epoch,
        )
        assert all(
            event["args"]["trace_id"] == "tid9"
            for event in document["traceEvents"]
        )

    def test_worker_spans_rebased_to_wall_clock(self):
        tracer = self._traced()
        document = build_job_trace(
            trace_id="t",
            job_id="j",
            tracer=tracer,
            pid=7,
            submitted=tracer.wall_epoch,
        )
        job = next(
            event
            for event in document["traceEvents"]
            if event["name"] == "job"
        )
        # Span timestamps become absolute unix microseconds.
        assert job["ts"] >= tracer.wall_epoch * 1e6

    def test_nesting_survives_the_rebase(self):
        tracer = self._traced()
        document = build_job_trace(
            trace_id="t",
            job_id="j",
            tracer=tracer,
            pid=7,
            submitted=tracer.wall_epoch,
        )
        by_name = {
            event["name"]: event for event in document["traceEvents"]
        }
        assert (
            by_name["project"]["args"]["parent_id"]
            == by_name["job"]["args"]["span_id"]
        )


class TestValidateChromeTrace:
    def test_rejects_empty_documents(self):
        with pytest.raises(ValueError, match="no traceEvents"):
            validate_chrome_trace({"traceEvents": []})

    def test_rejects_missing_keys(self):
        with pytest.raises(ValueError, match="missing"):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "X"}]}
            )

    def test_rejects_trace_id_mismatch(self):
        tracer = Tracer()
        with tracer.span("job"):
            pass
        document = build_job_trace(
            trace_id="right",
            job_id="j",
            tracer=tracer,
            pid=1,
            submitted=tracer.wall_epoch,
        )
        document["trace_id"] = "wrong"
        with pytest.raises(ValueError, match="mismatch"):
            validate_chrome_trace(document)
