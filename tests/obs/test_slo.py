"""SLO monitors: burn-rate arithmetic, window pruning, verdicts."""

import pytest

from repro.obs.slo import SLOConfig, SLOMonitor


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now


class TestConfig:
    def test_defaults_validate(self):
        config = SLOConfig()
        assert config.window_seconds == 300.0
        assert config.to_dict()["error_budget"] == 0.01

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window_seconds": 0},
            {"latency_target_seconds": -1},
            {"latency_objective": 1.0},
            {"error_budget": 0.0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SLOConfig(**kwargs)


class TestBurnRates:
    def _monitor(self, **kwargs):
        clock = FakeClock()
        config = SLOConfig(
            window_seconds=100.0,
            latency_target_seconds=1.0,
            latency_objective=0.9,
            error_budget=0.1,
            **kwargs,
        )
        return SLOMonitor(config, clock=clock), clock

    def test_error_burn_of_exactly_one_at_budget(self):
        monitor, _ = self._monitor()
        for index in range(10):
            monitor.observe_job(0.1, ok=index != 0)  # 1/10 errors
        snapshot = monitor.snapshot()
        assert snapshot["error_rate"] == pytest.approx(0.1)
        assert snapshot["error_burn_rate"] == pytest.approx(1.0)
        assert snapshot["ok"] is True
        assert monitor.healthy()

    def test_error_burn_above_one_flips_the_verdict(self):
        monitor, _ = self._monitor()
        for index in range(10):
            monitor.observe_job(0.1, ok=index >= 3)  # 3/10 errors
        snapshot = monitor.snapshot()
        assert snapshot["error_burn_rate"] == pytest.approx(3.0)
        assert snapshot["ok"] is False
        assert not monitor.healthy()

    def test_latency_burn_counts_slow_jobs(self):
        monitor, _ = self._monitor()
        # 2/10 slower than the 1 s target against a 10% allowance.
        for index in range(10):
            monitor.observe_job(2.0 if index < 2 else 0.1)
        snapshot = monitor.snapshot()
        assert snapshot["slow_jobs"] == 2
        assert snapshot["slow_rate"] == pytest.approx(0.2)
        assert snapshot["latency_burn_rate"] == pytest.approx(2.0)
        assert snapshot["ok"] is False

    def test_empty_window_is_healthy(self):
        monitor, _ = self._monitor()
        snapshot = monitor.snapshot()
        assert snapshot["window_jobs"] == 0
        assert snapshot["error_burn_rate"] == 0.0
        assert snapshot["p95_seconds"] is None
        assert snapshot["ok"] is True


class TestWindowPruning:
    def test_old_observations_age_out(self):
        clock = FakeClock()
        monitor = SLOMonitor(
            SLOConfig(window_seconds=100.0), clock=clock
        )
        monitor.observe_job(0.1, ok=False)
        assert monitor.snapshot()["errors"] == 1
        clock.now += 101.0
        snapshot = monitor.snapshot()
        assert snapshot["window_jobs"] == 0
        assert snapshot["errors"] == 0

    def test_burn_recovers_as_errors_age_out(self):
        clock = FakeClock()
        monitor = SLOMonitor(
            SLOConfig(window_seconds=100.0, error_budget=0.1),
            clock=clock,
        )
        monitor.observe_job(0.1, ok=False)
        clock.now += 50.0
        for _ in range(9):
            monitor.observe_job(0.1)
        assert monitor.snapshot()["error_burn_rate"] == pytest.approx(1.0)
        clock.now += 51.0  # the error falls off; the 9 good jobs remain
        assert monitor.snapshot()["error_burn_rate"] == 0.0
        assert monitor.healthy()


class TestPercentiles:
    def test_nearest_rank_percentiles(self):
        monitor = SLOMonitor(
            SLOConfig(window_seconds=1e6), clock=FakeClock()
        )
        for value in range(1, 101):
            monitor.observe_job(value / 100.0)
        snapshot = monitor.snapshot()
        assert snapshot["p50_seconds"] == pytest.approx(0.50)
        assert snapshot["p95_seconds"] == pytest.approx(0.95)
        assert snapshot["p99_seconds"] == pytest.approx(0.99)
