"""Daemon HTTP lifecycle tests: protocol round trip, rate limiting,
concurrent clients, cancellation, metrics, drain.

The round-trip test is the daemon's core contract: a batch submitted
over HTTP must produce the very records ``run_batch`` writes in-process
— byte-identical after stripping the two volatile fields (``seconds``,
wall time; ``cached``, which depends on cache history).
"""

import json
import threading
from contextlib import contextmanager

import pytest

from repro.daemon.client import DaemonClient, DaemonError
from repro.daemon.server import (
    DaemonApp,
    DaemonServer,
    read_endpoint_file,
    write_endpoint_file,
)
from repro.gpu.arch import quadro_fx_5600
from repro.harness.context import ExperimentContext
from repro.obs.prometheus import parse_exposition
from repro.service.engine import ProjectionEngine
from repro.service.jobs import run_batch

REQUESTS = [
    {"workload": "VectorAdd", "dataset": "4M"},
    {"workload": "VectorAdd", "dataset": "16M"},
    {"workload": "HotSpot", "dataset": "64 x 64", "iterations": 3},
    {"workload": "NoSuchWorkload", "dataset": "x"},  # isolated error
]

#: Fields that legitimately differ between runs of identical work.
VOLATILE = ("seconds", "cached")


def canon(record):
    return {k: v for k, v in record.items() if k not in VOLATILE}


@contextmanager
def running_daemon(state_dir, **app_options):
    app = DaemonApp(state_dir, **app_options)
    server = DaemonServer(app)
    server.serve_in_thread()
    try:
        yield app, server, DaemonClient(base_url=server.url)
    finally:
        server.stop()


class TestRoundTrip:
    def test_batch_matches_in_process_run_batch(self, tmp_path):
        requests_path = tmp_path / "requests.jsonl"
        with open(requests_path, "w", encoding="utf-8") as fh:
            for record in REQUESTS:
                fh.write(json.dumps(record) + "\n")
        ctx = ExperimentContext(seed=2013)
        engine = ProjectionEngine(
            arch=quadro_fx_5600(), bus=ctx.bus_model, cache=None
        )
        direct = run_batch(requests_path, engine=engine)
        direct_rows = [r.to_dict() for r in direct.records]

        with running_daemon(tmp_path / "state") as (_, _, client):
            submitted = client.submit("batch", {"requests": REQUESTS})
            body = client.wait(submitted["id"], timeout=120)
        assert body["state"] == "done"
        daemon_rows = body["result"]["records"]

        assert len(daemon_rows) == len(direct_rows)
        for daemon_row, direct_row in zip(daemon_rows, direct_rows):
            assert json.dumps(
                canon(daemon_row), sort_keys=True
            ) == json.dumps(canon(direct_row), sort_keys=True)
        summary = body["result"]["summary"]
        assert summary["total"] == len(REQUESTS)
        assert summary["ok"] == direct.ok_count
        assert summary["errors"] == direct.error_count

    def test_projection_round_trip(self, tmp_path):
        with running_daemon(tmp_path / "state") as (_, _, client):
            submitted = client.submit(
                "projection", {"workload": "VectorAdd", "dataset": "4M"}
            )
            body = client.wait(submitted["id"], timeout=60)
        assert body["state"] == "done"
        record = body["result"]["record"]
        assert record["ok"]
        assert record["total_seconds"] > 0
        assert record["projection"]["kernel_seconds"] > 0

    def test_results_survive_restart(self, tmp_path):
        state = tmp_path / "state"
        with running_daemon(state) as (_, _, client):
            submitted = client.submit(
                "projection", {"workload": "VectorAdd", "dataset": "4M"}
            )
            first = client.wait(submitted["id"], timeout=60)
        with running_daemon(state) as (_, _, client):
            again = client.result(submitted["id"])
        assert again == first


class TestValidation:
    def test_bad_submission_is_400_with_structure(self, tmp_path):
        with running_daemon(tmp_path / "state") as (_, _, client):
            with pytest.raises(DaemonError) as excinfo:
                client.submit("mystery", {})
        assert excinfo.value.status == 400
        assert excinfo.value.body["field"] == "kind"

    def test_unknown_job_is_404(self, tmp_path):
        with running_daemon(tmp_path / "state") as (_, _, client):
            with pytest.raises(DaemonError) as excinfo:
                client.job("nope")
        assert excinfo.value.status == 404

    def test_pending_result_is_409_with_state(self, tmp_path):
        with running_daemon(
            tmp_path / "state", workers=1
        ) as (app, _, client):
            # Stall the single worker so the probe job stays queued.
            blocker = client.submit(
                "batch",
                {"requests": [{"workload": "VectorAdd"}] * 3},
            )
            probe = client.submit(
                "projection", {"workload": "VectorAdd", "dataset": "4M"}
            )
            try:
                client.result(probe["id"])
            except DaemonError as exc:
                assert exc.status == 409
                assert exc.body["state"] in ("queued", "running")
            else:
                # Scheduler can be fast enough to finish both; fine.
                pass
            client.wait(blocker["id"], timeout=60)
            client.wait(probe["id"], timeout=60)

    def test_bad_workload_fails_job_with_structure(self, tmp_path):
        with running_daemon(tmp_path / "state") as (_, _, client):
            submitted = client.submit(
                "projection", {"workload": "NoSuchWorkload"}
            )
            body = client.wait(submitted["id"], timeout=30)
        assert body["state"] == "failed"
        assert body["error"]["field"] == "workload"
        assert "hint" in body["error"]


class TestRateLimiting:
    def test_burst_exhaustion_is_429(self, tmp_path):
        with running_daemon(
            tmp_path / "state", rate=0.001, burst=2
        ) as (_, _, client):
            client.submit("projection", {"workload": "VectorAdd"})
            client.submit("projection", {"workload": "VectorAdd"})
            with pytest.raises(DaemonError) as excinfo:
                client.submit("projection", {"workload": "VectorAdd"})
        assert excinfo.value.status == 429
        body = excinfo.value.body
        assert body["retry_after_seconds"] > 0
        assert "rate limit" in body["error"]

    def test_limits_are_per_client(self, tmp_path):
        with running_daemon(
            tmp_path / "state", rate=0.001, burst=1
        ) as (_, _, client):
            client.submit(
                "projection", {"workload": "VectorAdd"}, client="alice"
            )
            with pytest.raises(DaemonError):
                client.submit(
                    "projection", {"workload": "VectorAdd"}, client="alice"
                )
            # bob's bucket is untouched.
            client.submit(
                "projection", {"workload": "VectorAdd"}, client="bob"
            )

    def test_rejections_are_counted(self, tmp_path):
        with running_daemon(
            tmp_path / "state", rate=0.001, burst=1
        ) as (app, _, client):
            client.submit("projection", {"workload": "VectorAdd"})
            with pytest.raises(DaemonError):
                client.submit("projection", {"workload": "VectorAdd"})
            snapshot = app.engine.metrics.snapshot()
        assert snapshot["counters"]["rate_limited"] == 1


class TestConcurrentClients:
    def test_many_clients_all_complete(self, tmp_path):
        jobs_per_client = 3
        clients = ("alice", "bob", "carol")
        with running_daemon(
            tmp_path / "state", workers=4
        ) as (_, _, client):
            ids = []
            lock = threading.Lock()

            def submit_for(name):
                for _ in range(jobs_per_client):
                    submitted = client.submit(
                        "projection",
                        {"workload": "VectorAdd", "dataset": "4M"},
                        client=name,
                    )
                    with lock:
                        ids.append(submitted["id"])

            threads = [
                threading.Thread(target=submit_for, args=(name,))
                for name in clients
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            bodies = [client.wait(i, timeout=120) for i in ids]
            status = client.status()
        assert len(ids) == len(clients) * jobs_per_client
        assert all(body["state"] == "done" for body in bodies)
        assert status["queue"]["done"] == len(ids)
        # Identical payloads: every record is byte-identical mod volatile.
        records = [body["result"]["record"] for body in bodies]
        baseline = canon(records[0])
        assert all(canon(record) == baseline for record in records)


class TestCancellation:
    def test_cancel_queued_job(self, tmp_path):
        with running_daemon(
            tmp_path / "state", workers=1
        ) as (_, _, client):
            blocker = client.submit(
                "batch", {"requests": [{"workload": "VectorAdd"}] * 2}
            )
            victim = client.submit(
                "projection", {"workload": "VectorAdd"}
            )
            status = client.cancel(victim["id"])
            # Either we won the race (cancelled) or it already ran.
            assert status["state"] in ("cancelled", "running", "done")
            client.wait(blocker["id"], timeout=60)
            final = client.wait(victim["id"], timeout=60)
            assert final["state"] in ("cancelled", "done")


class TestObservability:
    def test_metrics_endpoint_parses_and_has_gauges(self, tmp_path):
        with running_daemon(tmp_path / "state") as (_, _, client):
            submitted = client.submit(
                "projection", {"workload": "VectorAdd", "dataset": "4M"}
            )
            client.wait(submitted["id"], timeout=60)
            text = client.metrics_text()
        samples = {name: value for name, _, value in parse_exposition(text)}
        assert samples["repro_jobs_submitted_total"] == 1
        assert samples["repro_jobs_completed_total"] == 1
        assert "repro_queue_depth" in samples
        assert "repro_jobs_running" in samples
        assert "repro_uptime_seconds" in samples

    def test_queue_wait_histogram_feeds_timers(self, tmp_path):
        with running_daemon(tmp_path / "state") as (app, _, client):
            submitted = client.submit(
                "projection", {"workload": "VectorAdd", "dataset": "4M"}
            )
            client.wait(submitted["id"], timeout=60)
            snapshot = app.engine.metrics.snapshot()
        assert "queue_wait" in snapshot["timers"]
        assert "job_run" in snapshot["timers"]
        assert snapshot["timers"]["job_run"]["calls"] == 1

    def test_health_version_status(self, tmp_path):
        with running_daemon(tmp_path / "state") as (_, server, client):
            assert client.healthy()
            version = client.version()
            assert version["protocol"] == 1
            status = client.status()
            assert status["workers"] == 2
            assert status["draining"] is False
            write_endpoint_file(server.app.state_dir, server)
            record = read_endpoint_file(server.app.state_dir)
            assert record["url"] == server.url
            # state_dir-based discovery reaches the same daemon.
            discovered = DaemonClient(state_dir=server.app.state_dir)
            assert discovered.healthy()


class TestDrain:
    def test_draining_rejects_submissions_with_503(self, tmp_path):
        app = DaemonApp(tmp_path / "state")
        server = DaemonServer(app)
        server.serve_in_thread()
        client = DaemonClient(base_url=server.url)
        try:
            assert server.stop() is True
            status, body = app.submit(
                {"kind": "projection", "payload": {}}
            )
            assert status == 503
            assert "draining" in body["error"]
        finally:
            server.httpd.server_close()

    def test_clean_drain_with_idle_workers(self, tmp_path):
        with running_daemon(tmp_path / "state") as (app, server, client):
            submitted = client.submit(
                "projection", {"workload": "VectorAdd", "dataset": "4M"}
            )
            client.wait(submitted["id"], timeout=60)
        # running_daemon's finally ran server.stop(); workers joined.
        assert app.queue.counts()["running"] == 0
