"""Daemon observability v2: traces, events, SLO, audit-driven health.

The headline test here is the concurrency contract: a daemon with four
workers running a mix of exact and surrogate projection jobs must
produce one well-formed Chrome trace *per request* — every span tagged
with that job's trace_id, parent/child nesting intact, and no span from
one request leaking into another's trace.
"""

import json
from types import SimpleNamespace

import pytest

from repro.daemon.client import DaemonError
from repro.daemon.protocol import Job
from repro.daemon.server import DaemonApp
from repro.gpu.arch import quadro_fx_5600
from repro.obs.context import validate_chrome_trace
from repro.obs.prometheus import parse_exposition
from repro.obs.slo import SLOConfig
from repro.surrogate.dataset import generate_training_set
from repro.surrogate.model import train_surrogate
from repro.surrogate.store import save_model
from repro.transform.space import TransformationSpace
from repro.workloads.registry import get_workload

from tests.daemon.test_server import running_daemon

PAYLOAD = {"workload": "VectorAdd", "dataset": "4M"}


@pytest.fixture(scope="module")
def model_path(tmp_path_factory):
    training = generate_training_set(
        quadro_fx_5600(),
        TransformationSpace.default(),
        workloads=tuple(
            get_workload(name)
            for name in ("HotSpot", "VectorAdd", "SRAD")
        ),
        sizes_per_kernel=12,
    )
    model = train_surrogate(
        training, quadro_fx_5600(), TransformationSpace.default()
    )
    return save_model(
        model, tmp_path_factory.mktemp("model") / "surrogate.npz"
    )


class TestTraceEndpoint:
    def test_traced_job_yields_a_validated_chrome_trace(self, tmp_path):
        with running_daemon(tmp_path / "state") as (_, _, client):
            submitted = client.submit(
                "projection", dict(PAYLOAD), trace=True
            )
            assert submitted["trace_id"]
            client.wait(submitted["id"], timeout=120)
            document = client.trace(submitted["id"])
        assert document["trace_id"] == submitted["trace_id"]
        assert validate_chrome_trace(document) >= 3
        names = [event["name"] for event in document["traceEvents"]]
        # Client-submit and queue-dwell stitched before worker spans.
        assert "client-submit" in names
        assert "queue-dwell" in names
        assert "job" in names
        assert "project" in names

    def test_trace_nesting_survives_the_daemon(self, tmp_path):
        with running_daemon(tmp_path / "state") as (_, _, client):
            submitted = client.submit(
                "projection", dict(PAYLOAD), trace=True
            )
            client.wait(submitted["id"], timeout=120)
            document = client.trace(submitted["id"])
        by_name = {
            event["name"]: event for event in document["traceEvents"]
        }
        job = by_name["job"]
        assert "parent_id" not in job["args"]
        assert (
            by_name["project"]["args"]["parent_id"]
            == job["args"]["span_id"]
        )

    def test_client_trace_id_propagates_end_to_end(self, tmp_path):
        with running_daemon(tmp_path / "state") as (_, _, client):
            submitted = client.submit(
                "projection",
                dict(PAYLOAD),
                trace=True,
                trace_id="my-request-001",
            )
            assert submitted["trace_id"] == "my-request-001"
            client.wait(submitted["id"], timeout=120)
            document = client.trace(submitted["id"])
            events = client.events(limit=500)["events"]
        assert document["trace_id"] == "my-request-001"
        assert all(
            event["args"]["trace_id"] == "my-request-001"
            for event in document["traceEvents"]
        )
        lifecycle = [
            event["type"]
            for event in events
            if event.get("trace_id") == "my-request-001"
        ]
        assert lifecycle == ["submit", "dequeue", "start", "complete"]

    def test_untraced_job_404s_with_a_hint(self, tmp_path):
        with running_daemon(tmp_path / "state") as (_, _, client):
            submitted = client.submit("projection", dict(PAYLOAD))
            client.wait(submitted["id"], timeout=120)
            with pytest.raises(DaemonError) as excinfo:
                client.trace(submitted["id"])
        assert excinfo.value.status == 404
        assert "not traced" in str(excinfo.value)

    def test_unknown_job_404s(self, tmp_path):
        with running_daemon(tmp_path / "state") as (_, _, client):
            with pytest.raises(DaemonError) as excinfo:
                client.trace("nope")
        assert excinfo.value.status == 404

    def test_pending_job_409s(self, tmp_path):
        # Handler-level: a queued traced job (no scheduler running yet)
        # answers 409 with its current state.
        app = DaemonApp(tmp_path / "state", workers=1)
        status, body = app.submit(
            {"kind": "projection", "payload": dict(PAYLOAD),
             "trace": True}
        )
        assert status == 200
        status, body = app.job_trace(body["id"])
        assert status == 409
        assert body["state"] == "queued"

    def test_bad_trace_context_rejected(self, tmp_path):
        app = DaemonApp(tmp_path / "state", workers=1)
        status, body = app.submit(
            {"kind": "projection", "payload": dict(PAYLOAD),
             "trace_id": 123}
        )
        assert status == 400
        assert body["field"] == "trace_id"
        status, body = app.submit(
            {"kind": "projection", "payload": dict(PAYLOAD),
             "trace_id": "x" * 65}
        )
        assert status == 400
        status, body = app.submit(
            {"kind": "projection", "payload": dict(PAYLOAD),
             "client_submitted": "yesterday"}
        )
        assert status == 400
        assert body["field"] == "client_submitted"


class TestConcurrentTraces:
    def test_four_workers_mixed_serving_one_trace_per_request(
        self, tmp_path, model_path
    ):
        """The no-leakage contract under real worker concurrency."""
        with running_daemon(
            tmp_path / "state",
            workers=4,
            surrogate_model=model_path,
            audit_rate=0,
        ) as (_, _, client):
            submissions = []
            for index in range(8):
                mode = "exact" if index % 2 else "surrogate"
                submitted = client.submit(
                    "projection",
                    dict(PAYLOAD, mode=mode),
                    client=f"client-{index % 3}",
                    trace=True,
                )
                submissions.append((submitted, mode))
            documents = []
            for submitted, mode in submissions:
                client.wait(submitted["id"], timeout=300)
                documents.append(
                    (client.trace(submitted["id"]), submitted, mode)
                )

        for document, submitted, mode in documents:
            validate_chrome_trace(document)
            assert document["trace_id"] == submitted["trace_id"]
            assert document["job_id"] == submitted["id"]
            # Every span tagged with this request's trace id — the
            # validator enforces it, but the point of this test is
            # leakage, so assert it explicitly.
            assert all(
                event["args"]["trace_id"] == submitted["trace_id"]
                for event in document["traceEvents"]
            )
            jobs = [
                event
                for event in document["traceEvents"]
                if event["name"] == "job"
            ]
            assert len(jobs) == 1  # exactly one root span per trace
            assert jobs[0]["args"]["job"] == submitted["id"]
            names = {e["name"] for e in document["traceEvents"]}
            assert {"client-submit", "queue-dwell", "job", "serve"} <= names
            by_name = {e["name"]: e for e in document["traceEvents"]}
            # Every request through a surrogate daemon runs the gated
            # engine, so its serve-or-fallback span nests under job.
            serve = by_name["serve"]
            assert serve["args"]["parent_id"] == jobs[0]["args"]["span_id"]
            if mode == "exact":
                # The fallback runs the full pipeline under the serve
                # span; nesting must survive worker concurrency.
                assert serve["args"]["path"] == "exact"
                assert (
                    by_name["project"]["args"]["parent_id"]
                    == serve["args"]["span_id"]
                )
            else:
                assert serve["args"]["path"] == "surrogate"


class TestEventsEndpoint:
    def test_lifecycle_events_in_order_with_follower_protocol(
        self, tmp_path
    ):
        with running_daemon(tmp_path / "state") as (_, _, client):
            submitted = client.submit(
                "projection", dict(PAYLOAD), client="alice"
            )
            client.wait(submitted["id"], timeout=120)
            body = client.events(limit=100)
            assert body["last_seq"] >= 4
            # The follower protocol: nothing re-delivers after last_seq.
            assert client.events(after=body["last_seq"])["events"] == []
        types = [
            event["type"]
            for event in body["events"]
            if event.get("job_id") == submitted["id"]
        ]
        assert types == ["submit", "dequeue", "start", "complete"]
        submit_event = next(
            event
            for event in body["events"]
            if event["type"] == "submit"
        )
        assert submit_event["client"] == "alice"
        assert submit_event["trace_id"]

    def test_failed_job_emits_fail_event(self, tmp_path):
        with running_daemon(tmp_path / "state") as (_, _, client):
            submitted = client.submit(
                "projection", {"workload": "NoSuchWorkload"}
            )
            body = client.wait(submitted["id"], timeout=120)
            assert body["state"] == "failed"
            events = client.events(limit=100)["events"]
        fails = [
            event for event in events if event["type"] == "fail"
        ]
        assert len(fails) == 1
        assert fails[0]["job_id"] == submitted["id"]
        assert "error" in fails[0]["attrs"]

    def test_events_survive_on_disk_as_jsonl(self, tmp_path):
        state = tmp_path / "state"
        with running_daemon(state) as (_, _, client):
            submitted = client.submit("projection", dict(PAYLOAD))
            client.wait(submitted["id"], timeout=120)
        lines = (state / "events.jsonl").read_text().splitlines()
        types = [json.loads(line)["type"] for line in lines]
        assert "submit" in types and "complete" in types


class TestSweepTileErrors:
    def test_tile_error_increments_counter_and_emits_fail(
        self, tmp_path, monkeypatch
    ):
        import repro.daemon.scheduler as scheduler_module

        real = scheduler_module.project_parsed
        bad = SimpleNamespace(
            to_dict=lambda: {
                "id": "VectorAdd/4M",
                "ok": False,
                "error": "injected tile failure",
            }
        )
        calls = {"n": 0}

        def flaky(parsed, engine, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                return [bad]
            return real(parsed, engine, **kwargs)

        monkeypatch.setattr(
            scheduler_module, "project_parsed", flaky
        )
        with running_daemon(tmp_path / "state") as (app, _, client):
            submitted = client.submit(
                "sweep",
                {"workload": "VectorAdd", "datasets": ["4M", "16M"]},
            )
            body = client.wait(submitted["id"], timeout=300)
            assert body["state"] == "done"
            counters = app.engine.metrics.snapshot()["counters"]
            events = client.events(limit=200)["events"]
        assert counters["sweep_tile_errors"] == 1
        tile_fails = [
            event
            for event in events
            if event["type"] == "fail"
            and event.get("attrs", {}).get("scope") == "tile"
        ]
        assert len(tile_fails) == 1
        assert tile_fails[0]["job_id"] == submitted["id"]
        assert tile_fails[0]["attrs"]["request_id"] == "VectorAdd/4M"


class TestSLOEndpoint:
    def test_slo_body_reflects_finished_jobs(self, tmp_path):
        with running_daemon(tmp_path / "state") as (_, _, client):
            submitted = client.submit("projection", dict(PAYLOAD))
            client.wait(submitted["id"], timeout=120)
            body = client.slo()
        assert body["health"] == "ok"
        assert body["audit"] is None  # no surrogate, no auditor
        slo = body["slo"]
        assert slo["window_jobs"] >= 1
        assert slo["error_burn_rate"] == 0.0
        assert slo["ok"] is True

    def test_failures_raise_the_error_burn(self, tmp_path):
        config = SLOConfig(error_budget=0.01)
        with running_daemon(
            tmp_path / "state", slo=config
        ) as (_, _, client):
            submitted = client.submit(
                "projection", {"workload": "NoSuchWorkload"}
            )
            client.wait(submitted["id"], timeout=120)
            slo = client.slo()["slo"]
        assert slo["errors"] == 1
        assert slo["error_burn_rate"] > 1.0
        assert slo["ok"] is False

    def test_metrics_expose_slo_and_health_gauges(self, tmp_path):
        with running_daemon(tmp_path / "state") as (_, _, client):
            submitted = client.submit("projection", dict(PAYLOAD))
            client.wait(submitted["id"], timeout=120)
            text = client.metrics_text()
        samples = {
            name: value for name, _, value in parse_exposition(text)
        }
        assert samples["repro_obs_slo_window_jobs"] >= 1
        assert samples["repro_obs_slo_error_burn_rate"] == 0.0
        assert samples["repro_obs_slo_latency_burn_rate"] == 0.0
        assert samples["repro_obs_health_ok"] == 1
        assert samples["repro_obs_events_emitted"] >= 4


class TestShadowAuditInDaemon:
    def test_audited_daemon_publishes_agreement_metrics(
        self, tmp_path, model_path
    ):
        with running_daemon(
            tmp_path / "state",
            surrogate_model=model_path,
            audit_rate=1.0,
        ) as (app, _, client):
            for _ in range(3):
                submitted = client.submit(
                    "projection", dict(PAYLOAD, mode="surrogate")
                )
                body = client.wait(submitted["id"], timeout=300)
                assert body["result"]["record"]["path"] == "surrogate"
            app.auditor.stop()  # drain pending audits synchronously
            text = client.metrics_text()
            status = client.status()
            slo = client.slo()
        samples = {
            name: value for name, _, value in parse_exposition(text)
        }
        assert samples["repro_obs_surrogate_audits_total"] == 3
        assert "repro_obs_surrogate_audit_disagreements_total" in samples
        assert 0.0 <= samples["repro_obs_surrogate_audit_agreement"] <= 1.0
        assert status["audit"]["audits"] == 3
        assert slo["audit"]["considered"] == 3

    def test_drifted_surrogate_flips_status_health(
        self, tmp_path, model_path
    ):
        with running_daemon(
            tmp_path / "state",
            surrogate_model=model_path,
            audit_rate=1.0,
            audit_min_agreement=0.9,
        ) as (app, _, client):
            # Poison the rolling window the way a drifted surrogate
            # would: enough disagreements past the sample floor.
            auditor = app.auditor
            with auditor._lock:
                auditor._audits = 10
                auditor._disagreements = 10
                auditor._window = [False] * 10
            assert client.status()["health"] == "degraded"
            assert client.slo()["health"] == "degraded"
            text = client.metrics_text()
        samples = {
            name: value for name, _, value in parse_exposition(text)
        }
        assert samples["repro_obs_health_ok"] == 0
        assert samples["repro_obs_surrogate_audit_agreement"] == 0.0

    def test_audit_rate_zero_disables_the_auditor(
        self, tmp_path, model_path
    ):
        with running_daemon(
            tmp_path / "state",
            surrogate_model=model_path,
            audit_rate=0,
        ) as (app, _, client):
            assert app.auditor is None
            assert client.status()["health"] == "ok"
            assert "audit" not in client.status()


class TestJournalRoundTrip:
    def test_trace_fields_survive_the_journal(self, tmp_path):
        job = Job(
            job_id="j1",
            kind="projection",
            payload=dict(PAYLOAD),
            trace_id="tid-1",
            client_submitted=123.5,
            trace=True,
        )
        restored = Job.from_dict(job.to_dict())
        assert restored.trace_id == "tid-1"
        assert restored.client_submitted == 123.5
        assert restored.trace is True

    def test_untraced_job_record_stays_sparse(self):
        job = Job(job_id="j2", kind="projection", payload=dict(PAYLOAD))
        record = job.to_dict()
        assert "trace" not in record
        assert "trace_id" not in record
        assert "client_submitted" not in record
