"""CLI surface tests: version verbs, daemon verbs, structured errors."""

import json

import pytest

from repro.cli import main
from repro.daemon.server import DaemonApp, DaemonServer
from repro.version import package_version


def run_cli(*argv):
    out_lines, err_lines = [], []
    code = main(list(argv), out=out_lines.append, err=err_lines.append)
    return code, "\n".join(out_lines), "\n".join(err_lines)


@pytest.fixture
def live_daemon(tmp_path):
    """An in-process daemon whose URL the CLI verbs can target."""
    app = DaemonApp(tmp_path / "state", workers=2)
    server = DaemonServer(app)
    server.serve_in_thread()
    yield server
    server.stop()


class TestVersion:
    def test_version_verb(self):
        code, out, _ = run_cli("version")
        assert code == 0
        assert package_version() in out
        assert "protocol" in out

    def test_version_flag_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert package_version() in capsys.readouterr().out

    def test_version_is_not_the_unknown_sentinel(self):
        assert package_version() != "0.0.0+unknown"


class TestDaemonVerbs:
    def test_submit_wait_result_cancel(self, live_daemon, tmp_path):
        code, out, _ = run_cli(
            "daemon", "submit", "--url", live_daemon.url,
            "--workload", "VectorAdd", "--dataset", "4M", "--wait",
        )
        assert code == 0
        assert "submitted projection job" in out
        assert "done" in out

        job_id = out.split("job ")[1].split()[0]
        result_file = tmp_path / "result.json"
        code, out, _ = run_cli(
            "daemon", "result", "--url", live_daemon.url, job_id,
            "-o", str(result_file),
        )
        assert code == 0
        document = json.loads(result_file.read_text())
        assert document["kind"] == "projection"
        assert document["record"]["ok"]

        code, out, _ = run_cli(
            "daemon", "cancel", "--url", live_daemon.url, job_id
        )
        assert code == 0
        assert "done" in out  # terminal: cancel is an idempotent no-op

    def test_status_table(self, live_daemon):
        run_cli(
            "daemon", "submit", "--url", live_daemon.url,
            "--workload", "VectorAdd", "--wait",
        )
        code, out, _ = run_cli(
            "daemon", "status", "--url", live_daemon.url
        )
        assert code == 0
        assert "repro daemon v" in out
        assert "workers 2" in out
        assert "1 done" in out
        # The job table header and one row.
        assert "kind" in out and "projection" in out

    def test_submit_batch_payload_file(self, live_daemon, tmp_path):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            json.dumps({"workload": "VectorAdd", "dataset": "4M"})
            + "\n"
            + json.dumps({"workload": "VectorAdd", "dataset": "16M"})
            + "\n",
            encoding="utf-8",
        )
        code, out, _ = run_cli(
            "daemon", "submit", "--url", live_daemon.url,
            "--kind", "batch", "--payload", str(requests), "--wait",
        )
        assert code == 0
        assert "ok 2, errors 0" in out
        assert "hit rate" in out
        assert "p95 per-request" in out

    def test_sweep_submission(self, live_daemon):
        code, out, _ = run_cli(
            "daemon", "submit", "--url", live_daemon.url,
            "--kind", "sweep", "--workload", "VectorAdd",
            "--dataset", "4M", "--dataset", "16M", "--wait",
        )
        assert code == 0
        assert "ok 2, errors 0" in out

    def test_sweep_submission_with_arch_axis(self, live_daemon):
        # Two datasets x two registry generations: four tiles.
        code, out, _ = run_cli(
            "daemon", "submit", "--url", live_daemon.url,
            "--kind", "sweep", "--workload", "VectorAdd",
            "--dataset", "4M", "--dataset", "16M",
            "--arch", "gtx_280", "--arch", "kepler_k20", "--wait",
        )
        assert code == 0
        assert "ok 4, errors 0" in out

    def test_projection_submission_with_registry_arch(self, live_daemon):
        code, out, _ = run_cli(
            "daemon", "submit", "--url", live_daemon.url,
            "--workload", "VectorAdd", "--dataset", "4M",
            "--arch", "pascal_p100", "--wait",
        )
        assert code == 0
        assert "done" in out


class TestStructuredErrors:
    def test_daemon_rejection_renders_field_and_hint(self, live_daemon):
        code, _, err = run_cli(
            "daemon", "submit", "--url", live_daemon.url,
            "--kind", "batch", "--workload", "VectorAdd",
        )
        assert code == 2
        assert err.startswith("error: batch submissions need --payload")
        assert "field: payload" in err
        assert "hint:" in err

    def test_http_rejection_carries_the_same_shape(self, live_daemon):
        # Bypass CLI payload building: POST a bad kind directly.
        from repro.daemon.client import DaemonClient, DaemonError

        client = DaemonClient(base_url=live_daemon.url)
        with pytest.raises(DaemonError) as excinfo:
            client.submit("mystery", {})
        body = excinfo.value.body
        assert set(body) >= {"error", "field", "hint"}

    def test_unreachable_daemon_is_one_clean_line(self, tmp_path):
        code, _, err = run_cli(
            "daemon", "status", "--state-dir", str(tmp_path / "empty")
        )
        assert code == 2
        assert err.startswith("error: ")
        assert "daemon" in err

    def test_failed_job_renders_structured_error(self, live_daemon):
        code, out, _ = run_cli(
            "daemon", "submit", "--url", live_daemon.url,
            "--workload", "NoSuchWorkload", "--wait",
        )
        assert code == 1
        assert "failed" in out
        assert "field: workload" in out
        assert "hint:" in out


class TestBatchSummaryParity:
    """``batch`` and daemon results print the same summary block."""

    def test_batch_report_has_cache_and_p95_lines(self, tmp_path):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            json.dumps({"workload": "VectorAdd", "dataset": "4M"}) + "\n",
            encoding="utf-8",
        )
        code, out, _ = run_cli(
            "batch", str(requests),
            "--cache-dir", str(tmp_path / "cache"),
        )
        assert code == 0
        assert "ok 1, errors 0" in out
        assert "cache hits 0/1" in out
        assert "p95 per-request" in out


class TestObsVerbs:
    def test_traced_submit_then_trace_verb(self, live_daemon, tmp_path):
        code, out, _ = run_cli(
            "daemon", "submit", "--url", live_daemon.url,
            "--workload", "VectorAdd", "--dataset", "4M",
            "--trace", "--wait",
        )
        assert code == 0
        assert "submitted traced projection job" in out
        job_id = out.split("job ")[1].split()[0]

        trace_file = tmp_path / "job.trace.json"
        code, out, _ = run_cli(
            "daemon", "trace", "--url", live_daemon.url, job_id,
            "-o", str(trace_file),
        )
        assert code == 0
        assert str(trace_file) in out
        from repro.obs.context import validate_chrome_trace

        document = json.loads(trace_file.read_text())
        assert validate_chrome_trace(document) >= 3
        assert document["job_id"] == job_id

    def test_trace_verb_prints_json_to_stdout(self, live_daemon):
        code, out, _ = run_cli(
            "daemon", "submit", "--url", live_daemon.url,
            "--workload", "VectorAdd", "--dataset", "4M",
            "--trace", "--wait",
        )
        job_id = out.split("job ")[1].split()[0]
        code, out, _ = run_cli(
            "daemon", "trace", "--url", live_daemon.url, job_id
        )
        assert code == 0
        assert json.loads(out)["job_id"] == job_id

    def test_trace_of_untraced_job_is_a_structured_error(
        self, live_daemon
    ):
        code, out, _ = run_cli(
            "daemon", "submit", "--url", live_daemon.url,
            "--workload", "VectorAdd", "--dataset", "4M", "--wait",
        )
        job_id = out.split("job ")[1].split()[0]
        code, _, err = run_cli(
            "daemon", "trace", "--url", live_daemon.url, job_id
        )
        assert code == 2
        assert "not traced" in err
        assert "hint" in err

    def test_tail_human_and_json(self, live_daemon):
        code, out, _ = run_cli(
            "daemon", "submit", "--url", live_daemon.url,
            "--workload", "VectorAdd", "--dataset", "4M", "--wait",
        )
        assert code == 0
        job_id = out.split("job ")[1].split()[0]

        code, out, _ = run_cli(
            "daemon", "tail", "--url", live_daemon.url, "-n", "50"
        )
        assert code == 0
        assert "submit" in out
        assert "complete" in out
        assert f"job={job_id}" in out

        code, out, _ = run_cli(
            "daemon", "tail", "--url", live_daemon.url,
            "-n", "50", "--json",
        )
        assert code == 0
        events = [json.loads(line) for line in out.splitlines()]
        types = [event["type"] for event in events]
        for expected in ("submit", "dequeue", "start", "complete"):
            assert expected in types
        assert all("seq" in event and "at" in event for event in events)

    def test_status_json_matches_the_http_body(self, live_daemon):
        code, out, _ = run_cli(
            "daemon", "status", "--url", live_daemon.url, "--json"
        )
        assert code == 0
        body = json.loads(out)
        assert body["health"] == "ok"
        assert body["workers"] == 2
        assert "queue" in body
        assert isinstance(body["jobs"], list)

    def test_status_table_shows_health(self, live_daemon):
        code, out, _ = run_cli(
            "daemon", "status", "--url", live_daemon.url
        )
        assert code == 0
        assert "health ok" in out
