"""Daemon architecture axis: registry ids in payloads, end to end.

Projection payloads take a shared ``arch`` registry id; sweep payloads
additionally take an ``arches`` axis (a list of ids, or ``"all"``)
crossed with the dataset axis in architecture-major order.  Unknown
ids anywhere fail the job with the unified ``{error, field, hint}``
body listing the valid fleet.
"""

from repro.gpu import registry
from tests.daemon.test_server import running_daemon


def run_job(client, kind, payload):
    submitted = client.submit(kind, dict(payload))
    return client.wait(submitted["id"], timeout=180)


class TestProjectionArch:
    def test_registry_id_is_honored(self, tmp_path):
        with running_daemon(tmp_path / "state") as (_, _, client):
            quadro = run_job(
                client,
                "projection",
                {"workload": "VectorAdd", "arch": "quadro_fx_5600"},
            )
            pascal = run_job(
                client,
                "projection",
                {"workload": "VectorAdd", "arch": "pascal_p100"},
            )
        assert quadro["state"] == pascal["state"] == "done"
        assert (
            pascal["result"]["record"]["total_seconds"]
            < quadro["result"]["record"]["total_seconds"]
        )

    def test_unknown_arch_is_the_structured_error(self, tmp_path):
        with running_daemon(tmp_path / "state") as (_, _, client):
            body = run_job(
                client,
                "projection",
                {"workload": "VectorAdd", "arch": "volta_v100"},
            )
        assert body["state"] == "failed"
        assert body["error"]["field"] == "arch"
        assert "unknown architecture" in body["error"]["error"]
        for arch_id in registry.arch_ids():
            assert arch_id in body["error"]["hint"]


class TestSweepArches:
    def test_axis_crosses_datasets_arch_major(self, tmp_path):
        arches = ["gtx_280", "kepler_k20"]
        with running_daemon(tmp_path / "state") as (_, _, client):
            body = run_job(
                client,
                "sweep",
                {"workload": "HotSpot", "arches": arches},
            )
        assert body["state"] == "done"
        result = body["result"]
        assert result["arches"] == arches
        points = result["points"]
        from repro.workloads.registry import get_workload

        labels = [d.label for d in get_workload("HotSpot").datasets()]
        assert [p["id"] for p in points] == [
            f"HotSpot/{label}@{arch_id}"
            for arch_id in arches
            for label in labels
        ]
        assert all(p["ok"] for p in points)

    def test_all_expands_to_the_whole_fleet(self, tmp_path):
        with running_daemon(tmp_path / "state") as (_, _, client):
            body = run_job(
                client,
                "sweep",
                {
                    "workload": "VectorAdd",
                    "arches": "all",
                    "datasets": ["4M"],
                },
            )
        assert body["state"] == "done"
        result = body["result"]
        assert result["arches"] == list(registry.arch_ids())
        assert [p["id"] for p in result["points"]] == [
            f"VectorAdd/4M@{arch_id}" for arch_id in registry.arch_ids()
        ]

    def test_unknown_arch_fails_with_the_fleet_hint(self, tmp_path):
        with running_daemon(tmp_path / "state") as (_, _, client):
            body = run_job(
                client,
                "sweep",
                {"workload": "HotSpot", "arches": ["gtx_280", "nope"]},
            )
        assert body["state"] == "failed"
        assert body["error"]["field"] == "arches"
        assert "unknown architecture" in body["error"]["error"]
        for arch_id in registry.arch_ids():
            assert arch_id in body["error"]["hint"]

    def test_arch_and_arches_are_mutually_exclusive(self, tmp_path):
        with running_daemon(tmp_path / "state") as (_, _, client):
            body = run_job(
                client,
                "sweep",
                {
                    "workload": "HotSpot",
                    "arch": "gtx_280",
                    "arches": ["kepler_k20"],
                },
            )
        assert body["state"] == "failed"
        assert body["error"]["field"] == "arches"
        assert "mutually exclusive" in body["error"]["error"]

    def test_arches_must_be_all_or_a_list(self, tmp_path):
        with running_daemon(tmp_path / "state") as (_, _, client):
            body = run_job(
                client, "sweep", {"workload": "HotSpot", "arches": []}
            )
        assert body["state"] == "failed"
        assert body["error"]["field"] == "arches"
        assert "arch list" in body["error"]["hint"]
