"""Tests for the token-bucket rate limiter (hand-driven clock)."""

import pytest

from repro.daemon.ratelimit import RateLimiter, TokenBucket


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refusal(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3, clock=clock)
        assert [bucket.try_acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
        retry = bucket.try_acquire()
        assert retry == pytest.approx(1.0)

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0
        clock.advance(0.5)  # 2 tokens/s * 0.5s = 1 token back
        assert bucket.try_acquire() == 0.0

    def test_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
        clock.advance(1000.0)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0

    def test_retry_after_scales_with_deficit(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=0.5, burst=1, clock=clock)
        bucket.try_acquire()
        assert bucket.try_acquire() == pytest.approx(2.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate=1.0, burst=0.5)


class TestRateLimiter:
    def test_disabled_always_admits(self):
        limiter = RateLimiter(None)
        assert not limiter.enabled
        for _ in range(1000):
            assert limiter.check("anyone") == 0.0

    def test_clients_have_independent_buckets(self):
        clock = FakeClock()
        limiter = RateLimiter(1.0, burst=1.0, clock=clock)
        assert limiter.check("alice") == 0.0
        assert limiter.check("alice") > 0.0
        assert limiter.check("bob") == 0.0

    def test_rejection_body_is_structured(self):
        limiter = RateLimiter(2.0, burst=5.0)
        body = limiter.rejection("alice", 1.25)
        assert "rate limit" in body["error"]
        assert "alice" in body["error"]
        assert body["field"] == "client"
        assert body["retry_after_seconds"] == 1.25
        assert "retry in 1.25s" in body["hint"]
