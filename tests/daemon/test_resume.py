"""Checkpoint/resume equivalence: killed daemons don't lose or redo work.

Two escalating scenarios:

- **drain mid-sweep** (in-process): the scheduler observes a drain
  between tiles, checkpoints, requeues; a fresh scheduler finishes the
  job resuming from the checkpoint.
- **SIGKILL mid-sweep** (subprocess): the hard version of the same
  claim — the process dies with no cleanup after N checkpointed tiles,
  a restarted daemon replays the journal, resumes from the checkpoint,
  and the final result is byte-identical (modulo the volatile
  ``seconds``/``cached`` fields) to an uninterrupted in-process run.
"""

import json
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.daemon.checkpoint import SweepCheckpoint
from repro.daemon.protocol import Job
from repro.daemon.queue import JobQueue
from repro.daemon.scheduler import Scheduler
from repro.gpu.arch import quadro_fx_5600
from repro.harness.context import ExperimentContext
from repro.service.engine import ProjectionEngine

SWEEP_PAYLOAD = {"workload": "VectorAdd"}
VOLATILE = ("seconds", "cached")


def canon(record):
    return {k: v for k, v in record.items() if k not in VOLATILE}


def make_engine():
    ctx = ExperimentContext(seed=2013)
    # No cache: resume correctness must come from the checkpoint alone.
    return ProjectionEngine(
        arch=quadro_fx_5600(), bus=ctx.bus_model, cache=None
    )


def run_sweep_to_completion(state_dir, job_id, submit=True):
    """Drive one sweep job through a fresh queue+scheduler, blocking."""
    queue = JobQueue(state_dir)
    if submit:
        queue.submit(
            Job(job_id=job_id, kind="sweep", payload=dict(SWEEP_PAYLOAD))
        )
    scheduler = Scheduler(queue, make_engine(), workers=1)
    scheduler.start()
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        job = queue.get(job_id)
        if job is not None and job.terminal:
            scheduler.drain(5.0)
            with open(queue.result_path(job_id)) as fh:
                return job, json.load(fh)
        time.sleep(0.02)
    raise TimeoutError(f"sweep {job_id} never finished")


class TestDrainMidSweep:
    def test_drain_checkpoints_and_requeues(self, tmp_path, monkeypatch):
        state = tmp_path / "state"
        queue = JobQueue(state)
        queue.submit(
            Job(job_id="drainjob", kind="sweep",
                payload=dict(SWEEP_PAYLOAD))
        )
        scheduler = Scheduler(queue, make_engine(), workers=1)

        recorded = []
        original = SweepCheckpoint.record

        def record_then_drain(self, tile, row):
            original(self, tile, row)
            recorded.append(tile)
            scheduler._draining.set()  # drain lands between tiles

        monkeypatch.setattr(SweepCheckpoint, "record", record_then_drain)
        scheduler.start()
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            job = queue.get("drainjob")
            if job.state == "queued" and job.interruptions > 0:
                break
            time.sleep(0.02)
        assert scheduler.drain(5.0)
        job = queue.get("drainjob")
        assert job.state == "queued"
        assert job.interruptions >= 1
        assert recorded == [0]  # exactly one tile before the drain
        checkpoint = SweepCheckpoint(state, "drainjob", job.fingerprint)
        assert set(checkpoint.load()) == {0}

        monkeypatch.setattr(SweepCheckpoint, "record", original)
        finished, result = run_sweep_to_completion(
            state, "drainjob", submit=False
        )
        assert finished.state == "done"
        assert result["resumed_tiles"] == 1
        assert result["summary"]["errors"] == 0


class TestSigkillMidSweep:
    KILL_AFTER = 1

    def test_sigkill_restart_resume_equivalence(self, tmp_path):
        state = tmp_path / "state"
        script = tmp_path / "victim.py"
        script.write_text(
            f"""
import os, signal, sys, time
from pathlib import Path
from repro.daemon.checkpoint import SweepCheckpoint
from repro.daemon.protocol import Job
from repro.daemon.queue import JobQueue
from repro.daemon.scheduler import Scheduler
from repro.gpu.arch import quadro_fx_5600
from repro.harness.context import ExperimentContext
from repro.service.engine import ProjectionEngine

state = Path({str(state)!r})
original = SweepCheckpoint.record
done = [0]

def record_then_die(self, tile, row):
    original(self, tile, row)
    done[0] += 1
    if done[0] >= {self.KILL_AFTER}:
        os.kill(os.getpid(), signal.SIGKILL)

SweepCheckpoint.record = record_then_die
ctx = ExperimentContext(seed=2013)
engine = ProjectionEngine(
    arch=quadro_fx_5600(), bus=ctx.bus_model, cache=None
)
queue = JobQueue(state)
queue.submit(
    Job(job_id="killjob", kind="sweep",
        payload={json.dumps(SWEEP_PAYLOAD)})
)
scheduler = Scheduler(queue, engine, workers=1)
scheduler.start()
time.sleep(120)  # SIGKILL arrives long before this
""",
            encoding="utf-8",
        )
        src = Path(__file__).resolve().parents[2] / "src"
        process = subprocess.run(
            [sys.executable, str(script)],
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert process.returncode == -signal.SIGKILL, process.stderr

        # The checkpoint holds exactly the tiles finished pre-kill.
        job_after = JobQueue(state).get("killjob")
        assert job_after.state == "queued"  # replay recovered it
        assert job_after.interruptions == 1
        checkpoint = SweepCheckpoint(
            state, "killjob", job_after.fingerprint
        )
        assert len(checkpoint.load()) == self.KILL_AFTER

        # Restart: a fresh queue+scheduler on the same state dir.
        finished, resumed = run_sweep_to_completion(
            state, "killjob", submit=False
        )
        assert finished.state == "done"
        assert resumed["resumed_tiles"] == self.KILL_AFTER

        # Reference: the same sweep, uninterrupted, in a clean dir.
        _, reference = run_sweep_to_completion(
            tmp_path / "reference", "refjob"
        )
        assert reference["resumed_tiles"] == 0
        assert len(resumed["points"]) == len(reference["points"])
        for resumed_row, reference_row in zip(
            resumed["points"], reference["points"]
        ):
            assert json.dumps(
                canon(resumed_row), sort_keys=True
            ) == json.dumps(canon(reference_row), sort_keys=True)
