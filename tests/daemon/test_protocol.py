"""Tests for the daemon's job model and submission validation."""

import pytest

from repro.daemon.protocol import (
    JOB_KINDS,
    PROTOCOL_VERSION,
    Job,
    error_body,
    new_job_id,
    payload_fingerprint,
    validate_submission,
)
from repro.service.jobs import BadRequestError


class TestJobModel:
    def test_round_trips_through_dict(self):
        job = Job(
            job_id="abc123",
            kind="batch",
            payload={"requests": [{"workload": "VectorAdd"}]},
            client="ci",
            submitted=12.5,
        )
        clone = Job.from_dict(job.to_dict())
        assert clone.job_id == job.job_id
        assert clone.kind == job.kind
        assert clone.payload == job.payload
        assert clone.client == job.client
        assert clone.submitted == job.submitted
        assert clone.fingerprint == job.fingerprint

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            Job(job_id="x", kind="mystery", payload={})

    def test_unknown_state_rejected(self):
        with pytest.raises(ValueError, match="unknown job state"):
            Job(job_id="x", kind="batch", payload={}, state="paused")

    def test_fingerprint_is_content_addressed(self):
        a = Job(job_id="a", kind="sweep", payload={"workload": "CFD"})
        b = Job(job_id="b", kind="sweep", payload={"workload": "CFD"})
        c = Job(job_id="c", kind="sweep", payload={"workload": "SRAD"})
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != c.fingerprint
        assert a.fingerprint == payload_fingerprint(
            "sweep", {"workload": "CFD"}
        )

    def test_foreign_format_version_rejected(self):
        record = Job(job_id="x", kind="batch", payload={}).to_dict()
        record["format"] = PROTOCOL_VERSION + 1
        with pytest.raises(ValueError, match="format"):
            Job.from_dict(record)

    def test_status_dict_drops_payload_and_derives_times(self):
        job = Job(
            job_id="x",
            kind="projection",
            payload={"workload": "VectorAdd"},
            submitted=10.0,
        )
        job.started = 10.5
        job.finished = 12.0
        status = job.status_dict()
        assert "payload" not in status
        assert status["queue_wait_seconds"] == pytest.approx(0.5)
        assert status["run_seconds"] == pytest.approx(1.5)

    def test_job_ids_are_unique(self):
        ids = {new_job_id() for _ in range(256)}
        assert len(ids) == 256


class TestValidateSubmission:
    def test_valid_submission(self):
        kind, client, payload = validate_submission(
            {"kind": "batch", "client": "ci", "payload": {"requests": []}}
        )
        assert kind == "batch"
        assert client == "ci"
        assert payload == {"requests": []}

    def test_default_client_is_anonymous(self):
        _, client, _ = validate_submission(
            {"kind": "projection", "payload": {}}
        )
        assert client == "anonymous"

    def test_non_object_body(self):
        with pytest.raises(BadRequestError) as excinfo:
            validate_submission([1, 2, 3])
        body = excinfo.value.to_dict()
        assert "JSON object" in body["error"]
        assert "hint" in body

    def test_unknown_kind_names_the_field(self):
        with pytest.raises(BadRequestError) as excinfo:
            validate_submission({"kind": "mystery", "payload": {}})
        body = excinfo.value.to_dict()
        assert body["field"] == "kind"
        for kind in JOB_KINDS:
            assert kind in body["hint"]

    def test_missing_payload_names_the_field(self):
        with pytest.raises(BadRequestError) as excinfo:
            validate_submission({"kind": "batch"})
        assert excinfo.value.to_dict()["field"] == "payload"


class TestErrorBody:
    def test_minimal(self):
        assert error_body("boom") == {"error": "boom"}

    def test_full(self):
        body = error_body(
            "boom", field_name="x", hint="fix it", retry_after_seconds=1.5
        )
        assert body == {
            "error": "boom",
            "field": "x",
            "hint": "fix it",
            "retry_after_seconds": 1.5,
        }

    def test_matches_bad_request_error_shape(self):
        exc = BadRequestError("boom", field="x", hint="fix it")
        assert exc.to_dict() == error_body("boom", "x", "fix it")
