"""Tests for sweep checkpoint/resume tile persistence."""

from repro.daemon.checkpoint import SweepCheckpoint


class TestSweepCheckpoint:
    def test_empty_when_never_written(self, tmp_path):
        cp = SweepCheckpoint(tmp_path, "job1", "fp1")
        assert cp.load() == {}

    def test_round_trips_tiles(self, tmp_path):
        cp = SweepCheckpoint(tmp_path, "job1", "fp1")
        cp.record(0, {"id": "a", "ok": True})
        cp.record(2, {"id": "c", "ok": True})
        loaded = SweepCheckpoint(tmp_path, "job1", "fp1").load()
        assert loaded == {0: {"id": "a", "ok": True},
                          2: {"id": "c", "ok": True}}

    def test_fingerprint_mismatch_discards(self, tmp_path):
        cp = SweepCheckpoint(tmp_path, "job1", "fp1")
        cp.record(0, {"id": "a"})
        other = SweepCheckpoint(tmp_path, "job1", "DIFFERENT")
        assert other.load() == {}
        assert not cp.path.exists()  # stale file removed

    def test_torn_tail_keeps_earlier_tiles(self, tmp_path):
        cp = SweepCheckpoint(tmp_path, "job1", "fp1")
        cp.record(0, {"id": "a"})
        cp.record(1, {"id": "b"})
        with open(cp.path, "a", encoding="utf-8") as fh:
            fh.write('{"tile": 2, "record": {"id"')  # crash mid-append
        assert SweepCheckpoint(tmp_path, "job1", "fp1").load() == {
            0: {"id": "a"},
            1: {"id": "b"},
        }

    def test_discard_removes_file(self, tmp_path):
        cp = SweepCheckpoint(tmp_path, "job1", "fp1")
        cp.record(0, {"id": "a"})
        cp.discard()
        assert not cp.path.exists()
        assert cp.load() == {}

    def test_garbage_header_loads_empty(self, tmp_path):
        cp = SweepCheckpoint(tmp_path, "job1", "fp1")
        cp.path.write_text("not json at all\n", encoding="utf-8")
        assert cp.load() == {}

    def test_jobs_do_not_share_checkpoints(self, tmp_path):
        a = SweepCheckpoint(tmp_path, "job-a", "fp")
        b = SweepCheckpoint(tmp_path, "job-b", "fp")
        a.record(0, {"id": "a"})
        assert b.load() == {}
