"""Daemon serving modes: surrogate routing, per-job mode, guards.

A daemon started with ``surrogate_model=...`` routes every projection
job through the gated engine; the ``mode`` field on the payload picks
auto/surrogate/exact per job. A daemon without a model rejects any
non-exact mode up front.
"""

import pytest

from repro.gpu.arch import quadro_fx_5600
from repro.surrogate.dataset import generate_training_set
from repro.surrogate.model import train_surrogate
from repro.surrogate.store import save_model
from repro.transform.space import TransformationSpace
from repro.workloads.registry import get_workload

from tests.daemon.test_server import running_daemon

#: Matches the daemon's fixed serving configuration.
ARCH = quadro_fx_5600()
SPACE = TransformationSpace.default()

#: A request the small model serves confidently in auto mode.
SERVED = {"workload": "VectorAdd", "dataset": "4M"}
#: A request the small model refuses (low confidence -> exact fallback).
FALLBACK = {"workload": "CFD"}


@pytest.fixture(scope="module")
def model_path(tmp_path_factory):
    training = generate_training_set(
        ARCH,
        SPACE,
        workloads=tuple(
            get_workload(name)
            for name in ("HotSpot", "VectorAdd", "SRAD")
        ),
        sizes_per_kernel=12,
    )
    model = train_surrogate(training, ARCH, SPACE)
    return save_model(
        model, tmp_path_factory.mktemp("model") / "surrogate.npz"
    )


def run_projection(client, payload):
    submitted = client.submit("projection", dict(payload))
    return client.wait(submitted["id"], timeout=120)


class TestSurrogateDaemon:
    def test_status_advertises_the_model(self, tmp_path, model_path):
        with running_daemon(
            tmp_path / "state", surrogate_model=model_path
        ) as (app, _, client):
            assert app.status()[1]["surrogate"] is True
            assert client.status()["surrogate"] is True

    def test_auto_serves_a_confident_request(self, tmp_path, model_path):
        with running_daemon(
            tmp_path / "state", surrogate_model=model_path
        ) as (_, _, client):
            body = run_projection(client, SERVED)
        assert body["state"] == "done"
        record = body["result"]["record"]
        assert record["path"] == "surrogate"
        assert record["serving"]["reason"] == "accepted"
        assert record["total_seconds"] > 0

    def test_auto_falls_back_on_low_confidence(
        self, tmp_path, model_path
    ):
        with running_daemon(
            tmp_path / "state", surrogate_model=model_path
        ) as (_, _, client):
            body = run_projection(client, FALLBACK)
        record = body["result"]["record"]
        assert record["path"] == "exact"
        assert record["serving"]["reason"] == "low_confidence"
        assert record["ok"] is True

    def test_exact_mode_is_honored_per_job(self, tmp_path, model_path):
        with running_daemon(
            tmp_path / "state", surrogate_model=model_path
        ) as (_, _, client):
            body = run_projection(client, {**SERVED, "mode": "exact"})
        record = body["result"]["record"]
        assert record["path"] == "exact"
        assert record["serving"]["reason"] == "requested"

    def test_forced_surrogate_mode(self, tmp_path, model_path):
        with running_daemon(
            tmp_path / "state", surrogate_model=model_path
        ) as (_, _, client):
            body = run_projection(client, {**SERVED, "mode": "surrogate"})
        record = body["result"]["record"]
        assert record["path"] == "surrogate"
        assert record["serving"]["reason"] in ("accepted", "forced")

    def test_unknown_mode_is_a_bad_request(self, tmp_path, model_path):
        with running_daemon(
            tmp_path / "state", surrogate_model=model_path
        ) as (_, _, client):
            body = run_projection(client, {**SERVED, "mode": "bogus"})
        assert body["state"] == "failed"
        assert body["error"]["field"] == "mode"
        assert "hint" in body["error"]

    def test_registry_arch_override_takes_the_exact_fallback(
        self, tmp_path, model_path
    ):
        # The model is pinned to the daemon's serving arch; a payload
        # asking for a different registry generation must route to the
        # exact pipeline with the structured arch_mismatch provenance.
        with running_daemon(
            tmp_path / "state", surrogate_model=model_path
        ) as (_, _, client):
            body = run_projection(
                client, {**SERVED, "arch": "fermi_gtx_480"}
            )
        assert body["state"] == "done"
        record = body["result"]["record"]
        assert record["path"] == "exact"
        assert record["serving"]["reason"] == "arch_mismatch"
        assert record["ok"] is True

    def test_calibrated_registry_id_still_serves(
        self, tmp_path, model_path
    ):
        # "quadro_fx_5600" assembles the very arch the model was
        # trained on — the fingerprint guard must not trip on it.
        with running_daemon(
            tmp_path / "state", surrogate_model=model_path
        ) as (_, _, client):
            body = run_projection(
                client, {**SERVED, "arch": "quadro_fx_5600"}
            )
        record = body["result"]["record"]
        assert record["path"] == "surrogate"
        assert record["serving"]["reason"] == "accepted"

    def test_metrics_count_surrogate_hits(self, tmp_path, model_path):
        with running_daemon(
            tmp_path / "state", surrogate_model=model_path
        ) as (app, _, client):
            run_projection(client, SERVED)
            assert app.engine.metrics.counter("surrogate_hits") >= 1


class TestModelFreeDaemon:
    def test_status_reports_no_model(self, tmp_path):
        with running_daemon(tmp_path / "state") as (_, _, client):
            assert client.status()["surrogate"] is False

    def test_non_exact_mode_needs_a_model(self, tmp_path):
        with running_daemon(tmp_path / "state") as (_, _, client):
            body = run_projection(client, {**SERVED, "mode": "surrogate"})
        assert body["state"] == "failed"
        assert body["error"]["field"] == "mode"
        assert "surrogate" in body["error"]["error"]

    def test_exact_mode_is_always_available(self, tmp_path):
        with running_daemon(tmp_path / "state") as (_, _, client):
            body = run_projection(client, {**SERVED, "mode": "exact"})
        assert body["state"] == "done"
        record = body["result"]["record"]
        # No gated engine in the path: plain engine record, no serving
        # provenance keys.
        assert "path" not in record
        assert "serving" not in record
