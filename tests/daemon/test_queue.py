"""Tests for the persistent job queue: journal, replay, fairness."""

import json
import threading

import pytest

from repro.daemon.protocol import Job
from repro.daemon.queue import JOURNAL_NAME, JobQueue


def make_job(job_id="j1", kind="projection", client="anonymous", **payload):
    payload = payload or {"workload": "VectorAdd"}
    return Job(job_id=job_id, kind=kind, payload=payload, client=client)


class TestBasicLifecycle:
    def test_submit_claim_finish(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(make_job())
        job = queue.claim(timeout=0.1)
        assert job is not None and job.state == "running"
        queue.finish(job.job_id, result={"x": 1})
        assert queue.get(job.job_id).state == "done"
        with open(queue.result_path(job.job_id)) as fh:
            assert json.load(fh) == {"x": 1}

    def test_failed_job_records_error(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(make_job())
        job = queue.claim(timeout=0.1)
        queue.finish(job.job_id, error={"error": "boom"})
        job = queue.get(job.job_id)
        assert job.state == "failed"
        assert job.error == {"error": "boom"}

    def test_claim_times_out_empty(self, tmp_path):
        assert JobQueue(tmp_path).claim(timeout=0.05) is None

    def test_duplicate_id_rejected(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(make_job())
        with pytest.raises(ValueError, match="duplicate"):
            queue.submit(make_job())

    def test_fifo_order(self, tmp_path):
        queue = JobQueue(tmp_path, max_running_per_client=3)
        for index in range(3):
            queue.submit(make_job(f"j{index}"))
        claimed = [queue.claim(timeout=0.1).job_id for _ in range(3)]
        assert claimed == ["j0", "j1", "j2"]

    def test_counts_cover_every_state(self, tmp_path):
        queue = JobQueue(tmp_path)
        assert queue.counts() == {
            "queued": 0,
            "running": 0,
            "done": 0,
            "failed": 0,
            "cancelled": 0,
        }


class TestPerClientFairness:
    def test_saturated_client_is_skipped(self, tmp_path):
        queue = JobQueue(tmp_path, max_running_per_client=1)
        queue.submit(make_job("a1", client="alice"))
        queue.submit(make_job("a2", client="alice"))
        queue.submit(make_job("b1", client="bob"))
        first = queue.claim(timeout=0.1)
        assert first.job_id == "a1"
        # alice is at her limit: bob's job jumps her second one.
        second = queue.claim(timeout=0.1)
        assert second.job_id == "b1"
        assert queue.claim(timeout=0.05) is None
        queue.finish("a1", result={})
        assert queue.claim(timeout=0.1).job_id == "a2"


class TestCancellation:
    def test_cancel_queued_is_immediate(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(make_job())
        job = queue.cancel("j1")
        assert job.state == "cancelled"
        assert queue.claim(timeout=0.05) is None

    def test_cancel_running_sets_the_event(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(make_job())
        job = queue.claim(timeout=0.1)
        assert not job.cancel_event.is_set()
        queue.cancel(job.job_id)
        assert job.cancel_event.is_set()
        assert queue.get(job.job_id).state == "running"

    def test_cancel_terminal_is_idempotent(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(make_job())
        queue.claim(timeout=0.1)
        queue.finish("j1", result={})
        assert queue.cancel("j1").state == "done"

    def test_cancel_unknown_raises(self, tmp_path):
        with pytest.raises(KeyError):
            JobQueue(tmp_path).cancel("nope")


class TestDurability:
    def test_restart_replays_the_journal(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(make_job("done1"))
        queue.submit(make_job("waiting"))
        job = queue.claim(timeout=0.1)
        queue.finish(job.job_id, result={"x": 1})

        revived = JobQueue(tmp_path)
        assert revived.get("done1").state == "done"
        assert revived.get("waiting").state == "queued"
        assert revived.claim(timeout=0.1).job_id == "waiting"

    def test_running_job_recovers_as_queued(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(make_job())
        queue.claim(timeout=0.1)
        # Simulated crash: no finish event ever lands.
        revived = JobQueue(tmp_path)
        job = revived.get("j1")
        assert job.state == "queued"
        assert job.interruptions == 1
        assert revived.recovered_jobs == ("j1",)

    def test_recovery_is_itself_journaled(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(make_job())
        queue.claim(timeout=0.1)
        JobQueue(tmp_path)  # first recovery writes the requeue event
        third = JobQueue(tmp_path)
        # Second restart replays the requeue: not "recovered" again.
        assert third.recovered_jobs == ()
        assert third.get("j1").interruptions == 1

    def test_torn_tail_line_is_ignored(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(make_job())
        with open(tmp_path / JOURNAL_NAME, "a", encoding="utf-8") as fh:
            fh.write('{"format": 1, "event": "fin')  # crash mid-append
        revived = JobQueue(tmp_path)
        assert revived.get("j1").state == "queued"

    def test_requeue_preserves_queue_position(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(make_job("first"))
        queue.submit(make_job("second"))
        job = queue.claim(timeout=0.1)
        queue.requeue(job.job_id)
        assert queue.get("first").interruptions == 1
        assert queue.claim(timeout=0.1).job_id == "first"


class TestShutdown:
    def test_close_intake_refuses_submissions(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.close_intake()
        with pytest.raises(RuntimeError, match="closed"):
            queue.submit(make_job())

    def test_close_intake_unblocks_waiting_claimers(self, tmp_path):
        queue = JobQueue(tmp_path)
        results = []
        thread = threading.Thread(
            target=lambda: results.append(queue.claim(timeout=5.0))
        )
        thread.start()
        queue.close_intake()
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert results == [None]
