"""Tests for repro.brs.section."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.brs.section import DimSection, Section


class TestDimSection:
    def test_normalizes_upper(self):
        d = DimSection(0, 10, 3)
        assert d.upper == 9  # last reachable point
        assert d.count == 4

    def test_point(self):
        d = DimSection.point(5)
        assert d.is_point and d.count == 1 and d.stride == 1

    def test_point_collapse_resets_stride(self):
        d = DimSection(5, 7, 10)  # only one reachable point
        assert d.is_point and d.stride == 1

    def test_dense(self):
        d = DimSection.dense(2, 6)
        assert d.count == 5 and d.is_dense

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DimSection(5, 4)

    def test_bad_stride(self):
        with pytest.raises(ValueError):
            DimSection(0, 5, 0)

    def test_contains_point(self):
        d = DimSection(2, 10, 4)  # {2, 6, 10}
        assert d.contains_point(6)
        assert not d.contains_point(4)
        assert not d.contains_point(14)

    def test_points(self):
        assert list(DimSection(1, 9, 4).points()) == [1, 5, 9]

    @given(
        st.integers(-50, 50),
        st.integers(0, 100),
        st.integers(1, 7),
    )
    def test_count_matches_points(self, lower, extent, stride):
        d = DimSection(lower, lower + extent, stride)
        pts = list(d.points())
        assert len(pts) == d.count
        assert all(d.contains_point(p) for p in pts)
        assert pts[0] == d.lower and pts[-1] == d.upper


class TestSection:
    def test_box(self):
        s = Section.box((0, 4), (2, 3))
        assert s.rank == 2
        assert s.volume == 5 * 2

    def test_whole(self):
        s = Section.whole((4, 8))
        assert s.volume == 32
        assert s.contains_point((3, 7))
        assert not s.contains_point((4, 0))

    def test_needs_dims(self):
        with pytest.raises(ValueError):
            Section(())

    def test_contains_point_rank_check(self):
        with pytest.raises(ValueError):
            Section.box((0, 4)).contains_point((1, 2))

    def test_points_iteration(self):
        s = Section(
            (DimSection(0, 2, 2), DimSection(1, 2, 1))
        )  # {0,2} x {1,2}
        assert sorted(s.points()) == [(0, 1), (0, 2), (2, 1), (2, 2)]
        assert s.volume == 4

    def test_is_dense(self):
        assert Section.box((0, 5)).is_dense
        assert not Section((DimSection(0, 4, 2),)).is_dense

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=1, max_size=3))
    def test_volume_equals_point_count(self, spans):
        dims = tuple(
            DimSection(lo, lo + extent, 1 + (extent % 3))
            for lo, extent in spans
        )
        s = Section(dims)
        assert s.volume == len(list(s.points()))
