"""Tests for kernel footprint extraction."""

import pytest

from repro.brs.footprint import access_section, kernel_footprint
from repro.brs.section import DimSection, Section
from repro.skeleton import (
    AffineIndex,
    ArrayAccess,
    ArrayDecl,
    ArrayKind,
    DType,
    KernelBuilder,
    Loop,
)


class TestAccessSection:
    def test_unit_stride_1d(self):
        decl = ArrayDecl("a", (100,))
        acc = ArrayAccess("a", (AffineIndex.var("i"),))
        sec = access_section(acc, {"i": Loop("i", 0, 100)}, decl)
        assert sec == Section.box((0, 99))

    def test_offset_stencil_access(self):
        decl = ArrayDecl("a", (100,))
        acc = ArrayAccess("a", (AffineIndex.var("i", 1, -1),))
        sec = access_section(acc, {"i": Loop("i", 1, 99)}, decl)
        assert sec == Section.box((0, 97))

    def test_strided_access(self):
        decl = ArrayDecl("a", (100,))
        acc = ArrayAccess("a", (AffineIndex.var("i", 2),))
        sec = access_section(acc, {"i": Loop("i", 0, 50)}, decl)
        assert sec == Section((DimSection(0, 98, 2),))

    def test_2d_access(self):
        decl = ArrayDecl("a", (10, 20))
        acc = ArrayAccess("a", (AffineIndex.var("i"), AffineIndex.var("j")))
        loops = {"i": Loop("i", 0, 10), "j": Loop("j", 0, 20)}
        assert access_section(acc, loops, decl) == Section.whole((10, 20))

    def test_constant_subscript(self):
        decl = ArrayDecl("a", (10, 20))
        acc = ArrayAccess("a", (AffineIndex.const(3), AffineIndex.var("j")))
        loops = {"j": Loop("j", 0, 20)}
        sec = access_section(acc, loops, decl)
        assert sec.dims[0].is_point and sec.dims[0].lower == 3
        assert sec.volume == 20

    def test_sparse_whole_array(self):
        decl = ArrayDecl("s", (64,), DType.float32, ArrayKind.SPARSE)
        acc = ArrayAccess("s", (AffineIndex.var("i"),))
        sec = access_section(acc, {"i": Loop("i", 0, 5)}, decl)
        assert sec == Section.whole((64,))

    def test_linearized_2d_overapproximation(self):
        # a[i*N + j] over i<4, j<4 with N=8: BRS over-approximates the gcd
        # lattice but must contain every touched element.
        decl = ArrayDecl("a", (64,))
        acc = ArrayAccess("a", (AffineIndex({"i": 8, "j": 1}),))
        loops = {"i": Loop("i", 0, 4), "j": Loop("j", 0, 4)}
        sec = access_section(acc, loops, decl)
        touched = {
            8 * i + j for i in range(4) for j in range(4)
        }
        assert all(sec.contains_point((p,)) for p in touched)


class TestKernelFootprint:
    def test_stencil_kernel(self):
        arrays = {
            "src": ArrayDecl("src", (64, 64)),
            "dst": ArrayDecl("dst", (64, 64)),
        }
        kb = KernelBuilder("stencil")
        kb.parallel_loop("i", 63, lower=1).parallel_loop("j", 63, lower=1)
        kb.load("src", ("i", 1, -1), "j")
        kb.load("src", ("i", 1, 1), "j")
        kb.load("src", "i", ("j", 1, -1))
        kb.load("src", "i", ("j", 1, 1))
        kb.load("src", "i", "j")
        kb.store("dst", "i", "j")
        kb.statement(flops=5)
        fp = kernel_footprint(kb.build(arrays.values()), arrays)

        assert fp.read_arrays() == frozenset({"src"})
        assert fp.written_arrays() == frozenset({"dst"})
        # Reads cover the full halo (rows/cols 0..63 via shifted accesses).
        reads = fp.reads["src"]
        assert reads.covers(Section.box((0, 63), (1, 62)))
        assert reads.covers(Section.box((1, 62), (0, 63)))
        # Writes are the interior only.
        writes = fp.writes["dst"]
        assert writes.volume == 62 * 62
        assert not writes.contains_point((0, 5))

    def test_kernel_with_undeclared_array_raises(self):
        kb = KernelBuilder("k").loop("i", 4)
        kb.load("ghost", "i").statement()
        with pytest.raises(KeyError):
            kernel_footprint(kb.build(), {})

    def test_read_and_write_same_array(self):
        arrays = {"a": ArrayDecl("a", (100,))}
        kb = KernelBuilder("scale").parallel_loop("i", 100)
        kb.load("a", "i").store("a", "i").statement(flops=1)
        fp = kernel_footprint(kb.build(arrays.values()), arrays)
        assert fp.read_arrays() == fp.written_arrays() == frozenset({"a"})
