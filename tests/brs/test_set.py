"""Tests for SectionSet (UNION semantics)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.brs.section import DimSection, Section
from repro.brs.set import SectionSet

dense_1d = st.builds(
    lambda lo, e: Section.box((lo, lo + e)),
    st.integers(-15, 15),
    st.integers(0, 20),
)

strided_1d = st.builds(
    lambda lo, e, s: Section((DimSection(lo, lo + e, s),)),
    st.integers(-15, 15),
    st.integers(0, 30),
    st.integers(1, 5),
)


class TestSectionSetBasics:
    def test_empty(self):
        s = SectionSet()
        assert s.is_empty and s.volume == 0 and not s
        assert s.is_exact

    def test_single(self):
        s = SectionSet([Section.box((0, 9))])
        assert s.volume == 10
        assert len(s) == 1

    def test_duplicate_add_idempotent(self):
        s = SectionSet()
        box = Section.box((0, 9))
        s.add(box)
        s.add(box)
        assert s.volume == 10 and len(s) == 1

    def test_overlapping_dense_union_exact(self):
        s = SectionSet([Section.box((0, 9)), Section.box((5, 14))])
        assert s.is_exact
        assert s.volume == 15

    def test_disjoint_union(self):
        s = SectionSet([Section.box((0, 4)), Section.box((10, 14))])
        assert s.volume == 10

    def test_contained_section_ignored(self):
        s = SectionSet([Section.box((0, 19))])
        s.add(Section.box((5, 9)))
        assert len(s) == 1 and s.volume == 20

    def test_conservative_flag_on_incompatible_strides(self):
        s = SectionSet([Section((DimSection(0, 20, 2),))])
        s.add(Section((DimSection(1, 19, 3),)))  # overlaps at {4, 10, 16}
        assert not s.is_exact
        # Upper bound: counts overlap points twice.
        assert s.volume >= 11 + 7 - 3

    def test_copy_independent(self):
        s = SectionSet([Section.box((0, 4))])
        c = s.copy()
        c.add(Section.box((10, 14)))
        assert s.volume == 5 and c.volume == 10


class TestSectionSetCovers:
    def test_covers_single(self):
        s = SectionSet([Section.box((0, 9))])
        assert s.covers(Section.box((2, 5)))
        assert not s.covers(Section.box((5, 12)))

    def test_covers_split_across_members(self):
        s = SectionSet([Section.box((0, 4)), Section.box((5, 9))])
        assert s.covers(Section.box((2, 7)))

    def test_contains_point(self):
        s = SectionSet([Section.box((0, 4)), Section.box((10, 14))])
        assert s.contains_point((12,))
        assert not s.contains_point((7,))


class TestSectionSetSubtraction:
    def test_subtract_section(self):
        s = SectionSet([Section.box((0, 9))])
        out = s.subtract_section(Section.box((0, 4)))
        assert out.volume == 5
        assert not out.contains_point((3,))

    def test_subtract_set(self):
        s = SectionSet([Section.box((0, 9))])
        cover = SectionSet([Section.box((0, 3)), Section.box((7, 9))])
        out = s.subtract_set(cover)
        assert sorted(p[0] for m in out for p in m.points()) == [4, 5, 6]

    def test_subtract_everything(self):
        s = SectionSet([Section.box((2, 5))])
        assert s.subtract_section(Section.box((0, 10))).is_empty


class TestSectionSetProperties:
    @given(st.lists(dense_1d, min_size=1, max_size=6))
    @settings(max_examples=100)
    def test_dense_union_volume_exact(self, boxes):
        s = SectionSet(boxes)
        truth = set()
        for b in boxes:
            truth |= set(b.points())
        assert s.is_exact
        assert s.volume == len(truth)

    @given(st.lists(strided_1d, min_size=1, max_size=5))
    @settings(max_examples=100)
    def test_union_never_undercounts(self, parts):
        s = SectionSet(parts)
        truth = set()
        for p in parts:
            truth |= set(p.points())
        covered = set()
        for member in s:
            covered |= set(member.points())
        assert covered == truth  # membership always exact
        assert s.volume >= len(truth)  # volume exact or upper bound
        if s.is_exact:
            assert s.volume == len(truth)

    @given(st.lists(dense_1d, min_size=1, max_size=4), dense_1d)
    @settings(max_examples=100)
    def test_subtract_section_is_exact_dense(self, boxes, hole):
        s = SectionSet(boxes)
        out = s.subtract_section(hole)
        truth = set()
        for b in boxes:
            truth |= set(b.points())
        truth -= set(hole.points())
        covered = set()
        for member in out:
            covered |= set(member.points())
        assert covered == truth


class TestSectionSetCoalesceAndExactVolume:
    def test_adjacent_halves_coalesce(self):
        s = SectionSet([Section.box((0, 4)), Section.box((5, 9))])
        assert len(s) == 1 and s.volume == 10

    def test_row_halves_coalesce_2d(self):
        s = SectionSet(
            [Section.box((0, 3), (0, 4)), Section.box((0, 3), (5, 9))]
        )
        assert len(s) == 1 and s.volume == 40

    def test_inclusion_exclusion_volume_exact_on_overlap(self):
        # Incompatible strides: subtraction keeps both whole, but the
        # union volume is still exact via inclusion-exclusion.
        s = SectionSet([Section((DimSection(0, 20, 2),))])
        s.add(Section((DimSection(1, 19, 3),)))  # overlaps at {4, 10, 16}
        assert not s.is_exact
        assert s.volume == 11 + 7 - 3

    @given(st.lists(strided_1d, min_size=1, max_size=5))
    @settings(max_examples=150)
    def test_volume_matches_point_enumeration(self, parts):
        """Exact or not, volume equals the true union cardinality."""
        s = SectionSet(parts)
        truth = set()
        for p in parts:
            truth |= set(p.points())
        assert s.volume == len(truth)

    @given(st.lists(strided_1d, min_size=1, max_size=5), st.randoms())
    @settings(max_examples=150)
    def test_volume_add_order_invariant(self, parts, rng):
        ordered = SectionSet(parts)
        shuffled_parts = list(parts)
        rng.shuffle(shuffled_parts)
        shuffled = SectionSet(shuffled_parts)
        assert ordered.volume == shuffled.volume

    @given(
        st.lists(
            st.tuples(strided_1d, strided_1d).map(
                lambda ab: Section(ab[0].dims + ab[1].dims)
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=60)
    def test_volume_matches_point_enumeration_2d(self, parts):
        s = SectionSet(parts)
        truth = set()
        for p in parts:
            truth |= set(p.points())
        assert s.volume == len(truth)
