"""Tests for BRS INTERSECT/SUBTRACT/contains/hull, incl. brute-force checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.brs.ops import (
    contains,
    dim_contains,
    dim_intersect,
    dim_union,
    hull,
    intersect,
    subtract,
    try_merge,
)
from repro.brs.section import DimSection, Section

# Strategies ----------------------------------------------------------------

dim_sections = st.builds(
    lambda lo, extent, stride: DimSection(lo, lo + extent, stride),
    st.integers(-20, 20),
    st.integers(0, 40),
    st.integers(1, 6),
)


def sections(rank: int):
    return st.tuples(*([dim_sections] * rank)).map(Section)


class TestDimIntersect:
    def test_disjoint_ranges(self):
        assert dim_intersect(DimSection(0, 4), DimSection(10, 20)) is None

    def test_incompatible_progressions(self):
        # evens vs odds share nothing.
        a = DimSection(0, 100, 2)
        b = DimSection(1, 101, 2)
        assert dim_intersect(a, b) is None

    def test_crt_case(self):
        # {0,2,..,20} ∩ {1,4,..,19} = {4,10,16}
        got = dim_intersect(DimSection(0, 20, 2), DimSection(1, 19, 3))
        assert got == DimSection(4, 16, 6)

    def test_dense_overlap(self):
        got = dim_intersect(DimSection(0, 10), DimSection(5, 15))
        assert got == DimSection(5, 10, 1)

    def test_point_in_progression(self):
        got = dim_intersect(DimSection.point(6), DimSection(0, 10, 3))
        assert got == DimSection.point(6)
        assert dim_intersect(DimSection.point(5), DimSection(0, 10, 3)) is None

    @given(dim_sections, dim_sections)
    @settings(max_examples=200)
    def test_matches_brute_force(self, a, b):
        expected = sorted(set(a.points()) & set(b.points()))
        got = dim_intersect(a, b)
        if not expected:
            assert got is None
        else:
            assert got is not None
            assert list(got.points()) == expected


class TestDimContains:
    def test_subset(self):
        assert dim_contains(DimSection(0, 20, 2), DimSection(4, 12, 4))

    def test_misaligned(self):
        assert not dim_contains(DimSection(0, 20, 2), DimSection(1, 11, 2))

    def test_point_member(self):
        assert dim_contains(DimSection(0, 20, 5), DimSection.point(15))
        assert not dim_contains(DimSection(0, 20, 5), DimSection.point(14))

    @given(dim_sections, dim_sections)
    @settings(max_examples=200)
    def test_matches_brute_force(self, outer, inner):
        expected = set(inner.points()) <= set(outer.points())
        assert dim_contains(outer, inner) == expected


class TestIntersect:
    def test_rank_mismatch(self):
        with pytest.raises(ValueError):
            intersect(Section.box((0, 1)), Section.box((0, 1), (0, 1)))

    def test_box_overlap(self):
        got = intersect(Section.box((0, 9), (0, 9)), Section.box((5, 14), (5, 14)))
        assert got == Section.box((5, 9), (5, 9))

    def test_disjoint_in_one_dim(self):
        assert (
            intersect(Section.box((0, 9), (0, 9)), Section.box((0, 9), (20, 30)))
            is None
        )

    @given(sections(2), sections(2))
    @settings(max_examples=100)
    def test_matches_brute_force(self, a, b):
        expected = set(a.points()) & set(b.points())
        got = intersect(a, b)
        if got is None:
            assert not expected
        else:
            assert set(got.points()) == expected


class TestContains:
    @given(sections(2), sections(2))
    @settings(max_examples=100)
    def test_no_false_positives(self, outer, inner):
        # contains() may under-approximate but must never claim coverage
        # that does not hold.
        if contains(outer, inner):
            assert set(inner.points()) <= set(outer.points())

    def test_reflexive(self):
        s = Section.box((0, 5), (3, 9))
        assert contains(s, s)


class TestSubtract:
    def test_disjoint_keeps_all(self):
        a, b = Section.box((0, 4)), Section.box((10, 12))
        assert subtract(a, b) == [a]

    def test_covered_removes_all(self):
        a, b = Section.box((2, 3)), Section.box((0, 10))
        assert subtract(a, b) == []

    def test_dense_decomposition_2d(self):
        a = Section.box((0, 9), (0, 9))
        b = Section.box((3, 6), (3, 6))
        parts = subtract(a, b)
        total = sum(p.volume for p in parts)
        assert total == 100 - 16
        # Disjointness of the decomposition.
        pts = [p for part in parts for p in part.points()]
        assert len(pts) == len(set(pts))

    def test_equal_stride_aligned_exact(self):
        a = Section((DimSection(0, 20, 2),))
        b = Section((DimSection(6, 12, 2),))
        parts = subtract(a, b)
        got = sorted(p for part in parts for pt in [part] for p in pt.points())
        assert [p[0] for p in got] == [0, 2, 4, 14, 16, 18, 20]

    def test_incompatible_strides_conservative(self):
        a = Section((DimSection(0, 20, 2),))
        b = Section((DimSection(0, 18, 3),))
        # Partial overlap with incompatible lattices: keep the minuend.
        assert subtract(a, b) == [a]

    @given(sections(1), sections(1))
    @settings(max_examples=200)
    def test_superset_invariant_1d(self, a, b):
        # subtract() must keep every point of a \ b (may keep more).
        remaining = set()
        for part in subtract(a, b):
            remaining |= set(part.points())
        true_diff = set(a.points()) - set(b.points())
        assert true_diff <= remaining
        assert remaining <= set(a.points())

    @given(
        st.tuples(dim_sections, dim_sections).map(Section),
        st.tuples(dim_sections, dim_sections).map(Section),
    )
    @settings(max_examples=100)
    def test_superset_invariant_2d(self, a, b):
        remaining = set()
        for part in subtract(a, b):
            remaining |= set(part.points())
        assert (set(a.points()) - set(b.points())) <= remaining
        assert remaining <= set(a.points())

    def _dense_sections(self):
        return st.builds(
            lambda lo1, e1, lo2, e2: Section.box(
                (lo1, lo1 + e1), (lo2, lo2 + e2)
            ),
            st.integers(-10, 10),
            st.integers(0, 15),
            st.integers(-10, 10),
            st.integers(0, 15),
        )

    @given(st.data())
    @settings(max_examples=100)
    def test_dense_exact(self, data):
        a = data.draw(self._dense_sections())
        b = data.draw(self._dense_sections())
        remaining = set()
        for part in subtract(a, b):
            remaining |= set(part.points())
        assert remaining == set(a.points()) - set(b.points())


class TestHull:
    def test_contains_both(self):
        a = Section((DimSection(0, 8, 4),))
        b = Section((DimSection(2, 10, 2),))
        h = hull(a, b)
        assert contains(h, a) or set(a.points()) <= set(h.points())
        assert set(b.points()) <= set(h.points())

    @given(sections(2), sections(2))
    @settings(max_examples=100)
    def test_hull_covers_union(self, a, b):
        h = hull(a, b)
        union = set(a.points()) | set(b.points())
        assert all(h.contains_point(p) for p in union)

    def test_points_hull(self):
        a = Section((DimSection.point(3),))
        b = Section((DimSection.point(9),))
        h = hull(a, b)
        assert h == Section((DimSection(3, 9, 6),))


class TestDimUnion:
    def test_equal(self):
        a = DimSection(0, 8, 2)
        assert dim_union(a, DimSection(0, 8, 2)) == a

    def test_containment(self):
        outer = DimSection(0, 10, 1)
        inner = DimSection(2, 8, 2)
        assert dim_union(outer, inner) == outer
        assert dim_union(inner, outer) == outer

    def test_adjacent_points_fuse_dense(self):
        got = dim_union(DimSection(3, 3), DimSection(4, 4))
        assert got == DimSection(3, 4, 1)

    def test_separated_points_stay_apart(self):
        # Fusing {3, 9} into a stride-6 progression would be exact here
        # but would degrade later subtractions; see dim_union docstring.
        assert dim_union(DimSection(3, 3), DimSection(9, 9)) is None

    def test_point_extends_progression(self):
        prog = DimSection(0, 8, 2)
        assert dim_union(prog, DimSection(10, 10)) == DimSection(0, 10, 2)
        assert dim_union(DimSection(-2, -2), prog) == DimSection(-2, 8, 2)

    def test_point_off_lattice_rejected(self):
        assert dim_union(DimSection(0, 8, 2), DimSection(3, 3)) is None

    def test_adjacent_dense_ranges(self):
        got = dim_union(DimSection(0, 4), DimSection(5, 9))
        assert got == DimSection(0, 9, 1)

    def test_gap_rejected(self):
        assert dim_union(DimSection(0, 4), DimSection(6, 9)) is None

    def test_misaligned_equal_strides_rejected(self):
        assert dim_union(DimSection(0, 8, 2), DimSection(1, 9, 2)) is None

    @given(dim_sections, dim_sections)
    @settings(max_examples=150)
    def test_union_is_exact(self, a, b):
        """A merge result has exactly the points of a | b — never more."""
        got = dim_union(a, b)
        if got is not None:
            union_points = {(p,) for p in range(got.lower, got.upper + 1)
                            if (p - got.lower) % got.stride == 0}
            truth = set(Section((a,)).points()) | set(Section((b,)).points())
            assert union_points == truth


class TestTryMerge:
    def test_merges_row_halves(self):
        left = Section.box((0, 3), (0, 4))
        right = Section.box((0, 3), (5, 9))
        merged = try_merge(left, right)
        assert merged == Section.box((0, 3), (0, 9))

    def test_rejects_two_differing_dims(self):
        a = Section.box((0, 3), (0, 4))
        b = Section.box((4, 7), (5, 9))
        assert try_merge(a, b) is None

    def test_rank_mismatch(self):
        assert try_merge(Section.box((0, 3)), Section.box((0, 3), (0, 3))) is None

    @given(sections(2), sections(2))
    @settings(max_examples=100)
    def test_merge_preserves_point_set(self, a, b):
        merged = try_merge(a, b)
        if merged is not None:
            assert set(merged.points()) == set(a.points()) | set(b.points())
