"""Algebraic laws of the section operations (property-based, 1-3 D)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.brs.ops import contains, hull, intersect, subtract
from repro.brs.section import DimSection, Section

dims = st.builds(
    lambda lo, extent, stride: DimSection(lo, lo + extent, stride),
    st.integers(-12, 12),
    st.integers(0, 24),
    st.integers(1, 5),
)


def sections(rank: int):
    return st.tuples(*([dims] * rank)).map(Section)


def points(section: Section) -> set:
    return set(section.points())


class TestIntersectLaws:
    @given(sections(2), sections(2))
    @settings(max_examples=80)
    def test_commutative(self, a, b):
        ab = intersect(a, b)
        ba = intersect(b, a)
        if ab is None or ba is None:
            assert ab is None and ba is None
        else:
            assert points(ab) == points(ba)

    @given(sections(1), sections(1), sections(1))
    @settings(max_examples=80)
    def test_associative(self, a, b, c):
        def inter3(x, y, z):
            xy = intersect(x, y)
            return None if xy is None else intersect(xy, z)

        left = inter3(a, b, c)
        right_bc = intersect(b, c)
        right = None if right_bc is None else intersect(a, right_bc)
        lp = points(left) if left else set()
        rp = points(right) if right else set()
        assert lp == rp

    @given(sections(2))
    @settings(max_examples=40)
    def test_idempotent(self, a):
        self_inter = intersect(a, a)
        assert self_inter is not None
        assert points(self_inter) == points(a)

    @given(sections(3), sections(3))
    @settings(max_examples=40)
    def test_3d_exactness(self, a, b):
        got = intersect(a, b)
        expected = points(a) & points(b)
        if got is None:
            assert not expected
        else:
            assert points(got) == expected


class TestSubtractLaws:
    @given(sections(1), sections(1))
    @settings(max_examples=80)
    def test_subtract_then_intersect_empty_when_exact(self, a, b):
        """Exact remainders are disjoint from the subtrahend."""
        parts = subtract(a, b)
        if parts == [a] and intersect(a, b) is not None and not contains(
            b, a
        ):
            return  # conservative fallback, explicitly allowed
        for part in parts:
            overlap = intersect(part, b)
            assert overlap is None or not points(overlap)

    @given(sections(2))
    @settings(max_examples=40)
    def test_self_subtraction_empty(self, a):
        assert subtract(a, a) == []

    @given(sections(3), sections(3))
    @settings(max_examples=30)
    def test_3d_superset_invariant(self, a, b):
        remaining = set()
        for part in subtract(a, b):
            remaining |= points(part)
        assert (points(a) - points(b)) <= remaining <= points(a)


class TestHullLaws:
    @given(sections(2), sections(2))
    @settings(max_examples=60)
    def test_commutative(self, a, b):
        assert points(hull(a, b)) >= points(hull(b, a)) or points(
            hull(a, b)
        ) <= points(hull(b, a))
        # Same bounding lattice either way.
        assert hull(a, b) == hull(b, a)

    @given(sections(2))
    @settings(max_examples=40)
    def test_idempotent(self, a):
        h = hull(a, a)
        assert contains(h, a)
        assert points(h) == points(a)

    @given(sections(1), sections(1), sections(1))
    @settings(max_examples=60)
    def test_monotone(self, a, b, c):
        """hull(a, b) is contained in hull(hull(a,b), c)'s lattice."""
        ab = hull(a, b)
        abc = hull(ab, c)
        assert points(ab) <= points(abc) | points(ab)
        for p in points(ab):
            assert abc.contains_point(p)


class TestContainsLaws:
    @given(sections(2), sections(2))
    @settings(max_examples=60)
    def test_contains_antisymmetric_up_to_points(self, a, b):
        if contains(a, b) and contains(b, a):
            assert points(a) == points(b)

    @given(sections(1), sections(1), sections(1))
    @settings(max_examples=60)
    def test_transitive(self, a, b, c):
        if contains(a, b) and contains(b, c):
            assert points(c) <= points(a)
