"""Tests for the CPU architecture and roofline model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cpu.arch import xeon_e5405
from repro.cpu.model import CpuPerformanceModel, CpuWorkProfile


class TestArch:
    def test_e5405_preset(self):
        arch = xeon_e5405()
        assert arch.cores == 4
        assert arch.threads == 8  # OpenMP threads in the paper
        assert arch.peak_flops == pytest.approx(32e9)
        assert arch.mem_bandwidth == pytest.approx(10e9)


class TestWorkProfile:
    def test_rejects_no_work(self):
        with pytest.raises(ValueError):
            CpuWorkProfile("p", 0, 0)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            CpuWorkProfile("p", 1, 1, efficiency=0)


class TestRoofline:
    def setup_method(self):
        self.model = CpuPerformanceModel(xeon_e5405())

    def test_memory_bound(self):
        # 10 GB at 10 GB/s = 1 second; negligible flops.
        p = CpuWorkProfile("stream", bytes_moved=10e9, flops=1e6)
        assert self.model.time(p) == pytest.approx(1.0)
        assert self.model.bound(p) == "memory"

    def test_compute_bound(self):
        # 320 Gflop at 32 GFLOPS = 10 seconds; negligible traffic.
        p = CpuWorkProfile("gemm", bytes_moved=1e3, flops=320e9)
        assert self.model.time(p) == pytest.approx(10.0)
        assert self.model.bound(p) == "compute"

    def test_efficiency_scales_time(self):
        fast = CpuWorkProfile("p", 1e9, 0, efficiency=1.0)
        slow = CpuWorkProfile("p", 1e9, 0, efficiency=0.5)
        assert self.model.time(slow) == pytest.approx(
            2 * self.model.time(fast)
        )

    @given(st.floats(1e3, 1e12), st.floats(1e3, 1e12))
    def test_time_is_max_of_sides(self, nbytes, flops):
        p = CpuWorkProfile("p", nbytes, flops)
        t = self.model.time(p)
        assert t >= nbytes / 10e9 - 1e-12
        assert t >= flops / 32e9 - 1e-12

    def test_vector_add_example(self):
        """Section II-B intuition: vector add is bandwidth bound."""
        n = 16 * 1024 * 1024
        p = CpuWorkProfile("vadd", bytes_moved=12 * n, flops=n)
        assert self.model.bound(p) == "memory"
