"""Tests for the PCIe-generation bus presets."""

import pytest

from repro.pcie.presets import (
    bus_for_generation,
    pcie_gen1_bus,
    pcie_gen2_bus,
    pcie_gen3_bus,
)
from repro.util.units import MiB


class TestGenerationPresets:
    def test_bandwidth_ladder(self):
        """Paper Section II-B: ~3 / 6 / 12 GB/s for gens 1/2/3."""
        g1, g2, g3 = pcie_gen1_bus(), pcie_gen2_bus(), pcie_gen3_bus()
        assert 2.0e9 < g1.h2d.bandwidth < 3.5e9
        assert 5.0e9 < g2.h2d.bandwidth < 7.0e9
        assert 10.0e9 < g3.h2d.bandwidth < 14.0e9

    def test_each_generation_strictly_faster(self):
        size = 64 * MiB
        times = [
            bus_for_generation(g).predict_transfer(
                size, __import__("repro.datausage",
                                 fromlist=["Direction"]).Direction.H2D
            )
            for g in (1, 2, 3)
        ]
        assert times[0] > times[1] > times[2]

    def test_lookup(self):
        assert bus_for_generation(2).h2d.bandwidth == pytest.approx(6.0e9)
        with pytest.raises(ValueError, match="unknown PCIe generation"):
            bus_for_generation(4)

    def test_latency_improves_mildly(self):
        assert pcie_gen3_bus().h2d.alpha < pcie_gen1_bus().h2d.alpha
        # But it's still ~10us class: latency didn't scale like bandwidth.
        assert pcie_gen3_bus().h2d.alpha > 1e-6
