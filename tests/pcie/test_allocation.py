"""Tests for the allocation-overhead model."""

import pytest

from repro.datausage import Direction, Transfer, TransferPlan
from repro.pcie.allocation import (
    AllocationCost,
    AllocationModel,
    cuda23_era_allocation_model,
)
from repro.pcie.channel import MemoryKind
from repro.util.units import MiB


def plan(arrays=("a", "b")) -> TransferPlan:
    transfers = [
        Transfer(name, Direction.H2D, 4 * MiB, MiB) for name in arrays
    ]
    transfers.append(Transfer(arrays[0], Direction.D2H, 4 * MiB, MiB))
    return TransferPlan("p", tuple(transfers))


class TestAllocationCost:
    def test_linear(self):
        c = AllocationCost(alpha=1e-4, beta=1e-12)
        assert c.time(0) == pytest.approx(1e-4)
        assert c.time(1e9) == pytest.approx(1e-4 + 1e-3)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            AllocationCost(alpha=-1.0, beta=0)
        with pytest.raises(ValueError):
            AllocationCost(alpha=0, beta=0).time(-5)


class TestAllocationModel:
    def setup_method(self):
        self.model = cuda23_era_allocation_model()

    def test_pinned_costs_more_than_pageable(self):
        p = plan()
        pinned = self.model.plan_setup_time(p, MemoryKind.PINNED)
        pageable = self.model.plan_setup_time(p, MemoryKind.PAGEABLE)
        assert pinned > pageable

    def test_one_buffer_per_distinct_array(self):
        # Array "a" appears in both directions but is allocated once.
        two_arrays = self.model.plan_setup_time(plan(("a", "b")))
        three_arrays = self.model.plan_setup_time(plan(("a", "b", "c")))
        assert three_arrays > two_arrays
        delta = three_arrays - two_arrays
        expected = self.model.device.time(4 * MiB) + (
            self.model.pinned_host.time(4 * MiB)
        )
        assert delta == pytest.approx(expected)

    def test_setup_scale_is_sub_millisecond_per_array(self):
        """Era-plausible: allocating a few MB costs ~0.3-1 ms."""
        t = self.model.plan_setup_time(plan(("a",)))
        assert 1e-4 < t < 2e-3

    def test_host_cost_dispatch(self):
        assert (
            self.model.host_cost(MemoryKind.PINNED)
            is self.model.pinned_host
        )
        assert (
            self.model.host_cost(MemoryKind.PAGEABLE)
            is self.model.pageable_host
        )
