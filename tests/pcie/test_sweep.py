"""Tests for the transfer-size sweep utilities."""

import pytest

from repro.datausage import Direction
from repro.pcie.channel import MemoryKind
from repro.pcie.sweep import measure_sweep, power_of_two_sizes
from repro.util.units import MiB

from tests.pcie.test_calibration import FakeChannel


class TestPowerOfTwoSizes:
    def test_paper_sweep(self):
        sizes = power_of_two_sizes()
        assert sizes[0] == 1
        assert sizes[-1] == 512 * MiB
        assert len(sizes) == 30  # 2^0 .. 2^29

    def test_all_powers_of_two(self):
        for s in power_of_two_sizes():
            assert s & (s - 1) == 0

    def test_custom_range(self):
        assert power_of_two_sizes(4, 32) == [4, 8, 16, 32]

    def test_rejects_non_power(self):
        with pytest.raises(ValueError):
            power_of_two_sizes(3, 16)

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            power_of_two_sizes(32, 16)


class TestMeasureSweep:
    def test_sample_structure(self):
        chan = FakeChannel()
        samples = measure_sweep(chan, [1, 2, 4], Direction.H2D,
                                MemoryKind.PINNED, repetitions=5)
        assert [s.size_bytes for s in samples] == [1, 2, 4]
        assert all(s.repetitions == 5 for s in samples)
        assert all(s.memory is MemoryKind.PINNED for s in samples)

    def test_mean_is_mean_of_times(self):
        chan = FakeChannel()
        (sample,) = measure_sweep(chan, [1024], repetitions=3)
        assert sample.mean_time == pytest.approx(
            sum(sample.times) / len(sample.times)
        )

    def test_default_sizes(self):
        samples = measure_sweep(FakeChannel(), repetitions=1)
        assert len(samples) == 30

    def test_rejects_bad_repetitions(self):
        with pytest.raises(ValueError):
            measure_sweep(FakeChannel(), [1], repetitions=0)
