"""Tests for the linear transfer model (Equation 1)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datausage import Direction, Transfer, TransferPlan
from repro.pcie.model import BusModel, LinearTransferModel
from repro.util.units import MiB, us


def paper_model() -> LinearTransferModel:
    """alpha ~ 10us, bandwidth ~ 2.5 GB/s (the paper's system)."""
    return LinearTransferModel(alpha=us(10), beta=1 / 2.5e9)


class TestLinearTransferModel:
    def test_alpha_dominates_small(self):
        m = paper_model()
        # For <1KB transfers the curve is essentially flat (Section III-C).
        assert m.predict(1) == pytest.approx(us(10), rel=1e-3)
        assert m.predict(1024) == pytest.approx(us(10), rel=0.05)

    def test_beta_dominates_large(self):
        m = paper_model()
        t = m.predict(512 * MiB)
        assert t == pytest.approx(512 * MiB / 2.5e9, rel=0.001)

    def test_bandwidth_property(self):
        assert paper_model().bandwidth == pytest.approx(2.5e9)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            paper_model().predict(-1)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LinearTransferModel(alpha=-1e-6, beta=1e-9)
        with pytest.raises(ValueError):
            LinearTransferModel(alpha=1e-6, beta=0)

    def test_predict_many_matches_scalar(self):
        m = paper_model()
        sizes = [1, 1024, MiB]
        np.testing.assert_allclose(
            m.predict_many(sizes), [m.predict(s) for s in sizes]
        )

    def test_predict_many_rejects_negative(self):
        with pytest.raises(ValueError):
            paper_model().predict_many([1, -2])

    @given(st.floats(0, 1e9), st.floats(0, 1e9))
    def test_monotone_in_size(self, a, b):
        m = paper_model()
        lo, hi = sorted([a, b])
        assert m.predict(lo) <= m.predict(hi)

    def test_roundtrip_dict(self):
        m = paper_model()
        again = LinearTransferModel.from_dict(m.to_dict())
        assert again == m


class TestTwoPointFit:
    def test_paper_procedure(self):
        # t_S = 10us for 1 byte; t_L = 204.8ms for 512MB -> 2.62 GB/s.
        m = LinearTransferModel.from_two_points(us(10), 0.2048, 512 * MiB)
        assert m.alpha == pytest.approx(us(10))
        assert m.bandwidth == pytest.approx(512 * MiB / 0.2048)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            LinearTransferModel.from_two_points(0, 0.2, 512 * MiB)

    @given(
        st.floats(1e-6, 1e-4),
        st.floats(0.05, 1.0),
    )
    def test_recovers_exact_linear_data(self, alpha, t_large):
        m = LinearTransferModel.from_two_points(alpha, t_large, 512 * MiB)
        # The fit is exact at both calibration points (up to the alpha
        # buried in the large transfer, which is negligible).
        assert m.predict(0) == pytest.approx(alpha)
        assert m.predict(512 * MiB) == pytest.approx(
            alpha + t_large, rel=1e-6
        )


class TestLeastSquaresFit:
    def test_recovers_linear_data(self):
        truth = paper_model()
        sizes = [2.0**k for k in range(0, 30)]
        times = [truth.predict(s) for s in sizes]
        fit = LinearTransferModel.least_squares(sizes, times)
        assert fit.beta == pytest.approx(truth.beta, rel=1e-6)

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            LinearTransferModel.least_squares([1.0], [1.0])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            LinearTransferModel.least_squares([1, 2], [1.0])


class TestBusModel:
    def _bus(self):
        return BusModel(
            h2d=LinearTransferModel(us(10), 1 / 2.45e9),
            d2h=LinearTransferModel(us(9), 1 / 2.6e9),
        )

    def test_direction_dispatch(self):
        bus = self._bus()
        assert bus.for_direction(Direction.H2D) is bus.h2d
        assert bus.for_direction(Direction.D2H) is bus.d2h

    def test_plan_prediction_sums_per_array(self):
        bus = self._bus()
        plan = TransferPlan(
            "p",
            (
                Transfer("a", Direction.H2D, MiB, MiB // 4),
                Transfer("b", Direction.H2D, MiB, MiB // 4),
                Transfer("c", Direction.D2H, 2 * MiB, MiB // 2),
            ),
        )
        per = bus.predict_plan_by_transfer(plan)
        assert len(per) == 3
        assert bus.predict_plan(plan) == pytest.approx(sum(per))
        # Two separate 1MB transfers pay alpha twice.
        merged = bus.predict_transfer(2 * MiB, Direction.H2D)
        assert per[0] + per[1] == pytest.approx(merged + us(10))
