"""Tests for the 2-point calibration procedure."""

import pytest

from repro.datausage import Direction
from repro.pcie.calibration import CalibrationConfig, Calibrator, calibrate_bus
from repro.pcie.channel import MemoryKind
from repro.util.units import MiB, us


class FakeChannel:
    """Deterministic linear channel that records its measurement calls."""

    def __init__(self, alpha=10e-6, bandwidth=2.5e9):
        self.alpha = alpha
        self.bandwidth = bandwidth
        self.calls: list[tuple[int, Direction, MemoryKind]] = []

    def transfer_time(self, size_bytes, direction, memory=MemoryKind.PINNED):
        self.calls.append((size_bytes, direction, memory))
        scale = 1.0 if direction is Direction.H2D else 1.1
        return (self.alpha + size_bytes / self.bandwidth) * scale


class TestCalibrationConfig:
    def test_defaults_match_paper(self):
        cfg = CalibrationConfig()
        assert cfg.small_size == 1
        assert cfg.large_size == 512 * MiB
        assert cfg.repetitions == 10
        assert cfg.memory is MemoryKind.PINNED

    def test_rejects_inverted_sizes(self):
        with pytest.raises(ValueError):
            CalibrationConfig(small_size=100, large_size=10)

    def test_rejects_bad_reps(self):
        with pytest.raises(ValueError):
            CalibrationConfig(repetitions=0)


class TestCalibrator:
    def test_recovers_channel_parameters(self):
        chan = FakeChannel()
        model = Calibrator(chan).calibrate_direction(Direction.H2D)
        # alpha = t_S carries the (negligible) one transferred byte.
        assert model.alpha == pytest.approx(10e-6, rel=1e-4)
        # beta = t_L / s_L includes the (negligible) alpha.
        assert model.bandwidth == pytest.approx(2.5e9, rel=1e-3)

    def test_directions_calibrated_separately(self):
        bus = calibrate_bus(FakeChannel())
        assert bus.d2h.alpha == pytest.approx(1.1 * bus.h2d.alpha, rel=1e-6)

    def test_measurement_count_and_sizes(self):
        chan = FakeChannel()
        Calibrator(chan).calibrate()
        # 10 small + 10 large per direction.
        assert len(chan.calls) == 40
        sizes = {c[0] for c in chan.calls}
        assert sizes == {1, 512 * MiB}

    def test_uses_pinned_memory_by_default(self):
        chan = FakeChannel()
        Calibrator(chan).calibrate()
        assert all(c[2] is MemoryKind.PINNED for c in chan.calls)

    def test_custom_config_respected(self):
        chan = FakeChannel()
        cfg = CalibrationConfig(
            small_size=2, large_size=MiB, repetitions=3,
            memory=MemoryKind.PAGEABLE,
        )
        Calibrator(chan, cfg).calibrate_direction(Direction.H2D)
        assert len(chan.calls) == 6
        assert all(c[2] is MemoryKind.PAGEABLE for c in chan.calls)

    def test_noise_averaged(self):
        class NoisyChannel(FakeChannel):
            def __init__(self):
                super().__init__()
                self._flip = 1.0

            def transfer_time(self, size, direction, memory=MemoryKind.PINNED):
                base = super().transfer_time(size, direction, memory)
                self._flip = -self._flip
                return base * (1.0 + 0.05 * self._flip)

        model = Calibrator(NoisyChannel()).calibrate_direction(Direction.H2D)
        # Symmetric +-5% noise averages out over 10 runs.
        assert model.alpha == pytest.approx(10e-6, rel=1e-3)
