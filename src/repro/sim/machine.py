"""The assembled virtual testbed."""

from __future__ import annotations



from repro.cpu.arch import CPUArchitecture, xeon_e5405
from repro.cpu.model import CpuWorkProfile
from repro.datausage.transfers import Direction
from repro.gpu.arch import GPUArchitecture, quadro_fx_5600
from repro.pcie.channel import MemoryKind
from repro.sim.cpu_sim import CpuSimParams, SimulatedCpu
from repro.sim.gpu_sim import GpuSimParams, KernelWork, SimulatedGpu
from repro.sim.measurement import MeasuredValue, repeat_mean
from repro.sim.noise import BimodalQuirk
from repro.sim.pcie_sim import SimulatedPcieBus, argonne_pcie_params
from repro.util.rng import RngStream


class VirtualTestbed:
    """One simulated node: CPU + GPU + the PCIe bus between them.

    All measurement entry points follow the paper's discipline of
    averaging ten runs.  Separate RNG streams per component keep the
    measurement processes independent and reproducible.
    """

    def __init__(
        self,
        name: str,
        seed: int = 2013,
        gpu_arch: GPUArchitecture | None = None,
        cpu_arch: CPUArchitecture | None = None,
        gpu_params: GpuSimParams | None = None,
        cpu_params: CpuSimParams | None = None,
        pcie_params=None,
    ) -> None:
        self.name = name
        self._root = RngStream(seed, "testbed", name)
        self.bus = SimulatedPcieBus(
            pcie_params or argonne_pcie_params(), self._root.fork("pcie")
        )
        self.gpu = SimulatedGpu(gpu_params, self._root.fork("gpu"))
        self.cpu = SimulatedCpu(cpu_arch, cpu_params, self._root.fork("cpu"))
        self.gpu_arch = gpu_arch or quadro_fx_5600()
        self.cpu_arch = cpu_arch or xeon_e5405()
        self._quirk_rng = self._root.fork("quirks")

    # Measurement entry points (10-run means, Section IV-A) ----------------
    def measure_kernel(
        self,
        work: KernelWork,
        hardware_factor: float = 1.0,
        repetitions: int = 10,
    ) -> MeasuredValue:
        return repeat_mean(
            lambda: self.gpu.kernel_time(work, hardware_factor), repetitions
        )

    def measure_transfer(
        self,
        size_bytes: int,
        direction: Direction,
        memory: MemoryKind = MemoryKind.PINNED,
        quirk: BimodalQuirk | None = None,
        repetitions: int = 10,
    ) -> MeasuredValue:
        def one_run() -> float:
            t = self.bus.transfer_time(size_bytes, direction, memory)
            if quirk is not None:
                t *= quirk.factor(self._quirk_rng)
            return t

        return repeat_mean(one_run, repetitions)

    def measure_cpu(
        self,
        profile: CpuWorkProfile,
        hardware_factor: float = 1.0,
        repetitions: int = 10,
    ) -> MeasuredValue:
        return repeat_mean(
            lambda: self.cpu.run_time(profile, hardware_factor), repetitions
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VirtualTestbed({self.name!r})"


def argonne_testbed(seed: int = 2013) -> VirtualTestbed:
    """The paper's node: Xeon E5405 + Quadro FX 5600 over PCIe v1 x16."""
    return VirtualTestbed("argonne-eureka-node", seed=seed)
