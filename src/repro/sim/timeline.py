"""Application-run timelines: what a projected port spends its time on.

Builds an event-level schedule for an offloaded run — allocation,
host→device copies, per-kernel launches across iterations, device→host
copies — from a projection, and renders it as an ASCII Gantt chart with
one lane for the copy engine and one for the compute engine.  Supports
both the synchronous schedule the paper models and the chunked
stream-overlap schedule of :mod:`repro.core.overlap`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.prediction import Projection
from repro.datausage.transfers import Direction
from repro.util.units import seconds_to_human
from repro.util.validation import check_positive

LANE_COPY = "copy"
LANE_COMPUTE = "compute"
LANE_HOST = "host"


@dataclass(frozen=True)
class TimelineEvent:
    """One scheduled interval."""

    start: float
    end: float
    lane: str
    label: str

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"event {self.label!r} ends before it starts "
                f"({self.end} < {self.start})"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class Timeline:
    """A full run schedule."""

    program: str
    events: tuple[TimelineEvent, ...]

    @property
    def makespan(self) -> float:
        return max((e.end for e in self.events), default=0.0)

    def lane(self, lane: str) -> tuple[TimelineEvent, ...]:
        return tuple(e for e in self.events if e.lane == lane)

    def busy_fraction(self, lane: str) -> float:
        """Fraction of the makespan this lane spends busy."""
        if self.makespan == 0:
            return 0.0
        return sum(e.duration for e in self.lane(lane)) / self.makespan

    def render(self, width: int = 72) -> str:
        """ASCII Gantt: one row per lane, '#' for busy cells."""
        check_positive("width", width)
        span = self.makespan or 1.0
        lanes = [LANE_HOST, LANE_COPY, LANE_COMPUTE]
        lines = [
            f"timeline: {self.program}  "
            f"(makespan {seconds_to_human(self.makespan)})"
        ]
        for lane in lanes:
            cells = [" "] * width
            for event in self.lane(lane):
                lo = int(event.start / span * (width - 1))
                hi = max(lo, int(event.end / span * (width - 1)))
                for c in range(lo, hi + 1):
                    cells[c] = "#"
            busy = self.busy_fraction(lane)
            lines.append(f"{lane:>8} |{''.join(cells)}| {busy:4.0%}")
        return "\n".join(lines)


def synchronous_timeline(
    projection: Projection, iterations: int = 1
) -> Timeline:
    """The paper's schedule: alloc, copy in, kernels x N, copy out."""
    check_positive("iterations", iterations)
    events: list[TimelineEvent] = []
    t = 0.0
    if projection.setup_seconds:
        events.append(
            TimelineEvent(t, t + projection.setup_seconds, LANE_HOST,
                          "allocate")
        )
        t += projection.setup_seconds
    for transfer, seconds in zip(
        projection.plan.transfers, projection.per_transfer_seconds
    ):
        if transfer.direction is not Direction.H2D:
            continue
        events.append(
            TimelineEvent(t, t + seconds, LANE_COPY, f"H2D {transfer.array}")
        )
        t += seconds
    for iteration in range(iterations):
        for kp in projection.kernels.kernels:
            events.append(
                TimelineEvent(
                    t, t + kp.seconds, LANE_COMPUTE,
                    f"{kp.kernel}#{iteration}",
                )
            )
            t += kp.seconds
    for transfer, seconds in zip(
        projection.plan.transfers, projection.per_transfer_seconds
    ):
        if transfer.direction is not Direction.D2H:
            continue
        events.append(
            TimelineEvent(t, t + seconds, LANE_COPY, f"D2H {transfer.array}")
        )
        t += seconds
    return Timeline(projection.program, tuple(events))


def overlapped_timeline(
    projection: Projection, chunks: int, iterations: int = 1
) -> Timeline:
    """A chunked double-buffered schedule (one copy engine).

    Chunk ``i``'s compute may start once its input chunk has landed and
    the compute engine is free; output chunks queue on the copy engine
    behind remaining input chunks.  This realizes the bound of
    :func:`repro.core.overlap.pipeline_time` event by event.
    """
    check_positive("chunks", chunks)
    check_positive("iterations", iterations)
    in_total = sum(
        s
        for tr, s in zip(
            projection.plan.transfers, projection.per_transfer_seconds
        )
        if tr.direction is Direction.H2D
    )
    out_total = sum(
        s
        for tr, s in zip(
            projection.plan.transfers, projection.per_transfer_seconds
        )
        if tr.direction is Direction.D2H
    )
    kernel_total = projection.kernel_seconds * iterations
    chunk_in = in_total / chunks
    chunk_out = out_total / chunks
    chunk_kernel = kernel_total / chunks

    events: list[TimelineEvent] = []
    t0 = 0.0
    if projection.setup_seconds:
        events.append(
            TimelineEvent(0.0, projection.setup_seconds, LANE_HOST,
                          "allocate")
        )
        t0 = projection.setup_seconds
    copy_free = t0
    compute_free = t0
    compute_done: list[float] = []
    # Input chunks, in order, on the copy engine.
    for i in range(chunks):
        start = copy_free
        end = start + chunk_in
        events.append(TimelineEvent(start, end, LANE_COPY, f"H2D c{i}"))
        copy_free = end
        k_start = max(end, compute_free)
        k_end = k_start + chunk_kernel
        events.append(
            TimelineEvent(k_start, k_end, LANE_COMPUTE, f"kernel c{i}")
        )
        compute_free = k_end
        compute_done.append(k_end)
    # Output chunks queue behind input copies and their compute.
    for i in range(chunks):
        start = max(copy_free, compute_done[i])
        end = start + chunk_out
        events.append(TimelineEvent(start, end, LANE_COPY, f"D2H c{i}"))
        copy_free = end
    return Timeline(projection.program, tuple(events))
