"""The GPU kernel-execution simulator ("measured" kernel times).

This is the virtual testbed's stand-in for running hand-tuned CUDA on the
Quadro FX 5600.  It accounts for effects the analytical predictor does not
see:

- kernel launch overhead (CUDA 2.3-era, several microseconds);
- DRAM efficiency below peak, degrading further for small grids that
  cannot fill the memory system;
- block-scheduling granularity (partial last waves still take a full wave);
- the gather/scatter penalty of data-dependent accesses (CFD, Stassuij);
- a per-kernel ``hardware_factor`` — the replayed Argonne-testbed
  calibration (anchored to the paper's Table I; see DESIGN.md §2) that
  encodes everything else the real machine did differently;
- run-to-run jitter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.skeleton.arrays import ArrayDecl
from repro.skeleton.kernel import KernelSkeleton
from repro.sim.noise import NoiseProfile
from repro.util.rng import RngStream
from repro.util.validation import check_non_negative, check_positive

#: Complex arithmetic expands to ~4 real operations (matches synthesize).
_COMPLEX_EXPANSION = 4.0


@dataclass(frozen=True)
class KernelWork:
    """What the hand-coded GPU kernel actually does, per launch.

    Derived from the same skeleton the predictor sees (the work is a
    property of the algorithm), but consumed by an independent timing
    account.
    """

    name: str
    threads: int
    useful_bytes: float  # payload global-memory traffic
    flops: float
    irregular_fraction: float  # fraction of accesses that gather/scatter
    syncs: float = 0.0

    def __post_init__(self) -> None:
        check_positive("threads", self.threads)
        check_non_negative("useful_bytes", self.useful_bytes)
        check_non_negative("flops", self.flops)
        if not 0.0 <= self.irregular_fraction <= 1.0:
            raise ValueError(
                "irregular_fraction must be in [0, 1], got "
                f"{self.irregular_fraction}"
            )


def kernel_work_from_skeleton(
    kernel: KernelSkeleton,
    arrays: Mapping[str, ArrayDecl],
    strict_coalescing: bool = True,
) -> KernelWork:
    """Account the raw work of a kernel from its skeleton.

    The irregular fraction weighs each access by its traffic and asks
    whether the natural thread mapping (innermost parallel loop) would
    coalesce it — a hand-coded CUDA port hits the same DRAM behaviour.
    """
    # Local import: sim must not depend on transform at module load time.
    from repro.transform.synthesize import access_is_coalesced

    map_var = kernel.parallel_loops[-1].var if kernel.parallel_loops else None
    bytes_total = 0.0
    irregular_bytes = 0.0
    flops = 0.0
    for stmt in kernel.statements:
        weight = stmt.branch_prob * kernel.statement_weight(stmt)
        expansion = 1.0
        if any(arrays[a.array].dtype.is_complex for a in stmt.accesses):
            expansion = _COMPLEX_EXPANSION
        flops += stmt.flops * weight * expansion
        for access in stmt.accesses:
            decl = arrays[access.array]
            traffic = decl.dtype.size_bytes * weight
            if (
                access.is_load
                and map_var is not None
                and not access.indirect
                and all(
                    idx.coefficient(map_var) == 0 for idx in access.indices
                )
            ):
                # Warp-uniform broadcast (e.g. K-Means centroids): one
                # transaction serves the whole warp.
                traffic /= 32.0
            bytes_total += traffic
            coalesced = map_var is not None and access_is_coalesced(
                access, map_var, decl, strict_coalescing
            )
            if not coalesced:
                irregular_bytes += traffic
    iterations = kernel.total_iterations
    return KernelWork(
        name=kernel.name,
        threads=kernel.parallel_iterations,
        useful_bytes=bytes_total * iterations,
        flops=flops * iterations,
        irregular_fraction=(
            irregular_bytes / bytes_total if bytes_total else 0.0
        ),
    )


@dataclass(frozen=True)
class GpuSimParams:
    """Machine behaviour of the simulated GPU."""

    peak_bandwidth: float = 76.8e9  # bytes/s
    streaming_efficiency: float = 0.62  # fraction of peak for big grids
    small_grid_penalty_threads: float = 200_000.0  # efficiency ramp scale
    small_grid_penalty_depth: float = 0.35  # max extra loss for tiny grids
    gather_bandwidth_fraction: float = 0.22  # efficiency of irregular access
    peak_flops: float = 345.6e9  # 16 SM x 8 SP x 2 x 1.35 GHz
    compute_efficiency: float = 0.55
    launch_overhead: float = 7.0e-6  # seconds per kernel launch
    wave_threads: int = 12_288  # 16 SMs x 768 threads: one full wave
    noise_sigma: float = 0.015

    def effective_bandwidth(self, work: KernelWork) -> float:
        """Achievable DRAM bandwidth for this kernel's access mix."""
        ramp = 1.0 - self.small_grid_penalty_depth * math.exp(
            -work.threads / self.small_grid_penalty_threads
        )
        regular_bw = self.peak_bandwidth * self.streaming_efficiency * ramp
        gather_bw = self.peak_bandwidth * self.gather_bandwidth_fraction * ramp
        f = work.irregular_fraction
        if f == 0.0:
            return regular_bw
        # Harmonic mix: time adds per byte class.
        return 1.0 / ((1.0 - f) / regular_bw + f / gather_bw)


class SimulatedGpu:
    """Times kernel launches on the virtual FX 5600."""

    def __init__(
        self,
        params: GpuSimParams | None = None,
        rng: RngStream | None = None,
    ) -> None:
        self._params = params or GpuSimParams()
        self._rng = rng or RngStream(0, "gpu")
        self._noise = NoiseProfile.constant(self._params.noise_sigma)

    @property
    def params(self) -> GpuSimParams:
        return self._params

    def expected_kernel_time(
        self, work: KernelWork, hardware_factor: float = 1.0
    ) -> float:
        """Noise-free ground truth for one kernel launch."""
        check_positive("hardware_factor", hardware_factor)
        p = self._params
        mem_time = work.useful_bytes / p.effective_bandwidth(work)
        comp_time = work.flops / (p.peak_flops * p.compute_efficiency)
        body = max(mem_time, comp_time)
        # Partial final waves round up to whole waves.
        waves = work.threads / p.wave_threads
        if waves > 1:
            body *= math.ceil(waves) / waves
        return (body * hardware_factor) + p.launch_overhead

    def kernel_time(
        self, work: KernelWork, hardware_factor: float = 1.0
    ) -> float:
        """One measured run (with jitter)."""
        return self.expected_kernel_time(
            work, hardware_factor
        ) * self._noise.factor(work.useful_bytes, self._rng)
