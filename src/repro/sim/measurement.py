"""The paper's measurement discipline: arithmetic mean of ten runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.util.stats import arithmetic_mean, summarize
from repro.util.validation import check_positive


@dataclass(frozen=True)
class MeasuredValue:
    """A repeated measurement: mean plus the raw samples."""

    mean: float
    samples: tuple[float, ...]

    @property
    def repetitions(self) -> int:
        return len(self.samples)

    @property
    def spread(self) -> float:
        """Relative sample spread (population std / mean)."""
        if self.mean == 0:
            return 0.0
        return summarize(self.samples).std / self.mean


def repeat_mean(run: Callable[[], float], repetitions: int = 10) -> MeasuredValue:
    """Run a timing closure ``repetitions`` times; report the mean.

    All measured times in the paper are arithmetic means of ten separate
    runs (Section IV-A); ten is therefore the default here.
    """
    check_positive("repetitions", repetitions)
    samples = tuple(run() for _ in range(repetitions))
    return MeasuredValue(mean=arithmetic_mean(samples), samples=samples)
