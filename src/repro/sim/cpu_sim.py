"""The CPU execution simulator ("measured" CPU baseline times)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.arch import CPUArchitecture, xeon_e5405
from repro.cpu.model import CpuPerformanceModel, CpuWorkProfile
from repro.sim.noise import NoiseProfile
from repro.util.rng import RngStream
from repro.util.validation import check_positive


@dataclass(frozen=True)
class CpuSimParams:
    """Behaviour knobs of the simulated CPU node."""

    noise_sigma: float = 0.01


class SimulatedCpu:
    """Times the OpenMP CPU baseline on the virtual Xeon E5405 node.

    The roofline model supplies the expected time; a per-workload
    ``hardware_factor`` (replayed testbed calibration, DESIGN.md §2)
    captures deviations of the real OpenMP code from the roofline, and a
    small jitter models run-to-run variation (CPU timings are much
    steadier than PCIe ones).
    """

    def __init__(
        self,
        arch: CPUArchitecture | None = None,
        params: CpuSimParams | None = None,
        rng: RngStream | None = None,
    ) -> None:
        self._arch = arch or xeon_e5405()
        self._model = CpuPerformanceModel(self._arch)
        self._params = params or CpuSimParams()
        self._rng = rng or RngStream(0, "cpu")
        self._noise = NoiseProfile.constant(self._params.noise_sigma)

    @property
    def arch(self) -> CPUArchitecture:
        return self._arch

    @property
    def model(self) -> CpuPerformanceModel:
        return self._model

    def expected_time(
        self, profile: CpuWorkProfile, hardware_factor: float = 1.0
    ) -> float:
        """Noise-free ground truth for one iteration of the CPU baseline."""
        check_positive("hardware_factor", hardware_factor)
        return self._model.time(profile) * hardware_factor

    def run_time(
        self, profile: CpuWorkProfile, hardware_factor: float = 1.0
    ) -> float:
        """One measured run (with jitter)."""
        return self.expected_time(profile, hardware_factor) * (
            self._noise.factor(profile.bytes_moved, self._rng)
        )
