"""The simulated Argonne testbed (hardware substitution layer).

The paper's "measured" numbers come from a real Xeon E5405 + Quadro FX
5600 node (PCIe v1, x16).  Without that hardware we substitute a virtual
testbed whose first-order behaviour matches the paper's calibration
(alpha ~ 10 us, sustained PCIe bandwidth ~ 2.5 GB/s, kernel times anchored
to Table I) and whose *second-order* behaviour supplies everything a real
machine adds on top of a linear model: run-to-run jitter, mid-size
curvature, pageable-memory staging costs, kernel-launch overhead, DRAM
efficiency, uncoalesced-gather penalties, and the pathological per-
transfer quirks the paper calls out in Fig. 5.

Crucially, the *predictor* (GROPHECY++) never sees any of this machinery —
it only observes transfer times through the same two-point calibration a
real deployment would run, so prediction errors are earned, not assumed.
"""

from repro.sim.noise import NoiseProfile, BimodalQuirk
from repro.sim.pcie_sim import (
    PcieLinkParams,
    SimulatedPcieBus,
    argonne_pcie_params,
)
from repro.sim.gpu_sim import (
    GpuSimParams,
    KernelWork,
    SimulatedGpu,
    kernel_work_from_skeleton,
)
from repro.sim.cpu_sim import SimulatedCpu, CpuSimParams
from repro.sim.machine import VirtualTestbed, argonne_testbed
from repro.sim.measurement import MeasuredValue, repeat_mean
from repro.sim.timeline import (
    Timeline,
    TimelineEvent,
    overlapped_timeline,
    synchronous_timeline,
)

__all__ = [
    "Timeline",
    "TimelineEvent",
    "overlapped_timeline",
    "synchronous_timeline",
    "NoiseProfile",
    "BimodalQuirk",
    "PcieLinkParams",
    "SimulatedPcieBus",
    "argonne_pcie_params",
    "GpuSimParams",
    "KernelWork",
    "SimulatedGpu",
    "kernel_work_from_skeleton",
    "SimulatedCpu",
    "CpuSimParams",
    "VirtualTestbed",
    "argonne_testbed",
    "MeasuredValue",
    "repeat_mean",
]
