"""Noise models for the virtual testbed."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.rng import RngStream
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class NoiseProfile:
    """Size-dependent multiplicative jitter.

    Real PCIe transfer times jitter far more (relatively) at small sizes —
    interrupt timing, driver scheduling — than at large ones, where DMA
    streaming dominates.  We model log-space sigma as
    ``sigma_small * exp(-size / decay_bytes) + sigma_floor``.
    """

    sigma_small: float
    sigma_floor: float
    decay_bytes: float

    def __post_init__(self) -> None:
        check_non_negative("sigma_small", self.sigma_small)
        check_non_negative("sigma_floor", self.sigma_floor)
        check_positive("decay_bytes", self.decay_bytes)

    def sigma(self, size_bytes: float) -> float:
        return (
            self.sigma_small * math.exp(-size_bytes / self.decay_bytes)
            + self.sigma_floor
        )

    def factor(self, size_bytes: float, rng: RngStream) -> float:
        """Draw one multiplicative noise factor for a transfer of this size."""
        return rng.lognormal_factor(self.sigma(size_bytes))

    @staticmethod
    def constant(sigma: float) -> "NoiseProfile":
        """Size-independent jitter (used by the GPU/CPU simulators)."""
        return NoiseProfile(sigma_small=0.0, sigma_floor=sigma, decay_bytes=1.0)


@dataclass(frozen=True)
class BimodalQuirk:
    """The Fig. 5 pathology: a transfer that is sometimes much slower.

    The paper observed one particular CFD transfer that, "inexplicably",
    ran more than two times slower than predicted in about half the runs.
    """

    probability: float
    slow_factor: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.slow_factor < 1.0:
            raise ValueError(
                f"slow_factor must be >= 1, got {self.slow_factor}"
            )

    def factor(self, rng: RngStream) -> float:
        return self.slow_factor if rng.bernoulli(self.probability) else 1.0
