"""The PCIe bus simulator (TransferChannel implementation).

Ground-truth transfer time for one copy of ``d`` bytes:

``T(d) = (alpha + d / bandwidth + staging(d)) * bump(d) * noise``

- ``alpha``/``bandwidth``: the first-order law the linear model captures;
- ``staging(d)``: pageable memory pays an extra pass through the driver's
  pinned staging buffer (absent for pinned memory);
- ``bump(d)``: a gentle log-Gaussian curvature around a few-KB transfer
  size — the DMA setup/chunking effect that makes the 2-point linear fit
  err by a few percent at small-to-mid sizes and essentially nothing above
  1 MB (this is what Fig. 4 measures);
- ``noise``: size-dependent run-to-run jitter.

Parameters for the virtual Argonne node reproduce the paper's headline
calibration: pinned alpha on the order of 10 us, sustained pinned
bandwidth ~2.5 GB/s (PCIe v1 x16), pageable slower everywhere except
host-to-device transfers under ~2 KB, where pageable's smaller fixed
overhead wins (Fig. 2/3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.datausage.transfers import Direction
from repro.pcie.channel import MemoryKind
from repro.sim.noise import NoiseProfile
from repro.util.rng import RngStream
from repro.util.units import KiB
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class PcieLinkParams:
    """Ground-truth parameters of one (direction, memory kind) link mode."""

    alpha: float  # seconds, fixed per-transfer overhead
    bandwidth: float  # bytes/second, sustained
    staging_bandwidth: float | None  # bytes/second extra pass, or None
    bump_amplitude: float  # relative curvature peak (e.g. 0.02 = +2%)
    bump_center_log2: float  # log2(bytes) of curvature peak
    bump_width_log2: float  # gaussian width in log2(bytes)
    noise: NoiseProfile

    def __post_init__(self) -> None:
        check_positive("alpha", self.alpha)
        check_positive("bandwidth", self.bandwidth)
        if self.staging_bandwidth is not None:
            check_positive("staging_bandwidth", self.staging_bandwidth)
        check_non_negative("bump_amplitude", self.bump_amplitude)
        check_positive("bump_width_log2", self.bump_width_log2)

    def noiseless_time(self, size_bytes: float) -> float:
        """Expected (median) transfer time without jitter."""
        check_non_negative("size_bytes", size_bytes)
        t = self.alpha + size_bytes / self.bandwidth
        if self.staging_bandwidth is not None:
            t += size_bytes / self.staging_bandwidth
        if size_bytes >= 1:
            z = (math.log2(size_bytes) - self.bump_center_log2) / (
                self.bump_width_log2
            )
            t *= 1.0 + self.bump_amplitude * math.exp(-0.5 * z * z)
        return t


def argonne_pcie_params() -> dict[tuple[Direction, MemoryKind], PcieLinkParams]:
    """Link modes of the virtual Argonne node (Quadro FX 5600, PCIe v1 x16)."""
    h2d_pinned = PcieLinkParams(
        alpha=10.0e-6,
        bandwidth=2.45e9,
        staging_bandwidth=None,
        bump_amplitude=0.030,
        bump_center_log2=13.0,  # ~8 KB
        bump_width_log2=2.5,
        noise=NoiseProfile(sigma_small=0.05, sigma_floor=0.002,
                           decay_bytes=64.0 * KiB),
    )
    d2h_pinned = PcieLinkParams(
        alpha=9.0e-6,
        bandwidth=2.60e9,
        staging_bandwidth=None,
        bump_amplitude=0.010,
        bump_center_log2=13.0,
        bump_width_log2=2.5,
        noise=NoiseProfile(sigma_small=0.02, sigma_floor=0.002,
                           decay_bytes=64.0 * KiB),
    )
    h2d_pageable = PcieLinkParams(
        alpha=9.2e-6,  # smaller than pinned: wins below ~2 KB (Fig. 2)
        bandwidth=2.45e9,
        staging_bandwidth=2.6e9,  # host-side memcpy into the pinned buffer
        bump_amplitude=0.12,  # "slightly more non-linear" (footnote 4)
        bump_center_log2=16.0,  # ~64 KB
        bump_width_log2=3.0,
        noise=NoiseProfile(sigma_small=0.06, sigma_floor=0.004,
                           decay_bytes=64.0 * KiB),
    )
    d2h_pageable = PcieLinkParams(
        alpha=12.0e-6,
        bandwidth=2.60e9,
        staging_bandwidth=2.4e9,
        bump_amplitude=0.10,
        bump_center_log2=16.0,
        bump_width_log2=3.0,
        noise=NoiseProfile(sigma_small=0.03, sigma_floor=0.004,
                           decay_bytes=64.0 * KiB),
    )
    return {
        (Direction.H2D, MemoryKind.PINNED): h2d_pinned,
        (Direction.D2H, MemoryKind.PINNED): d2h_pinned,
        (Direction.H2D, MemoryKind.PAGEABLE): h2d_pageable,
        (Direction.D2H, MemoryKind.PAGEABLE): d2h_pageable,
    }


class SimulatedPcieBus:
    """Implements :class:`repro.pcie.channel.TransferChannel`."""

    def __init__(
        self,
        params: dict[tuple[Direction, MemoryKind], PcieLinkParams]
        | None = None,
        rng: RngStream | None = None,
    ) -> None:
        self._params = params or argonne_pcie_params()
        self._rng = rng or RngStream(0, "pcie")
        missing = {
            (d, m)
            for d in Direction
            for m in MemoryKind
        } - set(self._params)
        if missing:
            raise ValueError(f"missing link modes: {sorted(missing, key=str)}")

    def link(self, direction: Direction, memory: MemoryKind) -> PcieLinkParams:
        return self._params[(direction, memory)]

    def expected_time(
        self,
        size_bytes: float,
        direction: Direction,
        memory: MemoryKind = MemoryKind.PINNED,
    ) -> float:
        """Noise-free ground truth (used by tests, never by the predictor)."""
        return self.link(direction, memory).noiseless_time(size_bytes)

    def transfer_time(
        self,
        size_bytes: int,
        direction: Direction,
        memory: MemoryKind = MemoryKind.PINNED,
    ) -> float:
        """One measured run: ground truth with run-to-run jitter."""
        link = self.link(direction, memory)
        return link.noiseless_time(size_bytes) * link.noise.factor(
            size_bytes, self._rng
        )
