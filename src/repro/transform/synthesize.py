"""Characteristic synthesis: what would this mapping's kernel look like?

This is the analytical core of GROPHECY: given a kernel skeleton and a
:class:`~repro.transform.space.MappingConfig`, derive the per-thread
dynamic instruction mix, coalescing behaviour, and resource usage that the
transformed CUDA kernel would exhibit — without writing any CUDA.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Mapping

from repro.gpu.characteristics import KernelCharacteristics
from repro.skeleton.access import ArrayAccess
from repro.skeleton.arrays import ArrayDecl, ArrayKind
from repro.skeleton.kernel import KernelSkeleton
from repro.transform.space import MappingConfig

#: Instructions of address arithmetic charged per memory access.
_ADDRESS_OVERHEAD = 2.0
#: Loop-control instructions per serial iteration (amortized by unroll).
_LOOP_OVERHEAD = 2.0
#: Instruction cost of one shared-memory access (vs. a global access).
_SMEM_ACCESS_COST = 1.0
#: Base register usage of any kernel.
_BASE_REGISTERS = 10
#: Complex arithmetic expands to ~4 real operations per flop.
_COMPLEX_EXPANSION = 4.0
#: Redundant-traffic factor of a haloed shared-memory tile load
#: ((tile+2)^2 / tile^2 for a 16x16 tile with a 1-wide halo).
_HALO_FACTOR = 1.27
#: Coalesced fraction of a haloed tile load under compute-1.0 rules:
#: the halo-shifted rows of the tile are misaligned segments.
_STRICT_TILE_COALESCING = 0.40


def _mapping_variable(kernel: KernelSkeleton) -> str:
    """The parallel loop variable mapped to adjacent threads (thread.x).

    GROPHECY maps the *innermost* parallel loop to consecutive threads so
    unit-stride accesses along it coalesce; that is the standard layout
    choice and the one the explorer scores.
    """
    parallel = kernel.parallel_loops
    if not parallel:
        raise ValueError(
            f"kernel {kernel.name!r} exposes no parallel loop to map"
        )
    return parallel[-1].var


def access_is_coalesced(
    access: ArrayAccess,
    map_var: str,
    decl: ArrayDecl,
    strict: bool = True,
) -> bool:
    """Would this access coalesce when ``map_var`` indexes threads?

    Coalesced iff consecutive threads touch consecutive addresses: the
    fastest-varying subscript must move 1 element per ``map_var`` step and
    ``map_var`` must not appear scaled in slower subscripts (which would
    scatter threads across rows).  Accesses not involving the thread index
    at all are broadcasts — one transaction serves the warp, which we count
    as coalesced.  Sparse accesses never coalesce; indirect accesses
    coalesce only when the indirection is confined to slower dimensions.
    With ``strict`` (G80 / compute 1.0) a constant offset in the fastest
    subscript also breaks coalescing (segment misalignment).
    """
    if decl.kind is ArrayKind.SPARSE:
        return False
    if access.indirect:
        # An indirect access still coalesces if the indirection lives in
        # slower dimensions while consecutive threads read consecutive
        # addresses (Stassuij gathers whole contiguous rows of x); an
        # indirect *fastest* dimension (CFD's neighbor gather) never does.
        if access.dim_is_indirect(access.rank - 1):
            return False
        last = access.indices[-1]
        return (
            last.coefficient(map_var) == 1
            and (not strict or last.offset == 0)
            and all(
                idx.coefficient(map_var) == 0
                for idx in access.indices[:-1]
            )
        )
    last_coeff = access.innermost_coefficient(map_var)
    if last_coeff == 1:
        if strict and access.indices[-1].offset != 0:
            # Compute-1.0 coalescing requires 16-thread segment
            # alignment; a shifted stencil tap (temp[i][j-1]) breaks it.
            return False
        # map_var must not also drive a slower dimension.
        return all(
            idx.coefficient(map_var) == 0 for idx in access.indices[:-1]
        )
    if last_coeff == 0:
        involved = any(
            idx.coefficient(map_var) != 0 for idx in access.indices
        )
        return not involved  # broadcast
    return False  # strided along threads


def _neighbor_groups(
    kernel: KernelSkeleton,
) -> dict[tuple, list[ArrayAccess]]:
    """Group loads that differ only by constant offsets (stencil taps).

    Such a group can be staged in shared memory: one (haloed) global load
    per thread replaces the whole group.
    """
    groups: dict[tuple, list[ArrayAccess]] = defaultdict(list)
    for stmt in kernel.statements:
        for access in stmt.loads:
            if access.indirect:
                continue  # gathers cannot be staged as a tile
            signature = (
                access.array,
                tuple(
                    tuple(sorted(idx.coeffs.items())) for idx in access.indices
                ),
            )
            groups[signature].append(access)
    return groups


@dataclass(frozen=True)
class SynthesisDetail:
    """Intermediate numbers, exposed for tests and reports."""

    map_var: str
    loads_per_iter: float
    stores_per_iter: float
    smem_staged_arrays: tuple[str, ...]
    coalesced_fraction: float


def synthesize_characteristics(
    kernel: KernelSkeleton,
    arrays: Mapping[str, ArrayDecl],
    config: MappingConfig,
    with_detail: bool = False,
    strict_coalescing: bool = True,
) -> KernelCharacteristics | tuple[KernelCharacteristics, SynthesisDetail]:
    """Synthesize the characteristics of ``kernel`` under ``config``.

    ``strict_coalescing`` selects compute-1.0 coalescing rules (default:
    the paper's G80-class GPU), where misaligned accesses serialize.
    """
    map_var = _mapping_variable(kernel)
    serial = kernel.serial_iterations

    # --- Memory instruction stream -------------------------------------
    smem_staged: list[str] = []
    smem_loads_saved = 0.0
    smem_traffic_insts = 0.0
    syncs = 0.0
    parallel_vars = frozenset(l.var for l in kernel.parallel_loops)
    serial_vars = frozenset(l.var for l in kernel.serial_loops)
    tile_dim = max(2, int(math.sqrt(config.block_size)))
    reuse_staged: list[tuple[str, float]] = []  # (array, load weight)
    if config.use_shared_memory:
        for (array, _sig), group in _neighbor_groups(kernel).items():
            if len(group) >= 3:  # a real neighborhood, worth staging
                # One haloed tile load replaces len(group) loads.  A
                # 1-wide halo on a 16x16 tile costs (18/16)^2 ~ 1.27x
                # redundant traffic.
                smem_staged.append(array)
                smem_loads_saved += len(group) - _HALO_FACTOR
                smem_traffic_insts += len(group) * _SMEM_ACCESS_COST
        if smem_staged:
            syncs = 1.0 * serial
        # Cross-thread reuse tiling (tiled matmul): a load that does not
        # involve every parallel variable is re-read by all threads along
        # the missing dimension(s); staging a tile in shared memory lets
        # `tile_dim` threads share each global load.
        for stmt in kernel.statements:
            if stmt.amortize is not None:
                continue  # already amortized explicitly in the skeleton
            stmt_weight = stmt.branch_prob
            for access in stmt.loads:
                if access.indirect or access.array in smem_staged:
                    continue
                if arrays[access.array].kind is ArrayKind.SPARSE:
                    continue
                missing = parallel_vars - access.variables()
                reduces = bool(access.variables() & serial_vars)
                if missing and reduces and serial > 1:
                    reuse_staged.append((access.array, stmt_weight))
                    smem_loads_saved += stmt_weight * (1 - 1 / tile_dim)
                    smem_traffic_insts += stmt_weight * _SMEM_ACCESS_COST
        if reuse_staged:
            # One barrier per tile step of the reduction.
            syncs = max(syncs, serial / tile_dim)

    loads_per_iter = kernel.loads_per_iteration() - (
        smem_loads_saved if (smem_staged or reuse_staged) else 0.0
    )
    loads_per_iter = max(loads_per_iter, 0.0)
    stores_per_iter = kernel.stores_per_iteration()
    mem_insts = (loads_per_iter + stores_per_iter) * serial

    # --- Coalescing ------------------------------------------------------
    weights_total = 0.0
    weights_coalesced = 0.0
    staged = set(smem_staged)
    reuse_set = {name for name, _ in reuse_staged}
    for stmt in kernel.statements:
        stmt_weight = kernel.statement_weight(stmt)
        for access in stmt.accesses:
            weight = stmt.branch_prob * stmt_weight
            if (
                access.is_load
                and access.array in reuse_set
                and stmt.amortize is None
                and not access.indirect
            ):
                # Cooperative tile loads: one coalesced global access per
                # tile_dim threads.
                weights_total += weight / tile_dim
                weights_coalesced += weight / tile_dim
                continue
            if access.is_load and access.array in staged:
                # The whole tap group collapses into one haloed tile
                # load; spread its weight across the group's members so
                # the group contributes `_HALO_FACTOR` total.  Under
                # compute-1.0 rules the halo rows of the tile are
                # misaligned, so only part of the tile load coalesces.
                group_size = sum(
                    1
                    for s2 in kernel.statements
                    for a2 in s2.loads
                    if a2.array == access.array and not a2.indirect
                )
                share = weight * _HALO_FACTOR / max(group_size, 1)
                tile_coal = (
                    _STRICT_TILE_COALESCING if strict_coalescing else 1.0
                )
                weights_total += share
                weights_coalesced += share * tile_coal
                continue
            decl = arrays[access.array]
            weights_total += weight
            if access_is_coalesced(access, map_var, decl, strict_coalescing):
                weights_coalesced += weight
    coalesced_fraction = (
        weights_coalesced / weights_total if weights_total else 1.0
    )

    # --- Computation stream ----------------------------------------------
    flops = 0.0
    for stmt in kernel.statements:
        expansion = 1.0
        if any(
            arrays[a.array].dtype.is_complex for a in stmt.accesses
        ):
            expansion = _COMPLEX_EXPANSION
        flops += (
            stmt.flops
            * stmt.branch_prob
            * kernel.statement_weight(stmt)
            * expansion
        )
    address_insts = _ADDRESS_OVERHEAD * (loads_per_iter + stores_per_iter)
    loop_insts = _LOOP_OVERHEAD / config.unroll if serial > 1 else 0.0
    comp_per_iter = (
        flops + address_insts + smem_traffic_insts + loop_insts
    )
    comp_insts = comp_per_iter * serial

    # Thread coarsening: each thread handles `coarsening` work items
    # (strided by blockDim, so coalescing is preserved).  Per-thread work
    # multiplies; per-thread fixed overheads (index setup ~ the loop
    # overhead share) are amortized across the coarsened items.
    coarse = config.coarsening
    if coarse > 1:
        mem_insts *= coarse
        comp_insts = comp_insts * coarse - loop_insts * serial * (coarse - 1)
        if syncs:
            syncs *= 1.0  # one barrier still covers all items of a thread

    # --- Resources ---------------------------------------------------------
    distinct_arrays = len(kernel.arrays())
    registers = min(
        60,
        _BASE_REGISTERS
        + 2 * distinct_arrays
        + 3 * (config.unroll - 1)
        + 2 * (config.coarsening - 1),
    )
    # Traffic-weighted element size: amortized statements (e.g. per-row
    # CSR metadata) must not dilute the dominant access width.
    traffic = 0.0
    access_count = 0.0
    for stmt in kernel.statements:
        weight = stmt.branch_prob * kernel.statement_weight(stmt)
        for access in stmt.accesses:
            traffic += weight * arrays[access.array].dtype.size_bytes
            access_count += weight
    bytes_per_access = (
        round(traffic / access_count) if access_count else 4
    )
    smem_bytes = 0
    if smem_staged:
        # One haloed tile per staged array.
        tile = config.block_size + 2
        smem_bytes = sum(
            arrays[a].dtype.size_bytes * tile for a in smem_staged
        )
    for name in {n for n, _ in reuse_staged}:
        # A tile_dim x tile_dim panel per reuse-staged operand.
        smem_bytes += arrays[name].dtype.size_bytes * tile_dim * tile_dim

    threads = max(1, math.ceil(kernel.parallel_iterations / coarse))
    chars = KernelCharacteristics(
        name=f"{kernel.name}[{config.label()}]",
        threads=threads,
        block_size=min(config.block_size, max(32, threads)),
        comp_insts_per_thread=comp_insts,
        mem_insts_per_thread=max(mem_insts, 1e-9),
        coalesced_fraction=coalesced_fraction,
        bytes_per_access=max(bytes_per_access, 1),
        registers_per_thread=registers,
        shared_mem_per_block=smem_bytes,
        syncs_per_thread=syncs,
    )
    if not with_detail:
        return chars
    detail = SynthesisDetail(
        map_var=map_var,
        loads_per_iter=loads_per_iter,
        stores_per_iter=stores_per_iter,
        smem_staged_arrays=tuple(smem_staged)
        + tuple(sorted({n for n, _ in reuse_staged})),
        coalesced_fraction=coalesced_fraction,
    )
    return chars, detail
