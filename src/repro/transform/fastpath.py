"""The fast exploration path: precomputed analysis + batched scoring.

Functionally identical to the reference path
(:func:`~repro.transform.explorer.explore_configs`) — same candidates in
the same order with bitwise-equal times, same skipped configs with the
same reasons — but the skeleton is walked once per kernel
(:class:`~repro.transform.analysis.KernelAnalysis`) and the MWP/CWP
model runs vectorized over the whole grid
(:func:`~repro.gpu.vectorized.score_batch`).  With ``prune=True`` a
bound-based branch-and-bound layer additionally skips candidates whose
lower bound exceeds a fully-scored incumbent; those land in a separate
``pruned`` list so ``search_width`` accounting stays honest.

The reference scalar path is kept unchanged as the oracle; the property
tests in ``tests/transform/test_fast_reference_property.py`` hold the
two paths equal.
"""

from __future__ import annotations

from typing import Iterable

from repro.gpu.model import GpuPerformanceModel
from repro.gpu.vectorized import score_batch
from repro.obs.trace import span as trace_span
from repro.skeleton.kernel import KernelSkeleton
from repro.skeleton.program import ProgramSkeleton
from repro.transform.analysis import KernelAnalysis, analyze_kernel
from repro.transform.explorer import (
    CandidateResult,
    KernelProjection,
    no_legal_mapping,
)
from repro.transform.space import MappingConfig, TransformationSpace


def explore_configs_fast(
    kernel: KernelSkeleton,
    program: ProgramSkeleton,
    model: GpuPerformanceModel,
    configs: Iterable[MappingConfig],
    analysis: KernelAnalysis | None = None,
    prune: bool = False,
) -> tuple[
    list[CandidateResult],
    list[tuple[MappingConfig, str]],
    list[tuple[MappingConfig, str]],
]:
    """Score an explicit list of mappings through the fast path.

    Returns ``(candidates, skipped, pruned)``, each in input order.
    ``analysis`` may be passed in to share one precompute across chunks
    (the service's parallel explorer does); when omitted it is built
    here.  A kernel-level synthesis error (e.g. no parallel loop) skips
    every config with that reason, matching the reference path.
    """
    configs = list(configs)
    if analysis is None:
        try:
            analysis = analyze_kernel(
                kernel, program.array_map, model.arch.strict_coalescing
            )
        except ValueError as exc:
            reason = str(exc)
            return [], [(config, reason) for config in configs], []

    chars_list = []
    synthesis_errors: dict[int, str] = {}
    for index, config in enumerate(configs):
        try:
            chars_list.append(analysis.characteristics(config))
        except ValueError as exc:
            synthesis_errors[index] = str(exc)
            chars_list.append(None)

    scored = iter(
        score_batch(
            model, [c for c in chars_list if c is not None], prune=prune
        )
    )
    candidates: list[CandidateResult] = []
    skipped: list[tuple[MappingConfig, str]] = []
    pruned: list[tuple[MappingConfig, str]] = []
    for index, config in enumerate(configs):
        if index in synthesis_errors:
            skipped.append((config, synthesis_errors[index]))
            continue
        kind, payload = next(scored)
        if kind == "candidate":
            candidates.append(
                CandidateResult(config, chars_list[index], payload)
            )
        elif kind == "illegal":
            skipped.append((config, payload))
        else:  # pruned
            pruned.append((config, payload))
    return candidates, skipped, pruned


def explore_kernel_fast(
    kernel: KernelSkeleton,
    program: ProgramSkeleton,
    model: GpuPerformanceModel,
    space: TransformationSpace | None = None,
    prune: bool = False,
) -> KernelProjection:
    """:func:`~repro.transform.explorer.explore_kernel`, fast path."""
    space = space or TransformationSpace.default()
    with trace_span(
        "search", kernel=kernel.name, explorer="fast", prune=prune
    ) as search:
        candidates, skipped, pruned = explore_configs_fast(
            kernel, program, model, space.configs(), prune=prune
        )
        search.set(
            explored=len(candidates),
            illegal=len(skipped),
            pruned=len(pruned),
        )
    if not candidates:
        raise no_legal_mapping(kernel.name, model.arch.name, len(skipped))
    best = min(candidates, key=lambda c: c.seconds)
    return KernelProjection(
        kernel=kernel.name,
        best=best,
        candidates=tuple(candidates),
        skipped=tuple(skipped),
        pruned=tuple(pruned),
    )
