"""Precomputed per-kernel analysis for the fast exploration path.

The reference :func:`~repro.transform.synthesize.synthesize_characteristics`
re-derives every characteristic from the skeleton for each candidate
mapping, even though most of the synthesis — per-access coalescing
verdicts against the mapping variable, flop tallies with complex
expansion, array staging roles, traffic-weighted access widths — does not
depend on the mapping at all.  :class:`KernelAnalysis` walks the skeleton
*once* per kernel, caches everything config-independent, and turns
characteristic synthesis into a cheap closed form of ``(analysis,
config)``.

Two layers of caching:

- **per kernel** (``__init__``): the mapping variable, iteration counts,
  flop/byte tallies, neighborhood staging groups, reuse-staging
  candidates, and one coalescing verdict per access;
- **per memory shape** (:meth:`_profile`): a candidate mapping reshapes
  the memory stream only through ``(use_shared_memory, tile_dim)``, and
  the 8 block sizes of the default grid share just a handful of tile
  dimensions — so the statement-loop accumulations run a few times per
  kernel instead of once per config.

Equivalence contract: every floating-point accumulation below replays the
*same additions in the same order* as the reference synthesis, so the
resulting :class:`~repro.gpu.characteristics.KernelCharacteristics` are
bitwise identical field-for-field.  The property tests in
``tests/transform/test_fast_reference_property.py`` pin this; do not
reorder an accumulation here without reordering the reference (and vice
versa).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.gpu.characteristics import KernelCharacteristics
from repro.skeleton.arrays import ArrayDecl, ArrayKind
from repro.skeleton.kernel import KernelSkeleton
from repro.transform.space import MappingConfig
from repro.transform.synthesize import (
    _ADDRESS_OVERHEAD,
    _BASE_REGISTERS,
    _COMPLEX_EXPANSION,
    _HALO_FACTOR,
    _LOOP_OVERHEAD,
    _SMEM_ACCESS_COST,
    _STRICT_TILE_COALESCING,
    _mapping_variable,
    _neighbor_groups,
    access_is_coalesced,
)

#: Access categories under shared-memory staging (see synthesize's
#: coalescing loop): a cooperative tile load of a reuse-staged operand, a
#: tap of a neighborhood-staged array, or an ordinary global access.
_REUSE, _STAGED, _NORMAL = 0, 1, 2


@dataclass(frozen=True)
class MemoryProfile:
    """The memory-stream summary for one ``(use_shared_memory, tile_dim)``.

    Everything the per-config closed form needs that the statement loops
    produce: the staged-load-adjusted load count, shared-memory traffic
    instructions, barrier count, and the traffic-weighted coalesced
    fraction — plus the profile-constant partial sums of the instruction
    stream (``mem_insts_base``, ``comp_base``) so the per-config tail
    only folds in unroll and coarsening.
    """

    loads_per_iter: float
    smem_traffic_insts: float
    syncs: float
    coalesced_fraction: float
    #: ``(loads_per_iter + stores_per_iter) * serial``.
    mem_insts_base: float
    #: ``flops + address_insts + smem_traffic_insts`` (no loop overhead).
    comp_base: float


class KernelAnalysis:
    """One-time skeleton walk; per-config characteristics in O(1) loops.

    Raises ``ValueError`` at construction if the kernel exposes no
    parallel loop to map (the same error the reference synthesis raises
    per config).

    Thread-safety: the profile cache is a plain dict — concurrent callers
    may redundantly compute the same (identical, immutable) profile, which
    is benign; the service's chunk scorer shares one analysis across its
    worker pool.
    """

    def __init__(
        self,
        kernel: KernelSkeleton,
        arrays: Mapping[str, ArrayDecl],
        strict_coalescing: bool = True,
    ) -> None:
        self.kernel = kernel
        self.strict_coalescing = strict_coalescing
        self.map_var = _mapping_variable(kernel)  # may raise ValueError
        self.serial = kernel.serial_iterations
        self.parallel_iterations = kernel.parallel_iterations
        self.base_loads_per_iter = kernel.loads_per_iteration()
        self.stores_per_iter = kernel.stores_per_iteration()
        self.distinct_arrays = len(kernel.arrays())

        # --- Computation stream (config-independent) ----------------------
        flops = 0.0
        for stmt in kernel.statements:
            expansion = 1.0
            if any(arrays[a.array].dtype.is_complex for a in stmt.accesses):
                expansion = _COMPLEX_EXPANSION
            flops += (
                stmt.flops
                * stmt.branch_prob
                * kernel.statement_weight(stmt)
                * expansion
            )
        self.flops = flops

        # --- Traffic-weighted element size (config-independent) -----------
        traffic = 0.0
        access_count = 0.0
        for stmt in kernel.statements:
            weight = stmt.branch_prob * kernel.statement_weight(stmt)
            for access in stmt.accesses:
                traffic += weight * arrays[access.array].dtype.size_bytes
                access_count += weight
        self.bytes_per_access = (
            round(traffic / access_count) if access_count else 4
        )

        # --- Neighborhood staging (active only under use_shared_memory,
        # but *which* arrays stage never depends on the config) ------------
        smem_staged: list[str] = []
        staged_saved = 0.0
        staged_traffic = 0.0
        for (array, _sig), group in _neighbor_groups(kernel).items():
            if len(group) >= 3:
                smem_staged.append(array)
                staged_saved += len(group) - _HALO_FACTOR
                staged_traffic += len(group) * _SMEM_ACCESS_COST
        self.smem_staged = tuple(smem_staged)
        self._staged_saved = staged_saved
        self._staged_traffic = staged_traffic
        staged_set = set(smem_staged)
        self._staged_elem_bytes = sum(
            arrays[a].dtype.size_bytes for a in smem_staged
        )
        self._group_sizes = {
            array: sum(
                1
                for s2 in kernel.statements
                for a2 in s2.loads
                if a2.array == array and not a2.indirect
            )
            for array in staged_set
        }

        # --- Cross-thread reuse staging candidates ------------------------
        parallel_vars = frozenset(l.var for l in kernel.parallel_loops)
        serial_vars = frozenset(l.var for l in kernel.serial_loops)
        reuse_weights: list[float] = []
        reuse_arrays: list[str] = []
        for stmt in kernel.statements:
            if stmt.amortize is not None:
                continue
            stmt_weight = stmt.branch_prob
            for access in stmt.loads:
                if access.indirect or access.array in staged_set:
                    continue
                if arrays[access.array].kind is ArrayKind.SPARSE:
                    continue
                missing = parallel_vars - access.variables()
                reduces = bool(access.variables() & serial_vars)
                if missing and reduces and self.serial > 1:
                    reuse_arrays.append(access.array)
                    reuse_weights.append(stmt_weight)
        self.reuse_arrays = tuple(reuse_arrays)
        self._reuse_weights = tuple(reuse_weights)
        self._reuse_elem_bytes = sum(
            arrays[name].dtype.size_bytes for name in set(reuse_arrays)
        )

        # --- Per-access weights, coalescing verdicts, staging categories --
        reuse_set = set(reuse_arrays)
        weights: list[float] = []
        verdicts: list[bool] = []
        categories: list[int] = []
        staged_shares: list[float] = []  # weight * HALO / group_size
        for stmt in kernel.statements:
            stmt_weight = kernel.statement_weight(stmt)
            for access in stmt.accesses:
                weight = stmt.branch_prob * stmt_weight
                weights.append(weight)
                verdicts.append(
                    access_is_coalesced(
                        access,
                        self.map_var,
                        arrays[access.array],
                        strict_coalescing,
                    )
                )
                if (
                    access.is_load
                    and access.array in reuse_set
                    and stmt.amortize is None
                    and not access.indirect
                ):
                    categories.append(_REUSE)
                    staged_shares.append(0.0)
                elif access.is_load and access.array in staged_set:
                    categories.append(_STAGED)
                    group_size = self._group_sizes[access.array]
                    staged_shares.append(
                        weight * _HALO_FACTOR / max(group_size, 1)
                    )
                else:
                    categories.append(_NORMAL)
                    staged_shares.append(0.0)
        self._access_weights = tuple(weights)
        self._access_verdicts = tuple(verdicts)
        self._access_categories = tuple(categories)
        self._staged_shares = tuple(staged_shares)

        self._profiles: dict[tuple[bool, int], MemoryProfile] = {}
        self._reg_base = _BASE_REGISTERS + 2 * self.distinct_arrays
        self._bytes_pa = max(self.bytes_per_access, 1)
        self._threads_by_coarse: dict[int, tuple[int, int]] = {}
        self._tails: dict[MappingConfig, tuple] = {}
        self._char_fields: dict[MappingConfig, dict] = {}

    def signature(self) -> tuple:
        """Every input of :meth:`characteristics` except the work-item count.

        Two analyses with equal signatures produce bitwise-identical
        :class:`KernelCharacteristics` for any config at any injected
        ``parallel_iterations`` — the guarantee the parametric sweep
        engine uses to share one analysis (and its cached config tails)
        across every point of a dataset-size sweep via
        :meth:`characteristics_at`.
        """
        return (
            self.kernel.name,
            self.strict_coalescing,
            self.map_var,
            self.serial,
            self.flops,
            self.bytes_per_access,
            self.base_loads_per_iter,
            self.stores_per_iter,
            self.distinct_arrays,
            self.smem_staged,
            self._staged_saved,
            self._staged_traffic,
            self._staged_elem_bytes,
            tuple(sorted(self._group_sizes.items())),
            self.reuse_arrays,
            self._reuse_weights,
            self._reuse_elem_bytes,
            self._access_weights,
            self._access_verdicts,
            self._access_categories,
            self._staged_shares,
        )

    def memory_profile(
        self, use_shared_memory: bool, tile_dim: int = 16
    ) -> MemoryProfile:
        """The cached :class:`MemoryProfile` for one memory shape.

        Public view of the per-shape cache for consumers outside the
        explorer (the surrogate's feature extractor reads the coalesced
        fractions and instruction-stream partial sums here).  The
        default ``tile_dim`` of 16 is the tile of the canonical
        256-thread block.
        """
        return self._profile(use_shared_memory, tile_dim)

    # ------------------------------------------------------------------ #
    def _profile(self, use_shared_memory: bool, tile_dim: int) -> MemoryProfile:
        key = (use_shared_memory, tile_dim)
        profile = self._profiles.get(key)
        if profile is None:
            profile = self._compute_profile(use_shared_memory, tile_dim)
            self._profiles[key] = profile
        return profile

    def _compute_profile(
        self, use_shared_memory: bool, tile_dim: int
    ) -> MemoryProfile:
        """Replay the reference memory-stream accumulations for one shape."""
        serial = self.serial
        saved = 0.0
        smem_traffic_insts = 0.0
        syncs = 0.0
        staging = False
        if use_shared_memory:
            staging = bool(self.smem_staged or self._reuse_weights)
            saved = self._staged_saved
            smem_traffic_insts = self._staged_traffic
            if self.smem_staged:
                syncs = 1.0 * serial
            for weight in self._reuse_weights:
                saved += weight * (1 - 1 / tile_dim)
                smem_traffic_insts += weight * _SMEM_ACCESS_COST
            if self._reuse_weights:
                syncs = max(syncs, serial / tile_dim)

        loads_per_iter = self.base_loads_per_iter - (saved if staging else 0.0)
        loads_per_iter = max(loads_per_iter, 0.0)

        tile_coal = _STRICT_TILE_COALESCING if self.strict_coalescing else 1.0
        weights_total = 0.0
        weights_coalesced = 0.0
        if use_shared_memory:
            for weight, verdict, category, share in zip(
                self._access_weights,
                self._access_verdicts,
                self._access_categories,
                self._staged_shares,
            ):
                if category == _REUSE:
                    weights_total += weight / tile_dim
                    weights_coalesced += weight / tile_dim
                elif category == _STAGED:
                    weights_total += share
                    weights_coalesced += share * tile_coal
                else:
                    weights_total += weight
                    if verdict:
                        weights_coalesced += weight
        else:
            for weight, verdict in zip(
                self._access_weights, self._access_verdicts
            ):
                weights_total += weight
                if verdict:
                    weights_coalesced += weight
        coalesced_fraction = (
            weights_coalesced / weights_total if weights_total else 1.0
        )
        sum_per_iter = loads_per_iter + self.stores_per_iter
        address_insts = _ADDRESS_OVERHEAD * sum_per_iter
        return MemoryProfile(
            loads_per_iter=loads_per_iter,
            smem_traffic_insts=smem_traffic_insts,
            syncs=syncs,
            coalesced_fraction=coalesced_fraction,
            mem_insts_base=sum_per_iter * serial,
            comp_base=self.flops + address_insts + smem_traffic_insts,
        )

    # ------------------------------------------------------------------ #
    def _config_tail(self, config: MappingConfig) -> tuple:
        """Everything per-config that does not depend on the work-item
        count: ``(name, block, comp_insts, mem_insts, coalesced_fraction,
        registers, smem_bytes, syncs, coarsening)``.

        The mapping reshapes instruction counts, register pressure, and
        shared-memory footprint through the config alone; only ``threads``
        (and the block floor derived from it) reads
        ``parallel_iterations``.  Caching the tail per config lets a
        parametric sweep re-evaluate one kernel at many dataset sizes for
        just a ceil-division and a dataclass construction per point.
        """
        tail = self._tails.get(config)
        if tail is None:
            serial = self.serial
            block = config.block_size
            tile_dim = max(2, int(math.sqrt(block)))
            profile = self._profile(config.use_shared_memory, tile_dim)

            unroll = config.unroll
            loop_insts = _LOOP_OVERHEAD / unroll if serial > 1 else 0.0
            mem_insts = profile.mem_insts_base
            comp_insts = (profile.comp_base + loop_insts) * serial

            coarse = config.coarsening
            if coarse > 1:
                mem_insts *= coarse
                comp_insts = (
                    comp_insts * coarse - loop_insts * serial * (coarse - 1)
                )

            registers = self._reg_base + 3 * (unroll - 1) + 2 * (coarse - 1)
            if registers > 60:
                registers = 60
            smem_bytes = 0
            if config.use_shared_memory:
                if self.smem_staged:
                    smem_bytes = self._staged_elem_bytes * (block + 2)
                smem_bytes += self._reuse_elem_bytes * tile_dim * tile_dim
            tail = (
                f"{self.kernel.name}[{config.label()}]",
                block,
                comp_insts,
                mem_insts if mem_insts > 1e-9 else 1e-9,
                profile.coalesced_fraction,
                registers,
                smem_bytes,
                profile.syncs,
                coarse,
            )
            self._tails[config] = tail
        return tail

    def characteristics(self, config: MappingConfig) -> KernelCharacteristics:
        """The reference synthesis as a closed form of the precompute.

        Bitwise-equal to ``synthesize_characteristics(kernel, arrays,
        config, strict_coalescing=...)`` for every config: the per-config
        tail replays the reference's remaining float operations in the
        reference's order on the profile's cached partial sums.
        """
        (
            name,
            block,
            comp_insts,
            mem_insts,
            coalesced,
            registers,
            smem_bytes,
            syncs,
            coarse,
        ) = self._config_tail(config)

        threads_pair = self._threads_by_coarse.get(coarse)
        if threads_pair is None:
            threads = max(1, math.ceil(self.parallel_iterations / coarse))
            threads_pair = (threads, 32 if threads < 32 else threads)
            self._threads_by_coarse[coarse] = threads_pair
        threads, block_floor = threads_pair
        # Positional construction: keyword parsing is measurable at one
        # call per candidate mapping (field order per the dataclass).
        return KernelCharacteristics(
            name,
            threads,
            block if block < block_floor else block_floor,
            comp_insts,
            mem_insts,
            coalesced,
            self._bytes_pa,
            registers,
            smem_bytes,
            syncs,
        )

    def characteristics_at(
        self, config: MappingConfig, parallel_iterations: int
    ) -> KernelCharacteristics:
        """:meth:`characteristics` with the work-item count overridden.

        The parametric sweep engine holds one analysis (built at an anchor
        dataset) and injects each sweep point's exposed parallelism here;
        for an analysis whose config-independent fields match the point's
        own, the result is bitwise-equal to building a fresh analysis at
        that point and calling :meth:`characteristics`.
        """
        (
            name,
            block,
            comp_insts,
            mem_insts,
            coalesced,
            registers,
            smem_bytes,
            syncs,
            coarse,
        ) = self._config_tail(config)
        threads = max(1, math.ceil(parallel_iterations / coarse))
        block_floor = 32 if threads < 32 else threads
        block_size = block if block < block_floor else block_floor
        template = self._char_fields.get(config)
        if template is None:
            # First point for this config: a validated construction guards
            # the tail's config-constant fields once; the two per-point
            # fields (threads, block_size) are positive by construction,
            # so later points clone the field dict and skip __post_init__.
            chars = KernelCharacteristics(
                name,
                threads,
                block_size,
                comp_insts,
                mem_insts,
                coalesced,
                self._bytes_pa,
                registers,
                smem_bytes,
                syncs,
            )
            self._char_fields[config] = dict(chars.__dict__)
            return chars
        chars = object.__new__(KernelCharacteristics)
        fields = chars.__dict__
        fields.update(template)
        fields["threads"] = threads
        fields["block_size"] = block_size
        return chars

    def config_columns(
        self,
        configs: Sequence[MappingConfig],
        parallel_iterations: int | None = None,
    ) -> tuple[dict[str, np.ndarray], np.ndarray, dict[int, str]]:
        """The candidate grid as structure-of-arrays columns, no objects.

        Returns ``(columns, index_map, errors)``: one NumPy array per
        :class:`KernelCharacteristics` field (the
        :data:`repro.gpu.vectorized.COLUMN_FIELDS` layout), the original
        config index of each row (synthesis failures are dropped from the
        rows but keep their position in ``errors``), and the per-config
        synthesis error messages.  Row order is grid order, so an argmin
        over the columns obeys the explorer's first-minimum tie-break.

        This is the streaming scorer's input: values are bitwise-equal to
        the per-config :meth:`characteristics` fields — the tails are the
        same cached tuples, and the threads/block-floor ceilings replay
        the same scalar expressions — but nothing per-config is
        materialized beyond one tuple row.  Skipping the dataclass
        validation is sound: a successful :meth:`_config_tail` already
        guarantees every ``__post_init__`` invariant (``mem_insts`` is
        floored at 1e-9, ``comp_insts`` and ``syncs`` are sums of
        non-negative terms, the coalesced fraction is a convex weight
        ratio with tile factor 0.40 <= 1, registers/threads/block are
        positive by construction).
        """
        iterations = (
            self.parallel_iterations
            if parallel_iterations is None
            else parallel_iterations
        )
        tails = []
        rows: list[int] = []
        errors: dict[int, str] = {}
        tail_of = self._config_tail
        for index, config in enumerate(configs):
            try:
                tails.append(tail_of(config))
            except ValueError as exc:
                errors[index] = str(exc)
                continue
            rows.append(index)
        index_map = np.asarray(rows, dtype=np.int64)
        if not tails:
            empty_i = np.empty(0, dtype=np.int64)
            empty_f = np.empty(0, dtype=np.float64)
            columns = {
                "block_size": empty_i,
                "registers_per_thread": empty_i,
                "shared_mem_per_block": empty_i,
                "threads": empty_i,
                "bytes_per_access": empty_i,
                "mem_insts_per_thread": empty_f,
                "comp_insts_per_thread": empty_f,
                "coalesced_fraction": empty_f,
                "syncs_per_thread": empty_f,
            }
            return columns, index_map, errors
        (
            _names,
            block,
            comp_insts,
            mem_insts,
            coalesced,
            registers,
            smem_bytes,
            syncs,
            coarse,
        ) = zip(*tails)
        block_arr = np.asarray(block, dtype=np.int64)
        coarse_arr = np.asarray(coarse, dtype=np.int64)
        count = len(tails)
        threads_arr = np.empty(count, dtype=np.int64)
        floor_arr = np.empty(count, dtype=np.int64)
        # A handful of distinct coarsening factors share one scalar
        # ceiling each — the same expression characteristics() evaluates.
        for coarse_value in dict.fromkeys(coarse):
            threads = max(1, math.ceil(iterations / coarse_value))
            block_floor = 32 if threads < 32 else threads
            mask = coarse_arr == coarse_value
            threads_arr[mask] = threads
            floor_arr[mask] = block_floor
        columns = {
            "block_size": np.minimum(block_arr, floor_arr),
            "registers_per_thread": np.asarray(registers, dtype=np.int64),
            "shared_mem_per_block": np.asarray(smem_bytes, dtype=np.int64),
            "threads": threads_arr,
            "bytes_per_access": np.full(count, self._bytes_pa, dtype=np.int64),
            "mem_insts_per_thread": np.asarray(mem_insts, dtype=np.float64),
            "comp_insts_per_thread": np.asarray(comp_insts, dtype=np.float64),
            "coalesced_fraction": np.asarray(coalesced, dtype=np.float64),
            "syncs_per_thread": np.asarray(syncs, dtype=np.float64),
        }
        return columns, index_map, errors

    def characteristics_grid(
        self,
        configs: Sequence[MappingConfig],
        iterations_list: Sequence[int],
    ) -> tuple[list[list[KernelCharacteristics | None]], dict[int, str]]:
        """:meth:`characteristics_at` over a whole configs x points grid.

        Returns one characteristics row per work-item count, with ``None``
        in the slots of configs whose synthesis fails (each such config is
        reported once, by position, in the error dict — the failure is
        independent of the work-item count, so one message covers every
        point).  Iterating config-outer pays the tail and template
        lookups once per config instead of once per cell and shares the
        thread-count ceiling across configs with equal coarsening, which
        is what makes the sweep engine's per-point cost a handful of
        dict writes.
        """
        points = len(iterations_list)
        grids: list[list[KernelCharacteristics | None]] = [
            [None] * len(configs) for _ in range(points)
        ]
        errors: dict[int, str] = {}
        threads_rows: dict[int, list[tuple[int, int]]] = {}
        new = object.__new__
        for index, config in enumerate(configs):
            try:
                tail = self._config_tail(config)
            except ValueError as exc:
                errors[index] = str(exc)
                continue
            (
                name,
                block,
                comp_insts,
                mem_insts,
                coalesced,
                registers,
                smem_bytes,
                syncs,
                coarse,
            ) = tail
            pairs = threads_rows.get(coarse)
            if pairs is None:
                pairs = []
                for iterations in iterations_list:
                    threads = max(1, math.ceil(iterations / coarse))
                    pairs.append((threads, 32 if threads < 32 else threads))
                threads_rows[coarse] = pairs
            template = self._char_fields.get(config)
            start = 0
            if template is None:
                threads, block_floor = pairs[0]
                try:
                    chars = KernelCharacteristics(
                        name,
                        threads,
                        block if block < block_floor else block_floor,
                        comp_insts,
                        mem_insts,
                        coalesced,
                        self._bytes_pa,
                        registers,
                        smem_bytes,
                        syncs,
                    )
                except ValueError as exc:
                    errors[index] = str(exc)
                    continue
                template = dict(chars.__dict__)
                self._char_fields[config] = template
                grids[0][index] = chars
                start = 1
            for row, (threads, block_floor) in zip(
                grids[start:], pairs[start:]
            ):
                chars = new(KernelCharacteristics)
                fields = chars.__dict__
                fields.update(template)
                fields["threads"] = threads
                fields["block_size"] = (
                    block if block < block_floor else block_floor
                )
                row[index] = chars
        return grids, errors


def analyze_kernel(
    kernel: KernelSkeleton,
    arrays: Mapping[str, ArrayDecl],
    strict_coalescing: bool = True,
) -> KernelAnalysis:
    """Precompute the config-independent analysis of one kernel."""
    return KernelAnalysis(kernel, arrays, strict_coalescing)
