"""The fused streaming explorer: argmin-only search at memory speed.

Third member of the explorer family (``reference`` → ``fast`` →
``stream``).  The fast path already synthesizes characteristics through
a per-kernel precompute and scores them vectorized, but it still
materializes one ``KernelCharacteristics`` + ``GpuTimingBreakdown`` +
``CandidateResult`` per candidate — at wide()-grid scale that object
churn *is* the runtime.  The streaming path drops it entirely:

- :meth:`~repro.transform.analysis.KernelAnalysis.config_columns` turns
  the cached per-config tails straight into structure-of-arrays columns
  (nine arrays, zero per-config objects);
- :func:`~repro.gpu.vectorized.fused_seconds` scores a whole chunk in
  one arena pass — occupancy, MWP/CWP regime selection, and repetitions
  fused over preallocated buffers, bitwise-equal to the reference model;
- chunks stream through a reused :class:`~repro.gpu.vectorized.ScoreArena`
  (serial) or through the persistent shared-memory worker pool
  (:func:`repro.service.parallel.stream_pool`), which returns only
  ``(argmin, seconds, legal)`` scalars per chunk.

What comes back is the *argmin*: the best mapping, its bitwise-exact
time, and counts.  Only the winner is materialized (one scalar
``model.breakdown`` call), so callers that need the full candidate table
still use the fast path; callers that need "the best mapping, now" —
sweeps, services, autotuners — skip ~99% of the former work.

Equivalence contract: same columns, same elementwise operations in the
same order, same first-minimum tie-break (``np.argmin`` keeps the first
occurrence; chunk merging uses strict ``<`` in row order), same
``no legal mapping`` error text.  ``tests/transform/test_stream.py``
pins all of it against the scalar reference via Hypothesis.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.gpu.model import GpuPerformanceModel
from repro.gpu.vectorized import ScoreArena, fused_argmin
from repro.obs.trace import span as trace_span
from repro.skeleton.kernel import KernelSkeleton
from repro.skeleton.program import ProgramSkeleton
from repro.transform.analysis import KernelAnalysis, analyze_kernel
from repro.transform.explorer import (
    CandidateResult,
    KernelProjection,
    no_legal_mapping,
)
from repro.transform.space import MappingConfig, TransformationSpace

#: Rows per fused pass.  Bounds the arena's working set (fits L2) while
#: keeping the per-chunk NumPy dispatch overhead amortized; also the
#: chunk granularity handed to the shared-memory pool.
DEFAULT_CHUNK_ROWS = 16384


@dataclass(frozen=True)
class StreamResult:
    """The argmin of one kernel's transformation search.

    ``best`` is a fully materialized :class:`CandidateResult` — config,
    characteristics, and scalar breakdown, bitwise-identical to the
    reference explorer's winner.  ``explored``/``skipped`` carry the
    same accounting the full table would (legal rows scored vs illegal +
    synthesis failures); only the per-candidate objects are gone.
    """

    kernel: str
    best: CandidateResult
    #: Index of the winning config in the space's grid order.
    index: int
    explored: int
    skipped: int
    chunks: int

    @property
    def seconds(self) -> float:
        return self.best.breakdown.seconds

    @property
    def search_width(self) -> int:
        return self.explored + self.skipped

    def projection(self) -> KernelProjection:
        """A :class:`KernelProjection` carrying only the winner.

        Drop-in for callers that read ``best``/``seconds``; the
        candidate table holds just the materialized best (stream scoring
        keeps no others), so ``search_width`` on the projection counts 1
        — use :attr:`search_width` here for the true width.
        """
        return KernelProjection(
            kernel=self.kernel,
            best=self.best,
            candidates=(self.best,),
            skipped=(),
            pruned=(),
        )


@dataclass(frozen=True)
class StreamProgramResult:
    """Per-kernel argmins for a whole program (one iteration)."""

    program: str
    kernels: tuple[StreamResult, ...]

    @property
    def seconds(self) -> float:
        return sum(k.seconds for k in self.kernels)


class StreamingExplorer:
    """A warm, reusable fused scorer for one performance model.

    Holds the scratch arena, the per-kernel analyses, and the per-kernel
    column grids across calls, so re-exploring a kernel (the service
    pattern: same workload, many what-ifs) costs one fused pass and one
    argmin — no synthesis, no allocation.  ``workers > 0`` streams
    chunks through the persistent shared-memory pool when it is
    available (fork platforms), falling back to in-process serial
    chunking otherwise; results are identical either way.

    Thread-safe: the arena is thread-local (concurrent fused passes
    would otherwise overwrite each other's buffers — the batch runner
    shares one engine, and so one explorer, across its worker threads),
    and the analysis/column caches only ever store idempotent values.
    """

    def __init__(
        self,
        model: GpuPerformanceModel,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        workers: int = 0,
    ) -> None:
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        self.model = model
        self.chunk_rows = chunk_rows
        self.workers = workers
        self._local = threading.local()
        #: id(kernel) -> (kernel, analysis-or-error); the strong kernel
        #: reference pins the id against reuse by a new object.
        self._analyses: dict[int, tuple[KernelSkeleton, object]] = {}
        #: (id(kernel), space fingerprint) -> config_columns result.
        self._columns: dict[tuple[int, str], tuple] = {}

    @property
    def _arena(self) -> ScoreArena:
        arena = getattr(self._local, "arena", None)
        if arena is None:
            arena = self._local.arena = ScoreArena()
        return arena

    # ------------------------------------------------------------------ #
    def _analysis(
        self, kernel: KernelSkeleton, program: ProgramSkeleton
    ) -> KernelAnalysis | ValueError:
        key = id(kernel)
        cached = self._analyses.get(key)
        if cached is not None and cached[0] is kernel:
            return cached[1]  # type: ignore[return-value]
        try:
            analysis: KernelAnalysis | ValueError = analyze_kernel(
                kernel, program.array_map, self.model.arch.strict_coalescing
            )
        except ValueError as exc:
            analysis = exc
        self._analyses[key] = (kernel, analysis)
        return analysis

    def _grid(
        self,
        kernel: KernelSkeleton,
        analysis: KernelAnalysis,
        space: TransformationSpace,
        configs: tuple[MappingConfig, ...],
    ) -> tuple:
        key = (id(kernel), space.fingerprint())
        cached = self._columns.get(key)
        if cached is None:
            cached = analysis.config_columns(configs)
            self._columns[key] = cached
        return cached

    # ------------------------------------------------------------------ #
    def explore_kernel(
        self,
        kernel: KernelSkeleton,
        program: ProgramSkeleton,
        space: TransformationSpace | None = None,
    ) -> StreamResult:
        """The best legal mapping of ``kernel``, streamed.

        Raises the explorer-family ``no legal mapping`` ``ValueError``
        when every config is illegal or fails synthesis (or the space is
        empty) — same text, same ``tried`` count as the reference.
        """
        space = space or TransformationSpace.default()
        configs = space.configs()
        arch = self.model.arch
        with trace_span(
            "search", kernel=kernel.name, explorer="stream"
        ) as search:
            analysis = self._analysis(kernel, program)
            if isinstance(analysis, ValueError):
                raise no_legal_mapping(kernel.name, arch.name, len(configs))
            columns, index_map, _errors = self._grid(
                kernel, analysis, space, configs
            )
            rows = int(index_map.shape[0])
            best_row, best_seconds, legal = self._argmin(columns, rows)
            chunks = max(1, -(-rows // self.chunk_rows)) if rows else 0
            search.set(
                explored=legal,
                illegal=len(configs) - legal,
                chunks=chunks,
            )
        if best_row < 0:
            raise no_legal_mapping(kernel.name, arch.name, len(configs))
        index = int(index_map[best_row])
        config = configs[index]
        # Materialize the one winning candidate through the scalar
        # oracle; its seconds are bitwise-equal to the fused pass's.
        chars = analysis.characteristics(config)
        breakdown = self.model.breakdown(chars)
        return StreamResult(
            kernel=kernel.name,
            best=CandidateResult(config, chars, breakdown),
            index=index,
            explored=legal,
            skipped=len(configs) - legal,
            chunks=chunks,
        )

    def _argmin(
        self, columns: dict, rows: int
    ) -> tuple[int, float, int]:
        """First-minimum argmin over the grid, chunked and merged."""
        if rows == 0:
            return -1, float("inf"), 0
        if self.workers > 0 and rows > self.chunk_rows:
            from repro.service.parallel import stream_pool

            pool = stream_pool(self.workers)
            if pool is not None:
                try:
                    return pool.score_columns(
                        self.model, columns, self.chunk_rows
                    )
                except (OSError, RuntimeError, ValueError):
                    pass  # pool died mid-flight; fall through to serial
        best_row, best_seconds, legal_total = -1, float("inf"), 0
        for lo in range(0, rows, self.chunk_rows):
            hi = min(lo + self.chunk_rows, rows)
            chunk = {field: col[lo:hi] for field, col in columns.items()}
            relative, seconds, legal = fused_argmin(
                self.model, chunk, self._arena
            )
            legal_total += legal
            if relative >= 0 and seconds < best_seconds:
                best_row, best_seconds = lo + relative, seconds
        return best_row, best_seconds, legal_total

    def project_program(
        self,
        program: ProgramSkeleton,
        space: TransformationSpace | None = None,
    ) -> StreamProgramResult:
        """Per-kernel argmins for every kernel of ``program``."""
        return StreamProgramResult(
            program=program.name,
            kernels=tuple(
                self.explore_kernel(kernel, program, space)
                for kernel in program.kernels
            ),
        )


def explore_kernel_stream(
    kernel: KernelSkeleton,
    program: ProgramSkeleton,
    model: GpuPerformanceModel,
    space: TransformationSpace | None = None,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    workers: int = 0,
) -> StreamResult:
    """One-shot :meth:`StreamingExplorer.explore_kernel` (cold caches)."""
    explorer = StreamingExplorer(model, chunk_rows=chunk_rows, workers=workers)
    return explorer.explore_kernel(kernel, program, space)
