"""Iteration fusion (temporal blocking) for iterative stencil kernels.

The paper notes for HotSpot that "multiple invocations of the same kernel
across several iterations can be fused together".  Fusing ``t`` time steps
into one launch trades:

- **less traffic** — the array is loaded/stored once per ``t`` steps
  instead of every step — against
- **redundant compute** — each block must carry a halo that shrinks by
  one ring per fused step, so border work is recomputed (the classic
  trapezoid/pyramid scheme), and
- **occupancy pressure** — the staged tile grows to ``(b + 2t)^2`` per
  array.

This module synthesizes the fused kernel's characteristics, scores fusion
factors with the analytical model, and reports the best factor.  It is an
*extension* experiment (the paper's evaluation runs one step per launch);
``benchmarks/bench_ablation_iteration_fusion.py`` quantifies it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.gpu.characteristics import KernelCharacteristics
from repro.gpu.model import GpuPerformanceModel
from repro.skeleton.arrays import ArrayDecl
from repro.skeleton.kernel import KernelSkeleton
from repro.transform.synthesize import _neighbor_groups
from repro.util.validation import check_positive


@dataclass(frozen=True)
class StencilShape:
    """What iteration fusion needs to know about a stencil kernel."""

    array: str  # the time-stepped array
    taps: int  # loads per point of the stepped array
    radius: int  # halo ring width per step
    secondary_loads: int  # other per-point loads (e.g. HotSpot's power)
    stores: int  # per-point stores
    flops: float  # per-point flops
    element_bytes: int


def stencil_shape(
    kernel: KernelSkeleton, arrays: Mapping[str, ArrayDecl]
) -> StencilShape | None:
    """Recognize a fusable stencil; None if the kernel doesn't qualify.

    Requirements: a 2D parallel nest, one dominant tap group (>= 3 loads
    of one array at constant offsets), and all offsets within a small
    radius.  This covers HotSpot and SRAD-like update kernels.
    """
    if len(kernel.parallel_loops) != 2:
        return None
    groups = _neighbor_groups(kernel)
    best_sig, best_group = None, []
    for sig, group in groups.items():
        if len(group) > len(best_group):
            best_sig, best_group = sig, group
    if best_sig is None or len(best_group) < 3:
        return None
    array = best_sig[0]
    radius = 0
    for access in best_group:
        for idx in access.indices:
            radius = max(radius, abs(idx.offset))
    if radius == 0 or radius > 2:
        return None
    secondary = sum(
        w * 1.0
        for stmt in kernel.statements
        for w in [stmt.branch_prob * kernel.statement_weight(stmt)]
        for access in stmt.loads
        if access.array != array
    )
    stores = kernel.stores_per_iteration()
    return StencilShape(
        array=array,
        taps=len(best_group),
        radius=radius,
        secondary_loads=secondary,
        stores=stores,
        flops=kernel.flops_per_iteration,
        element_bytes=arrays[array].dtype.size_bytes,
    )


def fused_characteristics(
    kernel: KernelSkeleton,
    arrays: Mapping[str, ArrayDecl],
    fusion: int,
    block_size: int = 256,
) -> KernelCharacteristics:
    """Characteristics of one launch covering ``fusion`` time steps.

    The block computes a trapezoid: it stages a ``(b + 2rt)^2`` tile,
    then performs ``t`` steps entirely in shared memory, each step valid
    on a ring-smaller region, finally storing the ``b^2`` core.
    """
    check_positive("fusion", fusion)
    shape = stencil_shape(kernel, arrays)
    if shape is None:
        raise ValueError(
            f"kernel {kernel.name!r} is not a fusable 2D stencil"
        )
    b = max(4, int(math.sqrt(block_size)))
    halo = 2 * shape.radius * fusion
    tile_elems = (b + halo) ** 2
    core_elems = b * b

    # Global traffic per launch, per core element.
    loads_per_elem = (
        tile_elems / core_elems  # the stepped array, haloed, once
        + shape.secondary_loads * tile_elems / core_elems  # staged too
    )
    stores_per_elem = shape.stores  # core written once per launch
    mem_insts = loads_per_elem + stores_per_elem

    # Compute: step s updates a (b + halo - 2rs)^2 region.
    total_points = sum(
        (b + halo - 2 * shape.radius * s) ** 2 for s in range(1, fusion + 1)
    )
    comp_redundancy = total_points / (fusion * core_elems)
    smem_ops_per_point = shape.taps + shape.secondary_loads + 1
    comp_insts = fusion * comp_redundancy * (
        shape.flops + smem_ops_per_point
    ) + 2.0 * mem_insts  # address arithmetic on the global accesses

    threads = kernel.parallel_iterations
    smem_bytes = int(
        tile_elems * shape.element_bytes * (2 + shape.secondary_loads)
    )  # double buffer + staged secondaries
    return KernelCharacteristics(
        name=f"{kernel.name}[fused x{fusion}]",
        threads=threads,
        block_size=block_size,
        comp_insts_per_thread=comp_insts,
        mem_insts_per_thread=mem_insts,
        coalesced_fraction=0.6,  # haloed tile loads, compute-1.0 rules
        bytes_per_access=shape.element_bytes,
        registers_per_thread=18,
        shared_mem_per_block=smem_bytes,
        syncs_per_thread=2.0 * fusion,
    )


@dataclass(frozen=True)
class FusionChoice:
    """Outcome of the fusion search."""

    fusion: int
    seconds_per_iteration: float
    launch_seconds: float
    characteristics: KernelCharacteristics


def best_fusion(
    kernel: KernelSkeleton,
    arrays: Mapping[str, ArrayDecl],
    model: GpuPerformanceModel,
    max_fusion: int = 8,
    block_size: int = 256,
) -> FusionChoice:
    """Search fusion factors 1..max and keep the best per-iteration time.

    Factors whose tile no longer fits in shared memory are skipped; the
    unfused kernel (factor 1) is always legal, so a result always exists.
    """
    check_positive("max_fusion", max_fusion)
    best: FusionChoice | None = None
    for t in range(1, max_fusion + 1):
        try:
            chars = fused_characteristics(kernel, arrays, t, block_size)
            launch = model.kernel_time(chars)
        except ValueError:
            continue  # occupancy/shared-memory overflow: illegal factor
        per_iteration = launch / t
        if best is None or per_iteration < best.seconds_per_iteration:
            best = FusionChoice(t, per_iteration, launch, chars)
    if best is None:
        raise ValueError(
            f"no legal fusion factor for kernel {kernel.name!r}"
        )
    return best
