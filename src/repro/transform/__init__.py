"""Code-transformation exploration (the GROPHECY core loop).

For each kernel skeleton GROPHECY enumerates candidate GPU mappings —
thread-block size, shared-memory staging of reused neighborhoods, loop
unrolling — synthesizes the kernel characteristics each mapping would
exhibit, scores them with the analytical GPU model, and keeps the best.
The projected kernel time of the paper's methodology (Section IV-A) is the
time of this best-performing version.
"""

from repro.transform.space import MappingConfig, TransformationSpace
from repro.transform.synthesize import (
    access_is_coalesced,
    synthesize_characteristics,
)
from repro.transform.analysis import KernelAnalysis, analyze_kernel
from repro.transform.explorer import (
    CandidateResult,
    KernelProjection,
    ProgramProjection,
    explore_configs,
    explore_kernel,
    project_program,
)
from repro.transform.fastpath import (
    explore_configs_fast,
    explore_kernel_fast,
)
from repro.transform.stream import (
    StreamingExplorer,
    StreamProgramResult,
    StreamResult,
    explore_kernel_stream,
)
from repro.transform.fusion import (
    FusionChoice,
    StencilShape,
    best_fusion,
    fused_characteristics,
    stencil_shape,
)

__all__ = [
    "MappingConfig",
    "TransformationSpace",
    "access_is_coalesced",
    "synthesize_characteristics",
    "KernelAnalysis",
    "analyze_kernel",
    "CandidateResult",
    "KernelProjection",
    "ProgramProjection",
    "explore_configs",
    "explore_configs_fast",
    "explore_kernel",
    "explore_kernel_fast",
    "StreamingExplorer",
    "StreamProgramResult",
    "StreamResult",
    "explore_kernel_stream",
    "project_program",
    "FusionChoice",
    "StencilShape",
    "best_fusion",
    "fused_characteristics",
    "stencil_shape",
]
