"""Exhaustive exploration of the transformation space."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.gpu.characteristics import KernelCharacteristics
from repro.gpu.model import GpuPerformanceModel, GpuTimingBreakdown
from repro.obs.trace import span as trace_span
from repro.skeleton.kernel import KernelSkeleton
from repro.skeleton.program import ProgramSkeleton
from repro.transform.space import MappingConfig, TransformationSpace
from repro.transform.synthesize import synthesize_characteristics


@dataclass(frozen=True)
class CandidateResult:
    """One explored mapping and its projected time."""

    config: MappingConfig
    characteristics: KernelCharacteristics
    breakdown: GpuTimingBreakdown

    @property
    def seconds(self) -> float:
        return self.breakdown.seconds


@dataclass(frozen=True)
class KernelProjection:
    """Outcome of exploring one kernel: best mapping + the whole table."""

    kernel: str
    best: CandidateResult
    candidates: tuple[CandidateResult, ...]
    skipped: tuple[tuple[MappingConfig, str], ...]
    #: Configs the fast path's branch-and-bound layer skipped because
    #: their lower bound exceeded the incumbent best — legal mappings
    #: that provably cannot win, as opposed to ``skipped`` (illegal).
    pruned: tuple[tuple[MappingConfig, str], ...] = ()

    @property
    def seconds(self) -> float:
        """The paper's 'projected kernel time': the best mapping's time."""
        return self.best.seconds

    @property
    def search_width(self) -> int:
        return len(self.candidates) + len(self.skipped) + len(self.pruned)

    def as_table(self, top: int | None = None):
        """The explored search space as a table, fastest first.

        ``top`` limits the rows (None = everything, plus skipped
        configurations at the bottom with their pruning reason).
        """
        from repro.util.tables import Table

        table = Table(
            ["mapping", "time (us)", "regime", "MWP", "CWP", "coalesced",
             "occupancy"],
            title=f"transformation search for {self.kernel!r} "
            f"({self.search_width} mappings)",
        )
        ranked = sorted(self.candidates, key=lambda c: c.seconds)
        if top is not None:
            ranked = ranked[:top]
        for candidate in ranked:
            bd = candidate.breakdown
            # Compare configs, not identity: cache round-trips and merged
            # parallel chunks rebuild equal-but-distinct candidate objects.
            marker = " <- best" if candidate.config == self.best.config else ""
            table.add_row(
                [
                    candidate.config.label() + marker,
                    f"{candidate.seconds * 1e6:.1f}",
                    bd.regime,
                    f"{bd.mwp:.1f}",
                    f"{bd.cwp:.1f}",
                    f"{candidate.characteristics.coalesced_fraction:.0%}",
                    f"{bd.occupancy.occupancy_fraction:.0%}",
                ]
            )
        if top is None:
            for config, reason in self.skipped:
                table.add_row(
                    [config.label(), "-", f"skipped: {reason[:40]}", "-",
                     "-", "-", "-"]
                )
            for config, reason in self.pruned:
                table.add_row(
                    [config.label(), "-", f"pruned: {reason[:40]}", "-",
                     "-", "-", "-"]
                )
        return table


@dataclass(frozen=True)
class ProgramProjection:
    """Per-kernel projections for a whole program (one iteration)."""

    program: str
    kernels: tuple[KernelProjection, ...]

    @property
    def seconds(self) -> float:
        return sum(k.seconds for k in self.kernels)

    def kernel(self, name: str) -> KernelProjection:
        for k in self.kernels:
            if k.kernel == name:
                return k
        raise KeyError(f"no projection for kernel {name!r}")


def no_legal_mapping(
    kernel_name: str, arch_name: str, tried: int
) -> ValueError:
    """The exploration-failed error, identical across every explorer path.

    The reference, fast, parallel, and streaming explorers all raise this
    exact text when a kernel has no legal mapping; centralizing it keeps
    the paths' error contract bitwise-aligned (tests compare messages).
    """
    return ValueError(
        f"no legal mapping for kernel {kernel_name!r} on "
        f"{arch_name} (tried {tried})"
    )


def explore_configs(
    kernel: KernelSkeleton,
    program: ProgramSkeleton,
    model: GpuPerformanceModel,
    configs: Iterable[MappingConfig],
) -> tuple[list[CandidateResult], list[tuple[MappingConfig, str]]]:
    """Score an explicit list of mappings; no best-selection.

    The building block under :func:`explore_kernel` — and under the
    service layer's parallel explorer, which splits a space into chunks,
    scores each chunk on a worker, and merges.  Returns the scored
    candidates and the pruned (config, reason) pairs, both in input
    order.
    """
    arrays = program.array_map
    candidates: list[CandidateResult] = []
    skipped: list[tuple[MappingConfig, str]] = []
    for config in configs:
        # Synthesis can reject a config too (no parallel loop to map, a
        # mapping that degenerates to zero work) — record it as skipped
        # rather than aborting the whole exploration.
        try:
            chars = synthesize_characteristics(
                kernel,
                arrays,
                config,
                strict_coalescing=model.arch.strict_coalescing,
            )
            breakdown = model.breakdown(chars)
        except ValueError as exc:
            skipped.append((config, str(exc)))
            continue
        candidates.append(CandidateResult(config, chars, breakdown))
    return candidates, skipped


def explore_kernel(
    kernel: KernelSkeleton,
    program: ProgramSkeleton,
    model: GpuPerformanceModel,
    space: TransformationSpace | None = None,
    explorer: str = "fast",
    prune: bool = False,
) -> KernelProjection:
    """Score every mapping in the space; keep the fastest legal one.

    Mappings that violate hardware limits (unlaunchable block sizes,
    shared-memory or register overflow) are recorded in ``skipped`` with
    the reason, mirroring how a real tuning search prunes illegal
    configurations.

    ``explorer`` selects the scoring path: ``"fast"`` (default) uses the
    precomputed-analysis + vectorized pipeline, ``"reference"`` the
    original scalar loop; both produce identical projections (see
    ``docs/EXPLORER.md``).  ``"stream"`` runs the fused argmin-only
    scorer (:mod:`repro.transform.stream`): the returned projection
    carries the identical best mapping/time but materializes *only* the
    best candidate — no per-candidate table, so ``search_width`` counts
    just the winner.  ``prune=True`` additionally enables bound-based
    pruning on the fast path — the best mapping and its time are
    unchanged, but provably-losing candidates land in ``pruned`` instead
    of ``candidates``.
    """
    if explorer not in ("fast", "reference", "stream"):
        raise ValueError(
            f"unknown explorer {explorer!r}: expected 'fast', 'reference', "
            f"or 'stream'"
        )
    space = space or TransformationSpace.default()
    if explorer == "stream":
        from repro.transform.stream import explore_kernel_stream

        return explore_kernel_stream(kernel, program, model, space).projection()
    if explorer == "fast":
        from repro.transform.fastpath import explore_kernel_fast

        return explore_kernel_fast(kernel, program, model, space, prune=prune)
    with trace_span(
        "search", kernel=kernel.name, explorer="reference"
    ) as search:
        candidates, skipped = explore_configs(
            kernel, program, model, space.configs()
        )
        search.set(explored=len(candidates), illegal=len(skipped))
    if not candidates:
        raise no_legal_mapping(kernel.name, model.arch.name, len(skipped))
    best = min(candidates, key=lambda c: c.seconds)
    return KernelProjection(
        kernel=kernel.name,
        best=best,
        candidates=tuple(candidates),
        skipped=tuple(skipped),
    )


def project_program(
    program: ProgramSkeleton,
    model: GpuPerformanceModel,
    space: TransformationSpace | None = None,
    explorer: str = "fast",
    prune: bool = False,
) -> ProgramProjection:
    """Project every kernel of a program (one application iteration)."""
    projections = tuple(
        explore_kernel(
            kernel, program, model, space, explorer=explorer, prune=prune
        )
        for kernel in program.kernels
    )
    return ProgramProjection(program=program.name, kernels=projections)
