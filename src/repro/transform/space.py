"""The transformation space GROPHECY explores."""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator

from repro.util.fingerprint import stable_digest
from repro.util.validation import check_positive


@lru_cache(maxsize=256)
def _space_configs(space: "TransformationSpace") -> tuple["MappingConfig", ...]:
    return tuple(iter(space))


@lru_cache(maxsize=4096)
def _label(block_size: int, use_shared_memory: bool, unroll: int,
           coarsening: int) -> str:
    smem = "+smem" if use_shared_memory else ""
    unroll_tag = f"+u{unroll}" if unroll > 1 else ""
    coarse = f"+c{coarsening}" if coarsening > 1 else ""
    return f"b{block_size}{smem}{unroll_tag}{coarse}"


@dataclass(frozen=True)
class MappingConfig:
    """One candidate mapping of a kernel onto the GPU.

    ``block_size``: threads per block; ``use_shared_memory``: stage reused
    neighborhoods (stencil halos) in shared memory; ``unroll``: serial-loop
    unroll factor (amortizes loop overhead at a register cost);
    ``coarsening``: work-items processed per thread — fewer, fatter
    threads amortize per-thread overheads and can improve ILP at an
    occupancy cost.
    """

    block_size: int = 256
    use_shared_memory: bool = False
    unroll: int = 1
    coarsening: int = 1

    def __post_init__(self) -> None:
        check_positive("block_size", self.block_size)
        check_positive("unroll", self.unroll)
        check_positive("coarsening", self.coarsening)
        if self.block_size % 32 != 0:
            raise ValueError(
                f"block_size should be a warp multiple, got {self.block_size}"
            )

    def label(self) -> str:
        # Memoized at module level: the explorer labels every candidate
        # of every exploration, and spaces re-yield equal configs.
        return _label(
            self.block_size, self.use_shared_memory, self.unroll,
            self.coarsening,
        )


@dataclass(frozen=True)
class TransformationSpace:
    """The cartesian candidate grid.

    The default grid (8 block sizes x smem on/off x 3 unroll factors = 48
    mappings per kernel) matches the scale of search GROPHECY performs; a
    degenerate space (`naive()`) provides the ablation baseline of "just
    port it with a fixed 256-thread block", and `wide()` adds thread
    coarsening for a 144-point search.
    """

    block_sizes: tuple[int, ...] = (64, 128, 192, 256, 320, 384, 448, 512)
    shared_memory_options: tuple[bool, ...] = (False, True)
    unroll_factors: tuple[int, ...] = (1, 2, 4)
    coarsening_factors: tuple[int, ...] = (1,)

    def __post_init__(self) -> None:
        if not self.block_sizes:
            raise ValueError("need at least one block size")
        if not self.shared_memory_options:
            raise ValueError("need at least one shared-memory option")
        if not self.unroll_factors:
            raise ValueError("need at least one unroll factor")
        if not self.coarsening_factors:
            raise ValueError("need at least one coarsening factor")

    def __iter__(self) -> Iterator[MappingConfig]:
        for block in self.block_sizes:
            for smem in self.shared_memory_options:
                for unroll in self.unroll_factors:
                    for coarse in self.coarsening_factors:
                        yield MappingConfig(block, smem, unroll, coarse)

    def configs(self) -> tuple[MappingConfig, ...]:
        """The grid as a tuple, memoized per space.

        ``__iter__`` re-constructs every ``MappingConfig`` (validation
        included) on each pass; the explorer walks the same space once
        per kernel, so both scoring paths take this cached view.
        """
        return _space_configs(self)

    def __len__(self) -> int:
        return (
            len(self.block_sizes)
            * len(self.shared_memory_options)
            * len(self.unroll_factors)
            * len(self.coarsening_factors)
        )

    def fingerprint(self) -> str:
        """Stable content hash of the candidate *set*.

        Axis values are sorted first: two spaces enumerating the same
        candidates in a different order explore the same set and
        fingerprint identically.
        """
        return stable_digest(
            {
                "block_sizes": sorted(self.block_sizes),
                "shared_memory_options": sorted(self.shared_memory_options),
                "unroll_factors": sorted(self.unroll_factors),
                "coarsening_factors": sorted(self.coarsening_factors),
            }
        )

    @staticmethod
    def naive() -> "TransformationSpace":
        """Single fixed mapping: the no-search ablation baseline."""
        return TransformationSpace(
            block_sizes=(256,),
            shared_memory_options=(False,),
            unroll_factors=(1,),
            coarsening_factors=(1,),
        )

    @staticmethod
    def default() -> "TransformationSpace":
        return TransformationSpace()

    @staticmethod
    def wide() -> "TransformationSpace":
        """Default grid extended with thread coarsening (1x/2x/4x)."""
        return TransformationSpace(coarsening_factors=(1, 2, 4))
