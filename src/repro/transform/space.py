"""The transformation space GROPHECY explores."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.util.fingerprint import stable_digest
from repro.util.validation import check_positive


@dataclass(frozen=True)
class MappingConfig:
    """One candidate mapping of a kernel onto the GPU.

    ``block_size``: threads per block; ``use_shared_memory``: stage reused
    neighborhoods (stencil halos) in shared memory; ``unroll``: serial-loop
    unroll factor (amortizes loop overhead at a register cost);
    ``coarsening``: work-items processed per thread — fewer, fatter
    threads amortize per-thread overheads and can improve ILP at an
    occupancy cost.
    """

    block_size: int = 256
    use_shared_memory: bool = False
    unroll: int = 1
    coarsening: int = 1

    def __post_init__(self) -> None:
        check_positive("block_size", self.block_size)
        check_positive("unroll", self.unroll)
        check_positive("coarsening", self.coarsening)
        if self.block_size % 32 != 0:
            raise ValueError(
                f"block_size should be a warp multiple, got {self.block_size}"
            )

    def label(self) -> str:
        smem = "+smem" if self.use_shared_memory else ""
        unroll = f"+u{self.unroll}" if self.unroll > 1 else ""
        coarse = f"+c{self.coarsening}" if self.coarsening > 1 else ""
        return f"b{self.block_size}{smem}{unroll}{coarse}"


@dataclass(frozen=True)
class TransformationSpace:
    """The cartesian candidate grid.

    The default grid (8 block sizes x smem on/off x 3 unroll factors = 48
    mappings per kernel) matches the scale of search GROPHECY performs; a
    degenerate space (`naive()`) provides the ablation baseline of "just
    port it with a fixed 256-thread block", and `wide()` adds thread
    coarsening for a 144-point search.
    """

    block_sizes: tuple[int, ...] = (64, 128, 192, 256, 320, 384, 448, 512)
    shared_memory_options: tuple[bool, ...] = (False, True)
    unroll_factors: tuple[int, ...] = (1, 2, 4)
    coarsening_factors: tuple[int, ...] = (1,)

    def __post_init__(self) -> None:
        if not self.block_sizes:
            raise ValueError("need at least one block size")
        if not self.shared_memory_options:
            raise ValueError("need at least one shared-memory option")
        if not self.unroll_factors:
            raise ValueError("need at least one unroll factor")
        if not self.coarsening_factors:
            raise ValueError("need at least one coarsening factor")

    def __iter__(self) -> Iterator[MappingConfig]:
        for block in self.block_sizes:
            for smem in self.shared_memory_options:
                for unroll in self.unroll_factors:
                    for coarse in self.coarsening_factors:
                        yield MappingConfig(block, smem, unroll, coarse)

    def __len__(self) -> int:
        return (
            len(self.block_sizes)
            * len(self.shared_memory_options)
            * len(self.unroll_factors)
            * len(self.coarsening_factors)
        )

    def fingerprint(self) -> str:
        """Stable content hash of the candidate *set*.

        Axis values are sorted first: two spaces enumerating the same
        candidates in a different order explore the same set and
        fingerprint identically.
        """
        return stable_digest(
            {
                "block_sizes": sorted(self.block_sizes),
                "shared_memory_options": sorted(self.shared_memory_options),
                "unroll_factors": sorted(self.unroll_factors),
                "coarsening_factors": sorted(self.coarsening_factors),
            }
        )

    @staticmethod
    def naive() -> "TransformationSpace":
        """Single fixed mapping: the no-search ablation baseline."""
        return TransformationSpace(
            block_sizes=(256,),
            shared_memory_options=(False,),
            unroll_factors=(1,),
            coarsening_factors=(1,),
        )

    @staticmethod
    def default() -> "TransformationSpace":
        return TransformationSpace()

    @staticmethod
    def wide() -> "TransformationSpace":
        """Default grid extended with thread coarsening (1x/2x/4x)."""
        return TransformationSpace(coarsening_factors=(1, 2, 4))
