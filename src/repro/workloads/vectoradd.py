"""VectorAdd: the pedagogical example of paper Section II-B.

Adding two large vectors is extremely data-parallel and bandwidth-bound on
both devices, so the GPU wins on raw kernel time by roughly the ratio of
memory bandwidths — yet loses end-to-end once the three PCIe crossings are
charged.  The quickstart example walks through exactly this projection.
"""

from __future__ import annotations

import numpy as np

from repro.cpu.model import CpuWorkProfile
from repro.skeleton.builder import KernelBuilder, ProgramBuilder
from repro.skeleton.program import ProgramSkeleton

from repro.workloads.base import Dataset, TestbedTargets, Workload


class VectorAdd(Workload):
    name = "VectorAdd"
    description = "c = a + b over large float32 vectors (Section II-B)"

    _BYTES_PER_ELEMENT = 12  # read a, read b, write c
    _FLOPS_PER_ELEMENT = 1

    def datasets(self) -> tuple[Dataset, ...]:
        return (
            Dataset("4M", 4 * 1024 * 1024),
            Dataset("16M", 16 * 1024 * 1024),
            Dataset("64M", 64 * 1024 * 1024),
        )

    @property
    def is_iterative(self) -> bool:
        return False

    def skeleton(self, dataset: Dataset) -> ProgramSkeleton:
        n = dataset.size
        pb = ProgramBuilder(f"vectoradd-{dataset.label}")
        pb.array("a", (n,)).array("b", (n,)).array("c", (n,))
        kb = KernelBuilder("add").parallel_loop("i", n)
        kb.load("a", "i").load("b", "i").store("c", "i").statement(
            flops=1, label="c[i] = a[i] + b[i]"
        )
        return pb.kernel(kb).build()

    def cpu_profile(self, dataset: Dataset) -> CpuWorkProfile:
        n = dataset.size
        return CpuWorkProfile(
            name=f"vectoradd-{dataset.label}",
            bytes_moved=self._BYTES_PER_ELEMENT * n,
            flops=self._FLOPS_PER_ELEMENT * n,
            efficiency=0.9,  # streaming add runs close to the roofline
        )

    def make_inputs(
        self, dataset: Dataset, rng: np.random.Generator
    ) -> dict[str, np.ndarray]:
        n = dataset.size
        return {
            "a": rng.standard_normal(n, dtype=np.float32),
            "b": rng.standard_normal(n, dtype=np.float32),
        }

    def run_reference(
        self, inputs: dict[str, np.ndarray], iterations: int = 1
    ) -> dict[str, np.ndarray]:
        if iterations != 1:
            raise ValueError("VectorAdd is not iterative")
        return {"c": inputs["a"] + inputs["b"]}

    def testbed_targets(self, dataset: Dataset) -> TestbedTargets:
        # Not a paper Table I workload: anchor to the virtual machine's
        # own bandwidth-bound times (GPU streams at ~47 GB/s effective,
        # CPU at ~9 GB/s).
        n = dataset.size
        gpu_seconds = self._BYTES_PER_ELEMENT * n / 47.6e9
        cpu_seconds = self._BYTES_PER_ELEMENT * n / 9.0e9
        return TestbedTargets(
            kernel_seconds=gpu_seconds, cpu_seconds=cpu_seconds
        )
