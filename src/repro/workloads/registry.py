"""Workload registry."""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.cfd import Cfd
from repro.workloads.hotspot import HotSpot
from repro.workloads.kmeans import KMeans
from repro.workloads.pathfinder import PathFinder
from repro.workloads.srad import Srad
from repro.workloads.stassuij import Stassuij
from repro.workloads.vectoradd import VectorAdd


def paper_workloads() -> tuple[Workload, ...]:
    """The four benchmarks of the paper's evaluation, in Table I order."""
    return (Cfd(), HotSpot(), Srad(), Stassuij())


def extended_workloads() -> tuple[Workload, ...]:
    """Extra validation workloads beyond the paper (its stated future
    work), measured against the *uncalibrated* simulator."""
    return (PathFinder(), KMeans())


def all_workloads() -> tuple[Workload, ...]:
    """Every workload in the library."""
    return paper_workloads() + extended_workloads() + (VectorAdd(),)


def get_workload(name: str) -> Workload:
    """Look up a workload by (case-insensitive) name."""
    for workload in all_workloads():
        if workload.name.lower() == name.lower():
            return workload
    known = ", ".join(w.name for w in all_workloads())
    raise KeyError(f"unknown workload {name!r}; known: {known}")
