"""Workload interface."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.cpu.model import CpuWorkProfile
from repro.datausage.hints import AnalysisHints
from repro.datausage.transfers import Direction
from repro.sim.noise import BimodalQuirk
from repro.skeleton.program import ProgramSkeleton
from repro.util.validation import check_positive


@dataclass(frozen=True)
class Dataset:
    """One input configuration of a workload.

    ``size`` is the workload's primary size parameter (particle count for
    CFD, grid edge for HotSpot/SRAD, dense column count for Stassuij);
    ``label`` matches the paper's Table I row labels.
    """

    label: str
    size: int

    def __post_init__(self) -> None:
        if not self.label:
            raise ValueError("dataset label must be non-empty")
        check_positive("size", self.size)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label


@dataclass(frozen=True)
class TestbedTargets:
    """Replayed Argonne-testbed calibration for one dataset (DESIGN.md §2).

    ``kernel_seconds`` is the measured total kernel time of one application
    iteration from the paper's Table I; the virtual GPU's per-kernel
    hardware factors are fitted so its noise-free time reproduces it.
    ``cpu_seconds`` anchors the CPU baseline (derived from the speedups the
    paper reports where available, chosen plausibly otherwise — Table II's
    error metrics are CPU-time-invariant, see EXPERIMENTS.md).
    ``transfer_quirks`` are per-(array, direction) pathologies from Fig. 5.
    """

    kernel_seconds: float
    cpu_seconds: float
    transfer_quirks: Mapping[tuple[str, Direction], BimodalQuirk] = field(
        default_factory=dict
    )
    #: In-application transfer slowdown relative to the synthetic
    #: calibration benchmark (driver state, allocation fragmentation,
    #: warm-up): the paper's measured in-app transfers run up to ~30%
    #: slower than the linear model at small sizes (e.g. SRAD 1024^2).
    transfer_context: float = 1.0

    def __post_init__(self) -> None:
        check_positive("kernel_seconds", self.kernel_seconds)
        check_positive("cpu_seconds", self.cpu_seconds)
        check_positive("transfer_context", self.transfer_context)
        object.__setattr__(
            self, "transfer_quirks", dict(self.transfer_quirks)
        )

    def quirk_for(
        self, array: str, direction: Direction
    ) -> BimodalQuirk | None:
        return self.transfer_quirks.get((array, direction))


class Workload(abc.ABC):
    """One benchmark: reference semantics + skeleton + calibration."""

    #: Workload identifier (Table I's "Application" column).
    name: str = ""
    #: One-line description for reports.
    description: str = ""

    # --- datasets -----------------------------------------------------------
    @abc.abstractmethod
    def datasets(self) -> tuple[Dataset, ...]:
        """The paper's data sizes for this workload, in Table I order."""

    def dataset(self, label: str) -> Dataset:
        for ds in self.datasets():
            if ds.label == label:
                return ds
        raise KeyError(f"{self.name}: no dataset {label!r}")

    def small_dataset(self) -> Dataset:
        """A tiny configuration for functional tests."""
        smallest = min(self.datasets(), key=lambda d: d.size)
        return Dataset("tiny", max(8, smallest.size // 64))

    # --- analysis inputs -----------------------------------------------------
    @abc.abstractmethod
    def skeleton(self, dataset: Dataset) -> ProgramSkeleton:
        """The code skeleton GROPHECY++ analyzes for this dataset."""

    def hints(self, dataset: Dataset) -> AnalysisHints:
        """User hints supplied alongside the skeleton (default: none)."""
        return AnalysisHints.none()

    @abc.abstractmethod
    def cpu_profile(self, dataset: Dataset) -> CpuWorkProfile:
        """Roofline work profile of one CPU-baseline iteration."""

    # --- functional semantics ---------------------------------------------
    @abc.abstractmethod
    def make_inputs(
        self, dataset: Dataset, rng: np.random.Generator
    ) -> dict[str, np.ndarray]:
        """Generate concrete input arrays for the dataset."""

    @abc.abstractmethod
    def run_reference(
        self, inputs: dict[str, np.ndarray], iterations: int = 1
    ) -> dict[str, np.ndarray]:
        """Run the reference implementation; returns the output arrays.

        Must not mutate ``inputs``.
        """

    # --- testbed calibration ---------------------------------------------
    @abc.abstractmethod
    def testbed_targets(self, dataset: Dataset) -> TestbedTargets:
        """Table-I replay targets for the virtual testbed."""

    # --- misc ------------------------------------------------------------------
    @property
    def is_iterative(self) -> bool:
        """Whether the paper sweeps iteration counts for this workload."""
        return True

    def iteration_sweep(self) -> tuple[int, ...]:
        """Iteration counts for the speedup-vs-iterations figures."""
        return (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<workload {self.name}>"
