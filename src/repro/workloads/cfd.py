"""CFD: unstructured-grid finite-volume Euler solver (Rodinia euler3d).

Three kernels per iteration, split to enforce global synchronization so an
array is fully consumed before being updated (the paper's Section IV-B):

1. ``compute_step_factor`` — per-cell local time step (also snapshots the
   variables, standing in for euler3d's copy kernel);
2. ``compute_flux`` — gathers the 5 conserved variables of each of the 4
   neighboring cells through the unstructured connectivity (a
   data-dependent *indirect* access — the BRS is unknown, so the whole
   variables array conservatively crosses the bus);
3. ``time_step`` — advances the variables from the snapshot and fluxes.

Arrays use the structure-of-arrays layout (variables[v][cell]) that the
real euler3d uses for coalescing.  The data size is the number of cells
(Table I: 97K / 193K / 233K — the Rodinia ``fvcorr.domn`` mesh sizes).
"""

from __future__ import annotations

import numpy as np

from repro.cpu.model import CpuWorkProfile
from repro.datausage.transfers import Direction
from repro.sim.noise import BimodalQuirk
from repro.skeleton.builder import KernelBuilder, ProgramBuilder
from repro.skeleton.program import ProgramSkeleton
from repro.skeleton.types import DType
from repro.workloads.base import Dataset, TestbedTargets, Workload

_NNB = 4  # neighbors per cell
_NVAR = 5  # conserved variables (rho, 3 momenta, energy)
_NNORM = 6  # stored face-normal coefficients per cell
_CFL = 0.4


class Cfd(Workload):
    name = "CFD"
    description = "unstructured finite-volume 3D Euler solver (Rodinia)"

    def datasets(self) -> tuple[Dataset, ...]:
        # The Rodinia fvcorr.domn mesh sizes behind the paper's labels.
        return (
            Dataset("97K", 97_046),
            Dataset("193K", 193_474),
            Dataset("233K", 232_536),
        )

    def iteration_sweep(self) -> tuple[int, ...]:
        return (1, 2, 4, 6, 9, 13, 18, 25, 40, 80, 160)

    # --- skeleton ------------------------------------------------------------
    def skeleton(self, dataset: Dataset) -> ProgramSkeleton:
        n = dataset.size
        pb = ProgramBuilder(f"cfd-{dataset.label}")
        pb.array("variables", (_NVAR, n))
        pb.array("areas", (n,))
        pb.array("neighbors", (n, _NNB), DType.int32)
        pb.array("normals", (n, _NNORM))
        pb.array("step_factors", (n,))
        pb.array("fluxes", (_NVAR, n))
        pb.array("old_variables", (_NVAR, n))

        k1 = KernelBuilder("compute_step_factor")
        k1.parallel_loop("i", n)
        k1.load("areas", "i")
        for v in range(_NVAR):
            k1.load("variables", v, "i")
            k1.store("old_variables", v, "i")
        k1.store("step_factors", "i")
        # density recip, velocity magnitude, sound speed (sqrt), cfl div.
        k1.statement(flops=12, label="local-time-step")

        k2 = KernelBuilder("compute_flux")
        k2.parallel_loop("i", n)
        k2.loop("j", _NNB)
        k2.load("neighbors", "i", "j")
        for v in range(_NVAR):
            # variables[v][neighbors[i][j]]: the cell dimension (the
            # fastest) is data-dependent -> conservative + uncoalesced.
            k2.gather("variables", v, "i", dims=(1,))
        k2.load("normals", "i", "j")
        # upwinded face flux: ~24 flops per neighbor per variable group.
        k2.statement(flops=24, label="neighbor-flux")
        for v in range(_NVAR):
            k2.load("variables", v, "i")
            k2.store("fluxes", v, "i")
        k2.load("normals", "i", 4)
        k2.load("normals", "i", 5)
        k2.statement(flops=20, label="cell-flux-accumulate",
                     amortize=("i",))

        k3 = KernelBuilder("time_step")
        k3.parallel_loop("i", n)
        k3.load("step_factors", "i")
        for v in range(_NVAR):
            k3.load("old_variables", v, "i")
            k3.load("fluxes", v, "i")
            k3.store("variables", v, "i")
        k3.statement(flops=2 * _NVAR, label="euler-advance")

        return (
            pb.kernel(k1)
            .kernel(k2)
            .kernel(k3)
            .temporary("step_factors", "fluxes", "old_variables")
            .build()
        )

    def cpu_profile(self, dataset: Dataset) -> CpuWorkProfile:
        n = dataset.size
        # Gathers defeat the cache: each neighbor access costs a DRAM
        # line.  Streaming passes over variables/fluxes add the rest.
        gather_bytes = _NNB * _NVAR * 4 * n
        streaming_bytes = (4 * _NVAR + 2 + _NNB + _NNORM) * 4 * n
        flops = (12 + _NNB * 24 + 20 + 2 * _NVAR) * n
        return CpuWorkProfile(
            name=f"cfd-{dataset.label}",
            bytes_moved=gather_bytes + streaming_bytes,
            flops=flops,
        )

    # --- reference implementation ------------------------------------------
    def make_inputs(
        self, dataset: Dataset, rng: np.random.Generator
    ) -> dict[str, np.ndarray]:
        n = dataset.size
        variables = np.empty((_NVAR, n), dtype=np.float32)
        variables[0] = 1.0 + 0.1 * rng.random(n)  # density
        variables[1:4] = 0.1 * rng.standard_normal((3, n))  # momenta
        variables[4] = 2.5 + 0.1 * rng.random(n)  # energy
        return {
            "variables": variables,
            "areas": (1.0 + rng.random(n)).astype(np.float32),
            "neighbors": rng.integers(0, n, size=(n, _NNB)).astype(np.int32),
            "normals": (0.1 * rng.standard_normal((n, _NNORM))).astype(
                np.float32
            ),
        }

    @staticmethod
    def compute_step_factor(variables, areas):
        density = variables[0]
        speed = np.sqrt((variables[1:4] ** 2).sum(axis=0)) / density
        return (_CFL / (np.sqrt(areas) * (speed + 1.0))).astype(np.float32)

    @staticmethod
    def compute_flux(variables, neighbors, normals):
        n = variables.shape[1]
        fluxes = np.zeros_like(variables)
        for j in range(_NNB):
            nb = neighbors[:, j]
            weight = normals[:, j]
            # Central difference against the j-th neighbor, weighted by
            # the stored face coefficient.
            fluxes += weight[None, :] * (variables[:, nb] - variables)
        fluxes += normals[:, 4][None, :] * variables
        fluxes += normals[:, 5][None, :]
        return fluxes.astype(np.float32)

    @staticmethod
    def time_step(old_variables, fluxes, step_factors):
        return (
            old_variables + step_factors[None, :] * fluxes
        ).astype(np.float32)

    def run_reference(
        self, inputs: dict[str, np.ndarray], iterations: int = 1
    ) -> dict[str, np.ndarray]:
        variables = inputs["variables"].astype(np.float32, copy=True)
        areas = inputs["areas"]
        neighbors = inputs["neighbors"]
        normals = inputs["normals"]
        for _ in range(iterations):
            step_factors = self.compute_step_factor(variables, areas)
            old_variables = variables.copy()
            fluxes = self.compute_flux(variables, neighbors, normals)
            variables = self.time_step(old_variables, fluxes, step_factors)
        return {"variables": variables}

    # --- testbed calibration ----------------------------------------------
    def testbed_targets(self, dataset: Dataset) -> TestbedTargets:
        # Kernel totals from Table I (note 233K's kernel time is *lower*
        # than 193K's in the paper — a mesh-structure effect we replay
        # as-is).  CPU anchor ~107 ns/cell/iteration for the 8-thread
        # gather-heavy baseline.
        kernel = {
            97_046: 1.9e-3,
            193_474: 3.2e-3,
            232_536: 3.1e-3,
        }[dataset.size]
        # Fig. 5's "inexplicably slow in half the runs" CFD transfer: the
        # areas upload hits a bimodal mode (a mid-chart point small enough
        # that Table I's totals barely move, exactly as in the paper).
        quirks = {
            ("areas", Direction.H2D): BimodalQuirk(
                probability=0.5, slow_factor=2.3
            )
        }
        return TestbedTargets(
            kernel_seconds=kernel,
            cpu_seconds=107e-9 * dataset.size,
            transfer_quirks=quirks,
        )
