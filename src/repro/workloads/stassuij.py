"""Stassuij: sparse x dense complex multiply from Green's Function MC.

The core of the GFMC light-nuclei code: a 132x132 sparse real matrix (CSR,
three vectors) applied to a 132x2048 dense matrix of complex numbers,
accumulating into the output (``Y += A @ X``).  A single kernel; the
application is *not* iterative in the paper's experiments.

This is the paper's decisive case: kernel-only prediction says the GPU
wins (1.10x); with transfer time charged, both the measured and predicted
speedups are ~0.4x — an overall slowdown.  The misprediction is not just a
magnitude error, it flips the porting decision.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.cpu.model import CpuWorkProfile
from repro.datausage.hints import AnalysisHints, SparseExtentHint
from repro.skeleton.arrays import ArrayKind
from repro.skeleton.builder import KernelBuilder, ProgramBuilder
from repro.skeleton.program import ProgramSkeleton
from repro.skeleton.types import DType
from repro.workloads.base import Dataset, TestbedTargets, Workload

_ROWS = 132
_NNZ_PER_ROW = 30  # ~23% density, giving nnz = 3960
_COMPLEX_FLOPS = 2  # one multiply-accumulate in complex terms


class Stassuij(Workload):
    name = "Stassuij"
    description = (
        "sparse(132x132, CSR) x dense(132xN complex128) multiply "
        "from Green's Function Monte Carlo"
    )

    def datasets(self) -> tuple[Dataset, ...]:
        # ``size`` is the dense column count; the paper uses 2048.
        return (Dataset("132 x 2048", 2048),)

    @property
    def is_iterative(self) -> bool:
        return False

    @property
    def nnz(self) -> int:
        return _ROWS * _NNZ_PER_ROW

    # --- skeleton ------------------------------------------------------------
    def skeleton(self, dataset: Dataset) -> ProgramSkeleton:
        cols = dataset.size
        nnz = self.nnz
        pb = ProgramBuilder(f"stassuij-{dataset.label.replace(' ', '')}")
        pb.array("csr_vals", (nnz,), DType.float64, ArrayKind.SPARSE)
        pb.array("csr_cols", (nnz,), DType.int32, ArrayKind.SPARSE)
        pb.array("csr_rowptr", (_ROWS + 1,), DType.int32)
        pb.array("x", (_ROWS, cols), DType.complex128)
        pb.array("y", (_ROWS, cols), DType.complex128)

        kb = KernelBuilder("spmm")
        kb.parallel_loop("r", _ROWS)
        kb.parallel_loop("j", cols)
        kb.loop("k", _NNZ_PER_ROW)
        # Row metadata, read once per (row, nonzero) — shared across the
        # dense columns (imperfect nest -> amortized statement).
        kb.load("csr_vals", "k").load("csr_cols", "k")
        kb.statement(flops=0, label="fetch-nonzero", amortize=("r", "k"))
        # The gather of x: the row index is data-dependent (csr_cols[k])
        # but columns stay contiguous across threads -> coalesced.
        kb.gather("x", "k", "j", dims=(0,))
        kb.statement(flops=_COMPLEX_FLOPS, label="multiply-accumulate")
        # y is read and written once per (row, column); the row-pointer
        # pair is fetched once per row.
        kb.load("y", "r", "j").store("y", "r", "j")
        kb.load("csr_rowptr", "r").load("csr_rowptr", ("r", 1, 1))
        kb.statement(flops=0, label="accumulate-out", amortize=("r", "j"))
        return pb.kernel(kb).build()

    def hints(self, dataset: Dataset) -> AnalysisHints:
        """The user knows the nnz of the sparse operand (Section III-B)."""
        return AnalysisHints(
            sparse_extents=(
                SparseExtentHint("csr_vals", self.nnz),
                SparseExtentHint("csr_cols", self.nnz),
            )
        )

    def cpu_profile(self, dataset: Dataset) -> CpuWorkProfile:
        cols = dataset.size
        # 8 real flops per complex MAC per (nonzero, column).
        flops = 8 * self.nnz * cols
        # Traffic: x rows gathered per nonzero (cache holds the 132-row
        # panel poorly at 2048 columns), y streamed in/out.
        bytes_moved = (self.nnz * cols + 2 * _ROWS * cols) * 16
        return CpuWorkProfile(
            name=f"stassuij-{dataset.label}",
            bytes_moved=bytes_moved,
            flops=flops,
            efficiency=1.0,
        )

    # --- reference implementation ------------------------------------------
    def make_inputs(
        self, dataset: Dataset, rng: np.random.Generator
    ) -> dict[str, np.ndarray]:
        cols = dataset.size
        nnz = self.nnz
        # Exactly _NNZ_PER_ROW nonzeros per row, distinct columns.
        col_idx = np.empty((_ROWS, _NNZ_PER_ROW), dtype=np.int32)
        for r in range(_ROWS):
            col_idx[r] = rng.choice(_ROWS, size=_NNZ_PER_ROW, replace=False)
        rowptr = np.arange(_ROWS + 1, dtype=np.int32) * _NNZ_PER_ROW
        real = rng.standard_normal((_ROWS, cols))
        imag = rng.standard_normal((_ROWS, cols))
        y_real = rng.standard_normal((_ROWS, cols))
        y_imag = rng.standard_normal((_ROWS, cols))
        return {
            "csr_vals": rng.standard_normal(nnz),
            "csr_cols": col_idx.reshape(-1),
            "csr_rowptr": rowptr,
            "x": (real + 1j * imag).astype(np.complex128),
            "y": (y_real + 1j * y_imag).astype(np.complex128),
        }

    def run_reference(
        self, inputs: dict[str, np.ndarray], iterations: int = 1
    ) -> dict[str, np.ndarray]:
        if iterations != 1:
            raise ValueError("Stassuij is not iterative")
        a = sp.csr_matrix(
            (
                inputs["csr_vals"],
                inputs["csr_cols"],
                inputs["csr_rowptr"],
            ),
            shape=(_ROWS, _ROWS),
        )
        y = inputs["y"] + a @ inputs["x"]
        return {"y": np.asarray(y, dtype=np.complex128)}

    # --- testbed calibration ----------------------------------------------
    def testbed_targets(self, dataset: Dataset) -> TestbedTargets:
        # Table I: kernel 2.4 ms.  CPU anchor 2.85 ms, back-derived from
        # the paper's kernel-only predicted speedup of 1.10x against the
        # measured 0.39x overall speedup (Section V-B.4).
        return TestbedTargets(
            kernel_seconds=2.4e-3,
            cpu_seconds=2.85e-3,
        )
