"""The paper's benchmarks (Section IV-B), implemented functionally.

Each workload provides:

- a NumPy **reference implementation** (the "CPU baseline" semantics),
  used to validate algorithmic correctness and derive honest work counts;
- a **code skeleton** — the abstract representation GROPHECY++ consumes —
  whose loop structure, access patterns, and flop counts mirror the
  reference implementation;
- **hints** (temporaries, sparse extents) exactly where the paper's
  methodology uses them;
- a per-dataset **testbed calibration**: the Table-I replay targets that
  anchor the virtual testbed's "measured" times (DESIGN.md §2), plus the
  per-transfer quirks the paper observed (Fig. 5).

Workloads: CFD (unstructured-grid Euler solver, 3 kernels), HotSpot
(structured-grid ODE stencil), SRAD (speckle-reducing anisotropic
diffusion, 2 kernels), Stassuij (sparse x dense complex multiply from
Green's Function Monte Carlo), plus the pedagogical VectorAdd from
Section II-B.
"""

from repro.workloads.base import Dataset, TestbedTargets, Workload
from repro.workloads.vectoradd import VectorAdd
from repro.workloads.hotspot import HotSpot
from repro.workloads.srad import Srad
from repro.workloads.cfd import Cfd
from repro.workloads.stassuij import Stassuij
from repro.workloads.pathfinder import PathFinder
from repro.workloads.kmeans import KMeans
from repro.workloads.registry import (
    all_workloads,
    extended_workloads,
    get_workload,
    paper_workloads,
)

__all__ = [
    "Dataset",
    "TestbedTargets",
    "Workload",
    "VectorAdd",
    "HotSpot",
    "Srad",
    "Cfd",
    "Stassuij",
    "PathFinder",
    "KMeans",
    "all_workloads",
    "extended_workloads",
    "get_workload",
    "paper_workloads",
]
