"""PathFinder: grid dynamic programming (Rodinia) — extended validation.

Not part of the paper's evaluation; included for its stated future work of
validating "on a wider range of applications".  PathFinder sweeps a
rows x cols cost grid top to bottom; each step computes, per column, the
running minimum over the three upstream neighbors:

    dst[j] = wall[row][j] + min(src[j-1], src[j], src[j+1])

One kernel launch per row (the row recurrence forces global
synchronization, like CFD's kernel split), trivially parallel across
columns.  The whole wall must cross the bus while each launch does a few
flops per column — a transfer-dominated worst case.

No paper anchor exists, so the virtual testbed runs *uncalibrated*
(hardware factors 1.0): measured times are the honest simulator outputs.
"""

from __future__ import annotations

import numpy as np

from repro.cpu.model import CpuWorkProfile
from repro.skeleton.builder import KernelBuilder, ProgramBuilder
from repro.skeleton.program import ProgramSkeleton
from repro.workloads.base import Dataset, TestbedTargets, Workload

_ROWS = 64  # DP depth per run; the data size scales the width


class PathFinder(Workload):
    name = "PathFinder"
    description = "grid dynamic programming over a cost field (Rodinia)"

    def datasets(self) -> tuple[Dataset, ...]:
        return (
            Dataset("100K cols", 100_000),
            Dataset("500K cols", 500_000),
        )

    @property
    def rows(self) -> int:
        return _ROWS

    @property
    def is_iterative(self) -> bool:
        # The row sweep is internal to one run; the paper-style iteration
        # sweep doesn't apply.
        return False

    # --- skeleton ------------------------------------------------------------
    def skeleton(self, dataset: Dataset) -> ProgramSkeleton:
        cols = dataset.size
        pb = ProgramBuilder(f"pathfinder-{dataset.label.replace(' ', '')}")
        pb.array("wall", (_ROWS, cols))
        pb.array("src", (cols,))
        pb.array("dst", (cols,))
        # One representative row-step kernel per DP row.  All launches
        # share the same shape; we model each row's kernel explicitly so
        # the dependence chain (dst -> src swap) is visible.
        for row in range(_ROWS):
            kb = KernelBuilder(f"step_row{row}")
            kb.parallel_loop("j", cols - 1, lower=1)
            if row % 2 == 0:
                src, dst = "src", "dst"
            else:
                src, dst = "dst", "src"
            kb.load("wall", row, "j")
            kb.load(src, ("j", 1, -1))
            kb.load(src, "j")
            kb.load(src, ("j", 1, 1))
            kb.store(dst, "j")
            kb.statement(flops=5, label="min3-accumulate")
            pb.kernel(kb)
        # The ping-pong buffers are intermediates except the final one.
        final = "dst" if _ROWS % 2 == 1 else "src"
        other = "src" if final == "dst" else "dst"
        return pb.temporary(other).build()

    def cpu_profile(self, dataset: Dataset) -> CpuWorkProfile:
        cols = dataset.size
        return CpuWorkProfile(
            name=f"pathfinder-{dataset.label}",
            bytes_moved=(_ROWS + 2) * cols * 4,  # stream wall + ping-pong
            flops=5 * _ROWS * cols,
            efficiency=0.5,  # branchy min-chain, modest vectorization
        )

    # --- reference implementation ------------------------------------------
    def make_inputs(
        self, dataset: Dataset, rng: np.random.Generator
    ) -> dict[str, np.ndarray]:
        cols = dataset.size
        return {
            "wall": rng.integers(0, 10, size=(_ROWS, cols)).astype(
                np.float32
            ),
            "src": np.zeros(cols, dtype=np.float32),
        }

    def run_reference(
        self, inputs: dict[str, np.ndarray], iterations: int = 1
    ) -> dict[str, np.ndarray]:
        if iterations != 1:
            raise ValueError("PathFinder is not iterative")
        wall = inputs["wall"]
        src = inputs["src"].astype(np.float32, copy=True)
        for row in range(wall.shape[0]):
            left = np.concatenate(([np.float32(np.inf)], src[:-1]))
            right = np.concatenate((src[1:], [np.float32(np.inf)]))
            dst = wall[row] + np.minimum(np.minimum(left, src), right)
            # Boundary columns only see two candidates (inf padding).
            src = dst.astype(np.float32)
        return {"cost": src}

    # --- testbed calibration ----------------------------------------------
    def testbed_targets(self, dataset: Dataset) -> TestbedTargets:
        """No paper anchor: replay the uncalibrated simulator.

        Targets are computed from the simulator's own noise-free models
        (factor 1.0), so the extended-validation experiments measure the
        *predictor's* error against an independent machine model rather
        than a replayed paper number.
        """
        from repro.cpu.model import CpuPerformanceModel
        from repro.cpu.arch import xeon_e5405
        from repro.sim.gpu_sim import SimulatedGpu, kernel_work_from_skeleton

        gpu = SimulatedGpu()
        program = self.skeleton(dataset)
        kernel_seconds = sum(
            gpu.expected_kernel_time(
                kernel_work_from_skeleton(k, program.array_map)
            )
            for k in program.kernels
        )
        cpu_seconds = CpuPerformanceModel(xeon_e5405()).time(
            self.cpu_profile(dataset)
        )
        return TestbedTargets(
            kernel_seconds=kernel_seconds, cpu_seconds=cpu_seconds
        )
