"""K-Means assignment step (Rodinia kmeans) — extended validation.

Not part of the paper's evaluation (future work: "a wider range of
applications").  The GPU-side kernel assigns each point to its nearest
centroid; the centroid update runs on the host, so per-iteration traffic
includes a *small* recurring piece (fresh centroids in, labels out) on
top of the one-time upload of the point cloud — a different transfer
profile from the paper's stencil apps.

Our program models one assignment pass: points and centroids in, labels
out.  Measured times come from the uncalibrated simulator (no paper
anchor), like PathFinder.
"""

from __future__ import annotations

import numpy as np

from repro.cpu.model import CpuWorkProfile
from repro.skeleton.builder import KernelBuilder, ProgramBuilder
from repro.skeleton.program import ProgramSkeleton
from repro.skeleton.types import DType
from repro.workloads.base import Dataset, TestbedTargets, Workload

_DIMS = 16  # feature dimension
_CLUSTERS = 32


class KMeans(Workload):
    name = "KMeans"
    description = "nearest-centroid assignment over a point cloud (Rodinia)"

    def datasets(self) -> tuple[Dataset, ...]:
        return (
            Dataset("64K points", 65_536),
            Dataset("512K points", 524_288),
        )

    @property
    def dims(self) -> int:
        return _DIMS

    @property
    def clusters(self) -> int:
        return _CLUSTERS

    # --- skeleton ------------------------------------------------------------
    def skeleton(self, dataset: Dataset) -> ProgramSkeleton:
        n = dataset.size
        pb = ProgramBuilder(f"kmeans-{dataset.label.replace(' ', '')}")
        # Feature-major layout (dims x points) for coalescing, like the
        # Rodinia CUDA port.
        pb.array("points", (_DIMS, n))
        pb.array("centroids", (_CLUSTERS, _DIMS))
        pb.array("labels", (n,), DType.int32)

        kb = KernelBuilder("assign")
        kb.parallel_loop("i", n)
        kb.loop("c", _CLUSTERS)
        kb.loop("d", _DIMS)
        # The point's features load once per (point, dim) and live in
        # registers across the cluster loop.
        kb.load("points", "d", "i")
        kb.statement(flops=0, label="register-point", amortize=("i", "d"))
        # Distance accumulation reads one centroid element (a warp-wide
        # broadcast) per (cluster, dim) pair.
        kb.load("centroids", "c", "d")
        kb.statement(flops=3, label="sq-distance-accumulate")
        # Running argmin once per cluster; label written once per point.
        kb.load("centroids", "c", 0)
        kb.statement(flops=2, label="argmin-update", amortize=("i", "c"))
        kb.store("labels", "i")
        kb.statement(flops=0, label="write-label", amortize=("i",))
        return pb.kernel(kb).build()

    def cpu_profile(self, dataset: Dataset) -> CpuWorkProfile:
        n = dataset.size
        return CpuWorkProfile(
            name=f"kmeans-{dataset.label}",
            # Points stream once (centroids stay cached).
            bytes_moved=(_DIMS * 4 + 4) * n,
            flops=3 * _DIMS * _CLUSTERS * n,
            efficiency=0.6,
        )

    # --- reference implementation ------------------------------------------
    def make_inputs(
        self, dataset: Dataset, rng: np.random.Generator
    ) -> dict[str, np.ndarray]:
        n = dataset.size
        return {
            "points": rng.standard_normal((_DIMS, n)).astype(np.float32),
            "centroids": rng.standard_normal(
                (_CLUSTERS, _DIMS)
            ).astype(np.float32),
        }

    def run_reference(
        self, inputs: dict[str, np.ndarray], iterations: int = 1
    ) -> dict[str, np.ndarray]:
        if iterations != 1:
            raise ValueError(
                "KMeans models a single assignment pass; the centroid "
                "update runs on the host"
            )
        points = inputs["points"]  # dims x n
        centroids = inputs["centroids"]  # k x dims
        # Squared distances via ||p||^2 - 2 c.p + ||c||^2.
        cross = centroids @ points  # k x n
        p_sq = (points * points).sum(axis=0)  # n
        c_sq = (centroids * centroids).sum(axis=1)  # k
        dist = p_sq[None, :] - 2.0 * cross + c_sq[:, None]
        return {"labels": dist.argmin(axis=0).astype(np.int32)}

    # --- testbed calibration ----------------------------------------------
    def testbed_targets(self, dataset: Dataset) -> TestbedTargets:
        """Uncalibrated-simulator targets (no paper anchor)."""
        from repro.cpu.arch import xeon_e5405
        from repro.cpu.model import CpuPerformanceModel
        from repro.sim.gpu_sim import SimulatedGpu, kernel_work_from_skeleton

        gpu = SimulatedGpu()
        program = self.skeleton(dataset)
        kernel_seconds = sum(
            gpu.expected_kernel_time(
                kernel_work_from_skeleton(k, program.array_map)
            )
            for k in program.kernels
        )
        cpu_seconds = CpuPerformanceModel(xeon_e5405()).time(
            self.cpu_profile(dataset)
        )
        return TestbedTargets(
            kernel_seconds=kernel_seconds, cpu_seconds=cpu_seconds
        )
