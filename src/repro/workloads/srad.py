"""SRAD: speckle-reducing anisotropic diffusion (Rodinia).

Two kernels per iteration: the first computes per-pixel diffusion
coefficients from image gradients; the second updates the image with the
weighted divergence.  The dependency between the kernels flows through
five arrays (c and the four directional derivatives), all of which are
device-side temporaries — the paper's "users can optionally provide hints
to specify written data that serve as temporaries" is exactly this case,
and Table I's equal input/output sizes (just the image) confirm it.
"""

from __future__ import annotations

import numpy as np

from repro.cpu.model import CpuWorkProfile
from repro.skeleton.builder import KernelBuilder, ProgramBuilder
from repro.skeleton.program import ProgramSkeleton
from repro.workloads.base import Dataset, TestbedTargets, Workload

_LAMBDA = 0.5


class Srad(Workload):
    name = "SRAD"
    description = "speckle-reducing anisotropic diffusion (Rodinia)"

    def datasets(self) -> tuple[Dataset, ...]:
        return (
            Dataset("1024 x 1024", 1024),
            Dataset("2048 x 2048", 2048),
            Dataset("4096 x 4096", 4096),
        )

    def iteration_sweep(self) -> tuple[int, ...]:
        return (1, 2, 5, 10, 25, 50, 100, 228, 400, 800)

    # --- skeleton ------------------------------------------------------------
    def skeleton(self, dataset: Dataset) -> ProgramSkeleton:
        n = dataset.size
        pb = ProgramBuilder(f"srad-{dataset.label.replace(' ', '')}")
        pb.array("J", (n, n))
        for name in ("c", "dN", "dS", "dE", "dW"):
            pb.array(name, (n, n))
        # Kernel 1: gradients + diffusion coefficient.
        k1 = KernelBuilder("srad_prepare")
        k1.parallel_loop("i", n - 1, lower=1)
        k1.parallel_loop("j", n - 1, lower=1)
        k1.load("J", "i", "j")
        k1.load("J", ("i", 1, -1), "j")
        k1.load("J", ("i", 1, 1), "j")
        k1.load("J", "i", ("j", 1, -1))
        k1.load("J", "i", ("j", 1, 1))
        k1.store("dN", "i", "j")
        k1.store("dS", "i", "j")
        k1.store("dE", "i", "j")
        k1.store("dW", "i", "j")
        k1.store("c", "i", "j")
        # 4 diffs, gradient magnitude, laplacian, q statistic with two
        # divisions, clipping: ~30 flops.
        k1.statement(flops=30, label="gradients+coefficient")
        # Kernel 2: divergence update.
        k2 = KernelBuilder("srad_update")
        k2.parallel_loop("i", n - 1, lower=1)
        k2.parallel_loop("j", n - 1, lower=1)
        k2.load("c", "i", "j")
        k2.load("c", ("i", 1, 1), "j")
        k2.load("c", "i", ("j", 1, 1))
        k2.load("dN", "i", "j")
        k2.load("dS", "i", "j")
        k2.load("dE", "i", "j")
        k2.load("dW", "i", "j")
        k2.load("J", "i", "j")
        k2.store("J", "i", "j")
        k2.statement(flops=10, label="divergence-update")
        return (
            pb.kernel(k1)
            .kernel(k2)
            .temporary("c", "dN", "dS", "dE", "dW")
            .build()
        )

    def cpu_profile(self, dataset: Dataset) -> CpuWorkProfile:
        n = dataset.size
        # DRAM traffic per iteration: J streamed twice (k1 read, k2
        # read-modify-write) plus five intermediate arrays written in k1
        # and read in k2.
        passes = 2 + 1 + 2 * 5
        return CpuWorkProfile(
            name=f"srad-{dataset.size}",
            bytes_moved=passes * n * n * 4,
            flops=40 * n * n,
        )

    # --- reference implementation ------------------------------------------
    def make_inputs(
        self, dataset: Dataset, rng: np.random.Generator
    ) -> dict[str, np.ndarray]:
        n = dataset.size
        # Speckled positive image (exponentiated noise, as in Rodinia).
        return {
            "J": np.exp(rng.random((n, n)) * 0.5).astype(np.float32)
        }

    @staticmethod
    def _neighbors(img: np.ndarray):
        """Clamped (replicate-boundary) neighbor views, Rodinia-style."""
        north = np.vstack([img[:1, :], img[:-1, :]])
        south = np.vstack([img[1:, :], img[-1:, :]])
        west = np.hstack([img[:, :1], img[:, :-1]])
        east = np.hstack([img[:, 1:], img[:, -1:]])
        return north, south, east, west

    @classmethod
    def prepare(cls, img: np.ndarray, q0sqr: float):
        """Kernel 1: directional derivatives and diffusion coefficient."""
        north, south, east, west = cls._neighbors(img)
        d_n = north - img
        d_s = south - img
        d_e = east - img
        d_w = west - img
        g2 = (d_n**2 + d_s**2 + d_e**2 + d_w**2) / (img * img)
        lap = (d_n + d_s + d_e + d_w) / img
        num = 0.5 * g2 - (1.0 / 16.0) * lap * lap
        den = 1.0 + 0.25 * lap
        qsqr = num / (den * den)
        den2 = (qsqr - q0sqr) / (q0sqr * (1.0 + q0sqr))
        c = 1.0 / (1.0 + den2)
        np.clip(c, 0.0, 1.0, out=c)
        return c.astype(np.float32), d_n, d_s, d_e, d_w

    @staticmethod
    def update(img, c, d_n, d_s, d_e, d_w) -> np.ndarray:
        """Kernel 2: divergence update of the image."""
        c_s = np.vstack([c[1:, :], c[-1:, :]])
        c_e = np.hstack([c[:, 1:], c[:, -1:]])
        div = c_s * d_s + c * d_n + c_e * d_e + c * d_w
        return (img + 0.25 * _LAMBDA * div).astype(np.float32)

    def run_reference(
        self, inputs: dict[str, np.ndarray], iterations: int = 1
    ) -> dict[str, np.ndarray]:
        img = inputs["J"].astype(np.float32, copy=True)
        for _ in range(iterations):
            # q0 comes from the image statistics (host-side scalar).
            mean = float(img.mean())
            std = float(img.std())
            q0sqr = (std * std) / (mean * mean)
            c, d_n, d_s, d_e, d_w = self.prepare(img, q0sqr)
            img = self.update(img, c, d_n, d_s, d_e, d_w)
        return {"J": img}

    # --- testbed calibration ----------------------------------------------
    def testbed_targets(self, dataset: Dataset) -> TestbedTargets:
        # Kernel times from Table I.  CPU anchor: ~12 ns/pixel/iteration
        # for the 8-thread OpenMP baseline (measured speedups then sit in
        # the 2-3x band the paper's Figs. 11-12 show).
        kernel = {
            1024: 2.0e-3,
            2048: 7.6e-3,
            4096: 28.1e-3,
        }[dataset.size]
        # In-application transfer slowdowns vs the linear model: the
        # paper's SRAD shows the largest such effect (24% at 1024^2,
        # shrinking with size).
        context = {1024: 1.31, 2048: 1.09, 4096: 1.02}[dataset.size]
        return TestbedTargets(
            kernel_seconds=kernel,
            cpu_seconds=12e-9 * dataset.size * dataset.size,
            transfer_context=context,
        )
