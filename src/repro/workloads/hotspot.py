"""HotSpot: structured-grid thermal ODE solver (Rodinia).

Each cell's temperature is updated from its 3x3-neighborhood (a 5-point
stencil in practice) and the local power dissipation.  One kernel per
iteration; the data size is the grid edge (Table I: 64, 512, 1024).
"""

from __future__ import annotations

import numpy as np

from repro.cpu.model import CpuWorkProfile
from repro.skeleton.builder import KernelBuilder, ProgramBuilder
from repro.skeleton.program import ProgramSkeleton

from repro.workloads.base import Dataset, TestbedTargets, Workload

# Physical constants (Rodinia defaults, scaled for a unit grid).
_T_AMB = 80.0
_R_X = 10.0
_R_Y = 10.0
_R_Z = 2.0
_CAP = 0.5
_STEP = 1.0e-3


class HotSpot(Workload):
    name = "HotSpot"
    description = "ODE stencil for microarchitectural temperature (Rodinia)"

    def datasets(self) -> tuple[Dataset, ...]:
        return (
            Dataset("64 x 64", 64),
            Dataset("512 x 512", 512),
            Dataset("1024 x 1024", 1024),
        )

    def iteration_sweep(self) -> tuple[int, ...]:
        return (1, 2, 5, 10, 20, 40, 70, 100, 150, 250, 400)

    # --- skeleton ------------------------------------------------------------
    def skeleton(self, dataset: Dataset) -> ProgramSkeleton:
        n = dataset.size
        pb = ProgramBuilder(f"hotspot-{dataset.label.replace(' ', '')}")
        pb.array("temp", (n, n)).array("power", (n, n))
        pb.array("temp_out", (n, n))
        kb = KernelBuilder("hotspot_step")
        kb.parallel_loop("i", n - 1, lower=1)
        kb.parallel_loop("j", n - 1, lower=1)
        kb.load("temp", "i", "j")
        kb.load("temp", ("i", 1, -1), "j")
        kb.load("temp", ("i", 1, 1), "j")
        kb.load("temp", "i", ("j", 1, -1))
        kb.load("temp", "i", ("j", 1, 1))
        kb.load("power", "i", "j")
        kb.store("temp_out", "i", "j")
        # 4 neighbor diffs, 3 divisions-as-multiplies, power term, Euler
        # update: ~14 floating-point operations per cell.
        kb.statement(flops=14, label="euler-update")
        return pb.kernel(kb).build()

    def cpu_profile(self, dataset: Dataset) -> CpuWorkProfile:
        n = dataset.size
        # DRAM traffic: stream temp + power in, temp_out out; stencil
        # neighbors hit cache.
        return CpuWorkProfile(
            name=f"hotspot-{dataset.size}",
            bytes_moved=3 * n * n * 4,
            flops=14 * n * n,
        )

    # --- reference implementation ------------------------------------------
    def make_inputs(
        self, dataset: Dataset, rng: np.random.Generator
    ) -> dict[str, np.ndarray]:
        n = dataset.size
        return {
            "temp": (320.0 + 20.0 * rng.random((n, n))).astype(np.float32),
            "power": (1.0e-3 * rng.random((n, n))).astype(np.float32),
        }

    @staticmethod
    def step(temp: np.ndarray, power: np.ndarray) -> np.ndarray:
        """One explicit-Euler step; boundary cells are held fixed."""
        out = temp.copy()
        c = temp[1:-1, 1:-1]
        north = temp[:-2, 1:-1]
        south = temp[2:, 1:-1]
        west = temp[1:-1, :-2]
        east = temp[1:-1, 2:]
        delta = (_STEP / _CAP) * (
            power[1:-1, 1:-1]
            + (south + north - 2.0 * c) / _R_Y
            + (east + west - 2.0 * c) / _R_X
            + (_T_AMB - c) / _R_Z
        )
        out[1:-1, 1:-1] = c + delta
        return out

    def run_reference(
        self, inputs: dict[str, np.ndarray], iterations: int = 1
    ) -> dict[str, np.ndarray]:
        temp = inputs["temp"].astype(np.float32, copy=True)
        power = inputs["power"]
        for _ in range(iterations):
            temp = self.step(temp, power)
        return {"temp_out": temp}

    # --- testbed calibration ----------------------------------------------
    def testbed_targets(self, dataset: Dataset) -> TestbedTargets:
        # Kernel times: Table I (64x64's "<0.1 ms" resolved to 0.072 ms so
        # that the transfer fraction lands at the reported 41%).  CPU
        # anchor: the paper reports a 1.5x measured speedup and a 7.8x
        # kernel-only predicted speedup for 512x512 (footnote 6), fixing
        # the CPU time at ~2.25 ms; other sizes scale per-cell.  Transfer
        # context factors replay the paper's in-application transfer
        # slowdowns (18% / 7% / 4% vs the linear model).
        kernel = {64: 0.072e-3, 512: 0.30e-3, 1024: 1.2e-3}[dataset.size]
        context = {64: 1.22, 512: 1.08, 1024: 1.04}[dataset.size]
        cpu_per_cell = 2.25e-3 / (512 * 512)
        return TestbedTargets(
            kernel_seconds=kernel,
            cpu_seconds=cpu_per_cell * dataset.size * dataset.size,
            transfer_context=context,
        )
