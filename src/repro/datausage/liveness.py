"""Inter-kernel dependence analysis over BRS footprints.

The paper builds on GROPHECY's use of INTERSECT to "determine the
dependencies among BRSs"; here we expose that as a kernel-level dependence
graph.  The transformation layer uses it to decide which kernels may be
fused (e.g. HotSpot's repeated stencil invocations), and it documents why
CFD is split into three kernels (global synchronization on true
dependences).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import networkx as nx

from repro.brs.footprint import KernelFootprint, kernel_footprint
from repro.brs.ops import intersect
from repro.brs.set import SectionSet
from repro.skeleton.program import ProgramSkeleton


class DependenceKind(enum.Enum):
    FLOW = "flow"  # write -> read (true dependence)
    ANTI = "anti"  # read -> write
    OUTPUT = "output"  # write -> write


@dataclass(frozen=True)
class KernelDependence:
    """A dependence edge between two kernels through one array."""

    producer: str
    consumer: str
    array: str
    kind: DependenceKind


def _sets_overlap(a: SectionSet, b: SectionSet) -> bool:
    for sa in a:
        for sb in b:
            if intersect(sa, sb) is not None:
                return True
    return False


def kernel_dependences(program: ProgramSkeleton) -> list[KernelDependence]:
    """All pairwise dependences between kernels, in program order."""
    env = program.array_map
    footprints: list[KernelFootprint] = [
        kernel_footprint(k, env) for k in program.kernels
    ]
    out: list[KernelDependence] = []
    for i, earlier in enumerate(footprints):
        for later in footprints[i + 1 :]:
            for array in sorted(
                set(earlier.reads) | set(earlier.writes)
            ):
                e_reads = earlier.reads.get(array, SectionSet())
                e_writes = earlier.writes.get(array, SectionSet())
                l_reads = later.reads.get(array, SectionSet())
                l_writes = later.writes.get(array, SectionSet())
                if _sets_overlap(e_writes, l_reads):
                    out.append(
                        KernelDependence(
                            earlier.kernel, later.kernel, array,
                            DependenceKind.FLOW,
                        )
                    )
                if _sets_overlap(e_reads, l_writes):
                    out.append(
                        KernelDependence(
                            earlier.kernel, later.kernel, array,
                            DependenceKind.ANTI,
                        )
                    )
                if _sets_overlap(e_writes, l_writes):
                    out.append(
                        KernelDependence(
                            earlier.kernel, later.kernel, array,
                            DependenceKind.OUTPUT,
                        )
                    )
    return out


def dependence_graph(program: ProgramSkeleton) -> nx.MultiDiGraph:
    """Kernel dependence graph as a networkx MultiDiGraph.

    Nodes are kernel names (with an ``order`` attribute); edges carry
    ``array`` and ``kind`` attributes.  The graph of a valid program is a
    DAG in program order by construction.
    """
    g = nx.MultiDiGraph(name=program.name)
    for order, kernel in enumerate(program.kernels):
        g.add_node(kernel.name, order=order)
    for dep in kernel_dependences(program):
        g.add_edge(
            dep.producer, dep.consumer, array=dep.array, kind=dep.kind
        )
    return g
