"""User hints that refine the conservative analysis (paper Section III-B)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.fingerprint import stable_digest
from repro.util.validation import check_positive


@dataclass(frozen=True)
class SparseExtentHint:
    """Bounds the referenced elements of a sparse/irregular array.

    Without a hint GROPHECY++ assumes every element of a sparse array may
    be referenced and transfers it whole.  A hint supplies the number of
    elements actually referenced (e.g. nnz of a CSR matrix), which the
    analyzer uses instead.
    """

    array: str
    referenced_elements: int

    def __post_init__(self) -> None:
        if not self.array:
            raise ValueError("hint must name an array")
        check_positive("referenced_elements", self.referenced_elements)


@dataclass(frozen=True)
class AnalysisHints:
    """Bundle of optional hints handed to the analyzer.

    ``extra_temporaries`` augments the program's own temporary set (arrays
    that are written but need not return to the host).  ``sparse_extents``
    maps array names to :class:`SparseExtentHint`.
    """

    extra_temporaries: frozenset[str] = frozenset()
    sparse_extents: tuple[SparseExtentHint, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "extra_temporaries", frozenset(self.extra_temporaries)
        )
        object.__setattr__(self, "sparse_extents", tuple(self.sparse_extents))
        names = [h.array for h in self.sparse_extents]
        if len(names) != len(set(names)):
            raise ValueError("duplicate sparse extent hints")

    def sparse_extent_for(self, array: str) -> int | None:
        for hint in self.sparse_extents:
            if hint.array == array:
                return hint.referenced_elements
        return None

    def fingerprint(self) -> str:
        """Stable content hash; hint order never matters."""
        return stable_digest(
            {
                "extra_temporaries": sorted(self.extra_temporaries),
                "sparse_extents": sorted(
                    (h.array, h.referenced_elements)
                    for h in self.sparse_extents
                ),
            }
        )

    @staticmethod
    def none() -> "AnalysisHints":
        return AnalysisHints()
