"""Transfer plans: the analyzer's output."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.validation import check_positive


class Direction(enum.Enum):
    """Transfer direction across the PCIe bus."""

    H2D = "host-to-device"
    D2H = "device-to-host"

    @property
    def short(self) -> str:
        return "H2D" if self is Direction.H2D else "D2H"


@dataclass(frozen=True)
class Transfer:
    """One cudaMemcpy-equivalent: a single array moved in one direction.

    ``conservative`` marks transfers sized by the whole-array fallback for
    sparse/irregular data rather than by exact BRS analysis.
    """

    array: str
    direction: Direction
    bytes: int
    elements: int
    conservative: bool = False

    def __post_init__(self) -> None:
        if not self.array:
            raise ValueError("transfer must name an array")
        check_positive(f"transfer bytes for {self.array!r}", self.bytes)
        check_positive(f"transfer elements for {self.array!r}", self.elements)
        object.__setattr__(self, "bytes", int(self.bytes))
        object.__setattr__(self, "elements", int(self.elements))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tag = " (conservative)" if self.conservative else ""
        return f"{self.direction.short} {self.array}: {self.bytes}B{tag}"


@dataclass(frozen=True)
class TransferPlan:
    """All transfers required by one offloaded kernel sequence.

    For the paper's iterative applications this plan is iteration-count
    independent: inputs move once before the first iteration, outputs once
    after the last (Section IV-B).
    """

    program: str
    transfers: tuple[Transfer, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "transfers", tuple(self.transfers))

    def by_direction(self, direction: Direction) -> tuple[Transfer, ...]:
        return tuple(t for t in self.transfers if t.direction is direction)

    @property
    def inputs(self) -> tuple[Transfer, ...]:
        return self.by_direction(Direction.H2D)

    @property
    def outputs(self) -> tuple[Transfer, ...]:
        return self.by_direction(Direction.D2H)

    @property
    def input_bytes(self) -> int:
        return sum(t.bytes for t in self.inputs)

    @property
    def output_bytes(self) -> int:
        return sum(t.bytes for t in self.outputs)

    @property
    def total_bytes(self) -> int:
        return self.input_bytes + self.output_bytes

    @property
    def transfer_count(self) -> int:
        return len(self.transfers)

    def batched(self) -> "TransferPlan":
        """Merge all arrays per direction into one transfer.

        This is the ablation the paper mentions: transferring several small
        arrays as one saves per-transfer latency at the cost of program
        restructuring.
        """
        merged: list[Transfer] = []
        for direction in (Direction.H2D, Direction.D2H):
            group = self.by_direction(direction)
            if not group:
                continue
            merged.append(
                Transfer(
                    array="+".join(t.array for t in group),
                    direction=direction,
                    bytes=sum(t.bytes for t in group),
                    elements=sum(t.elements for t in group),
                    conservative=any(t.conservative for t in group),
                )
            )
        return TransferPlan(self.program, tuple(merged))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lines = [f"transfer plan for {self.program}:"]
        lines += [f"  {t}" for t in self.transfers]
        lines.append(
            f"  total: {self.input_bytes}B in, {self.output_bytes}B out"
        )
        return "\n".join(lines)
