"""Data usage analysis: what must cross the PCIe bus (paper Section III-B).

Given a :class:`~repro.skeleton.program.ProgramSkeleton` (a sequence of GPU
kernels over shared arrays), the analyzer maintains the set of array
sections already produced on the device and derives:

- **host-to-device**: the UNION of sections read before being written by
  any earlier kernel/statement;
- **device-to-host**: the UNION of all written sections, minus arrays the
  user hinted as temporaries;
- sparse/irregular arrays: conservatively the whole array, unless an
  explicit :class:`~repro.datausage.hints.SparseExtentHint` bounds the
  referenced element count.

Each array is transferred separately, matching the paper's assumption; a
batched mode exists for the corresponding ablation.
"""

from repro.datausage.transfers import Direction, Transfer, TransferPlan
from repro.datausage.hints import AnalysisHints, SparseExtentHint
from repro.datausage.analyzer import DataUsageAnalyzer, analyze_transfers
from repro.datausage.liveness import (
    KernelDependence,
    dependence_graph,
    kernel_dependences,
)

__all__ = [
    "Direction",
    "Transfer",
    "TransferPlan",
    "AnalysisHints",
    "SparseExtentHint",
    "DataUsageAnalyzer",
    "analyze_transfers",
    "KernelDependence",
    "dependence_graph",
    "kernel_dependences",
]
