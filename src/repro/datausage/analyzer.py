"""The data usage analyzer (paper contribution #2).

Walks the kernel sequence in program order, statement by statement,
tracking which array sections have already been produced on the device.
A load whose section is not covered by prior device-side stores
contributes to the host-to-device set; every store contributes to the
device-to-host set unless the array is hinted as a temporary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.brs.footprint import access_section
from repro.brs.set import SectionSet
from repro.datausage.hints import AnalysisHints
from repro.datausage.transfers import Direction, Transfer, TransferPlan
from repro.skeleton.arrays import ArrayDecl, ArrayKind
from repro.skeleton.program import ProgramSkeleton
from repro.skeleton.validate import validate_program


@dataclass
class _ArrayUsage:
    """Accumulated per-array section sets."""

    decl: ArrayDecl
    to_device: SectionSet
    produced: SectionSet
    written: SectionSet


class DataUsageAnalyzer:
    """Derives a :class:`TransferPlan` from a program skeleton.

    The analysis is flow-sensitive at statement granularity: a statement's
    loads are resolved against sections produced by *earlier* statements
    (in this or previous kernels), then its stores extend the produced set.
    Within one statement, loads logically precede the store, so an
    update-in-place statement (``a[i] = f(a[i-1], a[i], a[i+1])``) still
    requires its input section to be transferred — exactly the paper's
    "read but not previously written" rule.
    """

    def __init__(
        self,
        program: ProgramSkeleton,
        hints: AnalysisHints | None = None,
    ) -> None:
        validate_program(program)
        self._program = program
        self._hints = hints or AnalysisHints.none()
        self._usage: dict[str, _ArrayUsage] = {
            a.name: _ArrayUsage(a, SectionSet(), SectionSet(), SectionSet())
            for a in program.arrays
        }
        self._analyzed = False

    @property
    def program(self) -> ProgramSkeleton:
        return self._program

    # Analysis ---------------------------------------------------------------
    def _run(self) -> None:
        if self._analyzed:
            return
        for kernel in self._program.kernels:
            loops = kernel.loop_map
            for stmt in kernel.statements:
                # Loads first: read-before-write within the statement.
                for access in stmt.accesses:
                    if not access.is_load:
                        continue
                    usage = self._usage[access.array]
                    section = access_section(access, loops, usage.decl)
                    needed = SectionSet([section]).subtract_set(usage.produced)
                    usage.to_device.update(needed)
                for access in stmt.accesses:
                    if not access.is_store:
                        continue
                    usage = self._usage[access.array]
                    section = access_section(access, loops, usage.decl)
                    usage.produced.add(section)
                    usage.written.add(section)
        self._analyzed = True

    # Results ------------------------------------------------------------------
    def plan(self) -> TransferPlan:
        """The per-array transfer plan (one transfer per array/direction)."""
        self._run()
        transfers: list[Transfer] = []
        temporaries = (
            self._program.temporaries | self._hints.extra_temporaries
        )
        # Host-to-device, in declaration order for determinism.
        for decl in self._program.arrays:
            usage = self._usage[decl.name]
            if usage.to_device.is_empty:
                continue
            elements, conservative = self._effective_elements(
                decl, usage.to_device
            )
            transfers.append(
                Transfer(
                    decl.name,
                    Direction.H2D,
                    elements * decl.dtype.size_bytes,
                    elements,
                    conservative,
                )
            )
        # Device-to-host.
        for decl in self._program.arrays:
            if decl.name in temporaries:
                continue
            usage = self._usage[decl.name]
            if usage.written.is_empty:
                continue
            elements, conservative = self._effective_elements(
                decl, usage.written
            )
            transfers.append(
                Transfer(
                    decl.name,
                    Direction.D2H,
                    elements * decl.dtype.size_bytes,
                    elements,
                    conservative,
                )
            )
        return TransferPlan(self._program.name, tuple(transfers))

    def _effective_elements(
        self, decl: ArrayDecl, sections: SectionSet
    ) -> tuple[int, bool]:
        """Element count to transfer for one array, with conservatism flag."""
        if decl.kind is ArrayKind.SPARSE:
            hinted = self._hints.sparse_extent_for(decl.name)
            if hinted is not None:
                return min(hinted, decl.element_count), False
            return decl.element_count, True
        volume = sections.volume
        # A section-set volume can exceed the array when the conservative
        # union path over-approximated; clamp to the allocation size (you
        # never copy more than the array).
        return min(volume, decl.element_count), not sections.is_exact

    # Introspection used by tests and reports ----------------------------------
    def device_input_sections(self, array: str) -> SectionSet:
        self._run()
        return self._usage[array].to_device.copy()

    def written_sections(self, array: str) -> SectionSet:
        self._run()
        return self._usage[array].written.copy()


def analyze_transfers(
    program: ProgramSkeleton, hints: AnalysisHints | None = None
) -> TransferPlan:
    """Convenience wrapper: analyze and return the plan in one call."""
    return DataUsageAnalyzer(program, hints).plan()
