"""Error metrics and aggregate statistics used throughout the evaluation.

The paper's central metric is the *error magnitude*: the absolute value of
the percent difference between a predicted and a measured value
(Section V-A).  All aggregation of error magnitudes in the paper uses the
arithmetic mean, and all measured times are arithmetic means of ten runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def signed_relative_error(predicted: float, measured: float) -> float:
    """Return ``(predicted - measured) / measured``.

    Positive means over-prediction.  ``measured`` must be non-zero; a zero
    measurement makes relative error meaningless.
    """
    if measured == 0:
        raise ZeroDivisionError("relative error undefined for measured == 0")
    return (predicted - measured) / measured


def error_magnitude(predicted: float, measured: float) -> float:
    """The paper's *error magnitude*: ``|predicted - measured| / |measured|``.

    Returned as a fraction (0.08 == 8%).
    """
    if measured == 0:
        raise ZeroDivisionError("error magnitude undefined for measured == 0")
    return abs(predicted - measured) / abs(measured)


def mean_error_magnitude(
    predicted: Sequence[float], measured: Sequence[float]
) -> float:
    """Arithmetic mean of per-point error magnitudes.

    ``predicted`` and ``measured`` must be equal-length and non-empty.
    """
    if len(predicted) != len(measured):
        raise ValueError(
            f"length mismatch: {len(predicted)} predictions vs "
            f"{len(measured)} measurements"
        )
    if not predicted:
        raise ValueError("cannot average an empty set of errors")
    return arithmetic_mean(
        [error_magnitude(p, m) for p, m in zip(predicted, measured)]
    )


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain arithmetic mean; raises on an empty iterable."""
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.n} mean={self.mean:.4g} std={self.std:.4g} "
            f"min={self.minimum:.4g} max={self.maximum:.4g}"
        )


def summarize(values: Iterable[float]) -> Summary:
    """Summarize a non-empty sample (population std)."""
    values = list(values)
    if not values:
        raise ValueError("cannot summarize an empty sample")
    mean = arithmetic_mean(values)
    var = sum((v - mean) ** 2 for v in values) / len(values)
    return Summary(
        n=len(values),
        mean=mean,
        std=math.sqrt(var),
        minimum=min(values),
        maximum=max(values),
    )
