"""Deterministic, named random-number streams.

Every stochastic component of the simulated testbed (bus jitter, kernel
timing noise, the bimodal CFD transfer of Fig. 5) draws from its own named
stream derived from a single root seed, so experiments are reproducible and
independent: adding noise draws to one component never perturbs another.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, *names: str) -> int:
    """Derive a 63-bit child seed from a root seed and a name path.

    Uses BLAKE2b so that (root, names) -> seed is stable across processes
    and Python versions (``hash()`` is salted; never use it for this).
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(root_seed)).encode("ascii"))
    for name in names:
        h.update(b"/")
        h.update(name.encode("utf-8"))
    return int.from_bytes(h.digest(), "big") & ((1 << 63) - 1)


class RngStream:
    """A named, forkable wrapper around :class:`numpy.random.Generator`.

    ``fork(name)`` produces an independent child stream; two forks with the
    same name from the same parent are identical, which is exactly what a
    reproducible simulator wants.
    """

    def __init__(self, root_seed: int, *path: str) -> None:
        self._root_seed = int(root_seed)
        self._path = tuple(path)
        self._gen = np.random.default_rng(derive_seed(root_seed, *path))

    @property
    def path(self) -> tuple[str, ...]:
        return self._path

    @property
    def generator(self) -> np.random.Generator:
        return self._gen

    def fork(self, name: str) -> "RngStream":
        """Create an independent child stream labelled ``name``."""
        return RngStream(self._root_seed, *self._path, name)

    # Thin pass-throughs used by the simulators --------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._gen.uniform(low, high))

    def normal(self, loc: float = 0.0, scale: float = 1.0) -> float:
        return float(self._gen.normal(loc, scale))

    def lognormal_factor(self, sigma: float) -> float:
        """A multiplicative noise factor with unit median.

        ``sigma`` is the log-space standard deviation; ``sigma == 0``
        returns exactly 1.0 (useful for noise-free ablations).
        """
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        if sigma == 0:
            return 1.0
        return float(np.exp(self._gen.normal(0.0, sigma)))

    def bernoulli(self, p: float) -> bool:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {p}")
        return bool(self._gen.uniform() < p)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngStream(seed={self._root_seed}, path={'/'.join(self._path)})"
