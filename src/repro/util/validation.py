"""Tiny argument-validation helpers with consistent error messages."""

from __future__ import annotations

from typing import Any, Container, Type, TypeVar

T = TypeVar("T")


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; returns the value for chaining."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``; returns the value for chaining."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_in(name: str, value: T, allowed: Container[T]) -> T:
    """Require membership in ``allowed``; returns the value for chaining."""
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value


def check_type(name: str, value: Any, expected: Type[T]) -> T:
    """Require ``isinstance(value, expected)``; returns the value."""
    if not isinstance(value, expected):
        raise TypeError(
            f"{name} must be {expected.__name__}, got {type(value).__name__}"
        )
    return value
