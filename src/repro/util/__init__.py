"""Shared utilities: units, statistics, RNG streams, table rendering.

These helpers are deliberately dependency-light; every other subpackage in
:mod:`repro` builds on them.  All times in the library are expressed in
**seconds** and all data sizes in **bytes** unless a function name says
otherwise (e.g. :func:`repro.util.units.ms`).
"""

from repro.util.units import (
    KiB,
    MiB,
    GiB,
    bytes_to_human,
    us,
    ms,
    seconds_to_human,
    gb_per_s,
)
from repro.util.stats import (
    error_magnitude,
    signed_relative_error,
    mean_error_magnitude,
    arithmetic_mean,
    geometric_mean,
    summarize,
    Summary,
)
from repro.util.fingerprint import canonical_json, stable_digest
from repro.util.rng import RngStream, derive_seed
from repro.util.tables import Table, render_series
from repro.util.validation import (
    check_positive,
    check_non_negative,
    check_in,
    check_type,
)

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "bytes_to_human",
    "us",
    "ms",
    "seconds_to_human",
    "gb_per_s",
    "error_magnitude",
    "signed_relative_error",
    "mean_error_magnitude",
    "arithmetic_mean",
    "geometric_mean",
    "summarize",
    "Summary",
    "canonical_json",
    "stable_digest",
    "RngStream",
    "derive_seed",
    "Table",
    "render_series",
    "check_positive",
    "check_non_negative",
    "check_in",
    "check_type",
]
