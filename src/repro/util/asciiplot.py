"""Minimal ASCII charts for the experiment harness.

The offline environment has no plotting stack, so the harness can render
figures as character grids: line charts for the sweep/iteration figures
and scatter charts for Figs. 5-6.  Deliberately tiny — monospaced grids,
log or linear axes, one glyph per series.
"""

from __future__ import annotations

import math
from typing import Sequence

_GLYPHS = "ox+*#@%&"


def _scale(
    values: Sequence[float], log: bool, cells: int
) -> list[int | None]:
    """Map values onto 0..cells-1 (None for non-positive values on log)."""
    finite = [
        v for v in values if v is not None and (not log or v > 0)
    ]
    if not finite:
        raise ValueError("no plottable values")
    transform = (lambda v: math.log10(v)) if log else (lambda v: v)
    lo = min(transform(v) for v in finite)
    hi = max(transform(v) for v in finite)
    span = hi - lo or 1.0
    out: list[int | None] = []
    for v in values:
        if v is None or (log and v <= 0):
            out.append(None)
            continue
        frac = (transform(v) - lo) / span
        out.append(min(cells - 1, max(0, round(frac * (cells - 1)))))
    return out


def line_chart(
    title: str,
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    log_x: bool = False,
    log_y: bool = False,
) -> str:
    """Plot y-series over a shared x axis as an ASCII grid.

    Each series gets a glyph (``o x + * ...``); collisions show the glyph
    of the later series.  Axis extremes are printed on the frame.
    """
    if not series:
        raise ValueError("need at least one series")
    if len(series) > len(_GLYPHS):
        raise ValueError(f"at most {len(_GLYPHS)} series supported")
    for label, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(
                f"series {label!r} has {len(ys)} points, x axis {len(xs)}"
            )
    cols = _scale(list(xs), log_x, width)
    all_y = [y for ys in series.values() for y in ys]
    # Use one shared y scale across series.
    flat_rows = _scale(all_y, log_y, height)
    grid = [[" "] * width for _ in range(height)]
    n = len(xs)
    # Draw in reverse so the first (usually "measured") series wins
    # glyph collisions.
    for s_index in reversed(range(len(series))):
        glyph = _GLYPHS[s_index]
        rows = flat_rows[s_index * n : (s_index + 1) * n]
        for col, row in zip(cols, rows):
            if col is None or row is None:
                continue
            grid[height - 1 - row][col] = glyph

    y_vals = [
        y for y in all_y if y is not None and (not log_y or y > 0)
    ]
    x_vals = [x for x in xs if not log_x or x > 0]
    lines = [title]
    lines.append(f"y_max = {max(y_vals):.4g}")
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append(f"y_min = {min(y_vals):.4g}")
    lines.append(
        f"x: {min(x_vals):.4g} .. {max(x_vals):.4g}"
        + ("  (log x)" if log_x else "")
        + ("  (log y)" if log_y else "")
    )
    legend = "   ".join(
        f"{_GLYPHS[i]} = {label}" for i, label in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)


def scatter_chart(
    title: str,
    points: Sequence[tuple[float, float]],
    width: int = 48,
    height: int = 16,
    log: bool = False,
    diagonal: bool = True,
) -> str:
    """Scatter of (x, y) points, optionally with the y=x reference line.

    The diagonal is what Fig. 5 plots predictions against: perfect
    predictions sit on it, slower-than-predicted transfers fall below.
    """
    if not points:
        raise ValueError("need at least one point")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    # Shared scale so the y=x diagonal is a real diagonal.
    combined = xs + ys
    cols = _scale(combined, log, width)[: len(xs)]
    rows = _scale(combined, log, height)[len(xs) :]
    grid = [[" "] * width for _ in range(height)]
    if diagonal:
        steps = max(width, height)
        for i in range(steps):
            c = round(i * (width - 1) / (steps - 1))
            r = round(i * (height - 1) / (steps - 1))
            grid[height - 1 - r][c] = "."
    for col, row in zip(cols, rows):
        if col is None or row is None:
            continue
        grid[height - 1 - row][col] = "o"
    usable = [v for v in combined if not log or v > 0]
    lines = [title]
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append(
        f"range: {min(usable):.4g} .. {max(usable):.4g}"
        + ("  (log-log)" if log else "")
        + ("   '.' = y=x" if diagonal else "")
    )
    return "\n".join(lines)
