"""Minimal ASCII table / series rendering for the experiment harness.

The harness prints the same rows and series the paper's tables and figures
report; no plotting dependency is available offline, so figures are emitted
as aligned text series suitable for eyeballing and for diffing in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class Table:
    """A simple column-aligned text table.

    >>> t = Table(["a", "b"], title="demo")
    >>> t.add_row(["1", "2"])
    >>> print(t.render())  # doctest: +SKIP
    """

    headers: Sequence[str]
    title: str = ""
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, cells: Iterable[object]) -> None:
        row = [str(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt(list(self.headers)))
        lines.append("  ".join("-" * w for w in widths))
        lines.extend(fmt(row) for row in self.rows)
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering."""

        def esc(cell: str) -> str:
            return cell.replace("|", "\\|")

        lines: list[str] = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(esc(h) for h in self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(esc(c) for c in row) + " |")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """RFC-4180-ish CSV rendering (quotes cells containing , " or NL)."""

        def esc(cell: str) -> str:
            if any(ch in cell for ch in ',"\n'):
                return '"' + cell.replace('"', '""') + '"'
            return cell

        lines = [",".join(esc(h) for h in self.headers)]
        lines.extend(",".join(esc(c) for c in row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def series_table(
    name: str,
    xs: Sequence[object],
    series: dict[str, Sequence[float]],
    x_label: str = "x",
    value_format: str = "{:.4g}",
) -> Table:
    """Build a Table holding one or more y-series over a shared x axis."""
    lengths = {label: len(ys) for label, ys in series.items()}
    for label, n in lengths.items():
        if n != len(xs):
            raise ValueError(
                f"series {label!r} has {n} points but x axis has {len(xs)}"
            )
    table = Table([x_label, *series.keys()], title=name)
    for i, x in enumerate(xs):
        table.add_row(
            [str(x), *(value_format.format(ys[i]) for ys in series.values())]
        )
    return table


def render_series(
    name: str,
    xs: Sequence[object],
    series: dict[str, Sequence[float]],
    x_label: str = "x",
    value_format: str = "{:.4g}",
) -> str:
    """Render one or more y-series over a shared x axis as a text table."""
    return series_table(name, xs, series, x_label, value_format).render()
