"""Stable content fingerprints for cache keys.

The projection service (:mod:`repro.service`) caches results under a key
derived from everything that determines a projection: the skeleton, the
GPU architecture, the bus model, and the explorer options.  Each of those
types exposes a ``fingerprint()`` built on :func:`stable_digest`: the
object is first reduced to a *canonical* JSON-safe payload (sorted keys,
no insertion-order or float-repr ambiguity) and then hashed with SHA-256.

Two rules keep the keys useful:

- **Semantically equal inputs hash equally.**  Payloads must normalize
  away representation choices that cannot affect the projection — e.g.
  array-declaration order or statement order within a kernel.
- **Anything that can change the result changes the hash.**  Every model
  parameter, shape, flop count, and option must appear in the payload.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any


def canonical_json(payload: Any) -> str:
    """Deterministic JSON encoding of a JSON-safe payload.

    Keys are sorted and separators fixed, so the encoding is independent
    of dict insertion order and Python version cosmetics.  Floats use
    ``repr`` (shortest round-trip form), which is stable across CPython
    builds.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def stable_digest(payload: Any) -> str:
    """SHA-256 hex digest of :func:`canonical_json` of ``payload``.

    Raises ``TypeError`` if the payload contains non-JSON-safe values —
    fingerprint payloads are built from primitives on purpose, so a leak
    of a rich object into one is a bug worth failing loudly on.
    """
    encoded = canonical_json(payload).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()
