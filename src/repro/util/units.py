"""Byte and time unit helpers.

The paper (and CUDA tooling of its era) uses binary prefixes when it says
"KB"/"MB"/"GB" for transfer sizes (the sweep runs over powers of two from
1 B to 512 MB), so the byte constants here are binary.  Bandwidths such as
"2.5 GB/s" are decimal in the paper's prose; :func:`gb_per_s` therefore uses
``1e9`` bytes.  Keeping both conventions explicit avoids a classic 7%
calibration bug.
"""

from __future__ import annotations

#: One kibibyte (2**10 bytes).
KiB: int = 1024
#: One mebibyte (2**20 bytes).
MiB: int = 1024 * 1024
#: One gibibyte (2**30 bytes).
GiB: int = 1024 * 1024 * 1024


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * 1e-6


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * 1e-3


def gb_per_s(value: float) -> float:
    """Convert a decimal-GB/s bandwidth to bytes/second."""
    return value * 1e9


def bytes_to_human(n: float) -> str:
    """Render a byte count the way the paper labels its axes (1B..512MB)."""
    if n < 0:
        raise ValueError(f"byte count must be non-negative, got {n}")
    if n < KiB:
        text = f"{n:.0f}B" if float(n).is_integer() else f"{n:.1f}B"
        return text
    for unit, factor in (("KB", KiB), ("MB", MiB), ("GB", GiB)):
        scaled = n / factor
        if scaled < 1024 or unit == "GB":
            if float(scaled).is_integer():
                return f"{scaled:.0f}{unit}"
            return f"{scaled:.2f}{unit}"
    raise AssertionError("unreachable")


def seconds_to_human(t: float) -> str:
    """Render a duration with an auto-selected unit (ns/us/ms/s)."""
    if t < 0:
        raise ValueError(f"duration must be non-negative, got {t}")
    if t == 0:
        return "0s"
    if t < 1e-6:
        return f"{t * 1e9:.1f}ns"
    if t < 1e-3:
        return f"{t * 1e6:.1f}us"
    if t < 1.0:
        return f"{t * 1e3:.2f}ms"
    return f"{t:.3f}s"
