"""ASCII-figure rendering of the experiment results.

The paper's figures are log-log line charts and scatter plots; with no
plotting stack offline, these helpers render the same shapes as character
grids via :mod:`repro.util.asciiplot` — close enough to eyeball the
crossovers and outliers the paper discusses.
"""

from __future__ import annotations

from repro.harness.apps import Fig5Result, Fig6Result
from repro.harness.speedups import (
    SpeedupVsIterationsResult,
    SpeedupVsSizeResult,
)
from repro.harness.transfer_sweep import (
    ModelErrorResult,
    PinnedSpeedupResult,
    TransferSweepResult,
)
from repro.util.asciiplot import line_chart, scatter_chart


def fig2_chart(result: TransferSweepResult, **kwargs) -> str:
    """Fig. 2 as a log-log line chart (like the paper's)."""
    return line_chart(
        f"Fig. 2 ({result.direction.short}): transfer time vs size "
        "(log-log)",
        list(result.sizes),
        {
            "pinned": list(result.pinned),
            "pageable": list(result.pageable),
            "predicted": list(result.predicted_pinned),
        },
        log_x=True,
        log_y=True,
        **kwargs,
    )


def fig3_chart(result: PinnedSpeedupResult, **kwargs) -> str:
    return line_chart(
        "Fig. 3: pinned-over-pageable speedup vs size (log x)",
        list(result.sizes),
        {
            "CPU-to-GPU": list(result.h2d_speedup),
            "GPU-to-CPU": list(result.d2h_speedup),
        },
        log_x=True,
        **kwargs,
    )


def fig4_chart(result: ModelErrorResult, **kwargs) -> str:
    return line_chart(
        "Fig. 4: |prediction error| vs transfer size (log x)",
        list(result.sizes),
        {
            "to GPU": list(result.h2d_errors),
            "from GPU": list(result.d2h_errors),
        },
        log_x=True,
        **kwargs,
    )


def fig5_chart(result: Fig5Result, **kwargs) -> str:
    """Fig. 5: per-transfer predicted vs measured, with the y=x line."""
    points = [(p.measured, p.predicted) for p in result.points]
    return scatter_chart(
        "Fig. 5: predicted (y) vs measured (x) transfer time, log-log",
        points,
        log=True,
        diagonal=True,
        **kwargs,
    )


def fig6_chart(result: Fig6Result, **kwargs) -> str:
    points = [(p.kernel_error, p.transfer_error) for p in result.points]
    return scatter_chart(
        "Fig. 6: transfer error (y) vs kernel error (x)",
        points,
        log=False,
        diagonal=True,
        **kwargs,
    )


def speedup_vs_iterations_chart(
    result: SpeedupVsIterationsResult, **kwargs
) -> str:
    """Figs. 8/10/12 as a log-x line chart."""
    return line_chart(
        f"{result.application} {result.data_size}: speedup vs iterations "
        "(log x)",
        list(result.iterations),
        {
            "measured": list(result.measured),
            "with transfer": list(result.predicted_with_transfer),
            "kernel only": list(result.predicted_without_transfer),
        },
        log_x=True,
        **kwargs,
    )


def speedup_vs_size_chart(result: SpeedupVsSizeResult, **kwargs) -> str:
    """Figs. 7/9/11 as a categorical line chart."""
    return line_chart(
        f"{result.application}: speedup vs data size",
        list(range(len(result.labels))),
        {
            "measured": list(result.measured),
            "with transfer": list(result.predicted_with_transfer),
            "kernel only": list(result.predicted_without_transfer),
        },
        **kwargs,
    )
