"""Figures 2-4: the transfer-model validation sweep."""

from __future__ import annotations

from dataclasses import dataclass

from repro.datausage.transfers import Direction
from repro.harness.context import ExperimentContext
from repro.pcie.channel import MemoryKind
from repro.pcie.sweep import measure_sweep, power_of_two_sizes
from repro.util.stats import arithmetic_mean, error_magnitude
from repro.util.tables import Table, series_table
from repro.util.units import bytes_to_human


@dataclass(frozen=True)
class TransferSweepResult:
    """Fig. 2: measured pinned/pageable times + model overlay, per size."""

    direction: Direction
    sizes: tuple[int, ...]
    pinned: tuple[float, ...]
    pageable: tuple[float, ...]
    predicted_pinned: tuple[float, ...]

    def as_table(self) -> Table:
        return series_table(
            f"Fig. 2 ({self.direction.short}): transfer time [s] vs size",
            [bytes_to_human(s) for s in self.sizes],
            {
                "pinned": self.pinned,
                "pageable": self.pageable,
                "predicted(pinned)": self.predicted_pinned,
            },
            x_label="size",
        )

    def render(self) -> str:
        return self.as_table().render()


def run_fig2_transfer_times(
    ctx: ExperimentContext,
    direction: Direction = Direction.H2D,
    repetitions: int = 10,
) -> TransferSweepResult:
    """Measure the 1B..512MB sweep for both memory kinds + model overlay."""
    sizes = power_of_two_sizes()
    pinned = measure_sweep(
        ctx.testbed.bus, sizes, direction, MemoryKind.PINNED, repetitions
    )
    pageable = measure_sweep(
        ctx.testbed.bus, sizes, direction, MemoryKind.PAGEABLE, repetitions
    )
    model = ctx.bus_model.for_direction(direction)
    return TransferSweepResult(
        direction=direction,
        sizes=tuple(sizes),
        pinned=tuple(s.mean_time for s in pinned),
        pageable=tuple(s.mean_time for s in pageable),
        predicted_pinned=tuple(model.predict(s) for s in sizes),
    )


@dataclass(frozen=True)
class PinnedSpeedupResult:
    """Fig. 3: pinned-vs-pageable speedup per size and direction."""

    sizes: tuple[int, ...]
    h2d_speedup: tuple[float, ...]
    d2h_speedup: tuple[float, ...]

    def as_table(self) -> Table:
        return series_table(
            "Fig. 3: speedup of pinned over pageable transfers",
            [bytes_to_human(s) for s in self.sizes],
            {"CPU-to-GPU": self.h2d_speedup, "GPU-to-CPU": self.d2h_speedup},
            x_label="size",
        )

    def render(self) -> str:
        return self.as_table().render()

    def crossover_size_h2d(self) -> int | None:
        """Smallest size from which pinned stays ahead for H2D (~2KB).

        Scans from the large end so measurement jitter at tiny sizes
        (where the two memory kinds are within noise of each other)
        cannot fake an early crossover.
        """
        crossover = None
        for size, s in zip(
            reversed(self.sizes), reversed(self.h2d_speedup)
        ):
            if s >= 1.0:
                crossover = size
            else:
                break
        return crossover


def run_fig3_pinned_speedup(
    ctx: ExperimentContext, repetitions: int = 10
) -> PinnedSpeedupResult:
    sizes = power_of_two_sizes()
    speedups: dict[Direction, tuple[float, ...]] = {}
    for direction in Direction:
        pinned = measure_sweep(
            ctx.testbed.bus, sizes, direction, MemoryKind.PINNED, repetitions
        )
        pageable = measure_sweep(
            ctx.testbed.bus, sizes, direction, MemoryKind.PAGEABLE, repetitions
        )
        speedups[direction] = tuple(
            pg.mean_time / pi.mean_time for pg, pi in zip(pageable, pinned)
        )
    return PinnedSpeedupResult(
        sizes=tuple(sizes),
        h2d_speedup=speedups[Direction.H2D],
        d2h_speedup=speedups[Direction.D2H],
    )


@dataclass(frozen=True)
class ModelErrorResult:
    """Fig. 4: |error| of the calibrated linear model per size/direction."""

    sizes: tuple[int, ...]
    h2d_errors: tuple[float, ...]
    d2h_errors: tuple[float, ...]

    @property
    def mean_h2d(self) -> float:
        return arithmetic_mean(self.h2d_errors)

    @property
    def mean_d2h(self) -> float:
        return arithmetic_mean(self.d2h_errors)

    @property
    def max_h2d(self) -> float:
        return max(self.h2d_errors)

    @property
    def max_d2h(self) -> float:
        return max(self.d2h_errors)

    def mean_above(self, threshold_bytes: int, direction: Direction) -> float:
        errors = (
            self.h2d_errors
            if direction is Direction.H2D
            else self.d2h_errors
        )
        selected = [
            e for s, e in zip(self.sizes, errors) if s > threshold_bytes
        ]
        return arithmetic_mean(selected)

    def as_table(self) -> Table:
        return series_table(
            "Fig. 4: |predicted - measured| / measured per transfer size",
            [bytes_to_human(s) for s in self.sizes],
            {
                "to GPU": self.h2d_errors,
                "from GPU": self.d2h_errors,
            },
            x_label="size",
            value_format="{:.3%}",
        )

    def render(self) -> str:
        body = self.as_table().render()
        summary = (
            f"\nmean error: {self.mean_h2d:.1%} (to GPU), "
            f"{self.mean_d2h:.1%} (from GPU); "
            f"max: {self.max_h2d:.1%} / {self.max_d2h:.1%}"
        )
        return body + summary


def run_fig4_model_error(
    ctx: ExperimentContext, repetitions: int = 10
) -> ModelErrorResult:
    """Validate the calibrated model against a fresh measured sweep."""
    sizes = power_of_two_sizes()
    errors: dict[Direction, tuple[float, ...]] = {}
    for direction in Direction:
        model = ctx.bus_model.for_direction(direction)
        samples = measure_sweep(
            ctx.testbed.bus, sizes, direction, MemoryKind.PINNED, repetitions
        )
        errors[direction] = tuple(
            error_magnitude(model.predict(s.size_bytes), s.mean_time)
            for s in samples
        )
    return ModelErrorResult(
        sizes=tuple(sizes),
        h2d_errors=errors[Direction.H2D],
        d2h_errors=errors[Direction.D2H],
    )
