"""Table I, Fig. 5, Fig. 6: application-level measurements and errors."""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.context import ExperimentContext
from repro.util.stats import arithmetic_mean
from repro.util.tables import Table
from repro.util.units import MiB
from repro.workloads.base import Workload
from repro.workloads.registry import paper_workloads


@dataclass(frozen=True)
class Table1Row:
    """One row of Table I."""

    application: str
    data_size: str
    kernel_ms: float
    transfer_ms: float
    percent_transfer: float
    input_mb: float
    output_mb: float


@dataclass(frozen=True)
class Table1Result:
    rows: tuple[Table1Row, ...]

    def as_table(self) -> Table:
        table = Table(
            [
                "Application",
                "Data Size",
                "Kernel (ms)",
                "Transfer (ms)",
                "% Transfer",
                "Input (MB)",
                "Output (MB)",
            ],
            title="Table I: measured kernel/transfer times and sizes",
        )
        def fmt(value: float, small: float, pattern: str) -> str:
            # The paper prints "<0.1" for HotSpot 64x64's tiny values.
            return f"<{small}" if value < small else pattern.format(value)

        for r in self.rows:
            table.add_row(
                [
                    r.application,
                    r.data_size,
                    fmt(r.kernel_ms, 0.1, "{:.2f}"),
                    fmt(r.transfer_ms, 0.1, "{:.2f}"),
                    f"{r.percent_transfer:.0f}",
                    fmt(r.input_mb, 0.1, "{:.1f}"),
                    fmt(r.output_mb, 0.1, "{:.1f}"),
                ]
            )
        return table

    def render(self) -> str:
        return self.as_table().render()

    def row(self, application: str, data_size: str) -> Table1Row:
        for r in self.rows:
            if r.application == application and r.data_size == data_size:
                return r
        raise KeyError(f"no row {application}/{data_size}")


def run_table1_measured(
    ctx: ExperimentContext,
    workloads: tuple[Workload, ...] | None = None,
) -> Table1Result:
    """Measure kernel/transfer times + transfer sizes for every dataset."""
    rows: list[Table1Row] = []
    for workload in workloads or paper_workloads():
        for dataset in workload.datasets():
            measured = ctx.measured(workload, dataset)
            plan = ctx.projection(workload, dataset).plan
            total = measured.kernel_seconds + measured.transfer_seconds
            rows.append(
                Table1Row(
                    application=workload.name,
                    data_size=dataset.label,
                    kernel_ms=measured.kernel_seconds * 1e3,
                    transfer_ms=measured.transfer_seconds * 1e3,
                    percent_transfer=100.0
                    * measured.transfer_seconds
                    / total,
                    input_mb=plan.input_bytes / MiB,
                    output_mb=plan.output_bytes / MiB,
                )
            )
    return Table1Result(tuple(rows))


@dataclass(frozen=True)
class TransferScatterPoint:
    """One point of Fig. 5: an individual transfer, predicted vs measured."""

    application: str
    data_size: str
    array: str
    direction: str
    predicted: float
    measured: float

    @property
    def error(self) -> float:
        return abs(self.predicted - self.measured) / self.measured


@dataclass(frozen=True)
class Fig5Result:
    points: tuple[TransferScatterPoint, ...]

    @property
    def mean_error(self) -> float:
        """Paper: 'the average prediction error across all transfers is 7.6%'."""
        return arithmetic_mean([p.error for p in self.points])

    def outliers(self, threshold: float = 0.5) -> tuple[TransferScatterPoint, ...]:
        return tuple(p for p in self.points if p.error >= threshold)

    def as_table(self) -> Table:
        table = Table(
            ["App", "Size", "Array", "Dir", "Pred (ms)", "Meas (ms)", "Err"],
            title="Fig. 5: predicted vs measured time per individual transfer",
        )
        for p in self.points:
            table.add_row(
                [
                    p.application,
                    p.data_size,
                    p.array,
                    p.direction,
                    f"{p.predicted * 1e3:.3f}",
                    f"{p.measured * 1e3:.3f}",
                    f"{p.error:.1%}",
                ]
            )
        return table

    def render(self) -> str:
        return (
            self.as_table().render()
            + f"\naverage per-transfer error: {self.mean_error:.1%}"
        )


def run_fig5_transfer_scatter(
    ctx: ExperimentContext,
    workloads: tuple[Workload, ...] | None = None,
) -> Fig5Result:
    points: list[TransferScatterPoint] = []
    for workload in workloads or paper_workloads():
        for dataset in workload.datasets():
            projection = ctx.projection(workload, dataset)
            measured = ctx.measured(workload, dataset)
            for transfer, predicted, meas in zip(
                projection.plan.transfers,
                projection.per_transfer_seconds,
                measured.per_transfer_seconds,
            ):
                points.append(
                    TransferScatterPoint(
                        application=workload.name,
                        data_size=dataset.label,
                        array=transfer.array,
                        direction=transfer.direction.short,
                        predicted=predicted,
                        measured=meas,
                    )
                )
    return Fig5Result(tuple(points))


@dataclass(frozen=True)
class ErrorScatterPoint:
    """One point of Fig. 6: per-dataset transfer error vs kernel error."""

    application: str
    data_size: str
    transfer_error: float
    kernel_error: float


@dataclass(frozen=True)
class Fig6Result:
    points: tuple[ErrorScatterPoint, ...]

    @property
    def mean_kernel_error(self) -> float:
        return arithmetic_mean([p.kernel_error for p in self.points])

    @property
    def mean_transfer_error(self) -> float:
        return arithmetic_mean([p.transfer_error for p in self.points])

    def as_table(self) -> Table:
        table = Table(
            ["App", "Size", "Transfer err", "Kernel err"],
            title="Fig. 6: overall transfer vs kernel prediction error",
        )
        for p in self.points:
            table.add_row(
                [
                    p.application,
                    p.data_size,
                    f"{p.transfer_error:.1%}",
                    f"{p.kernel_error:.1%}",
                ]
            )
        return table

    def render(self) -> str:
        return (
            self.as_table().render()
            + f"\naverages: transfer {self.mean_transfer_error:.1%}, "
            f"kernel {self.mean_kernel_error:.1%}"
        )


def run_fig6_error_scatter(
    ctx: ExperimentContext,
    workloads: tuple[Workload, ...] | None = None,
) -> Fig6Result:
    points: list[ErrorScatterPoint] = []
    for workload in workloads or paper_workloads():
        for dataset in workload.datasets():
            report = ctx.report(workload, dataset)
            points.append(
                ErrorScatterPoint(
                    application=workload.name,
                    data_size=dataset.label,
                    transfer_error=report.transfer_error,
                    kernel_error=report.kernel_error,
                )
            )
    return Fig6Result(tuple(points))
