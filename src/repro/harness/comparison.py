"""Automated paper-vs-reproduction comparison (EXPERIMENTS.md in code).

Runs the evaluation and lines every reproduced statistic up against the
paper's printed value, with a per-row verdict.  ``shape holds`` means the
reproduction preserves the paper's qualitative claim even where the
magnitude differs (our testbed is a simulator); ``match`` means the
number itself lands within the row's tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness import paperref
from repro.harness.apps import run_fig5_transfer_scatter, run_table1_measured
from repro.harness.context import ExperimentContext
from repro.harness.speedups import (
    run_speedup_vs_iterations,
    run_table2_speedup_error,
)
from repro.harness.transfer_sweep import run_fig4_model_error
from repro.util.tables import Table
from repro.workloads.registry import get_workload


@dataclass(frozen=True)
class ComparisonRow:
    metric: str
    paper: float
    reproduced: float
    tolerance: float  # relative tolerance for a "match" verdict
    percent: bool = True  # render as percentage?

    @property
    def verdict(self) -> str:
        if self.paper == 0:
            return "match" if abs(self.reproduced) < 1e-9 else "differs"
        rel = abs(self.reproduced - self.paper) / abs(self.paper)
        return "match" if rel <= self.tolerance else "differs"

    def _fmt(self, value: float) -> str:
        return f"{value:.1%}" if self.percent else f"{value:g}"

    def cells(self) -> list[str]:
        return [
            self.metric,
            self._fmt(self.paper),
            self._fmt(self.reproduced),
            self.verdict,
        ]


@dataclass(frozen=True)
class PaperComparison:
    rows: tuple[ComparisonRow, ...]

    def as_table(self) -> Table:
        table = Table(
            ["metric", "paper", "reproduced", "verdict"],
            title="Paper vs reproduction",
        )
        for row in self.rows:
            table.add_row(row.cells())
        return table

    def render(self) -> str:
        matched = sum(1 for r in self.rows if r.verdict == "match")
        return (
            self.as_table().render()
            + f"\n{matched}/{len(self.rows)} metrics within tolerance"
        )

    @property
    def match_fraction(self) -> float:
        return sum(1 for r in self.rows if r.verdict == "match") / len(
            self.rows
        )


def compare_with_paper(ctx: ExperimentContext) -> PaperComparison:
    """Run the evaluation and build the full comparison."""
    rows: list[ComparisonRow] = []

    fig4 = run_fig4_model_error(ctx)
    rows.append(
        ComparisonRow("Fig4 mean bus error, to GPU",
                      paperref.FIG4_MEAN_ERROR_H2D, fig4.mean_h2d, 0.6)
    )
    rows.append(
        ComparisonRow("Fig4 mean bus error, from GPU",
                      paperref.FIG4_MEAN_ERROR_D2H, fig4.mean_d2h, 0.6)
    )
    rows.append(
        ComparisonRow("Fig4 max bus error, to GPU",
                      paperref.FIG4_MAX_ERROR_H2D, fig4.max_h2d, 0.6)
    )

    table1 = run_table1_measured(ctx)
    for (app, size), ref in paperref.TABLE1.items():
        row = table1.row(app, size)
        rows.append(
            ComparisonRow(
                f"Table1 kernel ms, {app} {size}",
                ref.kernel_ms, row.kernel_ms, 0.10, percent=False,
            )
        )
        rows.append(
            ComparisonRow(
                f"Table1 transfer ms, {app} {size}",
                ref.transfer_ms, row.transfer_ms, 0.25, percent=False,
            )
        )

    fig5 = run_fig5_transfer_scatter(ctx)
    rows.append(
        ComparisonRow("Fig5 mean per-transfer error",
                      paperref.FIG5_MEAN_TRANSFER_ERROR, fig5.mean_error,
                      0.5)
    )

    table2 = run_table2_speedup_error(ctx)
    for (app, size), ref in paperref.TABLE2.items():
        row = table2.row(app, size)
        rows.append(
            ComparisonRow(
                f"Table2 kernel-only error, {app} {size}",
                ref.kernel_only, row.kernel_only_error, 0.35,
            )
        )
    avg = table2.application_average
    ref_avg = paperref.TABLE2_AVERAGE_APPLICATIONS
    rows.append(
        ComparisonRow("Table2 headline kernel-only",
                      ref_avg.kernel_only, avg.kernel_only_error, 1.0)
    )
    rows.append(
        ComparisonRow("Table2 headline transfer-only",
                      ref_avg.transfer_only, avg.transfer_only_error, 0.35)
    )
    rows.append(
        ComparisonRow("Table2 headline combined",
                      ref_avg.both, avg.both_error, 2.0)
    )

    for name in ("CFD", "HotSpot", "SRAD"):
        sweep = run_speedup_vs_iterations(ctx, get_workload(name))
        rows.append(
            ComparisonRow(
                f"accuracy crossover iters, {name}",
                paperref.ACCURACY_CROSSOVER[name],
                sweep.accuracy_crossover or 0,
                0.5,
                percent=False,
            )
        )
        rows.append(
            ComparisonRow(
                f"limit error, {name}",
                paperref.LIMIT_ERROR[name],
                sweep.limit_error,
                0.6,
            )
        )

    stassuij = get_workload("Stassuij")
    report = ctx.report(stassuij, stassuij.datasets()[0])
    rows.append(
        ComparisonRow(
            "Stassuij transfer-aware speedup",
            paperref.STASSUIJ_BOTH_SPEEDUP,
            report.predicted_speedup("both"),
            0.15,
            percent=False,
        )
    )
    rows.append(
        ComparisonRow(
            "Stassuij measured speedup",
            paperref.STASSUIJ_MEASURED_SPEEDUP,
            report.measured.speedup(),
            0.15,
            percent=False,
        )
    )
    return PaperComparison(tuple(rows))
