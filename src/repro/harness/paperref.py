"""The paper's reported numbers, transcribed for comparison.

All percentages are fractions (0.08 == 8%).  Sources: Table I, Table II,
Figs. 4/5/8/10/12 captions and the surrounding prose of Section V.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperTable1Row:
    kernel_ms: float
    transfer_ms: float
    percent_transfer: float
    input_mb: float
    output_mb: float


#: Table I (the 64x64 HotSpot row prints "<0.1"; we carry the values our
#: calibration resolves it to, consistent with its 41% transfer share).
TABLE1: dict[tuple[str, str], PaperTable1Row] = {
    ("CFD", "97K"): PaperTable1Row(1.9, 3.2, 63, 6.3, 1.9),
    ("CFD", "193K"): PaperTable1Row(3.2, 6.2, 66, 12.6, 3.7),
    ("CFD", "233K"): PaperTable1Row(3.1, 7.4, 70, 15.1, 4.4),
    ("HotSpot", "64 x 64"): PaperTable1Row(0.072, 0.05, 41, 0.031, 0.016),
    ("HotSpot", "512 x 512"): PaperTable1Row(0.3, 1.2, 77, 2.0, 1.0),
    ("HotSpot", "1024 x 1024"): PaperTable1Row(1.2, 4.6, 79, 8.0, 4.0),
    ("SRAD", "1024 x 1024"): PaperTable1Row(2.0, 4.0, 67, 4.0, 4.0),
    ("SRAD", "2048 x 2048"): PaperTable1Row(7.6, 13.0, 63, 16.0, 16.0),
    ("SRAD", "4096 x 4096"): PaperTable1Row(28.1, 49.0, 64, 64.0, 64.0),
    ("Stassuij", "132 x 2048"): PaperTable1Row(2.4, 4.9, 67, 8.5, 4.1),
}


@dataclass(frozen=True)
class PaperTable2Row:
    kernel_only: float
    transfer_only: float
    both: float


#: Table II, per data set.
TABLE2: dict[tuple[str, str], PaperTable2Row] = {
    ("CFD", "97K"): PaperTable2Row(3.77, 0.67, 0.24),
    ("CFD", "193K"): PaperTable2Row(3.44, 0.56, 0.15),
    ("CFD", "233K"): PaperTable2Row(3.16, 0.46, 0.08),
    ("HotSpot", "64 x 64"): PaperTable2Row(0.93, 1.98, 0.17),
    ("HotSpot", "512 x 512"): PaperTable2Row(4.06, 0.35, 0.07),
    ("HotSpot", "1024 x 1024"): PaperTable2Row(3.66, 0.31, 0.02),
    ("SRAD", "1024 x 1024"): PaperTable2Row(2.41, 0.97, 0.25),
    ("SRAD", "2048 x 2048"): PaperTable2Row(1.96, 0.72, 0.09),
    ("SRAD", "4096 x 4096"): PaperTable2Row(1.76, 0.61, 0.01),
    ("Stassuij", "132 x 2048"): PaperTable2Row(1.82, 0.51, 0.02),
}

#: Table II's two closing average rows.
TABLE2_AVERAGE_DATASETS = PaperTable2Row(2.70, 0.71, 0.11)
TABLE2_AVERAGE_APPLICATIONS = PaperTable2Row(2.55, 0.68, 0.09)

#: Fig. 4 summary statistics.
FIG4_MAX_ERROR_H2D = 0.064
FIG4_MAX_ERROR_D2H = 0.033
FIG4_MEAN_ERROR_H2D = 0.020
FIG4_MEAN_ERROR_D2H = 0.008

#: Fig. 5: average per-transfer prediction error across all apps.
FIG5_MEAN_TRANSFER_ERROR = 0.076

#: Fig. 3: pinned beats pageable for all H2D transfers above ~2 KB.
FIG3_H2D_CROSSOVER_BYTES = 2048

#: Figs. 8/10/12: iteration counts below which the transfer-aware
#: prediction stays more than twice as accurate, and the infinite-
#: iteration-limit errors.
ACCURACY_CROSSOVER = {"CFD": 18, "HotSpot": 70, "SRAD": 228}
LIMIT_ERROR = {"CFD": 0.226, "HotSpot": 0.019, "SRAD": 0.0075}

#: Section V-B.4: the Stassuij decision flip.
STASSUIJ_KERNEL_ONLY_SPEEDUP = 1.10
STASSUIJ_MEASURED_SPEEDUP = 0.39
STASSUIJ_BOTH_SPEEDUP = 0.38

#: Headline claims (abstract / Section V).
MEAN_KERNEL_TIME_ERROR = 0.15
MEAN_TRANSFER_TIME_ERROR = 0.08
