"""Shared experiment state: one testbed, one calibration, cached runs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.projector import GrophecyPlusPlus
from repro.core.prediction import Projection
from repro.obs.trace import span as trace_span
from repro.core.report import MeasuredApplication, PredictionReport
from repro.gpu.arch import quadro_fx_5600
from repro.pcie.calibration import calibrate_bus
from repro.pcie.channel import MemoryKind
from repro.sim.gpu_sim import KernelWork, kernel_work_from_skeleton
from repro.sim.machine import VirtualTestbed, argonne_testbed
from repro.sweep.engine import SweepEngine
from repro.workloads.base import Dataset, Workload

#: Measurement repetitions, per the paper's methodology.
REPETITIONS = 10


@dataclass(frozen=True)
class CalibratedFactors:
    """Fitted hardware factors for one (workload, dataset)."""

    kernel_factor: float
    cpu_factor: float


class ExperimentContext:
    """Everything an experiment needs, built once and cached.

    Construction runs the paper's setup sequence: boot the (virtual)
    testbed, auto-calibrate the PCIe model with the two-point synthetic
    benchmark, and instantiate GROPHECY++ against the testbed's GPU
    architecture.
    """

    def __init__(
        self,
        seed: int = 2013,
        testbed: VirtualTestbed | None = None,
        batched_transfers: bool = False,
        explorer: str = "fast",
        sweep: bool = True,
    ) -> None:
        """``sweep=True`` (the default) serves multi-dataset projections
        through the parametric :class:`~repro.sweep.engine.SweepEngine`
        — the first projection of a workload sweeps *all* its datasets
        in one structural pass.  Results are numerically identical to
        the per-point projector (``docs/SWEEP.md``); ``sweep=False``
        restores point-at-a-time projection.
        """
        self.testbed = testbed or argonne_testbed(seed)
        self.bus_model = calibrate_bus(self.testbed.bus)
        self._batched_transfers = batched_transfers
        self.projector = GrophecyPlusPlus(
            quadro_fx_5600(),
            self.bus_model,
            batched_transfers=batched_transfers,
            explorer=explorer,
        )
        self.sweep = sweep
        self._sweep_engine: SweepEngine | None = None
        self._projections: dict[tuple[str, str], Projection] = {}
        self._measured: dict[tuple[str, str], MeasuredApplication] = {}
        self._factors: dict[tuple[str, str], CalibratedFactors] = {}
        self._reports: dict[tuple[str, str], PredictionReport] = {}

    # --- prediction side -----------------------------------------------------
    @property
    def sweep_engine(self) -> SweepEngine:
        """The context's sweep engine (built lazily, shares the model)."""
        if self._sweep_engine is None:
            self._sweep_engine = SweepEngine(
                self.projector.model,
                self.bus_model,
                self.projector.space,
                batched_transfers=self._batched_transfers,
            )
        return self._sweep_engine

    def project_all(
        self,
        workload: Workload,
        datasets: tuple[Dataset, ...] | list[Dataset] | None = None,
    ) -> list[Projection]:
        """Project every dataset of a workload in one sweep pass.

        Cached points are reused; only the missing ones go through the
        sweep engine.  Returns projections in dataset order.
        """
        points = (
            list(datasets)
            if datasets is not None
            else list(workload.datasets())
        )
        missing = [
            d
            for d in points
            if (workload.name, d.label) not in self._projections
        ]
        if missing:
            with trace_span(
                "project-all",
                category="harness",
                workload=workload.name,
                points=len(missing),
            ):
                swept = self.sweep_engine.sweep_workload(
                    workload, datasets=missing
                )
            for dataset, projection in zip(missing, swept):
                self._projections[(workload.name, dataset.label)] = projection
        return [
            self._projections[(workload.name, d.label)] for d in points
        ]

    def projection(self, workload: Workload, dataset: Dataset) -> Projection:
        key = (workload.name, dataset.label)
        if key not in self._projections:
            if self.sweep:
                # One structural pass covers the whole workload; the
                # requested dataset may be outside workload.datasets()
                # (custom sweeps), in which case fall through below.
                self.project_all(workload)
            if key not in self._projections:
                program = workload.skeleton(dataset)
                with trace_span(
                    "project-point",
                    category="harness",
                    workload=workload.name,
                    dataset=dataset.label,
                ):
                    self._projections[key] = self.projector.project(
                        program, workload.hints(dataset)
                    )
        return self._projections[key]

    # --- measured side ----------------------------------------------------
    def kernel_works(
        self, workload: Workload, dataset: Dataset
    ) -> list[KernelWork]:
        program = workload.skeleton(dataset)
        arrays = program.array_map
        return [
            kernel_work_from_skeleton(
                k, arrays, self.testbed.gpu_arch.strict_coalescing
            )
            for k in program.kernels
        ]

    def factors(
        self, workload: Workload, dataset: Dataset
    ) -> CalibratedFactors:
        """Fit the replayed-testbed hardware factors (DESIGN.md §2).

        The per-dataset kernel factor is the single scalar that makes the
        virtual GPU's noise-free kernel-sequence time equal the paper's
        Table I measurement; the CPU factor does the same against the CPU
        anchor.  Relative time between kernels keeps the simulator's own
        structure.
        """
        key = (workload.name, dataset.label)
        if key in self._factors:
            return self._factors[key]
        targets = workload.testbed_targets(dataset)
        works = self.kernel_works(workload, dataset)
        launch = self.testbed.gpu.params.launch_overhead
        total_body = sum(
            self.testbed.gpu.expected_kernel_time(w) - launch for w in works
        )
        launch_total = launch * len(works)
        body_target = max(
            targets.kernel_seconds - launch_total, 0.1 * targets.kernel_seconds
        )
        kernel_factor = body_target / total_body
        roofline = self.testbed.cpu.model.time(workload.cpu_profile(dataset))
        cpu_factor = targets.cpu_seconds / roofline
        self._factors[key] = CalibratedFactors(kernel_factor, cpu_factor)
        return self._factors[key]

    def measured(
        self, workload: Workload, dataset: Dataset
    ) -> MeasuredApplication:
        """Run the 'hand-coded CUDA + OpenMP' measurement on the testbed.

        Kernel, per-transfer, and CPU times are each the arithmetic mean
        of ten runs.  The transfer set is the same plan the hand-coded
        port would implement (the analyzer's plan), including the paper's
        Fig. 5 per-transfer quirks.
        """
        key = (workload.name, dataset.label)
        if key in self._measured:
            return self._measured[key]
        targets = workload.testbed_targets(dataset)
        factors = self.factors(workload, dataset)
        works = self.kernel_works(workload, dataset)

        kernel_seconds = sum(
            self.testbed.measure_kernel(
                w, factors.kernel_factor, REPETITIONS
            ).mean
            for w in works
        )
        plan = self.projection(workload, dataset).plan
        per_transfer = tuple(
            self.testbed.measure_transfer(
                t.bytes,
                t.direction,
                MemoryKind.PINNED,
                quirk=targets.quirk_for(t.array, t.direction),
                repetitions=REPETITIONS,
            ).mean
            * targets.transfer_context
            for t in plan.transfers
        )
        cpu_seconds = self.testbed.measure_cpu(
            workload.cpu_profile(dataset), factors.cpu_factor, REPETITIONS
        ).mean
        self._measured[key] = MeasuredApplication(
            label=f"{workload.name}/{dataset.label}",
            kernel_seconds=kernel_seconds,
            transfer_seconds=sum(per_transfer),
            cpu_seconds=cpu_seconds,
            per_transfer_seconds=per_transfer,
        )
        return self._measured[key]

    def report(
        self, workload: Workload, dataset: Dataset
    ) -> PredictionReport:
        key = (workload.name, dataset.label)
        report = self._reports.get(key)
        if report is None:
            report = PredictionReport(
                projection=self.projection(workload, dataset),
                measured=self.measured(workload, dataset),
            )
            self._reports[key] = report
        return report
