"""Figs. 7-12 and Table II: speedup predictions vs measurements."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.speedup import accuracy_crossover_iterations
from repro.harness.context import ExperimentContext
from repro.util.stats import arithmetic_mean
from repro.util.tables import Table, series_table
from repro.workloads.base import Dataset, Workload
from repro.workloads.registry import paper_workloads


@dataclass(frozen=True)
class SpeedupVsSizeResult:
    """Figs. 7/9/11: speedups across data sizes for one application."""

    application: str
    labels: tuple[str, ...]
    measured: tuple[float, ...]
    predicted_with_transfer: tuple[float, ...]
    predicted_without_transfer: tuple[float, ...]

    def as_table(self) -> Table:
        return series_table(
            f"GPU speedup vs data size — {self.application} "
            "(Figs. 7/9/11 family)",
            list(self.labels),
            {
                "measured": self.measured,
                "pred w/ transfer": self.predicted_with_transfer,
                "pred w/o transfer": self.predicted_without_transfer,
            },
            x_label="data size",
            value_format="{:.2f}",
        )

    def render(self) -> str:
        return self.as_table().render()


def run_speedup_vs_size(
    ctx: ExperimentContext, workload: Workload, iterations: int = 1
) -> SpeedupVsSizeResult:
    if ctx.sweep:
        # One structural pass over the whole size axis (docs/SWEEP.md);
        # the per-dataset reports below then read from the cache.
        ctx.project_all(workload)
    labels, measured, with_t, without_t = [], [], [], []
    for dataset in workload.datasets():
        report = ctx.report(workload, dataset)
        labels.append(dataset.label)
        measured.append(report.measured.speedup(iterations))
        with_t.append(report.predicted_speedup("both", iterations))
        without_t.append(report.predicted_speedup("kernel", iterations))
    return SpeedupVsSizeResult(
        application=workload.name,
        labels=tuple(labels),
        measured=tuple(measured),
        predicted_with_transfer=tuple(with_t),
        predicted_without_transfer=tuple(without_t),
    )


@dataclass(frozen=True)
class SpeedupVsIterationsResult:
    """Figs. 8/10/12: speedups across iteration counts for one dataset."""

    application: str
    data_size: str
    iterations: tuple[int, ...]
    measured: tuple[float, ...]
    predicted_with_transfer: tuple[float, ...]
    predicted_without_transfer: tuple[float, ...]
    #: Largest iteration count where the transfer-aware prediction stays
    #: >= 2x more accurate (paper: ~18 CFD, ~70 HotSpot, ~228 SRAD).
    accuracy_crossover: int | None
    #: Prediction error as iterations -> infinity (kernel error).
    limit_error: float

    def as_table(self) -> Table:
        return series_table(
            f"GPU speedup vs iterations — {self.application} "
            f"{self.data_size} (Figs. 8/10/12 family)",
            list(self.iterations),
            {
                "measured": self.measured,
                "pred w/ transfer": self.predicted_with_transfer,
                "pred w/o transfer": self.predicted_without_transfer,
            },
            x_label="iterations",
            value_format="{:.2f}",
        )

    def render(self) -> str:
        body = self.as_table().render()
        return body + (
            f"\n2x-accuracy crossover: {self.accuracy_crossover} iterations; "
            f"error in the infinite-iteration limit: {self.limit_error:.1%}"
        )


def run_speedup_vs_iterations(
    ctx: ExperimentContext,
    workload: Workload,
    dataset: Dataset | None = None,
    iteration_counts: tuple[int, ...] | None = None,
) -> SpeedupVsIterationsResult:
    """Sweep iteration counts for the workload's largest dataset."""
    if not workload.is_iterative:
        raise ValueError(f"{workload.name} is not iterative")
    dataset = dataset or max(workload.datasets(), key=lambda d: d.size)
    counts = iteration_counts or workload.iteration_sweep()
    report = ctx.report(workload, dataset)

    measured, with_t, without_t = [], [], []
    for n in counts:
        measured.append(report.measured.speedup(n))
        with_t.append(report.predicted_speedup("both", n))
        without_t.append(report.predicted_speedup("kernel", n))

    crossover = accuracy_crossover_iterations(
        predicted_kernel=report.projection.kernel_seconds,
        predicted_transfer=report.projection.transfer_seconds,
        measured_kernel=report.measured.kernel_seconds,
        measured_transfer=report.measured.transfer_seconds,
    )
    limit_error = abs(
        report.measured.kernel_seconds / report.projection.kernel_seconds - 1
    )
    return SpeedupVsIterationsResult(
        application=workload.name,
        data_size=dataset.label,
        iterations=tuple(counts),
        measured=tuple(measured),
        predicted_with_transfer=tuple(with_t),
        predicted_without_transfer=tuple(without_t),
        accuracy_crossover=crossover,
        limit_error=limit_error,
    )


@dataclass(frozen=True)
class Table2Row:
    application: str
    data_set: str
    kernel_only_error: float
    transfer_only_error: float
    both_error: float


@dataclass(frozen=True)
class Table2Result:
    """Table II: speedup-prediction errors under the three time models."""

    rows: tuple[Table2Row, ...]
    application_averages: dict[str, Table2Row]

    def _mean(self, selector) -> float:
        return arithmetic_mean([selector(r) for r in self.rows])

    @property
    def dataset_average(self) -> Table2Row:
        """Weights every data set equally (paper's first average row)."""
        return Table2Row(
            "Average (data sets)",
            "",
            self._mean(lambda r: r.kernel_only_error),
            self._mean(lambda r: r.transfer_only_error),
            self._mean(lambda r: r.both_error),
        )

    @property
    def application_average(self) -> Table2Row:
        """Weights every application equally (the paper's headline).

        The paper's 255% / 68% / 9% row is this one.
        """
        rows = list(self.application_averages.values())
        return Table2Row(
            "Average (applications)",
            "",
            arithmetic_mean([r.kernel_only_error for r in rows]),
            arithmetic_mean([r.transfer_only_error for r in rows]),
            arithmetic_mean([r.both_error for r in rows]),
        )

    def row(self, application: str, data_set: str) -> Table2Row:
        for r in self.rows:
            if r.application == application and r.data_set == data_set:
                return r
        raise KeyError(f"no row {application}/{data_set}")

    def as_table(self) -> Table:
        table = Table(
            ["Application", "Data Set", "Kernel Only", "Transfer Only",
             "Kernel and Transfer"],
            title="Table II: error magnitude of the predicted GPU speedup",
        )

        def fmt(row: Table2Row) -> list[str]:
            return [
                row.application,
                row.data_set,
                f"{row.kernel_only_error:.0%}",
                f"{row.transfer_only_error:.0%}",
                f"{row.both_error:.0%}",
            ]

        seen_apps: list[str] = []
        for r in self.rows:
            table.add_row(fmt(r))
            if r.application not in seen_apps:
                seen_apps.append(r.application)
        for app in seen_apps:
            avg = self.application_averages[app]
            if avg.data_set == "Average":
                table.add_row(fmt(avg))
        table.add_row(fmt(self.dataset_average))
        table.add_row(fmt(self.application_average))
        return table

    def render(self) -> str:
        return self.as_table().render()


def run_table2_speedup_error(
    ctx: ExperimentContext,
    workloads: tuple[Workload, ...] | None = None,
    iterations: int = 1,
) -> Table2Result:
    rows: list[Table2Row] = []
    app_averages: dict[str, Table2Row] = {}
    for workload in workloads or paper_workloads():
        app_rows: list[Table2Row] = []
        for dataset in workload.datasets():
            report = ctx.report(workload, dataset)
            row = Table2Row(
                application=workload.name,
                data_set=dataset.label,
                kernel_only_error=report.speedup_error("kernel", iterations),
                transfer_only_error=report.speedup_error(
                    "transfer", iterations
                ),
                both_error=report.speedup_error("both", iterations),
            )
            rows.append(row)
            app_rows.append(row)
        app_averages[workload.name] = Table2Row(
            workload.name,
            "Average" if len(app_rows) > 1 else app_rows[0].data_set,
            arithmetic_mean([r.kernel_only_error for r in app_rows]),
            arithmetic_mean([r.transfer_only_error for r in app_rows]),
            arithmetic_mean([r.both_error for r in app_rows]),
        )
    return Table2Result(tuple(rows), app_averages)
