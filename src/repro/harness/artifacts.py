"""One-call artifact generation: every table and figure, written to disk.

``write_all_artifacts(ctx, outdir)`` regenerates the paper's full
evaluation and writes each artifact as aligned text, markdown, and CSV,
plus ASCII charts for the figures and a summary with the headline
numbers.  This is what CI (or a reader) runs to refresh EXPERIMENTS.md's
source data.
"""

from __future__ import annotations

from pathlib import Path

from repro.datausage.transfers import Direction
from repro.harness import figures, paperref
from repro.harness.apps import (
    run_fig5_transfer_scatter,
    run_fig6_error_scatter,
    run_table1_measured,
)
from repro.harness.context import ExperimentContext
from repro.harness.export import save
from repro.harness.speedups import (
    run_speedup_vs_iterations,
    run_speedup_vs_size,
    run_table2_speedup_error,
)
from repro.harness.transfer_sweep import (
    run_fig2_transfer_times,
    run_fig3_pinned_speedup,
    run_fig4_model_error,
)
from repro.workloads.registry import get_workload

FORMAT_SUFFIX = {"text": ".txt", "markdown": ".md", "csv": ".csv"}


def write_all_artifacts(
    ctx: ExperimentContext,
    outdir: str | Path,
    formats: tuple[str, ...] = ("text", "markdown", "csv"),
    charts: bool = True,
) -> list[Path]:
    """Run every experiment and write each artifact; returns the paths."""
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    results = {
        "table1": run_table1_measured(ctx),
        "table2": run_table2_speedup_error(ctx),
        "fig2_h2d": run_fig2_transfer_times(ctx, Direction.H2D),
        "fig2_d2h": run_fig2_transfer_times(ctx, Direction.D2H),
        "fig3": run_fig3_pinned_speedup(ctx),
        "fig4": run_fig4_model_error(ctx),
        "fig5": run_fig5_transfer_scatter(ctx),
        "fig6": run_fig6_error_scatter(ctx),
    }
    size_figs = {"fig7": "CFD", "fig9": "HotSpot", "fig11": "SRAD"}
    iter_figs = {"fig8": "CFD", "fig10": "HotSpot", "fig12": "SRAD"}
    for name, app in size_figs.items():
        results[name] = run_speedup_vs_size(ctx, get_workload(app))
    for name, app in iter_figs.items():
        results[name] = run_speedup_vs_iterations(ctx, get_workload(app))

    for name, result in results.items():
        for fmt in formats:
            path = outdir / f"{name}{FORMAT_SUFFIX[fmt]}"
            written.append(save(result, path, fmt))

    if charts:
        chart_renderers = {
            "fig2_h2d": figures.fig2_chart,
            "fig2_d2h": figures.fig2_chart,
            "fig3": figures.fig3_chart,
            "fig4": figures.fig4_chart,
            "fig5": figures.fig5_chart,
            "fig6": figures.fig6_chart,
            **{n: figures.speedup_vs_size_chart for n in size_figs},
            **{n: figures.speedup_vs_iterations_chart for n in iter_figs},
        }
        for name, renderer in chart_renderers.items():
            path = outdir / f"{name}.chart.txt"
            path.write_text(renderer(results[name]) + "\n", encoding="utf-8")
            written.append(path)

    written.append(_write_summary(ctx, results, outdir))
    return written


def _write_summary(
    ctx: ExperimentContext, results: dict, outdir: Path
) -> Path:
    """The headline comparison, paper vs this run."""
    table2 = results["table2"]
    fig4 = results["fig4"]
    fig5 = results["fig5"]
    avg = table2.application_average
    ref = paperref.TABLE2_AVERAGE_APPLICATIONS
    lines = [
        "# Reproduction summary",
        "",
        f"- testbed: {ctx.testbed.name} "
        f"({ctx.testbed.gpu_arch.name} / {ctx.testbed.cpu_arch.name})",
        f"- calibrated bus: H2D {ctx.bus_model.h2d}; "
        f"D2H {ctx.bus_model.d2h}",
        "",
        "| metric | paper | this run |",
        "|---|---|---|",
        f"| speedup error, kernel-only | {ref.kernel_only:.0%} "
        f"| {avg.kernel_only_error:.0%} |",
        f"| speedup error, transfer-only | {ref.transfer_only:.0%} "
        f"| {avg.transfer_only_error:.0%} |",
        f"| speedup error, kernel+transfer | {ref.both:.0%} "
        f"| {avg.both_error:.0%} |",
        f"| Fig. 4 mean error (to GPU) | "
        f"{paperref.FIG4_MEAN_ERROR_H2D:.1%} | {fig4.mean_h2d:.1%} |",
        f"| Fig. 4 mean error (from GPU) | "
        f"{paperref.FIG4_MEAN_ERROR_D2H:.1%} | {fig4.mean_d2h:.1%} |",
        f"| Fig. 5 mean per-transfer error | "
        f"{paperref.FIG5_MEAN_TRANSFER_ERROR:.1%} | {fig5.mean_error:.1%} |",
    ]
    path = outdir / "summary.md"
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path
