"""Seed-stability study: are the headline numbers a fluke of one run?

Every measurement on the virtual testbed is stochastic (jitter, the
bimodal CFD transfer).  This module reruns the headline Table II metrics
across several independent testbed seeds — different "lab days" — and
summarizes the spread, demonstrating the reproduction's conclusions are
properties of the system, not of seed 2013.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.context import ExperimentContext
from repro.harness.speedups import run_table2_speedup_error
from repro.util.stats import Summary, summarize
from repro.util.tables import Table
from repro.util.validation import check_positive


@dataclass(frozen=True)
class StabilityResult:
    """Headline metrics across seeds."""

    seeds: tuple[int, ...]
    kernel_only: Summary
    transfer_only: Summary
    both: Summary

    def as_table(self) -> Table:
        table = Table(
            ["metric", "mean", "std", "min", "max"],
            title=(
                f"Table II headline across {len(self.seeds)} testbed seeds"
            ),
        )
        for name, summary in (
            ("kernel-only error", self.kernel_only),
            ("transfer-only error", self.transfer_only),
            ("kernel+transfer error", self.both),
        ):
            table.add_row(
                [
                    name,
                    f"{summary.mean:.0%}",
                    f"{summary.std:.1%}",
                    f"{summary.minimum:.0%}",
                    f"{summary.maximum:.0%}",
                ]
            )
        return table

    def render(self) -> str:
        return self.as_table().render()

    @property
    def conclusion_stable(self) -> bool:
        """Does every seed preserve the headline ordering with margin?

        Requires kernel-only to stay an order of magnitude above the
        combined error in the *worst* seed.
        """
        return self.kernel_only.minimum > 10 * self.both.maximum


def headline_across_seeds(
    seeds: tuple[int, ...] = (2013, 1, 7, 42, 99),
) -> StabilityResult:
    """Run Table II on several independent testbeds; summarize."""
    if not seeds:
        raise ValueError("need at least one seed")
    check_positive("seed count", len(seeds))
    kernel_only, transfer_only, both = [], [], []
    for seed in seeds:
        ctx = ExperimentContext(seed=seed)
        avg = run_table2_speedup_error(ctx).application_average
        kernel_only.append(avg.kernel_only_error)
        transfer_only.append(avg.transfer_only_error)
        both.append(avg.both_error)
    return StabilityResult(
        seeds=tuple(seeds),
        kernel_only=summarize(kernel_only),
        transfer_only=summarize(transfer_only),
        both=summarize(both),
    )
