"""Experiment harness: one runner per paper table/figure.

Every experiment returns a result object carrying the same rows/series the
paper reports, and knows how to render itself as text.  The mapping from
experiment id to paper artifact is in DESIGN.md §4; the paper's reference
numbers live in :mod:`repro.harness.paperref` and the measured-vs-paper
comparison is recorded in EXPERIMENTS.md.
"""

from repro.harness.context import ExperimentContext
from repro.harness.transfer_sweep import (
    run_fig2_transfer_times,
    run_fig3_pinned_speedup,
    run_fig4_model_error,
)
from repro.harness.apps import (
    run_table1_measured,
    run_fig5_transfer_scatter,
    run_fig6_error_scatter,
)
from repro.harness.speedups import (
    run_speedup_vs_size,
    run_speedup_vs_iterations,
    run_table2_speedup_error,
)
from repro.harness.comparison import PaperComparison, compare_with_paper
from repro.harness.stability import StabilityResult, headline_across_seeds
from repro.harness import paperref

__all__ = [
    "PaperComparison",
    "compare_with_paper",
    "StabilityResult",
    "headline_across_seeds",
    "ExperimentContext",
    "run_fig2_transfer_times",
    "run_fig3_pinned_speedup",
    "run_fig4_model_error",
    "run_table1_measured",
    "run_fig5_transfer_scatter",
    "run_fig6_error_scatter",
    "run_speedup_vs_size",
    "run_speedup_vs_iterations",
    "run_table2_speedup_error",
    "paperref",
]
