"""Exporters: write any experiment result as text, markdown, or CSV.

Every experiment result exposes ``as_table()``; these helpers turn that
into files or strings, so the harness can feed notebooks, papers, or CI
artifacts without extra dependencies.
"""

from __future__ import annotations

from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.util.tables import Table
from repro.util.validation import check_in

FORMATS = ("text", "markdown", "csv")


@runtime_checkable
class TabularResult(Protocol):
    """Anything the harness produces that can render as a table."""

    def as_table(self) -> Table: ...


def to_text(result: TabularResult) -> str:
    """Aligned plain-text rendering (same as ``result.render()``'s body)."""
    return result.as_table().render()


def to_markdown(result: TabularResult) -> str:
    """GitHub-flavoured markdown table."""
    return result.as_table().to_markdown()


def to_csv(result: TabularResult) -> str:
    """CSV (header row first; the table title is not included)."""
    return result.as_table().to_csv()


def export(result: TabularResult, fmt: str = "text") -> str:
    """Dispatch on format name ('text' | 'markdown' | 'csv')."""
    check_in("fmt", fmt, FORMATS)
    if fmt == "text":
        return to_text(result)
    if fmt == "markdown":
        return to_markdown(result)
    return to_csv(result)


def save(result: TabularResult, path: str | Path, fmt: str | None = None) -> Path:
    """Write the rendered result to ``path``.

    The format defaults from the file suffix: ``.md`` -> markdown,
    ``.csv`` -> csv, anything else -> text.
    """
    path = Path(path)
    if fmt is None:
        fmt = {".md": "markdown", ".csv": "csv"}.get(path.suffix, "text")
    path.write_text(export(result, fmt) + "\n", encoding="utf-8")
    return path
