"""Prediction-vs-measurement reports (the evaluation's metric layer)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.prediction import Projection
from repro.core.speedup import gpu_total_time
from repro.util.stats import error_magnitude
from repro.util.validation import check_positive


@dataclass(frozen=True)
class MeasuredApplication:
    """Measured (virtual-testbed) times for one application/dataset.

    ``kernel_seconds`` and ``cpu_seconds`` are per application iteration;
    ``transfer_seconds`` is the iteration-independent total;
    ``per_transfer_seconds`` aligns with the projection's transfer plan.
    """

    label: str
    kernel_seconds: float
    transfer_seconds: float
    cpu_seconds: float
    per_transfer_seconds: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        check_positive("kernel_seconds", self.kernel_seconds)
        check_positive("transfer_seconds", self.transfer_seconds)
        check_positive("cpu_seconds", self.cpu_seconds)

    def total_seconds(self, iterations: int = 1) -> float:
        return gpu_total_time(
            self.kernel_seconds, self.transfer_seconds, iterations
        )

    def speedup(self, iterations: int = 1) -> float:
        return (self.cpu_seconds * iterations) / self.total_seconds(iterations)

    @property
    def transfer_fraction(self) -> float:
        return self.transfer_seconds / self.total_seconds(1)


@dataclass(frozen=True)
class PredictionReport:
    """All the error metrics the paper reports, for one dataset."""

    projection: Projection
    measured: MeasuredApplication

    # Component errors (Fig. 6 axes) ---------------------------------------
    @property
    def kernel_error(self) -> float:
        return error_magnitude(
            self.projection.kernel_seconds, self.measured.kernel_seconds
        )

    @property
    def transfer_error(self) -> float:
        return error_magnitude(
            self.projection.transfer_seconds, self.measured.transfer_seconds
        )

    def per_transfer_errors(self) -> tuple[float, ...]:
        """Per-individual-transfer errors (Fig. 5 points)."""
        measured = self.measured.per_transfer_seconds
        predicted = self.projection.per_transfer_seconds
        if len(measured) != len(predicted):
            raise ValueError(
                f"{self.measured.label}: measured {len(measured)} transfers "
                f"but predicted {len(predicted)}"
            )
        return tuple(
            error_magnitude(p, m) for p, m in zip(predicted, measured)
        )

    # Speedup predictions (Table II columns) --------------------------------
    def predicted_speedup(
        self, mode: str = "both", iterations: int = 1
    ) -> float:
        """Predicted speedup using 'kernel', 'transfer', or 'both' times."""
        cpu = self.measured.cpu_seconds * iterations
        if mode == "kernel":
            gpu = self.projection.kernel_only_seconds(iterations)
        elif mode == "transfer":
            gpu = self.projection.transfer_only_seconds()
        elif mode == "both":
            gpu = self.projection.total_seconds(iterations)
        else:
            raise ValueError(
                f"mode must be 'kernel', 'transfer' or 'both', got {mode!r}"
            )
        return cpu / gpu

    def speedup_error(self, mode: str = "both", iterations: int = 1) -> float:
        """Error magnitude of the predicted GPU speedup (Table II)."""
        return error_magnitude(
            self.predicted_speedup(mode, iterations),
            self.measured.speedup(iterations),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.measured.label}: kernel err "
            f"{self.kernel_error:.1%}, transfer err "
            f"{self.transfer_error:.1%}, speedup err (both) "
            f"{self.speedup_error('both'):.1%}"
        )
