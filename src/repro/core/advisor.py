"""Pinned-vs-pageable memory advisor (the paper's other future work).

The paper assumes pinned memory because it is "advantageous in most
typical use cases" and defers "automatically explor[ing] the tradeoff
between the two types of memory" to future work.  This module closes that
loop: given calibrated bus models for *both* memory kinds and an
allocation model, it prices a transfer plan end to end under each choice
— including the one-time pinned-allocation premium — and recommends the
kind with the lower total, plus the reuse count at which the
recommendation flips.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datausage.transfers import TransferPlan
from repro.pcie.allocation import AllocationModel, cuda23_era_allocation_model
from repro.pcie.calibration import CalibrationConfig, Calibrator
from repro.pcie.channel import MemoryKind, TransferChannel
from repro.pcie.model import BusModel
from repro.util.validation import check_positive


@dataclass(frozen=True)
class MemoryKindAdvice:
    """Priced comparison of the two memory kinds for one plan."""

    plan: str
    reuses: int  # how many times the plan's transfers execute
    pinned_transfer_seconds: float  # per execution of the plan
    pageable_transfer_seconds: float
    pinned_setup_seconds: float  # one-time allocation cost
    pageable_setup_seconds: float
    recommended: MemoryKind
    breakeven_reuses: int | None  # first reuse count where pinned wins

    def total(self, memory: MemoryKind) -> float:
        if memory is MemoryKind.PINNED:
            return (
                self.pinned_setup_seconds
                + self.reuses * self.pinned_transfer_seconds
            )
        return (
            self.pageable_setup_seconds
            + self.reuses * self.pageable_transfer_seconds
        )

    @property
    def saving_seconds(self) -> float:
        """How much the recommended kind saves over the alternative."""
        other = (
            MemoryKind.PAGEABLE
            if self.recommended is MemoryKind.PINNED
            else MemoryKind.PINNED
        )
        return self.total(other) - self.total(self.recommended)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.plan}: use {self.recommended.value} memory "
            f"(saves {self.saving_seconds * 1e3:.2f} ms over "
            f"{self.reuses} reuse(s))"
        )


class MemoryKindAdvisor:
    """Prices plans under both memory kinds and recommends one."""

    def __init__(
        self,
        channel: TransferChannel,
        allocation: AllocationModel | None = None,
    ) -> None:
        self._allocation = allocation or cuda23_era_allocation_model()
        self._pinned = Calibrator(
            channel, CalibrationConfig(memory=MemoryKind.PINNED)
        ).calibrate()
        self._pageable = Calibrator(
            channel, CalibrationConfig(memory=MemoryKind.PAGEABLE)
        ).calibrate()

    @property
    def pinned_bus(self) -> BusModel:
        return self._pinned

    @property
    def pageable_bus(self) -> BusModel:
        return self._pageable

    def advise(self, plan: TransferPlan, reuses: int = 1) -> MemoryKindAdvice:
        """Recommend a memory kind for a plan executed ``reuses`` times.

        ``reuses`` counts how often the plan's transfers run — e.g. a
        solver that re-uploads new inputs every outer step reuses its
        (identically-shaped) plan once per step, amortizing allocation.
        """
        check_positive("reuses", reuses)
        pinned_t = self._pinned.predict_plan(plan)
        pageable_t = self._pageable.predict_plan(plan)
        pinned_setup = self._allocation.plan_setup_time(
            plan, MemoryKind.PINNED
        )
        pageable_setup = self._allocation.plan_setup_time(
            plan, MemoryKind.PAGEABLE
        )

        def total(memory: MemoryKind, n: int) -> float:
            if memory is MemoryKind.PINNED:
                return pinned_setup + n * pinned_t
            return pageable_setup + n * pageable_t

        recommended = (
            MemoryKind.PINNED
            if total(MemoryKind.PINNED, reuses)
            <= total(MemoryKind.PAGEABLE, reuses)
            else MemoryKind.PAGEABLE
        )
        # Break-even: smallest reuse count at which pinned's per-use
        # saving has paid back its allocation premium.
        breakeven: int | None = None
        per_use_saving = pageable_t - pinned_t
        setup_premium = pinned_setup - pageable_setup
        if per_use_saving > 0:
            import math

            breakeven = max(1, math.ceil(setup_premium / per_use_saving))
        return MemoryKindAdvice(
            plan=plan.program,
            reuses=reuses,
            pinned_transfer_seconds=pinned_t,
            pageable_transfer_seconds=pageable_t,
            pinned_setup_seconds=pinned_setup,
            pageable_setup_seconds=pageable_setup,
            recommended=recommended,
            breakeven_reuses=breakeven,
        )
