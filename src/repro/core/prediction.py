"""Projection results."""

from __future__ import annotations

from dataclasses import dataclass

from repro.datausage.transfers import TransferPlan
from repro.transform.explorer import ProgramProjection
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class Projection:
    """A complete GROPHECY++ projection for one program.

    ``kernel_seconds`` is per application iteration (the sum of the
    best-mapping times of all kernels in the sequence); ``transfer_seconds``
    is iteration-independent — inputs move once before the first iteration
    and outputs once after the last (Section IV-B).
    """

    program: str
    kernel_seconds: float
    transfer_seconds: float
    plan: TransferPlan
    per_transfer_seconds: tuple[float, ...]
    kernels: ProgramProjection
    #: One-time setup cost (memory allocation) — 0 unless the projector
    #: was given an AllocationModel (the paper's future-work extension).
    setup_seconds: float = 0.0

    def __post_init__(self) -> None:
        check_non_negative("kernel_seconds", self.kernel_seconds)
        check_non_negative("transfer_seconds", self.transfer_seconds)
        check_non_negative("setup_seconds", self.setup_seconds)
        if len(self.per_transfer_seconds) != len(self.plan.transfers):
            raise ValueError(
                "per-transfer times do not match the plan: "
                f"{len(self.per_transfer_seconds)} vs "
                f"{len(self.plan.transfers)}"
            )

    # Total-time views --------------------------------------------------------
    def total_seconds(self, iterations: int = 1) -> float:
        """Projected end-to-end GPU time for ``iterations`` iterations."""
        check_positive("iterations", iterations)
        return (
            self.kernel_seconds * iterations
            + self.transfer_seconds
            + self.setup_seconds
        )

    def kernel_only_seconds(self, iterations: int = 1) -> float:
        """The pre-GROPHECY++ view: kernels only, no transfers."""
        check_positive("iterations", iterations)
        return self.kernel_seconds * iterations

    def transfer_only_seconds(self) -> float:
        """Table II's middle column: predict using transfers alone."""
        return self.transfer_seconds

    # Speedup views ------------------------------------------------------------
    def speedup(
        self,
        cpu_seconds_per_iteration: float,
        iterations: int = 1,
        include_transfer: bool = True,
    ) -> float:
        """Projected GPU speedup over the measured CPU time."""
        check_positive(
            "cpu_seconds_per_iteration", cpu_seconds_per_iteration
        )
        gpu = (
            self.total_seconds(iterations)
            if include_transfer
            else self.kernel_only_seconds(iterations)
        )
        return cpu_seconds_per_iteration * iterations / gpu

    def speedup_limit(self, cpu_seconds_per_iteration: float) -> float:
        """Speedup as iterations -> infinity (transfer fully amortized)."""
        check_positive(
            "cpu_seconds_per_iteration", cpu_seconds_per_iteration
        )
        return cpu_seconds_per_iteration / self.kernel_seconds

    @property
    def transfer_fraction(self) -> float:
        """Fraction of single-iteration total spent transferring."""
        total = self.total_seconds(1)
        return self.transfer_seconds / total if total else 0.0

    def explain(self, cpu_seconds_per_iteration: float | None = None) -> str:
        """Multi-line, human-readable account of the projection.

        Covers the chosen mapping per kernel, the per-array transfer
        breakdown, and — when a CPU time is supplied — the speedup
        verdict with and without transfer modeling.
        """
        lines = [f"GROPHECY++ projection for {self.program}"]
        lines.append("  kernels (best mapping each):")
        for kp in self.kernels.kernels:
            best = kp.best
            lines.append(
                f"    {kp.kernel:<24} {best.config.label():<16} "
                f"{best.seconds * 1e6:10.1f} us  ({best.breakdown.regime}, "
                f"searched {kp.search_width} mappings)"
            )
        lines.append(
            f"  kernel total per iteration: "
            f"{self.kernel_seconds * 1e3:.3f} ms"
        )
        lines.append("  transfers (each array separately, pinned):")
        for transfer, seconds in zip(
            self.plan.transfers, self.per_transfer_seconds
        ):
            tag = " [conservative]" if transfer.conservative else ""
            lines.append(
                f"    {transfer.direction.short} {transfer.array:<16} "
                f"{transfer.bytes / 2**20:8.2f} MB  "
                f"{seconds * 1e3:8.3f} ms{tag}"
            )
        lines.append(
            f"  transfer total: {self.transfer_seconds * 1e3:.3f} ms "
            f"({self.transfer_fraction:.0%} of a one-iteration run)"
        )
        if self.setup_seconds:
            lines.append(
                f"  one-time allocation: {self.setup_seconds * 1e3:.3f} ms"
            )
        if cpu_seconds_per_iteration is not None:
            honest = self.speedup(cpu_seconds_per_iteration)
            naive = self.speedup(
                cpu_seconds_per_iteration, include_transfer=False
            )
            lines.append(
                f"  speedup vs CPU "
                f"({cpu_seconds_per_iteration * 1e3:.3f} ms/iter): "
                f"{honest:.2f}x with transfers, {naive:.2f}x if you "
                f"(wrongly) ignore them"
            )
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"projection[{self.program}]: kernel "
            f"{self.kernel_seconds * 1e3:.3f}ms/iter + transfer "
            f"{self.transfer_seconds * 1e3:.3f}ms "
            f"({self.transfer_fraction:.0%} of one-iteration total)"
        )
