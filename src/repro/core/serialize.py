"""JSON-friendly serialization of projections and reports.

Projections feed downstream tooling (dashboards, CI diffs, notebooks);
these helpers flatten them to plain dicts — every value a str/int/float/
list/dict — and back-of-the-envelope loaders for the summary level.
The full object graph (skeletons, breakdowns) is intentionally *not*
round-tripped: recompute it from the skeleton, which is the source of
truth.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.prediction import Projection
from repro.core.report import MeasuredApplication, PredictionReport


def projection_to_dict(projection: Projection) -> dict[str, Any]:
    """Flatten a projection to JSON-safe primitives."""
    return {
        "program": projection.program,
        "kernel_seconds": projection.kernel_seconds,
        "transfer_seconds": projection.transfer_seconds,
        "setup_seconds": projection.setup_seconds,
        "transfer_fraction": projection.transfer_fraction,
        "kernels": [
            {
                "name": kp.kernel,
                "seconds": kp.seconds,
                "best_mapping": kp.best.config.label(),
                "regime": kp.best.breakdown.regime,
                "search_width": kp.search_width,
            }
            for kp in projection.kernels.kernels
        ],
        "transfers": [
            {
                "array": transfer.array,
                "direction": transfer.direction.short,
                "bytes": transfer.bytes,
                "seconds": seconds,
                "conservative": transfer.conservative,
            }
            for transfer, seconds in zip(
                projection.plan.transfers, projection.per_transfer_seconds
            )
        ],
    }


def report_to_dict(report: PredictionReport) -> dict[str, Any]:
    """Flatten a prediction-vs-measurement report (all paper metrics)."""
    measured = report.measured
    return {
        "label": measured.label,
        "projection": projection_to_dict(report.projection),
        "measured": {
            "kernel_seconds": measured.kernel_seconds,
            "transfer_seconds": measured.transfer_seconds,
            "cpu_seconds": measured.cpu_seconds,
            "per_transfer_seconds": list(measured.per_transfer_seconds),
            "speedup": measured.speedup(),
        },
        "errors": {
            "kernel": report.kernel_error,
            "transfer": report.transfer_error,
            "speedup_kernel_only": report.speedup_error("kernel"),
            "speedup_transfer_only": report.speedup_error("transfer"),
            "speedup_both": report.speedup_error("both"),
        },
    }


def measured_from_dict(data: dict[str, Any], label: str) -> MeasuredApplication:
    """Rebuild a MeasuredApplication from a report dict's measured block."""
    return MeasuredApplication(
        label=label,
        kernel_seconds=float(data["kernel_seconds"]),
        transfer_seconds=float(data["transfer_seconds"]),
        cpu_seconds=float(data["cpu_seconds"]),
        per_transfer_seconds=tuple(
            float(v) for v in data.get("per_transfer_seconds", ())
        ),
    )


def report_to_json(report: PredictionReport, indent: int = 2) -> str:
    """Report as a JSON string."""
    return json.dumps(report_to_dict(report), indent=indent, sort_keys=True)


def projection_to_json(projection: Projection, indent: int = 2) -> str:
    """Projection as a JSON string."""
    return json.dumps(
        projection_to_dict(projection), indent=indent, sort_keys=True
    )
