"""JSON-friendly serialization of projections and reports.

Projections feed downstream tooling (dashboards, CI diffs, notebooks);
these helpers flatten them to plain dicts — every value a str/int/float/
list/dict — and back-of-the-envelope loaders for the summary level.
The full object graph (skeletons, breakdowns) is intentionally *not*
round-tripped: recompute it from the skeleton, which is the source of
truth.

:class:`ProjectionSummary` is the *faithful* round-trip level in between:
everything a consumer of a projection needs (per-kernel times and chosen
mappings, per-transfer times and sizes, totals and speedup views) with
exact ``summary -> dict -> JSON -> dict -> summary`` fidelity.  It is
what the projection service caches; the round-trip property is what makes
a cache hit provably equivalent to recomputation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any

from repro.core.prediction import Projection
from repro.core.report import MeasuredApplication, PredictionReport
from repro.obs.provenance import ProjectionProvenance
from repro.util.validation import check_non_negative, check_positive


def projection_to_dict(projection: Projection) -> dict[str, Any]:
    """Flatten a projection to JSON-safe primitives."""
    return {
        "program": projection.program,
        "kernel_seconds": projection.kernel_seconds,
        "transfer_seconds": projection.transfer_seconds,
        "setup_seconds": projection.setup_seconds,
        "transfer_fraction": projection.transfer_fraction,
        "kernels": [
            {
                "name": kp.kernel,
                "seconds": kp.seconds,
                "best_mapping": kp.best.config.label(),
                "regime": kp.best.breakdown.regime,
                "search_width": kp.search_width,
            }
            for kp in projection.kernels.kernels
        ],
        "transfers": [
            {
                "array": transfer.array,
                "direction": transfer.direction.short,
                "bytes": transfer.bytes,
                "seconds": seconds,
                "conservative": transfer.conservative,
            }
            for transfer, seconds in zip(
                projection.plan.transfers, projection.per_transfer_seconds
            )
        ],
    }


@dataclass(frozen=True)
class KernelSummary:
    """One kernel's share of a projection, reduced to primitives."""

    name: str
    seconds: float
    best_mapping: str
    regime: str
    search_width: int

    def __post_init__(self) -> None:
        check_non_negative("seconds", self.seconds)
        check_positive("search_width", self.search_width)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "seconds": self.seconds,
            "best_mapping": self.best_mapping,
            "regime": self.regime,
            "search_width": self.search_width,
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "KernelSummary":
        return KernelSummary(
            name=str(data["name"]),
            seconds=float(data["seconds"]),
            best_mapping=str(data["best_mapping"]),
            regime=str(data["regime"]),
            search_width=int(data["search_width"]),
        )


@dataclass(frozen=True)
class TransferSummary:
    """One bus crossing of a projection, reduced to primitives."""

    array: str
    direction: str  # Direction.short: "H2D" | "D2H"
    bytes: int
    elements: int
    seconds: float
    conservative: bool

    def __post_init__(self) -> None:
        if self.direction not in ("H2D", "D2H"):
            raise ValueError(
                f"direction must be 'H2D' or 'D2H', got {self.direction!r}"
            )
        check_positive("bytes", self.bytes)
        check_positive("elements", self.elements)
        check_non_negative("seconds", self.seconds)

    def to_dict(self) -> dict[str, Any]:
        return {
            "array": self.array,
            "direction": self.direction,
            "bytes": self.bytes,
            "elements": self.elements,
            "seconds": self.seconds,
            "conservative": self.conservative,
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "TransferSummary":
        return TransferSummary(
            array=str(data["array"]),
            direction=str(data["direction"]),
            bytes=int(data["bytes"]),
            elements=int(data["elements"]),
            seconds=float(data["seconds"]),
            conservative=bool(data["conservative"]),
        )


@dataclass(frozen=True)
class ProjectionSummary:
    """A projection flattened to exactly round-trippable primitives.

    Carries everything the time/speedup views of :class:`Projection`
    need, so the views here mirror that class (same formulas, same
    iteration semantics).  ``from_dict(to_dict(s)) == s`` holds exactly,
    including through a JSON encode/decode — floats survive via their
    shortest-repr form.

    ``provenance`` optionally carries the
    :class:`~repro.obs.provenance.ProjectionProvenance` record built for
    this projection (the engine attaches one when constructed with
    ``provenance=True``).  It rides through the round-trip exactly, is
    simply *absent* from the dict form when ``None``, and never enters
    any cache key — :meth:`without_provenance` strips it and yields a
    summary whose dict form is byte-identical to one that never had it.
    """

    program: str
    kernel_seconds: float
    transfer_seconds: float
    setup_seconds: float
    kernels: tuple[KernelSummary, ...]
    transfers: tuple[TransferSummary, ...]
    provenance: ProjectionProvenance | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "kernels", tuple(self.kernels))
        object.__setattr__(self, "transfers", tuple(self.transfers))
        check_non_negative("kernel_seconds", self.kernel_seconds)
        check_non_negative("transfer_seconds", self.transfer_seconds)
        check_non_negative("setup_seconds", self.setup_seconds)

    # Time/speedup views (mirror Projection) ------------------------------
    def total_seconds(self, iterations: int = 1) -> float:
        check_positive("iterations", iterations)
        return (
            self.kernel_seconds * iterations
            + self.transfer_seconds
            + self.setup_seconds
        )

    def speedup(
        self,
        cpu_seconds_per_iteration: float,
        iterations: int = 1,
        include_transfer: bool = True,
    ) -> float:
        check_positive(
            "cpu_seconds_per_iteration", cpu_seconds_per_iteration
        )
        gpu = (
            self.total_seconds(iterations)
            if include_transfer
            else self.kernel_seconds * iterations
        )
        return cpu_seconds_per_iteration * iterations / gpu

    @property
    def transfer_fraction(self) -> float:
        total = self.total_seconds(1)
        return self.transfer_seconds / total if total else 0.0

    @property
    def total_bytes(self) -> int:
        return sum(t.bytes for t in self.transfers)

    @property
    def transfer_count(self) -> int:
        return len(self.transfers)

    # Provenance ----------------------------------------------------------
    def without_provenance(self) -> "ProjectionSummary":
        """This summary with the provenance record stripped.

        The result's dict/JSON form is identical to a summary that never
        carried provenance, which is what keeps cache entries and
        downstream diffs stable whether or not a producer attached one.
        """
        if self.provenance is None:
            return self
        return replace(self, provenance=None)

    # Round-trip ----------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        record = {
            "program": self.program,
            "kernel_seconds": self.kernel_seconds,
            "transfer_seconds": self.transfer_seconds,
            "setup_seconds": self.setup_seconds,
            "kernels": [k.to_dict() for k in self.kernels],
            "transfers": [t.to_dict() for t in self.transfers],
        }
        if self.provenance is not None:
            record["provenance"] = self.provenance.to_dict()
        return record

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "ProjectionSummary":
        raw_provenance = data.get("provenance")
        return ProjectionSummary(
            program=str(data["program"]),
            kernel_seconds=float(data["kernel_seconds"]),
            transfer_seconds=float(data["transfer_seconds"]),
            setup_seconds=float(data["setup_seconds"]),
            kernels=tuple(
                KernelSummary.from_dict(k) for k in data["kernels"]
            ),
            transfers=tuple(
                TransferSummary.from_dict(t) for t in data["transfers"]
            ),
            provenance=(
                None
                if raw_provenance is None
                else ProjectionProvenance.from_dict(raw_provenance)
            ),
        )

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "ProjectionSummary":
        return ProjectionSummary.from_dict(json.loads(text))


def summarize_projection(
    projection: Projection,
    provenance: ProjectionProvenance | None = None,
) -> ProjectionSummary:
    """Reduce a full :class:`Projection` to its faithful summary.

    ``provenance`` optionally attaches the explanation record built by
    :func:`repro.obs.provenance.build_provenance` — the summary carries
    it through serialization but is otherwise unchanged.
    """
    return ProjectionSummary(
        program=projection.program,
        kernel_seconds=projection.kernel_seconds,
        transfer_seconds=projection.transfer_seconds,
        setup_seconds=projection.setup_seconds,
        kernels=tuple(
            KernelSummary(
                name=kp.kernel,
                seconds=kp.seconds,
                best_mapping=kp.best.config.label(),
                regime=kp.best.breakdown.regime,
                search_width=kp.search_width,
            )
            for kp in projection.kernels.kernels
        ),
        transfers=tuple(
            TransferSummary(
                array=transfer.array,
                direction=transfer.direction.short,
                bytes=transfer.bytes,
                elements=transfer.elements,
                seconds=seconds,
                conservative=transfer.conservative,
            )
            for transfer, seconds in zip(
                projection.plan.transfers, projection.per_transfer_seconds
            )
        ),
        provenance=provenance,
    )


def report_to_dict(report: PredictionReport) -> dict[str, Any]:
    """Flatten a prediction-vs-measurement report (all paper metrics)."""
    measured = report.measured
    return {
        "label": measured.label,
        "projection": projection_to_dict(report.projection),
        "measured": {
            "kernel_seconds": measured.kernel_seconds,
            "transfer_seconds": measured.transfer_seconds,
            "cpu_seconds": measured.cpu_seconds,
            "per_transfer_seconds": list(measured.per_transfer_seconds),
            "speedup": measured.speedup(),
        },
        "errors": {
            "kernel": report.kernel_error,
            "transfer": report.transfer_error,
            "speedup_kernel_only": report.speedup_error("kernel"),
            "speedup_transfer_only": report.speedup_error("transfer"),
            "speedup_both": report.speedup_error("both"),
        },
    }


def measured_from_dict(data: dict[str, Any], label: str) -> MeasuredApplication:
    """Rebuild a MeasuredApplication from a report dict's measured block."""
    return MeasuredApplication(
        label=label,
        kernel_seconds=float(data["kernel_seconds"]),
        transfer_seconds=float(data["transfer_seconds"]),
        cpu_seconds=float(data["cpu_seconds"]),
        per_transfer_seconds=tuple(
            float(v) for v in data.get("per_transfer_seconds", ())
        ),
    )


def report_to_json(report: PredictionReport, indent: int = 2) -> str:
    """Report as a JSON string."""
    return json.dumps(report_to_dict(report), indent=indent, sort_keys=True)


def projection_to_json(projection: Projection, indent: int = 2) -> str:
    """Projection as a JSON string."""
    return json.dumps(
        projection_to_dict(projection), indent=indent, sort_keys=True
    )
