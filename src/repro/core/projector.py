"""The projector classes: GROPHECY and GROPHECY++."""

from __future__ import annotations

from repro.datausage.analyzer import analyze_transfers
from repro.datausage.hints import AnalysisHints
from repro.obs.trace import span as trace_span
from repro.gpu.arch import GPUArchitecture
from repro.gpu.model import GpuPerformanceModel
from repro.pcie.allocation import AllocationModel
from repro.pcie.channel import MemoryKind
from repro.pcie.model import BusModel
from repro.skeleton.program import ProgramSkeleton
from repro.transform.explorer import ProgramProjection, project_program
from repro.transform.space import TransformationSpace
from repro.core.prediction import Projection


class Grophecy:
    """The base framework: project kernel execution time from skeletons.

    Explores the transformation space for every kernel of the program and
    reports the best achievable time per kernel — what the SC'11 framework
    provides, and what Table II's "Kernel Only" column predicts with.
    """

    def __init__(
        self,
        gpu: GPUArchitecture | GpuPerformanceModel,
        space: TransformationSpace | None = None,
        explorer: str = "fast",
        prune: bool = False,
    ) -> None:
        """``explorer`` selects the exploration path (``"fast"`` or the
        scalar ``"reference"`` oracle — identical results, see
        ``docs/EXPLORER.md``); ``prune=True`` enables bound-based
        pruning on the fast path."""
        self._model = (
            gpu
            if isinstance(gpu, GpuPerformanceModel)
            else GpuPerformanceModel(gpu)
        )
        self._space = space or TransformationSpace.default()
        self._explorer = explorer
        self._prune = prune

    @property
    def model(self) -> GpuPerformanceModel:
        return self._model

    @property
    def space(self) -> TransformationSpace:
        return self._space

    def project_kernels(self, program: ProgramSkeleton) -> ProgramProjection:
        """Best-mapping kernel projection for each kernel of the program."""
        return project_program(
            program,
            self._model,
            self._space,
            explorer=self._explorer,
            prune=self._prune,
        )


class GrophecyPlusPlus(Grophecy):
    """GROPHECY extended with data-transfer projection (this paper).

    Adds the data usage analyzer (what must cross the bus) and the
    calibrated PCIe model (how long each crossing takes); the combined
    projection predicts the end-to-end GPU speedup.
    """

    def __init__(
        self,
        gpu: GPUArchitecture | GpuPerformanceModel,
        bus: BusModel,
        space: TransformationSpace | None = None,
        batched_transfers: bool = False,
        allocation: AllocationModel | None = None,
        memory: MemoryKind = MemoryKind.PINNED,
        explorer: str = "fast",
        prune: bool = False,
    ) -> None:
        """``allocation``: optionally charge one-time buffer-allocation
        costs (the paper's future-work extension); ``memory`` selects the
        host allocation kind those costs assume."""
        super().__init__(gpu, space, explorer=explorer, prune=prune)
        self._bus = bus
        self._batched = batched_transfers
        self._allocation = allocation
        self._memory = memory

    @property
    def bus(self) -> BusModel:
        return self._bus

    def project(
        self,
        program: ProgramSkeleton,
        hints: AnalysisHints | None = None,
    ) -> Projection:
        """Full projection: kernels + data usage + transfer times."""
        with trace_span("project", program=program.name):
            kernels = self.project_kernels(program)
            with trace_span(
                "transfer-planning", program=program.name
            ) as planning:
                plan = analyze_transfers(program, hints)
                if self._batched:
                    plan = plan.batched()
                planning.set(
                    transfers=len(plan.transfers), bytes=plan.total_bytes
                )
            with trace_span("integrate", program=program.name):
                per_transfer = tuple(
                    self._bus.predict_plan_by_transfer(plan)
                )
                setup = (
                    self._allocation.plan_setup_time(plan, self._memory)
                    if self._allocation is not None
                    else 0.0
                )
                return Projection(
                    program=program.name,
                    kernel_seconds=kernels.seconds,
                    transfer_seconds=sum(per_transfer),
                    plan=plan,
                    per_transfer_seconds=per_transfer,
                    kernels=kernels,
                    setup_seconds=setup,
                )
