"""GROPHECY++: the integrated projection framework (paper Section III).

:class:`~repro.core.projector.Grophecy` reproduces the base framework —
kernel-time projection via transformation search over the analytical GPU
model.  :class:`~repro.core.projector.GrophecyPlusPlus` adds this paper's
contribution: the data-usage analyzer and the calibrated PCIe model, so a
projection covers kernel time *and* transfer time, and therefore the true
end-to-end GPU speedup.
"""

from repro.core.prediction import Projection
from repro.core.projector import Grophecy, GrophecyPlusPlus
from repro.core.speedup import (
    speedup,
    gpu_total_time,
    accuracy_crossover_iterations,
    limit_speedup_error,
)
from repro.core.report import PredictionReport, MeasuredApplication
from repro.core.advisor import MemoryKindAdvice, MemoryKindAdvisor
from repro.core.overlap import OverlapEstimate, estimate_overlap, pipeline_time
from repro.core.serialize import (
    KernelSummary,
    ProjectionSummary,
    TransferSummary,
    projection_to_dict,
    projection_to_json,
    report_to_dict,
    report_to_json,
    summarize_projection,
)

__all__ = [
    "Projection",
    "Grophecy",
    "GrophecyPlusPlus",
    "speedup",
    "gpu_total_time",
    "accuracy_crossover_iterations",
    "limit_speedup_error",
    "PredictionReport",
    "MeasuredApplication",
    "MemoryKindAdvice",
    "MemoryKindAdvisor",
    "OverlapEstimate",
    "estimate_overlap",
    "pipeline_time",
    "KernelSummary",
    "ProjectionSummary",
    "TransferSummary",
    "projection_to_dict",
    "projection_to_json",
    "report_to_dict",
    "report_to_json",
    "summarize_projection",
]
