"""Speedup arithmetic, iteration scaling, and accuracy crossovers.

The paper's key observation about iterative applications: the transfer set
is iteration-independent, so as iterations grow the transfer overhead
amortizes, the measured speedup rises toward ``cpu / kernel``, and the
with-transfer and without-transfer predictions converge (Figs. 8/10/12).
"""

from __future__ import annotations

import math

from repro.util.stats import error_magnitude
from repro.util.validation import check_non_negative, check_positive


def gpu_total_time(
    kernel_seconds_per_iteration: float,
    transfer_seconds: float,
    iterations: int = 1,
) -> float:
    """End-to-end GPU time for an iterative run (Section IV-A)."""
    check_non_negative(
        "kernel_seconds_per_iteration", kernel_seconds_per_iteration
    )
    check_non_negative("transfer_seconds", transfer_seconds)
    check_positive("iterations", iterations)
    return kernel_seconds_per_iteration * iterations + transfer_seconds


def speedup(cpu_seconds: float, gpu_seconds: float) -> float:
    """GPU speedup = total CPU time / total GPU time."""
    check_positive("cpu_seconds", cpu_seconds)
    check_positive("gpu_seconds", gpu_seconds)
    return cpu_seconds / gpu_seconds


def limit_speedup_error(
    predicted_kernel_seconds: float, measured_kernel_seconds: float
) -> float:
    """Speedup-prediction error as iterations -> infinity.

    In the limit the transfers amortize away entirely, so both the
    with-transfer and kernel-only predictions converge to
    ``cpu / kernel`` and the error reduces to the kernel-time error
    (the CPU time cancels).
    """
    return error_magnitude(
        measured_kernel_seconds / predicted_kernel_seconds, 1.0
    )


def accuracy_crossover_iterations(
    predicted_kernel: float,
    predicted_transfer: float,
    measured_kernel: float,
    measured_transfer: float,
    advantage: float = 2.0,
    max_iterations: int = 100_000,
    method: str = "closed",
) -> int | None:
    """Largest iteration count where transfer-aware prediction stays
    ``advantage``-times more accurate than the kernel-only prediction.

    This is the statistic the paper quotes per figure: e.g. for CFD "the
    predicted speedup with data transfer time remains more than twice as
    accurate for iteration counts less than 18" (Fig. 8), 70 for HotSpot
    (Fig. 10), 228 for SRAD (Fig. 12).  Returns the last iteration count
    satisfying the criterion, or ``None`` if it never holds (or
    ``max_iterations`` if it still holds there).

    Note the CPU time cancels out of both error magnitudes, so it is not
    a parameter.

    ``method`` selects ``"closed"`` (default, O(1): both error curves are
    ratios of polynomials in the iteration count, so the criterion's sign
    can only change at the real roots of two quadratics — see
    ``docs/SWEEP.md`` for the derivation) or ``"scan"`` (the original
    linear scan, kept as the oracle; the property tests hold the two
    equal).
    """
    check_positive("predicted_kernel", predicted_kernel)
    check_non_negative("predicted_transfer", predicted_transfer)
    check_positive("measured_kernel", measured_kernel)
    check_non_negative("measured_transfer", measured_transfer)
    check_positive("advantage", advantage)
    check_positive("max_iterations", max_iterations)
    if method not in ("closed", "scan"):
        raise ValueError(
            f"unknown method {method!r}: expected 'closed' or 'scan'"
        )
    args = (
        predicted_kernel,
        predicted_transfer,
        measured_kernel,
        measured_transfer,
        advantage,
        max_iterations,
    )
    if method == "scan":
        return _crossover_scan(*args)
    return _crossover_closed(*args)


def _crossover_holds(
    predicted_kernel: float,
    predicted_transfer: float,
    measured_kernel: float,
    measured_transfer: float,
    advantage: float,
    iterations: int,
) -> bool:
    """The scan's per-iteration criterion (both methods share it)."""
    measured = gpu_total_time(measured_kernel, measured_transfer, iterations)
    with_transfer = gpu_total_time(
        predicted_kernel, predicted_transfer, iterations
    )
    without_transfer = predicted_kernel * iterations
    # Speedup errors; the common CPU numerator cancels.
    err_with = error_magnitude(measured / with_transfer, 1.0)
    err_without = error_magnitude(measured / without_transfer, 1.0)
    return err_with == 0 or err_without >= advantage * err_with


def _crossover_scan(
    predicted_kernel: float,
    predicted_transfer: float,
    measured_kernel: float,
    measured_transfer: float,
    advantage: float,
    max_iterations: int,
) -> int | None:
    """Reference linear scan: stop at the first failing iteration."""
    last_good: int | None = None
    for iterations in range(1, max_iterations + 1):
        if _crossover_holds(
            predicted_kernel,
            predicted_transfer,
            measured_kernel,
            measured_transfer,
            advantage,
            iterations,
        ):
            last_good = iterations
        else:
            return last_good
    return last_good


def _real_roots(a: float, b: float, c: float) -> list[float]:
    """Real roots of ``a*x^2 + b*x + c``, degenerate degrees included."""
    if a == 0.0:
        if b == 0.0:
            return []
        return [-c / b]
    disc = b * b - 4.0 * a * c
    if disc < 0.0:
        return []
    sqrt_disc = math.sqrt(disc)
    # Numerically stable form: the larger-magnitude root first, the other
    # via Vieta (avoids cancellation when b ~ +-sqrt(disc)).
    q = -0.5 * (b + math.copysign(sqrt_disc, b)) if b != 0.0 else 0.5 * sqrt_disc
    roots = [q / a]
    if q != 0.0:
        roots.append(c / q)
    return roots


def _crossover_closed(
    predicted_kernel: float,
    predicted_transfer: float,
    measured_kernel: float,
    measured_transfer: float,
    advantage: float,
    max_iterations: int,
) -> int | None:
    """Closed-form crossover: O(roots) instead of O(max_iterations).

    Both total times are affine in the iteration count ``n``, so with
    ``u(n) = (measured - without) * with`` and ``v(n) = (measured - with)
    * without`` (all three totals positive for ``n >= 1``), the criterion
    ``err_without >= advantage * err_with`` is ``|u| >= advantage * |v|``
    — its sign can only flip at real roots of the quadratics
    ``u - advantage*v`` and ``u + advantage*v``.  The integers adjacent
    to those roots (plus interval midpoints as guards against float
    drift) are the only places the scan's verdict can change; evaluating
    the scan's own float predicate there reproduces the scan exactly.
    """
    pk, pt = predicted_kernel, predicted_transfer
    mk, mt = measured_kernel, measured_transfer
    d = mk - pk
    # u = ((mk-pk)n + mt)(pk n + pt);  v = ((mk-pk)n + (mt-pt)) pk n.
    u2, u1, u0 = d * pk, mt * pk + d * pt, mt * pt
    v2, v1 = d * pk, (mt - pt) * pk
    roots = _real_roots(
        u2 - advantage * v2, u1 - advantage * v1, u0
    ) + _real_roots(u2 + advantage * v2, u1 + advantage * v1, u0)

    candidates = {1, max_iterations}
    for root in roots:
        if not math.isfinite(root):
            continue
        base = math.floor(root)
        for offset in (-1, 0, 1, 2):
            n = base + offset
            if 1 <= n <= max_iterations:
                candidates.add(n)
    ordered = sorted(candidates)
    # Midpoint guards: between consecutive candidates the criterion's
    # algebraic sign is constant (no roots inside), so one sample
    # certifies the whole gap against rounding-level flips.
    for lo, hi in zip(ordered, ordered[1:]):
        if hi - lo > 1:
            candidates.add((lo + hi) // 2)

    first_bad: int | None = None
    for n in sorted(candidates):
        if not _crossover_holds(pk, pt, mk, mt, advantage, n):
            first_bad = n
            break
    if first_bad is None:
        return max_iterations
    if first_bad == 1:
        return None
    return first_bad - 1
