"""Speedup arithmetic, iteration scaling, and accuracy crossovers.

The paper's key observation about iterative applications: the transfer set
is iteration-independent, so as iterations grow the transfer overhead
amortizes, the measured speedup rises toward ``cpu / kernel``, and the
with-transfer and without-transfer predictions converge (Figs. 8/10/12).
"""

from __future__ import annotations

from repro.util.stats import error_magnitude
from repro.util.validation import check_non_negative, check_positive


def gpu_total_time(
    kernel_seconds_per_iteration: float,
    transfer_seconds: float,
    iterations: int = 1,
) -> float:
    """End-to-end GPU time for an iterative run (Section IV-A)."""
    check_non_negative(
        "kernel_seconds_per_iteration", kernel_seconds_per_iteration
    )
    check_non_negative("transfer_seconds", transfer_seconds)
    check_positive("iterations", iterations)
    return kernel_seconds_per_iteration * iterations + transfer_seconds


def speedup(cpu_seconds: float, gpu_seconds: float) -> float:
    """GPU speedup = total CPU time / total GPU time."""
    check_positive("cpu_seconds", cpu_seconds)
    check_positive("gpu_seconds", gpu_seconds)
    return cpu_seconds / gpu_seconds


def limit_speedup_error(
    predicted_kernel_seconds: float, measured_kernel_seconds: float
) -> float:
    """Speedup-prediction error as iterations -> infinity.

    In the limit the transfers amortize away entirely, so both the
    with-transfer and kernel-only predictions converge to
    ``cpu / kernel`` and the error reduces to the kernel-time error
    (the CPU time cancels).
    """
    return error_magnitude(
        measured_kernel_seconds / predicted_kernel_seconds, 1.0
    )


def accuracy_crossover_iterations(
    predicted_kernel: float,
    predicted_transfer: float,
    measured_kernel: float,
    measured_transfer: float,
    advantage: float = 2.0,
    max_iterations: int = 100_000,
) -> int | None:
    """Largest iteration count where transfer-aware prediction stays
    ``advantage``-times more accurate than the kernel-only prediction.

    This is the statistic the paper quotes per figure: e.g. for CFD "the
    predicted speedup with data transfer time remains more than twice as
    accurate for iteration counts less than 18" (Fig. 8), 70 for HotSpot
    (Fig. 10), 228 for SRAD (Fig. 12).  Returns the last iteration count
    satisfying the criterion, or ``None`` if it never holds (or
    ``max_iterations`` if it still holds there).

    Note the CPU time cancels out of both error magnitudes, so it is not
    a parameter.
    """
    check_positive("predicted_kernel", predicted_kernel)
    check_non_negative("predicted_transfer", predicted_transfer)
    check_positive("measured_kernel", measured_kernel)
    check_non_negative("measured_transfer", measured_transfer)
    check_positive("advantage", advantage)

    last_good: int | None = None
    for iterations in range(1, max_iterations + 1):
        measured = gpu_total_time(
            measured_kernel, measured_transfer, iterations
        )
        with_transfer = gpu_total_time(
            predicted_kernel, predicted_transfer, iterations
        )
        without_transfer = predicted_kernel * iterations
        # Speedup errors; the common CPU numerator cancels.
        err_with = error_magnitude(measured / with_transfer, 1.0)
        err_without = error_magnitude(measured / without_transfer, 1.0)
        if err_with == 0 or err_without >= advantage * err_with:
            last_good = iterations
        else:
            return last_good
    return last_good
