"""Transfer/compute overlap estimation (CUDA streams extension).

The paper's projection charges transfers and kernels serially — correct
for the synchronous ports it validates against.  A natural follow-up
question is how much of the transfer overhead *asynchronous streams*
could hide: chunk the arrays, double-buffer, and overlap copies with
compute.

This module bounds that opportunity with a classic software-pipeline
estimate for a device with **one copy engine** (true of the paper's
G80-class GPU: H2D and D2H share the DMA queue and serialize against
each other, but run concurrently with kernels):

``T(C) = fill + max(total_copy, total_kernel) + drain``

where chunking into ``C`` pieces multiplies the per-transfer latency
(each chunk pays its own alpha) — so more chunks pipeline better but pay
more latency, and an optimal ``C`` exists.

This is an *upper bound* on the benefit: it assumes every kernel's work
decomposes into independent chunks (true for the paper's data-parallel
workloads up to stencil halos) and ignores stream-launch overheads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.prediction import Projection
from repro.datausage.transfers import Direction
from repro.pcie.model import BusModel
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class OverlapEstimate:
    """Projected effect of stream-based overlap for one projection."""

    program: str
    chunks: int
    serial_seconds: float  # the paper's (synchronous) total
    overlapped_seconds: float  # pipelined total
    iterations: int

    @property
    def saving_seconds(self) -> float:
        return self.serial_seconds - self.overlapped_seconds

    @property
    def saving_fraction(self) -> float:
        if self.serial_seconds == 0:
            return 0.0
        return self.saving_seconds / self.serial_seconds

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.program}: {self.serial_seconds * 1e3:.2f}ms -> "
            f"{self.overlapped_seconds * 1e3:.2f}ms with {self.chunks} "
            f"chunks ({self.saving_fraction:.0%} saved)"
        )


def pipeline_time(
    transfer_in: float,
    kernel: float,
    transfer_out: float,
    chunks: int,
    alpha_in: float,
    alpha_out: float,
) -> float:
    """Pipelined makespan for one (in, compute, out) pass in ``chunks``.

    ``transfer_in``/``transfer_out`` exclude per-transfer latencies;
    chunking pays ``alpha`` once per chunk per direction.
    """
    check_positive("chunks", chunks)
    for name, value in (
        ("transfer_in", transfer_in),
        ("kernel", kernel),
        ("transfer_out", transfer_out),
        ("alpha_in", alpha_in),
        ("alpha_out", alpha_out),
    ):
        check_non_negative(name, value)
    chunk_in = transfer_in / chunks + alpha_in
    chunk_out = transfer_out / chunks + alpha_out
    total_copy = chunks * (chunk_in + chunk_out)  # one shared copy engine
    fill = chunk_in  # first chunk must arrive before compute starts
    drain = chunk_out  # last result leaves after compute ends
    return fill + max(total_copy - fill - drain, kernel) + drain


def estimate_overlap(
    projection: Projection,
    bus: BusModel,
    iterations: int = 1,
    max_chunks: int = 64,
) -> OverlapEstimate:
    """Best-chunking overlap estimate for a projection.

    For iterative applications only the first iteration overlaps with the
    input copy and the last with the output copy; intermediate iterations
    are pure compute, so the absolute saving is iteration-independent —
    exactly like the transfer overhead it hides.
    """
    check_positive("iterations", iterations)
    check_positive("max_chunks", max_chunks)
    plan = projection.plan
    raw_in = sum(
        bus.for_direction(t.direction).beta * t.bytes
        for t in plan.inputs
    )
    raw_out = sum(
        bus.for_direction(t.direction).beta * t.bytes
        for t in plan.outputs
    )
    # Per-chunk latency: every array contributes its alpha per chunk.
    alpha_in = sum(bus.for_direction(t.direction).alpha for t in plan.inputs)
    alpha_out = sum(
        bus.for_direction(t.direction).alpha for t in plan.outputs
    )
    kernel_total = projection.kernel_seconds * iterations
    serial = projection.total_seconds(iterations)

    best_chunks, best_time = 1, None
    chunk_candidates = sorted(
        {1, 2, 4, 8, 16, 32, max_chunks} | set(range(2, min(max_chunks, 9)))
    )
    for chunks in chunk_candidates:
        if chunks > max_chunks:
            continue
        t = pipeline_time(
            raw_in, kernel_total, raw_out, chunks, alpha_in, alpha_out
        )
        if best_time is None or t < best_time:
            best_chunks, best_time = chunks, t
    assert best_time is not None
    overlapped = best_time + projection.setup_seconds
    # Overlap can never beat the compute-only lower bound nor lose to the
    # serial schedule (chunks=1 degenerates to ~serial).
    overlapped = min(max(overlapped, kernel_total), serial)
    return OverlapEstimate(
        program=projection.program,
        chunks=best_chunks,
        serial_seconds=serial,
        overlapped_seconds=overlapped,
        iterations=iterations,
    )
