"""CUDA occupancy calculation.

Active blocks per SM are limited by four resources: the thread budget, the
block-slot budget, the register file, and shared memory.  The number of
concurrently active warps (N in the MWP/CWP model) follows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpu.arch import GPUArchitecture
from repro.gpu.characteristics import KernelCharacteristics


@dataclass(frozen=True)
class OccupancyResult:
    """Resolved occupancy for one kernel on one architecture."""

    blocks_per_sm: int
    warps_per_block: int
    active_warps: int  # per SM
    limiter: str  # which resource bound occupancy

    @property
    def occupancy_fraction(self) -> float:
        return self.active_warps / self._max_warps

    # populated by occupancy(); stored to compute the fraction
    _max_warps: int = 1


def occupancy(
    chars: KernelCharacteristics, arch: GPUArchitecture
) -> OccupancyResult:
    """Active blocks/warps per SM for a kernel on an architecture.

    Raises ``ValueError`` if a single block already exceeds a per-SM
    resource (unlaunchable configuration) — the transformation explorer
    relies on this to prune illegal mappings.
    """
    block = chars.block_size
    if block > arch.max_threads_per_sm:
        raise ValueError(
            f"block size {block} exceeds {arch.max_threads_per_sm} "
            f"threads/SM on {arch.name}"
        )
    warps_per_block = math.ceil(block / arch.warp_size)

    limits = {
        "threads": arch.max_threads_per_sm // block,
        "blocks": arch.max_blocks_per_sm,
        "warps": arch.max_warps_per_sm // warps_per_block,
    }
    regs_per_block = chars.registers_per_thread * block
    if regs_per_block > arch.registers_per_sm:
        raise ValueError(
            f"kernel {chars.name!r} needs {regs_per_block} registers per "
            f"block; SM has {arch.registers_per_sm}"
        )
    limits["registers"] = arch.registers_per_sm // regs_per_block
    if chars.shared_mem_per_block:
        if chars.shared_mem_per_block > arch.shared_mem_per_sm:
            raise ValueError(
                f"kernel {chars.name!r} needs {chars.shared_mem_per_block}B "
                f"shared memory per block; SM has {arch.shared_mem_per_sm}B"
            )
        limits["shared_mem"] = (
            arch.shared_mem_per_sm // chars.shared_mem_per_block
        )

    limiter = min(limits, key=lambda k: limits[k])
    blocks_per_sm = limits[limiter]
    if blocks_per_sm < 1:
        raise ValueError(
            f"kernel {chars.name!r} cannot fit one block per SM "
            f"(limited by {limiter})"
        )
    # Fewer blocks exist than would fill the device: occupancy caps there.
    total_blocks = chars.num_blocks
    blocks_per_sm = min(blocks_per_sm, max(1, math.ceil(total_blocks / arch.num_sms)))
    active_warps = blocks_per_sm * warps_per_block
    return OccupancyResult(
        blocks_per_sm=blocks_per_sm,
        warps_per_block=warps_per_block,
        active_warps=active_warps,
        limiter=limiter,
        _max_warps=arch.max_warps_per_sm,
    )
