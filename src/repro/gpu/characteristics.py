"""Kernel characteristics: the interface between transforms and the model.

GROPHECY's transformation engine synthesizes, for each candidate mapping of
a code skeleton onto the GPU, the per-thread dynamic behaviour summarized
here; the analytical model consumes only this record plus the architecture.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class KernelCharacteristics:
    """Per-mapping dynamic summary of one GPU kernel.

    Attributes
    ----------
    name:
        Kernel label (for reports).
    threads:
        Total GPU threads launched (one per data-parallel work item).
    block_size:
        Threads per block chosen by the transformation.
    comp_insts_per_thread:
        Dynamic non-memory instructions per thread (flops plus address
        arithmetic and loop overhead), already weighted by divergence.
    mem_insts_per_thread:
        Dynamic global-memory warp instructions per thread.
    coalesced_fraction:
        Fraction of memory instructions that are fully coalesced.
    bytes_per_access:
        Useful payload bytes per thread per memory instruction.
    registers_per_thread / shared_mem_per_block:
        Occupancy inputs.
    syncs_per_thread:
        ``__syncthreads()`` executions per thread (smem tiling adds these).
    """

    name: str
    threads: int
    block_size: int
    comp_insts_per_thread: float
    mem_insts_per_thread: float
    coalesced_fraction: float = 1.0
    bytes_per_access: int = 4
    registers_per_thread: int = 16
    shared_mem_per_block: int = 0
    syncs_per_thread: float = 0.0

    def __post_init__(self) -> None:
        # Inlined check_positive/check_non_negative (same messages): the
        # explorer constructs one of these per candidate mapping, and the
        # helper-call overhead is measurable on that path.
        if not self.threads > 0:
            raise ValueError(f"threads must be positive, got {self.threads!r}")
        if not self.block_size > 0:
            raise ValueError(
                f"block_size must be positive, got {self.block_size!r}"
            )
        if self.comp_insts_per_thread < 0:
            raise ValueError(
                f"comp_insts_per_thread must be non-negative, got "
                f"{self.comp_insts_per_thread!r}"
            )
        if self.mem_insts_per_thread < 0:
            raise ValueError(
                f"mem_insts_per_thread must be non-negative, got "
                f"{self.mem_insts_per_thread!r}"
            )
        if not 0.0 <= self.coalesced_fraction <= 1.0:
            raise ValueError(
                f"coalesced_fraction must be in [0, 1], got "
                f"{self.coalesced_fraction}"
            )
        if not self.bytes_per_access > 0:
            raise ValueError(
                f"bytes_per_access must be positive, got "
                f"{self.bytes_per_access!r}"
            )
        if not self.registers_per_thread > 0:
            raise ValueError(
                f"registers_per_thread must be positive, got "
                f"{self.registers_per_thread!r}"
            )
        if self.shared_mem_per_block < 0:
            raise ValueError(
                f"shared_mem_per_block must be non-negative, got "
                f"{self.shared_mem_per_block!r}"
            )
        if self.syncs_per_thread < 0:
            raise ValueError(
                f"syncs_per_thread must be non-negative, got "
                f"{self.syncs_per_thread!r}"
            )
        if self.comp_insts_per_thread == 0 and self.mem_insts_per_thread == 0:
            raise ValueError(f"kernel {self.name!r} does no work")

    @property
    def num_blocks(self) -> int:
        return math.ceil(self.threads / self.block_size)

    @property
    def total_mem_insts(self) -> float:
        return self.mem_insts_per_thread * self.threads

    @property
    def total_bytes(self) -> float:
        """Useful global-memory traffic of the kernel (payload bytes)."""
        return self.total_mem_insts * self.bytes_per_access

    @property
    def total_comp_insts(self) -> float:
        return self.comp_insts_per_thread * self.threads

    def with_block_size(self, block_size: int) -> "KernelCharacteristics":
        return replace(self, block_size=block_size)

    def scaled_threads(self, threads: int) -> "KernelCharacteristics":
        return replace(self, threads=threads)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}: {self.threads} threads x "
            f"({self.comp_insts_per_thread:.1f} comp + "
            f"{self.mem_insts_per_thread:.1f} mem), "
            f"{self.coalesced_fraction:.0%} coalesced, "
            f"block={self.block_size}"
        )
