"""The analytical GPU kernel-time model (MWP/CWP, Hong & Kim ISCA'09).

The model reasons about two forms of warp parallelism on each SM:

- **MWP** (memory warp parallelism): how many warps can overlap their
  memory requests, bounded by the latency/departure-delay ratio, by peak
  memory bandwidth, and by the number of resident warps;
- **CWP** (computation warp parallelism): how many warps' compute phases
  fit inside one memory waiting period.

Comparing the two selects one of three execution regimes (memory-bound
with full overlap, memory-bound with exposed latency, or compute-bound)
with a closed-form cycle count for each.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpu.arch import GPUArchitecture
from repro.gpu.characteristics import KernelCharacteristics
from repro.gpu.occupancy import OccupancyResult, occupancy


@dataclass(frozen=True)
class GpuTimingBreakdown:
    """Everything the model derived for one kernel."""

    kernel: str
    seconds: float
    cycles: float
    regime: str  # "balanced" | "memory-bound" | "compute-bound"
    mwp: float
    cwp: float
    active_warps: int
    repetitions: int
    mem_cycles_per_warp: float
    comp_cycles_per_warp: float
    occupancy: OccupancyResult

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.kernel}: {self.seconds * 1e3:.3f}ms "
            f"({self.regime}, MWP={self.mwp:.1f}, CWP={self.cwp:.1f}, "
            f"N={self.active_warps})"
        )


class GpuPerformanceModel:
    """Maps (characteristics, architecture) to projected kernel time."""

    #: Minimum DRAM transaction payload on G80-class parts; an uncoalesced
    #: 4-byte access still moves a 32-byte segment, wasting 8x bandwidth.
    MIN_TRANSACTION_BYTES = 32

    def __init__(
        self,
        arch: GPUArchitecture,
        launch_overhead: float = 7.0e-6,
    ) -> None:
        """``launch_overhead``: per-launch driver cost added to every
        kernel projection — the measured times the projection is compared
        against include it, and for very small kernels it dominates."""
        if launch_overhead < 0:
            raise ValueError(
                f"launch_overhead must be non-negative, got {launch_overhead}"
            )
        self._arch = arch
        self._launch_overhead = launch_overhead

    @property
    def arch(self) -> GPUArchitecture:
        return self._arch

    @property
    def launch_overhead(self) -> float:
        """Per-launch driver cost (seconds) added to every projection."""
        return self._launch_overhead

    # ------------------------------------------------------------------ #
    def kernel_time(self, chars: KernelCharacteristics) -> float:
        """Projected execution time (seconds) of one kernel launch."""
        return self.breakdown(chars).seconds

    def breakdown(self, chars: KernelCharacteristics) -> GpuTimingBreakdown:
        arch = self._arch
        occ = occupancy(chars, arch)
        n_warps = max(1, occ.active_warps)

        f_coal = chars.coalesced_fraction
        f_uncoal = 1.0 - f_coal
        uncoal_trans = arch.uncoal_transactions_per_warp

        # Departure delay: coalesced warps issue one transaction; an
        # uncoalesced warp serializes `uncoal_trans` transactions.
        dep_coal = arch.departure_del_coal
        dep_uncoal = arch.departure_del_uncoal * uncoal_trans
        departure_delay = f_coal * dep_coal + f_uncoal * dep_uncoal

        # Effective memory latency per warp memory instruction.
        mem_l_coal = arch.mem_latency_cycles
        mem_l_uncoal = (
            arch.mem_latency_cycles
            + (uncoal_trans - 1) * arch.departure_del_uncoal
        )
        mem_l = f_coal * mem_l_coal + f_uncoal * mem_l_uncoal

        mem_insts = chars.mem_insts_per_thread
        comp_insts = chars.comp_insts_per_thread
        mem_cycles = mem_l * mem_insts
        comp_cycles = arch.issue_cycles * (comp_insts + mem_insts)
        comp_cycles = max(comp_cycles, arch.issue_cycles)  # never zero

        # Bandwidth-limited MWP.  Consumed (not useful) bytes per warp
        # instruction: uncoalesced accesses drag whole min-size segments.
        payload = chars.bytes_per_access * arch.warp_size
        waste = max(1.0, self.MIN_TRANSACTION_BYTES / chars.bytes_per_access)
        consumed_bytes = payload * (f_coal + f_uncoal * waste)
        active_sms = min(arch.num_sms, chars.num_blocks)
        bw_per_warp = arch.clock_hz * consumed_bytes / mem_l
        mwp_peak_bw = arch.mem_bandwidth / (bw_per_warp * active_sms)
        mwp_without_bw = mem_l / departure_delay
        mwp = max(1.0, min(mwp_without_bw, mwp_peak_bw, float(n_warps)))

        if mem_insts > 0:
            cwp_full = (mem_cycles + comp_cycles) / comp_cycles
        else:
            cwp_full = 1.0
        cwp = min(cwp_full, float(n_warps))

        # Blocks round-robin over SMs; each SM runs `repetitions` batches
        # of its resident blocks.
        total_blocks = chars.num_blocks
        repetitions = max(
            1, math.ceil(total_blocks / (occ.blocks_per_sm * active_sms))
        )

        mem_per_inst_comp = comp_cycles / mem_insts if mem_insts else 0.0
        if mem_insts == 0:
            regime = "compute-bound"
            exec_cycles = comp_cycles * n_warps
        elif math.isclose(mwp, n_warps) and math.isclose(cwp, n_warps):
            regime = "balanced"
            exec_cycles = (
                mem_cycles + comp_cycles + mem_per_inst_comp * (mwp - 1)
            )
        elif cwp >= mwp:
            regime = "memory-bound"
            exec_cycles = (
                mem_cycles * (n_warps / mwp)
                + mem_per_inst_comp * (mwp - 1)
            )
        else:
            regime = "compute-bound"
            exec_cycles = mem_l + comp_cycles * n_warps

        # Synchronization overhead (smem-tiled kernels).
        if chars.syncs_per_thread:
            exec_cycles += (
                arch.sync_cycles * chars.syncs_per_thread * n_warps
            )

        total_cycles = exec_cycles * repetitions
        seconds = total_cycles / arch.clock_hz + self._launch_overhead
        return GpuTimingBreakdown(
            kernel=chars.name,
            seconds=seconds,
            cycles=total_cycles,
            regime=regime,
            mwp=mwp,
            cwp=cwp,
            active_warps=n_warps,
            repetitions=repetitions,
            mem_cycles_per_warp=mem_cycles,
            comp_cycles_per_warp=comp_cycles,
            occupancy=occ,
        )

    def sequence_time(
        self, kernels: list[KernelCharacteristics]
    ) -> float:
        """Projected total time of a kernel sequence (no overlap)."""
        return sum(self.kernel_time(k) for k in kernels)
