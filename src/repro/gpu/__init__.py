"""GPU architecture descriptions and the analytical kernel-time model.

GROPHECY synthesizes *kernel characteristics* for each candidate code
transformation and feeds them to an analytical GPU performance model; we
implement the MWP/CWP model of Hong & Kim (ISCA'09) — the model of that
lineage GROPHECY builds on — whose published machine parameters include the
exact GPU of the paper's testbed (NVIDIA Quadro FX 5600).
"""

from repro.gpu.arch import (
    GPUArchitecture,
    gtx_280,
    quadro_fx_5600,
    tesla_c1060,
)
from repro.gpu.characteristics import KernelCharacteristics
from repro.gpu.occupancy import OccupancyResult, occupancy
from repro.gpu.model import GpuTimingBreakdown, GpuPerformanceModel
from repro.gpu.sensitivity import (
    Sensitivity,
    classify_kernel,
    dominant_parameter,
    kernel_sensitivities,
)

__all__ = [
    "Sensitivity",
    "classify_kernel",
    "dominant_parameter",
    "kernel_sensitivities",
    "GPUArchitecture",
    "quadro_fx_5600",
    "gtx_280",
    "tesla_c1060",
    "KernelCharacteristics",
    "OccupancyResult",
    "occupancy",
    "GpuTimingBreakdown",
    "GpuPerformanceModel",
]
