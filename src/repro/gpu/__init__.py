"""GPU architecture descriptions and the analytical kernel-time model.

GROPHECY synthesizes *kernel characteristics* for each candidate code
transformation and feeds them to an analytical GPU performance model; we
implement the MWP/CWP model of Hong & Kim (ISCA'09) — the model of that
lineage GROPHECY builds on — whose published machine parameters include the
exact GPU of the paper's testbed (NVIDIA Quadro FX 5600).
"""

from repro.gpu.arch import (
    GPUArchitecture,
    gtx_280,
    quadro_fx_5600,
    tesla_c1060,
)
from repro.gpu.characteristics import KernelCharacteristics
from repro.gpu.registry import (
    ArchSpec,
    InstructionLatencies,
    MemoryHierarchy,
    SmGeometry,
    UnknownArchitectureError,
    all_specs,
    arch_ids,
    get_arch,
    get_bus,
    get_spec,
    resolve_arch,
    spec_for_arch,
)
from repro.gpu.occupancy import OccupancyResult, occupancy
from repro.gpu.model import GpuTimingBreakdown, GpuPerformanceModel
from repro.gpu.sensitivity import (
    Sensitivity,
    classify_kernel,
    dominant_parameter,
    kernel_sensitivities,
)

__all__ = [
    "Sensitivity",
    "classify_kernel",
    "dominant_parameter",
    "kernel_sensitivities",
    "GPUArchitecture",
    "quadro_fx_5600",
    "gtx_280",
    "tesla_c1060",
    "ArchSpec",
    "SmGeometry",
    "MemoryHierarchy",
    "InstructionLatencies",
    "UnknownArchitectureError",
    "arch_ids",
    "all_specs",
    "get_spec",
    "get_arch",
    "get_bus",
    "resolve_arch",
    "spec_for_arch",
    "KernelCharacteristics",
    "OccupancyResult",
    "occupancy",
    "GpuTimingBreakdown",
    "GpuPerformanceModel",
]
