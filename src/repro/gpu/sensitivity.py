"""Parameter sensitivity of the analytical models.

Before trusting a projection, it helps to know which machine parameters
it actually depends on: a kernel whose projected time moves 1:1 with
``mem_bandwidth`` is bandwidth-bound and insensitive to latency errors; a
latency-bound kernel is the opposite.  This module perturbs one
architecture parameter at a time and reports the elasticity

    (dT / T) / (dp / p)

of the projected kernel time — ~1.0 means proportional, ~0 means the
parameter is irrelevant to this kernel.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.gpu.arch import GPUArchitecture
from repro.gpu.characteristics import KernelCharacteristics
from repro.gpu.model import GpuPerformanceModel
from repro.util.validation import check_positive

#: Architecture parameters that are meaningful to perturb continuously.
TUNABLE_PARAMETERS = (
    "clock_ghz",
    "mem_bandwidth",
    "mem_latency_cycles",
    "departure_del_coal",
    "departure_del_uncoal",
    "issue_cycles",
)


@dataclass(frozen=True)
class Sensitivity:
    """Elasticity of the projected time w.r.t. one parameter."""

    parameter: str
    elasticity: float  # d(logT)/d(log p), centered difference

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.parameter}: {self.elasticity:+.2f}"


def kernel_sensitivities(
    chars: KernelCharacteristics,
    arch: GPUArchitecture,
    relative_step: float = 0.05,
    parameters: tuple[str, ...] = TUNABLE_PARAMETERS,
    launch_overhead: float = 0.0,
) -> tuple[Sensitivity, ...]:
    """Centered-difference elasticities for one kernel on one machine.

    ``launch_overhead`` defaults to zero here so the elasticities describe
    the model proper, not the constant.
    """
    check_positive("relative_step", relative_step)
    base_time = GpuPerformanceModel(arch, launch_overhead).kernel_time(chars)
    out: list[Sensitivity] = []
    for name in parameters:
        value = getattr(arch, name)
        lo_arch = dataclasses.replace(
            arch, **{name: value * (1 - relative_step)}
        )
        hi_arch = dataclasses.replace(
            arch, **{name: value * (1 + relative_step)}
        )
        t_lo = GpuPerformanceModel(lo_arch, launch_overhead).kernel_time(chars)
        t_hi = GpuPerformanceModel(hi_arch, launch_overhead).kernel_time(chars)
        elasticity = ((t_hi - t_lo) / base_time) / (2 * relative_step)
        out.append(Sensitivity(name, elasticity))
    return tuple(out)


def dominant_parameter(
    chars: KernelCharacteristics, arch: GPUArchitecture
) -> Sensitivity:
    """The parameter the projection depends on most (by |elasticity|)."""
    return max(
        kernel_sensitivities(chars, arch),
        key=lambda s: abs(s.elasticity),
    )


def classify_kernel(
    chars: KernelCharacteristics, arch: GPUArchitecture
) -> str:
    """Human-readable bottleneck class from the sensitivities.

    Compares the bandwidth, latency-group, and instruction-issue
    elasticities; the clock is excluded because it scales every
    cycle-domain term and therefore discriminates nothing.

    Returns ``bandwidth-limited`` / ``latency-limited`` /
    ``issue-limited``.
    """
    sens = {
        s.parameter: abs(s.elasticity)
        for s in kernel_sensitivities(chars, arch)
    }
    classes = {
        "bandwidth-limited": sens["mem_bandwidth"],
        "latency-limited": max(
            sens["mem_latency_cycles"],
            sens["departure_del_coal"],
            sens["departure_del_uncoal"],
        ),
        "issue-limited": sens["issue_cycles"],
    }
    return max(classes, key=lambda k: classes[k])
