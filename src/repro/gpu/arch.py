"""GPU architecture parameters.

The preset :func:`quadro_fx_5600` mirrors the G80-class machine parameters
published with the MWP/CWP model (Hong & Kim, ISCA'09, Table 3), which is
the very GPU in the paper's Argonne testbed.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.util.fingerprint import stable_digest
from repro.util.validation import check_positive


@dataclass(frozen=True)
class GPUArchitecture:
    """Static machine description consumed by the analytical model."""

    name: str
    num_sms: int
    clock_ghz: float  # shader (SP) clock
    warp_size: int
    max_threads_per_sm: int
    max_blocks_per_sm: int
    max_warps_per_sm: int
    registers_per_sm: int
    shared_mem_per_sm: int  # bytes
    mem_bandwidth: float  # bytes/second, theoretical peak
    mem_latency_cycles: float  # Mem_LD: DRAM round-trip in SP cycles
    departure_del_coal: float  # cycles between coalesced mem warps
    departure_del_uncoal: float  # cycles between uncoalesced transactions
    issue_cycles: float  # SP cycles to issue one warp instruction
    coalesced_bytes_per_warp: int  # bytes one coalesced warp load moves
    uncoal_transactions_per_warp: int  # memory transactions if uncoalesced
    sync_cycles: float = 0.0  # extra cycles per __syncthreads()
    #: Compute-1.0 coalescing rules: misaligned accesses serialize.
    strict_coalescing: bool = True

    def __post_init__(self) -> None:
        for field_name in (
            "num_sms",
            "clock_ghz",
            "warp_size",
            "max_threads_per_sm",
            "max_blocks_per_sm",
            "max_warps_per_sm",
            "registers_per_sm",
            "shared_mem_per_sm",
            "mem_bandwidth",
            "mem_latency_cycles",
            "departure_del_coal",
            "departure_del_uncoal",
            "issue_cycles",
            "coalesced_bytes_per_warp",
            "uncoal_transactions_per_warp",
        ):
            check_positive(field_name, getattr(self, field_name))

    def fingerprint(self) -> str:
        """Stable content hash over every machine parameter.

        Any change to any field — SM count, clocks, latencies, coalescing
        rules — yields a different digest; the projection service keys
        cached results on it.
        """
        return stable_digest(dataclasses.asdict(self))

    @property
    def clock_hz(self) -> float:
        return self.clock_ghz * 1e9

    @property
    def total_threads(self) -> int:
        """Maximum concurrently resident threads on the whole device."""
        return self.num_sms * self.max_threads_per_sm

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}: {self.num_sms} SMs @ {self.clock_ghz}GHz, "
            f"{self.mem_bandwidth / 1e9:.1f}GB/s"
        )


def quadro_fx_5600() -> GPUArchitecture:
    """The paper's GPU: NVIDIA Quadro FX 5600 (G80, PCIe v1 board).

    Parameters follow Hong & Kim's published FX 5600 numbers: 16 SMs at
    1.35 GHz, 420-cycle memory latency, departure delays of 4 (coalesced)
    and 10 (uncoalesced) cycles.  ``mem_bandwidth`` is the
    microbenchmark-*sustained* bandwidth (~81% of the 76.8 GB/s
    theoretical peak) — the MWP peak-bandwidth bound is meaningless
    against a number no kernel can reach.  G80 coalesces per 16-thread
    half-warp into 64 B segments, so a fully coalesced float warp load
    moves 128 B; a fully uncoalesced one issues 32 separate transactions.
    """
    return GPUArchitecture(
        name="Quadro FX 5600",
        num_sms=16,
        clock_ghz=1.35,
        warp_size=32,
        max_threads_per_sm=768,
        max_blocks_per_sm=8,
        max_warps_per_sm=24,
        registers_per_sm=8192,
        shared_mem_per_sm=16 * 1024,
        mem_bandwidth=62.0e9,
        mem_latency_cycles=420.0,
        departure_del_coal=4.0,
        departure_del_uncoal=10.0,
        issue_cycles=4.0,
        coalesced_bytes_per_warp=128,
        uncoal_transactions_per_warp=32,
        sync_cycles=28.0,
        strict_coalescing=True,
    )


def tesla_c1060() -> GPUArchitecture:
    """Tesla C1060 (GT200 compute variant): the HPC board of the era.

    Compute capability 1.3: relaxed coalescing, 30 SMs at a slightly
    lower clock than the GTX 280, 102 GB/s theoretical (here sustained
    ~82).
    """
    return GPUArchitecture(
        name="Tesla C1060",
        num_sms=30,
        clock_ghz=1.296,
        warp_size=32,
        max_threads_per_sm=1024,
        max_blocks_per_sm=8,
        max_warps_per_sm=32,
        registers_per_sm=16384,
        shared_mem_per_sm=16 * 1024,
        mem_bandwidth=82.0e9,  # sustained (~80% of 102 theoretical)
        mem_latency_cycles=450.0,
        departure_del_coal=4.0,
        departure_del_uncoal=40.0,
        issue_cycles=4.0,
        coalesced_bytes_per_warp=128,
        uncoal_transactions_per_warp=32,
        sync_cycles=28.0,
        strict_coalescing=False,
    )


def gtx_280() -> GPUArchitecture:
    """A GT200-class alternative preset (for cross-architecture what-ifs)."""
    return GPUArchitecture(
        name="GeForce GTX 280",
        num_sms=30,
        clock_ghz=1.296,
        warp_size=32,
        max_threads_per_sm=1024,
        max_blocks_per_sm=8,
        max_warps_per_sm=32,
        registers_per_sm=16384,
        shared_mem_per_sm=16 * 1024,
        mem_bandwidth=114.0e9,  # sustained (~80% of 141.7 theoretical)
        mem_latency_cycles=450.0,
        departure_del_coal=4.0,
        departure_del_uncoal=40.0,
        issue_cycles=4.0,
        coalesced_bytes_per_warp=128,
        uncoal_transactions_per_warp=32,
        sync_cycles=28.0,
        strict_coalescing=False,  # compute 1.3 relaxed coalescing
    )
