"""Vectorized MWP/CWP scoring of whole characteristic batches.

:func:`score_batch` replays :meth:`GpuPerformanceModel.breakdown` —
occupancy included — over a batch of :class:`KernelCharacteristics` as
NumPy structure-of-arrays math instead of N independent scalar passes;
:func:`score_grid` stacks many such batches (one per sweep point) into a
single ``(configs x points)`` evaluation for the parametric sweep engine.
Every elementwise operation mirrors the scalar model's operation *and
order*, so the resulting ``seconds`` are bitwise-equal to the reference
(IEEE-754 binary64 arithmetic is deterministic; only re-association
could diverge, and nothing here re-associates).

It also derives a cheap **lower bound** on each candidate's time —
``exec_cycles`` can never drop below the raw memory cycles nor below the
pipelined memory/compute floor ``N * mem * comp / (mem + comp)``,
whatever regime the model lands in (see ``docs/EXPLORER.md`` for the
per-regime proof) — which powers the explorer's bound-based pruning:
fully score one promising seed, then skip every candidate whose floor
already exceeds the seed's actual time.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.characteristics import KernelCharacteristics
from repro.gpu.model import GpuPerformanceModel, GpuTimingBreakdown
from repro.gpu.occupancy import OccupancyResult
from repro.obs.trace import span as trace_span

#: Resource names in the scalar occupancy's dict-insertion order; the
#: stacked argmin below reproduces its first-minimum limiter choice.
_LIMITERS = ("threads", "blocks", "warps", "registers", "shared_mem")
_REGIMES = ("balanced", "memory-bound", "compute-bound")
#: The lower bound's proof tolerates the model's ``math.isclose`` slop
#: (1e-9 relative); shave a comfortably larger margin so the bound never
#: edges above the true time through rounding.
_BOUND_SAFETY = 1.0 - 1e-6

_ERR_BLOCK, _ERR_REGS, _ERR_SMEM, _ERR_FIT = 1, 2, 3, 4

#: Interned :class:`OccupancyResult` instances keyed by field values —
#: the scorer would otherwise rebuild the same few dozen results for
#: every row of every batch.  Bounded defensively; real sessions see a
#: handful of entries per architecture.
_OCC_CACHE: dict[tuple, OccupancyResult] = {}
_OCC_CACHE_MAX = 4096


class _Batch:
    """Structure-of-arrays view of a characteristics batch on one model."""

    def __init__(
        self,
        model: GpuPerformanceModel,
        chars_list: list[KernelCharacteristics],
        columns: dict[str, np.ndarray] | None = None,
    ) -> None:
        self.model = model
        self.chars = chars_list
        arch = model.arch
        if columns is not None:
            # Caller-supplied structure-of-arrays view of ``chars_list``
            # (same values the attribute sweep below would read) — the
            # sweep engine tiles the point-invariant fields instead of
            # re-reading them from every row object.
            self.block = columns["block_size"]
            self.regs = columns["registers_per_thread"]
            self.smem = columns["shared_mem_per_block"]
            threads = columns["threads"]
            self.bpa = columns["bytes_per_access"]
            self.mem_insts = columns["mem_insts_per_thread"]
            self.comp_insts = columns["comp_insts_per_thread"]
            self.f_coal = columns["coalesced_fraction"]
            self.syncs = columns["syncs_per_thread"]
        else:
            as_i64 = lambda xs: np.asarray(xs, dtype=np.int64)  # noqa: E731
            as_f64 = lambda xs: np.asarray(xs, dtype=np.float64)  # noqa: E731
            self.block = as_i64([c.block_size for c in chars_list])
            self.regs = as_i64([c.registers_per_thread for c in chars_list])
            self.smem = as_i64([c.shared_mem_per_block for c in chars_list])
            threads = as_i64([c.threads for c in chars_list])
            self.bpa = as_i64([c.bytes_per_access for c in chars_list])
            self.mem_insts = as_f64([c.mem_insts_per_thread for c in chars_list])
            self.comp_insts = as_f64(
                [c.comp_insts_per_thread for c in chars_list]
            )
            self.f_coal = as_f64([c.coalesced_fraction for c in chars_list])
            self.syncs = as_f64([c.syncs_per_thread for c in chars_list])
        # num_blocks = ceil(threads / block_size), replaying the scalar
        # property's float division (cheaper than a property call per row).
        self.nb = np.ceil(threads / self.block).astype(np.int64)
        # --- Occupancy (vectorized repro.gpu.occupancy.occupancy) --------
        self.warps_per_block = -(-self.block // arch.warp_size)
        regs_per_block = self.regs * self.block
        big = np.iinfo(np.int64).max
        limits = np.stack(
            [
                arch.max_threads_per_sm // self.block,
                np.full(len(chars_list), arch.max_blocks_per_sm, np.int64),
                arch.max_warps_per_sm // self.warps_per_block,
                arch.registers_per_sm // np.maximum(regs_per_block, 1),
                np.where(
                    self.smem > 0,
                    arch.shared_mem_per_sm // np.maximum(self.smem, 1),
                    big,
                ),
            ]
        )
        self.limiter_idx = np.argmin(limits, axis=0)
        raw_blocks_per_sm = np.min(limits, axis=0)

        # Error precedence matches the scalar raise order exactly.
        err = np.zeros(len(chars_list), dtype=np.int64)
        err_block = self.block > arch.max_threads_per_sm
        err_regs = ~err_block & (regs_per_block > arch.registers_per_sm)
        err_smem = (
            ~err_block & ~err_regs & (self.smem > arch.shared_mem_per_sm)
        )
        err_fit = (
            ~err_block & ~err_regs & ~err_smem & (raw_blocks_per_sm < 1)
        )
        err[err_block] = _ERR_BLOCK
        err[err_regs] = _ERR_REGS
        err[err_smem] = _ERR_SMEM
        err[err_fit] = _ERR_FIT
        self.err = err
        self.legal = err == 0
        self._regs_per_block = regs_per_block

        cap = np.maximum(
            1, np.ceil(self.nb / arch.num_sms).astype(np.int64)
        )
        # Illegal rows carry dummy occupancy (1 block/SM); their timing
        # arrays are computed but never read.
        self.blocks_per_sm = np.minimum(
            np.where(self.legal, raw_blocks_per_sm, 1), cap
        )
        self.active_warps = self.blocks_per_sm * self.warps_per_block
        self.n_warps = np.maximum(1, self.active_warps)
        self.n_f = self.n_warps.astype(np.float64)

        # --- Cheap timing terms (model.breakdown stage shared with the
        # lower bound) ----------------------------------------------------
        self.f_uncoal = 1.0 - self.f_coal
        uncoal_trans = arch.uncoal_transactions_per_warp
        dep_uncoal = arch.departure_del_uncoal * uncoal_trans
        self.departure_delay = (
            self.f_coal * arch.departure_del_coal + self.f_uncoal * dep_uncoal
        )
        mem_l_uncoal = (
            arch.mem_latency_cycles
            + (uncoal_trans - 1) * arch.departure_del_uncoal
        )
        self.mem_l = (
            self.f_coal * arch.mem_latency_cycles
            + self.f_uncoal * mem_l_uncoal
        )
        self.mem_cycles = self.mem_l * self.mem_insts
        comp_cycles = arch.issue_cycles * (self.comp_insts + self.mem_insts)
        self.comp_cycles = np.maximum(comp_cycles, arch.issue_cycles)
        self.active_sms = np.minimum(arch.num_sms, self.nb)
        self.repetitions = np.maximum(
            1,
            np.ceil(
                self.nb / (self.blocks_per_sm * self.active_sms)
            ).astype(np.int64),
        )
        self.sync_term = (arch.sync_cycles * self.syncs) * self.n_f

    # ------------------------------------------------------------------ #
    def bound_seconds(self) -> np.ndarray:
        """A provable lower bound on each row's projected seconds.

        ``exec_cycles >= max(mem_cycles, N*mem*comp/(mem+comp)) + sync``
        holds in every regime; ``repetitions`` and the launch overhead
        transfer the bound to seconds.  ``_BOUND_SAFETY`` absorbs the
        model's isclose slop and rounding.
        """
        pipelined_floor = (
            self.n_f
            * self.mem_cycles
            * self.comp_cycles
            / (self.mem_cycles + self.comp_cycles)
        )
        bound_cycles = (
            np.maximum(self.mem_cycles, pipelined_floor)
            + np.where(self.syncs != 0.0, self.sync_term, 0.0)
        ) * _BOUND_SAFETY
        return (
            bound_cycles * self.repetitions / self.model.arch.clock_hz
            + self.model.launch_overhead
        )

    def exec_at(self, idx: np.ndarray) -> dict[str, np.ndarray]:
        """Full regime selection + exec cycles for the rows in ``idx``."""
        arch = self.model.arch
        bpa = self.bpa[idx]
        f_coal = self.f_coal[idx]
        f_uncoal = self.f_uncoal[idx]
        mem_l = self.mem_l[idx]
        mi = self.mem_insts[idx]
        mc = self.mem_cycles[idx]
        cc = self.comp_cycles[idx]
        nf = self.n_f[idx]

        payload = bpa * arch.warp_size
        waste = np.maximum(
            1.0, GpuPerformanceModel.MIN_TRANSACTION_BYTES / bpa
        )
        consumed = payload * (f_coal + f_uncoal * waste)
        bw_per_warp = arch.clock_hz * consumed / mem_l
        mwp_peak_bw = arch.mem_bandwidth / (bw_per_warp * self.active_sms[idx])
        mwp_without_bw = mem_l / self.departure_delay[idx]
        mwp = np.maximum(
            1.0, np.minimum(np.minimum(mwp_without_bw, mwp_peak_bw), nf)
        )
        cwp_full = np.where(mi > 0, (mc + cc) / cc, 1.0)
        cwp = np.minimum(cwp_full, nf)
        mpic = np.zeros_like(cc)
        np.divide(cc, mi, out=mpic, where=mi != 0)

        m0 = mi == 0
        m1 = ~m0 & _isclose(mwp, nf) & _isclose(cwp, nf)
        m2 = ~m0 & ~m1 & (cwp >= mwp)
        exec_cycles = np.select(
            [m0, m1, m2],
            [
                cc * nf,
                mc + cc + mpic * (mwp - 1),
                mc * (nf / mwp) + mpic * (mwp - 1),
            ],
            default=mem_l + cc * nf,
        )
        regime = np.select([m0, m1, m2], [2, 0, 1], default=2)
        exec_cycles = np.where(
            self.syncs[idx] != 0.0,
            exec_cycles + self.sync_term[idx],
            exec_cycles,
        )
        cycles = exec_cycles * self.repetitions[idx]
        seconds = cycles / arch.clock_hz + self.model.launch_overhead
        return {
            "seconds": seconds,
            "cycles": cycles,
            "regime": regime,
            "mwp": mwp,
            "cwp": cwp,
            "mem_cycles": mc,
            "comp_cycles": cc,
        }

    # ------------------------------------------------------------------ #
    def error_message(self, i: int) -> str:
        """The exact ValueError text the scalar occupancy raises for row i."""
        arch = self.model.arch
        chars = self.chars[i]
        kind = int(self.err[i])
        if kind == _ERR_BLOCK:
            return (
                f"block size {int(self.block[i])} exceeds "
                f"{arch.max_threads_per_sm} threads/SM on {arch.name}"
            )
        if kind == _ERR_REGS:
            return (
                f"kernel {chars.name!r} needs {int(self._regs_per_block[i])} "
                f"registers per block; SM has {arch.registers_per_sm}"
            )
        if kind == _ERR_SMEM:
            return (
                f"kernel {chars.name!r} needs {int(self.smem[i])}B shared "
                f"memory per block; SM has {arch.shared_mem_per_sm}B"
            )
        limiter = _LIMITERS[int(self.limiter_idx[i])]
        return (
            f"kernel {chars.name!r} cannot fit one block per SM "
            f"(limited by {limiter})"
        )

    def materialize(
        self, idx: np.ndarray, row: dict[str, np.ndarray]
    ) -> list[GpuTimingBreakdown]:
        """Dataclass results for the rows in ``idx`` (order preserved).

        Bulk ``tolist()`` conversion first: it yields native Python
        ints/floats in one C pass, instead of a NumPy-scalar box plus an
        int()/float() unbox per field per row.
        """
        arch = self.model.arch
        max_warps = arch.max_warps_per_sm
        bps = self.blocks_per_sm[idx].tolist()
        wpb = self.warps_per_block[idx].tolist()
        aw = self.active_warps[idx].tolist()
        nw = self.n_warps[idx].tolist()
        rep = self.repetitions[idx].tolist()
        lim = self.limiter_idx[idx].tolist()
        sec = row["seconds"].tolist()
        cyc = row["cycles"].tolist()
        reg = row["regime"].tolist()
        mwp = row["mwp"].tolist()
        cwp = row["cwp"].tolist()
        mc = row["mem_cycles"].tolist()
        cc = row["comp_cycles"].tolist()
        out = []
        # Both result types are frozen dataclasses, so normal construction
        # pays one ``object.__setattr__`` per field; at two objects per
        # candidate row that dominates this loop.  Building the instances
        # via ``__new__`` and filling the field dict directly produces
        # identical objects (the fields carry no validation) much faster.
        chars = self.chars
        names = [chars[i].name for i in idx.tolist()]
        new = object.__new__
        occ_cache = _OCC_CACHE
        for j in range(len(names)):
            # Occupancy repeats heavily across rows (one distinct result
            # per config modulo the block-count cap), so intern instances:
            # they are frozen, and sharing changes nothing observable.
            occ_key = (bps[j], wpb[j], aw[j], lim[j], max_warps)
            occ = occ_cache.get(occ_key)
            if occ is None:
                if len(occ_cache) >= _OCC_CACHE_MAX:  # pragma: no cover
                    occ_cache.clear()
                occ = new(OccupancyResult)
                fields = occ.__dict__
                fields["blocks_per_sm"] = bps[j]
                fields["warps_per_block"] = wpb[j]
                fields["active_warps"] = aw[j]
                fields["limiter"] = _LIMITERS[lim[j]]
                fields["_max_warps"] = max_warps
                occ_cache[occ_key] = occ
            breakdown = new(GpuTimingBreakdown)
            fields = breakdown.__dict__
            fields["kernel"] = names[j]
            fields["seconds"] = sec[j]
            fields["cycles"] = cyc[j]
            fields["regime"] = _REGIMES[reg[j]]
            fields["mwp"] = mwp[j]
            fields["cwp"] = cwp[j]
            fields["active_warps"] = nw[j]
            fields["repetitions"] = rep[j]
            fields["mem_cycles_per_warp"] = mc[j]
            fields["comp_cycles_per_warp"] = cc[j]
            fields["occupancy"] = occ
            out.append(breakdown)
        return out


def _isclose(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``math.isclose`` (rel_tol=1e-9, abs_tol=0) elementwise."""
    return np.abs(a - b) <= 1e-9 * np.maximum(np.abs(a), np.abs(b))


def lower_bound_seconds(
    model: GpuPerformanceModel, chars_list: list[KernelCharacteristics]
) -> np.ndarray:
    """Per-row lower bounds on projected seconds (NaN for illegal rows)."""
    if not chars_list:
        return np.empty(0, dtype=np.float64)
    batch = _Batch(model, list(chars_list))
    bounds = batch.bound_seconds()
    return np.where(batch.legal, bounds, np.nan)


def score_batch(
    model: GpuPerformanceModel,
    chars_list: list[KernelCharacteristics],
    prune: bool = False,
) -> list[tuple[str, object]]:
    """Score a whole batch; returns one ``(kind, payload)`` per input row.

    - ``("candidate", GpuTimingBreakdown)`` — fully scored, bitwise-equal
      to ``model.breakdown(chars)``;
    - ``("illegal", str)`` — the exact occupancy ``ValueError`` message;
    - ``("pruned", str)`` — only with ``prune=True``: the row's lower
      bound already exceeds a fully-scored incumbent, so it cannot be the
      argmin (the incumbent survives at a better-or-equal time).

    Pruning preserves the argmin *and* its first-minimum tie-break: any
    row whose true time ties the best has ``bound <= time <= incumbent``
    and therefore survives.
    """
    if not chars_list:
        return []
    return score_grid(model, [chars_list], prune=prune)[0]


def score_grid(
    model: GpuPerformanceModel,
    chars_lists: list[list[KernelCharacteristics]],
    prune: bool = False,
    columns: dict[str, np.ndarray] | None = None,
) -> list[list[tuple[str, object]]]:
    """Score several batches — one per sweep point — as a single SoA pass.

    ``chars_lists`` holds one characteristics list per *segment* (e.g.
    one transformation grid per sweep point of a parametric size sweep);
    the result is one :func:`score_batch`-shaped list per segment.  Every
    occupancy/timing operation in :class:`_Batch` is elementwise, so a
    row's numbers are independent of which other rows share the batch and
    each segment's output is bitwise-equal to scoring it alone.  With
    ``prune=True`` every segment seeds and prunes against its *own*
    incumbent — candidates never prune across sweep points.

    ``columns`` optionally supplies the flattened structure-of-arrays
    view of the rows (one array per characteristics field, in flat row
    order) so the batch skips its per-row attribute sweep; the values
    must equal the rows' own — the sweep engine derives them from the
    rows' point-invariance, tiling the shared fields once.
    """
    flat: list[KernelCharacteristics] = []
    starts = [0]
    for segment in chars_lists:
        flat.extend(segment)
        starts.append(len(flat))
    if not flat:
        return [[] for _ in chars_lists]
    with trace_span(
        "score", rows=len(flat), segments=len(chars_lists), prune=prune
    ):
        return _score_flat(model, chars_lists, flat, starts, prune, columns)


def _score_flat(
    model: GpuPerformanceModel,
    chars_lists: list[list[KernelCharacteristics]],
    flat: list[KernelCharacteristics],
    starts: list[int],
    prune: bool,
    columns: dict[str, np.ndarray] | None,
) -> list[list[tuple[str, object]]]:
    """The SoA scoring pass behind :func:`score_grid` (traced there)."""
    batch = _Batch(model, flat, columns)
    bounds = batch.bound_seconds() if prune else None
    incumbents: dict[int, float] = {}
    survive_parts: list[np.ndarray] = []
    pending_seeds: list[tuple[int, np.ndarray, int]] = []
    for s in range(len(chars_lists)):
        lo, hi = starts[s], starts[s + 1]
        seg_legal = lo + np.flatnonzero(batch.legal[lo:hi])
        if prune and len(seg_legal) > 1:
            seed_pos = int(np.argmin(bounds[seg_legal]))
            pending_seeds.append((s, seg_legal, int(seg_legal[seed_pos])))
            survive_parts.append(seg_legal)  # placeholder, replaced below
        else:
            survive_parts.append(seg_legal)
    if pending_seeds:
        seed_idx = np.asarray([row for _, _, row in pending_seeds])
        seed_seconds = batch.exec_at(seed_idx)["seconds"].tolist()
        for (s, seg_legal, _), incumbent in zip(pending_seeds, seed_seconds):
            incumbents[s] = incumbent
            survive_parts[s] = seg_legal[bounds[seg_legal] <= incumbent]

    survive_idx = (
        np.concatenate(survive_parts)
        if survive_parts
        else np.empty(0, dtype=np.int64)
    )
    row = batch.exec_at(survive_idx)
    breakdowns = batch.materialize(survive_idx, row)
    by_row = dict(zip(survive_idx.tolist(), breakdowns))
    legal = batch.legal.tolist()
    out: list[list[tuple[str, object]]] = []
    for s in range(len(chars_lists)):
        results: list[tuple[str, object]] = []
        for i in range(starts[s], starts[s + 1]):
            if not legal[i]:
                results.append(("illegal", batch.error_message(i)))
            elif i in by_row:
                results.append(("candidate", by_row[i]))
            else:
                results.append(
                    (
                        "pruned",
                        f"lower bound {float(bounds[i]) * 1e6:.2f}us exceeds "
                        f"incumbent {incumbents[s] * 1e6:.2f}us",
                    )
                )
        out.append(results)
    return out
